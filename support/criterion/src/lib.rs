//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no reachable cargo registry, so the real
//! `criterion` cannot be fetched. This crate keeps the `benches/` targets
//! compiling and runnable: each `bench_function` runs a short warmup, then
//! times `sample_size` batches and prints min/mean per-iteration times.
//! No statistics, plots, or baselines — swap the path dependency for the
//! real crate for publication-grade numbers.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark driver handed to `criterion_group!` targets.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        let (min, mean) = b.summary();
        eprintln!(
            "  {}/{}: min {:?}  mean {:?}  ({} samples)",
            self.name,
            id.into(),
            min,
            mean,
            self.sample_size
        );
    }

    /// Ends the group (printing is immediate, so this is a no-op).
    pub fn finish(self) {}
}

/// Runs and times the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f`, recording one duration per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f()); // warmup
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(f());
            self.samples.push(t.elapsed());
        }
    }

    fn summary(&self) -> (Duration, Duration) {
        if self.samples.is_empty() {
            return (Duration::ZERO, Duration::ZERO);
        }
        let min = self.samples.iter().min().copied().unwrap_or_default();
        let total: Duration = self.samples.iter().sum();
        (min, total / self.samples.len() as u32)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
