//! Offline stand-in for the subset of the `rand 0.8` API this workspace
//! uses (`StdRng::seed_from_u64`, `gen_range`, `gen_bool`, `gen::<f64>()`).
//!
//! The build environment has no reachable cargo registry, so the real
//! `rand` crate cannot be fetched; this workspace-local crate keeps every
//! `use rand::...` in the seed sources compiling unchanged. The generator
//! is xoshiro256++ seeded through SplitMix64 — deterministic across
//! platforms, which is all the synthetic-layout generator and the test
//! suite need. Swap this path dependency for the real crate once a
//! registry is available; no call sites need to change.

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types uniformly samplable from a range.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_exclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform draw from `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_exclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo < hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
            fn sample_inclusive<R: RngCore>(lo: $t, hi: $t, rng: &mut R) -> $t {
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Ranges samplable by [`Rng::gen_range`]. Single blanket impls per range
/// shape keep type inference identical to the real crate (the element type
/// unifies directly with the result type).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_range<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_range<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_range<R: RngCore>(self, rng: &mut R) -> T {
        T::sample_inclusive(*self.start(), *self.end(), rng)
    }
}

/// The user-facing sampling interface (blanket-implemented for every
/// [`RngCore`], like the real crate).
pub trait Rng: RngCore {
    /// Uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_range(self)
    }

    /// Bernoulli draw.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }

    /// Draws a value of an inferred [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stands in for rand's
    /// `StdRng`; same role — seeded, reproducible — different stream).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1000), b.gen_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = rng.gen_range(3usize..=7);
            assert!((3..=7).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes_and_rough_fairness() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4200..5800).contains(&heads), "{heads}");
    }

    #[test]
    fn gen_f64_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
