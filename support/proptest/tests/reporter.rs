//! Regression tests for the stand-in's failure reporting: a failing case
//! must name the generated input values and the replay seed (there is no
//! shrinking, so the report is the whole debugging story).

use proptest::prelude::*;

// Deliberately failing property bodies, declared WITHOUT `#[test]` so we
// can invoke them under `catch_unwind` and inspect the panic message.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    fn fails_via_prop_assert(x in 10i64..20, y in 0i64..5) {
        prop_assert!(x < y, "x is never below y");
    }

    fn fails_via_plain_panic(x in 10i64..20) {
        assert!(x < 0, "plain assert, no TestCaseError");
    }

    #[test]
    fn passes(x in 0i64..100, flag in any::<bool>()) {
        prop_assert!(x >= 0);
        let _ = flag;
    }
}

fn panic_message(f: impl FnOnce() + std::panic::UnwindSafe) -> String {
    let payload = std::panic::catch_unwind(f).expect_err("test body must fail");
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

#[test]
fn prop_assert_failure_reports_inputs_and_seed() {
    let msg = panic_message(fails_via_prop_assert);
    assert!(msg.contains("fails_via_prop_assert"), "{msg}");
    assert!(msg.contains("x is never below y"), "{msg}");
    // The generated values are rendered pattern = value.
    assert!(msg.contains("x = 1"), "input x missing: {msg}");
    assert!(msg.contains("y = "), "input y missing: {msg}");
    assert!(msg.contains("PROPTEST_STUB_SEED="), "seed missing: {msg}");
}

#[test]
fn panicking_body_still_propagates_original_panic() {
    // The input report for plain panics goes to stderr (the original
    // payload must be preserved for the harness), so here we only check
    // the panic itself survives unchanged.
    let msg = panic_message(fails_via_plain_panic);
    assert!(msg.contains("plain assert"), "{msg}");
}

#[test]
fn truncation_caps_huge_inputs() {
    let mut out = String::new();
    proptest::append_input(&mut out, "v", &vec![123u64; 20_000]);
    assert!(
        out.len() < 20 * 1024,
        "render must be capped: {}",
        out.len()
    );
    assert!(out.ends_with("… <truncated>; "), "cap marker missing");
}
