//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build environment has no reachable cargo registry, so the real
//! `proptest` cannot be fetched. This crate keeps the seed property tests
//! compiling and *meaningful*: strategies generate seeded pseudo-random
//! values and each `proptest!` test runs its configured number of cases.
//! What is intentionally missing versus the real crate is shrinking — a
//! failing case is *not* minimized, but it **is reported**: the failure
//! message (for `prop_assert!` violations) or a line on stderr (for
//! panicking bodies) carries the case index, the RNG seed to replay the
//! whole test, and the `Debug` rendering of every generated input, so
//! failures are debuggable without shrinking. This requires every
//! generated value type to implement `Debug` (all of the real crate's
//! strategies do too). The per-test RNG seed is derived from the test
//! name (override with `PROPTEST_STUB_SEED`), so failures reproduce
//! exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy {
    use super::TestRng;

    /// A generator of test values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Generates with `self`, then generates from the strategy `f`
        /// returns.
        fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Keeps only values `f` maps to `Some`; retries otherwise.
        fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
            self,
            reason: &'static str,
            f: F,
        ) -> FilterMap<Self, F>
        where
            Self: Sized,
        {
            FilterMap {
                inner: self,
                f,
                reason,
            }
        }

        /// Keeps only values satisfying `f`; retries otherwise.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                f,
                reason,
            }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    const MAX_REJECTS: usize = 10_000;

    /// See [`Strategy::prop_filter_map`].
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            for _ in 0..MAX_REJECTS {
                if let Some(v) = (self.f)(self.inner.generate(rng)) {
                    return v;
                }
            }
            panic!(
                "strategy rejected {MAX_REJECTS} candidates: {}",
                self.reason
            );
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        f: F,
        reason: &'static str,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..MAX_REJECTS {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "strategy rejected {MAX_REJECTS} candidates: {}",
                self.reason
            );
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleUniform + Copy> Strategy for core::ops::Range<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_exclusive(self.start, self.end, &mut rng.0)
        }
    }

    impl<T: rand::SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::sample_inclusive(*self.start(), *self.end(), &mut rng.0)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// Types with a canonical strategy, for [`super::prelude::any`].
    pub trait Arbitrary: Sized {
        /// Draws one value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rand::RngCore::next_u64(&mut rng.0) & 1 == 1
        }
    }

    /// Strategy for an [`Arbitrary`] type.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Default for Any<T> {
        fn default() -> Self {
            Any(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Sizes accepted by [`vec`]: `n`, `a..b`, or `a..=b`.
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.clone().generate(rng)
        }
    }

    /// Strategy for `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy, Z: SizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    impl<S: Strategy, Z: SizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The RNG handed to strategies.
pub struct TestRng(StdRng);

/// A failed test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the current case with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (only the case count is honored).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Drives the cases of one `proptest!` test (used by the macro).
pub struct TestRunner {
    rng: TestRng,
    cases: u32,
    seed: u64,
}

impl TestRunner {
    /// Builds a runner whose RNG seed derives from the test name (or the
    /// `PROPTEST_STUB_SEED` environment variable when set).
    pub fn new(config: &ProptestConfig, test_name: &str) -> Self {
        let seed = std::env::var("PROPTEST_STUB_SEED")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| {
                // FNV-1a of the test name: stable across runs and platforms.
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in test_name.bytes() {
                    h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01B3);
                }
                h
            });
        TestRunner {
            rng: TestRng(StdRng::seed_from_u64(seed)),
            cases: config.cases,
            seed,
        }
    }

    /// Number of cases to run.
    pub fn cases(&self) -> u32 {
        self.cases
    }

    /// The RNG seed this run started from (replay the whole test with
    /// `PROPTEST_STUB_SEED=<seed>`).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The case RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

/// Cap on one input's `Debug` rendering in a failure report; generated
/// layouts/graphs can be large, and the point is debuggability, not a
/// full dump.
const MAX_INPUT_REPR: usize = 16 * 1024;

/// A `fmt::Write` sink that stops accepting bytes once its budget is
/// spent (always cutting at a char boundary), so rendering a huge value
/// costs at most the cap — not a full format followed by a truncate.
struct CappedWriter<'a> {
    out: &'a mut String,
    remaining: usize,
    truncated: bool,
}

impl core::fmt::Write for CappedWriter<'_> {
    fn write_str(&mut self, s: &str) -> core::fmt::Result {
        if self.truncated {
            return Err(core::fmt::Error);
        }
        if s.len() <= self.remaining {
            self.out.push_str(s);
            self.remaining -= s.len();
            return Ok(());
        }
        let mut cut = self.remaining;
        while cut > 0 && !s.is_char_boundary(cut) {
            cut -= 1;
        }
        self.out.push_str(&s[..cut]);
        self.remaining = 0;
        self.truncated = true;
        Err(core::fmt::Error)
    }
}

/// Appends `pat = value;` to a failure-report buffer (used by the
/// [`proptest!`] macro), rendering at most [`MAX_INPUT_REPR`] bytes of
/// the value.
pub fn append_input<T: core::fmt::Debug>(out: &mut String, pat: &str, value: &T) {
    use core::fmt::Write;
    out.push_str(pat);
    out.push_str(" = ");
    let mut w = CappedWriter {
        out,
        remaining: MAX_INPUT_REPR,
        truncated: false,
    };
    let truncated = write!(w, "{value:?}").is_err() && w.truncated;
    if truncated {
        out.push_str("… <truncated>");
    }
    out.push_str("; ");
}

/// Everything the seed tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{Any, Arbitrary, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError, TestRunner,
    };

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::default()
    }
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "{}: {:?} != {:?}", format!($($fmt)*), l, r);
    }};
}

/// Declares property tests: each `#[test] fn name(pat in strategy, ...)`
/// item becomes a normal `#[test]` running the configured number of
/// generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    // `#[test]` is captured as one of the leading attributes and re-emitted
    // with them (matching it literally is ambiguous with `$attr:meta`).
    (@cfg ($cfg:expr) $($(#[$attr:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut runner = $crate::TestRunner::new(&config, stringify!($name));
                let seed = runner.seed();
                for case in 0..runner.cases() {
                    let mut __inputs = ::std::string::String::new();
                    $(
                        let __generated = $crate::strategy::Strategy::generate(&($strat), runner.rng());
                        $crate::append_input(&mut __inputs, stringify!($pat), &__generated);
                        let $pat = __generated;
                    )+
                    // `catch_unwind` so panicking bodies (plain asserts,
                    // expects) also report the generated inputs before
                    // the panic propagates.
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            || -> ::core::result::Result<(), $crate::TestCaseError> {
                                $body Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) => panic!(
                            "proptest case {case} of {} failed (replay with PROPTEST_STUB_SEED={seed}): {e}\n  input: {}",
                            stringify!($name),
                            __inputs
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest case {case} of {} panicked (replay with PROPTEST_STUB_SEED={seed})\n  input: {}",
                                stringify!($name),
                                __inputs
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}
