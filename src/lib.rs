//! # aapsm — Bright-Field AAPSM Conflict Detection and Correction
//!
//! A complete reproduction of the DATE 2005 paper by Chiang, Kahng, Sinha,
//! Xu and Zelikovsky: detect the minimal set of phase conflicts that keeps
//! a polysilicon layout from being alternating-aperture-PSM assignable,
//! and correct them by end-to-end space insertion.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`fault`] | `aapsm-fault` | budgets, deadlines, fault injection |
//! | [`geom`] | `aapsm-geom` | exact integer geometry |
//! | [`graph`] | `aapsm-graph` | embedded graphs, planarization, faces, duals |
//! | [`matching`] | `aapsm-matching` | Blossom min-weight perfect matching |
//! | [`tjoin`] | `aapsm-tjoin` | T-join solvers, generalized gadgets |
//! | [`cover`] | `aapsm-cover` | weighted set cover |
//! | [`layout`] | `aapsm-layout` | layouts, rules, shifters, generators |
//! | [`gds`] | `aapsm-gds` | GDSII stream reader/writer |
//! | [`core`] | `aapsm-core` | the paper's detection + correction flow |
//! | [`service`] | `aapsm-service` | resident multi-session detection service |
//! | [`render`] | `aapsm-render` | SVG figures |
//!
//! # Quickstart
//!
//! ```
//! use aapsm::prelude::*;
//!
//! let rules = DesignRules::default();
//! let layout = aapsm::layout::fixtures::gate_over_strap(&rules);
//! let result = run_flow(&layout, &rules, &FlowConfig::default())?;
//! println!(
//!     "{} conflicts, fixed with {} end-to-end spaces (+{:.2}% area)",
//!     result.detection.conflict_count(),
//!     result.plan.grid_line_count(),
//!     result.correction.area_increase_pct,
//! );
//! assert!(result.verified);
//! # Ok::<(), aapsm::core::FlowError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub use aapsm_core as core;
pub use aapsm_cover as cover;
pub use aapsm_fault as fault;
pub use aapsm_gds as gds;
pub use aapsm_geom as geom;
pub use aapsm_graph as graph;
pub use aapsm_layout as layout;
pub use aapsm_matching as matching;
pub use aapsm_render as render;
pub use aapsm_service as service;
pub use aapsm_tjoin as tjoin;

/// The most common imports for flow users.
pub mod prelude {
    pub use aapsm_core::{
        apply_correction, detect_conflicts, detect_hier, plan_correction, run_flow,
        CorrectionOptions, CorrectionPlan, DetectConfig, FlowConfig, FlowResult, GraphKind,
        HierDetectReport,
    };
    pub use aapsm_layout::{
        apply_cuts, check_assignable, extract_phase_geometry, Cell, DesignRules, HierLayout,
        Instance, Layout, Orient, PhaseGeometry, Placement, Rot, SpaceCut,
    };
}
