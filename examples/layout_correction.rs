//! Figure 5 reproduction: one end-to-end space removing multiple AAPSM
//! conflicts at once, on a bus crossed by a strap, with before/after SVGs
//! and a GDSII export of the corrected layout.
//!
//! Run with: `cargo run --example layout_correction`

use aapsm::gds::write_gds;
use aapsm::prelude::*;
use aapsm::render::{render_conflicts, render_layout, RenderOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = DesignRules::default();
    let layout = aapsm::layout::fixtures::strap_under_bus(8, &rules);
    let geom = extract_phase_geometry(&layout, &rules);

    let result = run_flow(&layout, &rules, &FlowConfig::default())?;
    println!(
        "{} conflicts; {} grid line(s); max conflicts on one line: {}",
        result.detection.conflict_count(),
        result.plan.grid_line_count(),
        result.plan.max_conflicts_single_line
    );
    for cut in &result.plan.cuts {
        println!(
            "  insert {} dbu of space along {} at position {}",
            cut.width, cut.axis, cut.position
        );
    }
    println!(
        "area: {} -> {} dbu^2 (+{:.2}%), verified: {}",
        result.correction.area_before,
        result.correction.area_after,
        result.correction.area_increase_pct,
        result.verified
    );

    std::fs::create_dir_all("target/figures")?;
    let opts = RenderOptions::default();
    std::fs::write(
        "target/figures/fig5_before.svg",
        render_conflicts(&layout, &geom, &result.detection.conflicts, &opts),
    )?;
    let fixed_geom = extract_phase_geometry(&result.correction.modified, &rules);
    std::fs::write(
        "target/figures/fig5_after.svg",
        render_layout(
            &result.correction.modified,
            Some(&fixed_geom),
            Some(&result.assignment),
            &opts,
        ),
    )?;
    std::fs::write(
        "target/figures/corrected.gds",
        write_gds(&result.correction.modified, "CORRECTED"),
    )?;
    println!("wrote target/figures/fig5_before.svg, fig5_after.svg, corrected.gds");
    Ok(())
}
