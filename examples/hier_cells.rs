//! Hierarchical detection walkthrough: build a Cell/Instance hierarchy,
//! detect conflicts once per unique cell and reuse the results across
//! placements, then round-trip the hierarchy through GDSII without
//! flattening — and without silently dropping anything.
//!
//! Run with: `cargo run --example hier_cells --release`

use aapsm::core::detect_conflicts;
use aapsm::prelude::*;

fn main() {
    let rules = DesignRules::default();

    // A standard cell cut from the synthetic generator: one row of
    // gates with straps and jogs, conflict-rich on purpose.
    let leaf_layout = aapsm::layout::synth::generate(
        &aapsm::layout::synth::SynthParams {
            rows: 1,
            gates_per_row: 24,
            seed: 7,
            ..Default::default()
        },
        &rules,
    );
    let mut leaf = Cell::new("NAND_ROW");
    leaf.rects = leaf_layout.rects().to_vec();
    let bbox = leaf_layout.stats().bbox.expect("leaf has rects");

    // Place it sixteen times — a 4×4 grid, alternating upright and
    // rotated placements, far enough apart that instances don't
    // interact. (Close placements are fine too: boundary interactions
    // are stitched exactly; they just can't reuse the per-cell solves.)
    let pitch = bbox.width().max(bbox.height()) + 8 * rules.interaction_radius();
    let mut hier = HierLayout::new();
    let leaf_ix = hier.add_cell(leaf);
    let mut top = Cell::new("CHIP");
    for r in 0..4i64 {
        for c in 0..4i64 {
            let orient = if (r + c) % 2 == 0 {
                Orient::IDENTITY
            } else {
                Orient {
                    rotation: Rot::R90,
                    reflect: true,
                }
            };
            let placed = orient.try_apply_rect(&bbox).expect("in range");
            top.instances.push(Instance {
                cell: leaf_ix,
                placement: Placement::new(
                    orient,
                    c * pitch - placed.x_lo(),
                    r * pitch - placed.y_lo(),
                ),
            });
        }
    }
    let top_ix = hier.add_cell(top);
    hier.top = Some(top_ix);

    // Hierarchical detection: each unique (cell, orientation) class is
    // detected once; every other placement answers from the cache.
    let report = detect_hier(&hier, &rules, &DetectConfig::default()).expect("valid hierarchy");
    println!(
        "hierarchical: {} conflicts; {} classes detected, {} of {} components reused ({} misses)",
        report.report.conflict_count(),
        report.hier.cells_detected,
        report.hier.instances_reused,
        report.hier.instances_reused + report.hier.solve_misses,
        report.hier.solve_misses,
    );

    // The answer is bit-identical to flattening first — the hierarchy
    // is a reuse strategy, never a different result.
    let flat = hier.flatten().expect("valid hierarchy");
    let geom = extract_phase_geometry(&flat, &rules);
    let flat_report = detect_conflicts(&geom, &DetectConfig::default());
    assert_eq!(report.report.conflicts, flat_report.conflicts);
    println!(
        "flat ({} polygons): {} conflicts — identical",
        flat.len(),
        flat_report.conflict_count()
    );

    // Round-trip through GDSII *with* the hierarchy: SREF records carry
    // the placements, and nothing is silently dropped — the reader
    // accounts for every record it skips.
    let bytes = aapsm::gds::write_gds_hier(&hier, "HIERDEMO");
    let back = aapsm::gds::read_gds_hier(&bytes).expect("well-formed stream");
    assert_eq!(back.hier, hier);
    assert_eq!(back.total_skipped(), 0);
    println!(
        "GDS round-trip: {} bytes, {} cells, {} records skipped",
        bytes.len(),
        back.hier.cells.len(),
        back.total_skipped(),
    );
}
