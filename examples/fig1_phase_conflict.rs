//! Figure 1 reproduction: a non-localized cyclic sequence of phase
//! shifters that cannot be consistently assigned — shown on the
//! strap-under-bus motif, where one long shifter participates in an odd
//! cycle with every crossed gate.
//!
//! Run with: `cargo run --example fig1_phase_conflict`

use aapsm::core::{detect_conflicts, DetectConfig};
use aapsm::prelude::*;
use aapsm::render::{render_conflicts, RenderOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = DesignRules::default();
    let layout = aapsm::layout::fixtures::strap_under_bus(5, &rules);
    let geom = extract_phase_geometry(&layout, &rules);

    // Show the odd cycle through the independent assignability oracle.
    match check_assignable(&geom) {
        Ok(_) => println!("unexpectedly assignable?"),
        Err(witness) => println!("incorrect phase assignment witnessed: {witness:?}"),
    }

    // The paper's detection pipeline picks the minimal correction set: one
    // merge constraint per crossed gate.
    let report = detect_conflicts(&geom, &DetectConfig::default());
    println!(
        "{} conflicts selected ({} gates crossed by the strap)",
        report.conflict_count(),
        5
    );
    for c in &report.conflicts {
        println!(
            "  {:?} weight {} from {:?}",
            c.constraint, c.weight, c.source
        );
    }

    std::fs::create_dir_all("target/figures")?;
    std::fs::write(
        "target/figures/fig1_conflict_cycle.svg",
        render_conflicts(&layout, &geom, &report.conflicts, &RenderOptions::default()),
    )?;
    println!("wrote target/figures/fig1_conflict_cycle.svg");
    Ok(())
}
