//! Figure 2 / Table 1 comparison as a library walk-through: build both the
//! phase conflict graph and the feature graph for the same layout, compare
//! sizes and crossings, and run all four detection schemes (NP, FG, PCG,
//! GB).
//!
//! Run with: `cargo run --example compare_graphs --release`

use aapsm::core::{
    build_feature_graph, build_phase_conflict_graph, detect_conflicts, detect_greedy, DetectConfig,
    GreedyKind,
};
use aapsm::prelude::*;

fn main() {
    let rules = DesignRules::default();
    let layout = aapsm::layout::synth::generate(
        &aapsm::layout::synth::SynthParams {
            rows: 3,
            gates_per_row: 60,
            strap_frac: 0.6,
            jog_frac: 0.05,
            short_mid_frac: 0.05,
            ..Default::default()
        },
        &rules,
    );
    let geom = extract_phase_geometry(&layout, &rules);
    println!(
        "layout: {} polygons, {} overlaps, {} direct conflicts",
        layout.len(),
        geom.overlaps.len(),
        geom.direct_conflicts.len()
    );

    let pcg = build_phase_conflict_graph(&geom).stats();
    let fg = build_feature_graph(&geom).stats();
    println!("phase conflict graph: {pcg:?}");
    println!("feature graph:        {fg:?}");

    let pcg_report = detect_conflicts(&geom, &DetectConfig::default());
    let fg_report = detect_conflicts(
        &geom,
        &DetectConfig {
            graph: GraphKind::Feature,
            ..DetectConfig::default()
        },
    );
    let gb = detect_greedy(&geom, GraphKind::PhaseConflict, GreedyKind::Spanning);
    let gbp = detect_greedy(&geom, GraphKind::PhaseConflict, GreedyKind::Parity);
    println!(
        "conflicts selected: NP={} PCG={} FG={} GB={} GB+={}",
        pcg_report.stats.bipartize_conflicts + geom.direct_conflicts.len(),
        pcg_report.conflict_count(),
        fg_report.conflict_count(),
        gb.conflict_count(),
        gbp.conflict_count(),
    );
    println!(
        "(paper: the PCG flow consistently selects fewer conflicts than the FG flow,\n\
         and optimal bipartization beats greedy despite the planar-embedding cost)"
    );
}
