//! Resident detection service: open a session, stream detect/correct
//! requests at it, and watch the supervision machinery (warm incremental
//! re-detection, conflict deltas, shared solve cache, graceful drain).
//!
//! Run with: `cargo run --release --example detection_service`

use aapsm::layout::{fixtures, DesignRules};
use aapsm::service::{DetectionService, Request, ResponseKind, ServiceConfig};
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = DesignRules::default();
    let mut config = ServiceConfig::new(rules);
    config.default_deadline = Some(Duration::from_secs(10));
    let service = DetectionService::start(config)?;

    // Two tenants of the same service: the second session's solves are
    // warmed by cache entries the first one seeded.
    let a = service.open_session(fixtures::strap_under_bus(5, &rules))?;
    let b = service.open_session(fixtures::strap_under_bus(5, &rules))?;
    println!(
        "opened {a} and {b} ({} sessions resident)",
        service.session_count()
    );

    // Cold detection on session A: a full pipeline run.
    let first = service.request(a, Request::Detect)?;
    let ResponseKind::Detection {
        conflicts, delta, ..
    } = &first.kind
    else {
        unreachable!("Detect always answers with Detection");
    };
    println!(
        "{a}: cold detect found {} conflict(s) ({} new), degraded: {}",
        conflicts.len(),
        delta.added.len(),
        first.degraded()
    );

    // Correct in place: RunFlow commits the modified layout back into
    // the session, so the next detection sees the fixed geometry.
    let corrected = service.request(a, Request::RunFlow)?;
    let ResponseKind::Flow(flow) = &corrected.kind else {
        unreachable!("RunFlow always answers with Flow");
    };
    println!(
        "{a}: flow fixed {} conflict(s) with {} end-to-end space(s) (+{:.2}% area), verified: {}",
        flow.detection.conflict_count(),
        flow.plan.grid_line_count(),
        flow.correction.area_increase_pct,
        flow.verified
    );

    // Warm re-detection: the delta records every conflict the
    // correction removed, and the committed layout now detects clean.
    let after = service.request(a, Request::Detect)?;
    if let ResponseKind::Detection {
        conflicts, delta, ..
    } = &after.kind
    {
        println!(
            "{a}: re-detect: {} conflict(s) remain, delta -{} / +{}",
            conflicts.len(),
            delta.removed.len(),
            delta.added.len()
        );
    }

    // Session B solves the identical instance: its dual T-joins hit the
    // cache entries session A populated.
    service.request(b, Request::RunFlow)?;
    let cache = service.cache_stats();
    println!(
        "shared solve cache: {} hits / {} misses across both sessions",
        cache.hits, cache.misses
    );

    let metrics = service.metrics();
    println!(
        "metrics: {} admitted, {} completed, {} retries, {} degraded, peak queue depth {}",
        metrics.admitted,
        metrics.completed,
        metrics.retries,
        metrics.degraded,
        metrics.max_queue_depth
    );

    let report = service.shutdown(Duration::from_secs(5));
    println!(
        "shutdown: drained {} in-flight, within deadline: {}",
        report.drained, report.within_deadline
    );
    assert!(report.within_deadline);
    Ok(())
}
