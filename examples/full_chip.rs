//! Full-chip robustness demonstration (the paper's last Table 1 row): run
//! conflict detection on a ~160 K-polygon synthetic design and report
//! throughput. Use `--release`!
//!
//! Run with: `cargo run --example full_chip --release [-- polygons]`

use aapsm::core::{detect_conflicts, DetectConfig};
use aapsm::prelude::*;
use std::time::Instant;

fn main() {
    let target: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(160_000);
    let rules = DesignRules::default();
    let gates_per_row = 1250.min(target / 16).max(10);
    let rows = (target / gates_per_row).max(1);
    let params = aapsm::layout::synth::SynthParams {
        rows,
        gates_per_row,
        seed: 19,
        ..Default::default()
    };

    let t0 = Instant::now();
    let layout = aapsm::layout::synth::generate(&params, &rules);
    println!("generated {} polygons in {:?}", layout.len(), t0.elapsed());

    let t1 = Instant::now();
    let geom = extract_phase_geometry(&layout, &rules);
    println!(
        "extracted {} shifters, {} merge constraints in {:?}",
        geom.shifters.len(),
        geom.overlaps.len(),
        t1.elapsed()
    );

    let t2 = Instant::now();
    let report = detect_conflicts(&geom, &DetectConfig::default());
    println!(
        "detected {} conflicts in {:?} (graph build+planarize {:?}, bipartize {:?})",
        report.conflict_count(),
        t2.elapsed(),
        report.stats.build_time,
        report.stats.bipartize_time
    );
    println!(
        "graph: {} nodes, {} edges, {} crossings, {} planarization removals",
        report.stats.graph_nodes,
        report.stats.graph_edges,
        report.stats.crossings,
        report.stats.planarize_removed
    );
}
