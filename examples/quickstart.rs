//! Quickstart: run the complete bright-field AAPSM flow on a small layout
//! with a known phase conflict, print what was found and how it was fixed,
//! and write before/after SVG figures.
//!
//! Run with: `cargo run --example quickstart`

use aapsm::prelude::*;
use aapsm::render::{render_conflicts, render_layout, RenderOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rules = DesignRules::default();
    // A gate crossing over a routing strap: the strap's top shifter must
    // merge with *both* of the gate's (opposite-phase) shifters — an odd
    // cycle of phase dependencies, so the layout is not phase-assignable.
    let layout = aapsm::layout::fixtures::gate_over_strap(&rules);

    let geom = extract_phase_geometry(&layout, &rules);
    println!(
        "layout: {} polygons, {} critical features, {} shifters, {} merge constraints",
        layout.len(),
        geom.critical_count(),
        geom.shifters.len(),
        geom.overlaps.len()
    );
    println!(
        "phase-assignable before correction: {}",
        check_assignable(&geom).is_ok()
    );

    let result = run_flow(&layout, &rules, &FlowConfig::default())?;
    println!(
        "detected {} conflict(s); corrected with {} end-to-end space(s); area +{:.2}%",
        result.detection.conflict_count(),
        result.plan.grid_line_count(),
        result.correction.area_increase_pct
    );
    for c in &result.detection.conflicts {
        println!("  conflict: {:?} (weight {})", c.constraint, c.weight);
    }
    println!(
        "corrected layout verifies as assignable: {}",
        result.verified
    );

    std::fs::create_dir_all("target/figures")?;
    let opts = RenderOptions::default();
    std::fs::write(
        "target/figures/quickstart_before.svg",
        render_conflicts(&layout, &geom, &result.detection.conflicts, &opts),
    )?;
    let fixed_geom = extract_phase_geometry(&result.correction.modified, &rules);
    std::fs::write(
        "target/figures/quickstart_after.svg",
        render_layout(
            &result.correction.modified,
            Some(&fixed_geom),
            Some(&result.assignment),
            &opts,
        ),
    )?;
    println!("wrote target/figures/quickstart_before.svg and _after.svg");
    Ok(())
}
