use crate::{EdgeId, EmbeddedGraph, NodeId};

/// The faces of a plane straight-line drawing of the alive subgraph.
///
/// Computed by [`trace_faces`] from the *rotation system* induced by the
/// node coordinates (incident edges sorted counter-clockwise). Each
/// directed half-edge belongs to exactly one face; the face boundary walk
/// of a bridge visits it twice (once per direction).
#[derive(Clone, Debug)]
pub struct Faces {
    /// Number of faces traced.
    pub count: usize,
    /// Face id per half-edge (`2*edge + dir`); `u32::MAX` for dead edges.
    pub face_of: Vec<u32>,
    /// Boundary walk length per face (number of half-edges).
    pub face_len: Vec<u32>,
}

impl Faces {
    /// Face on the side of `e` traversed in `u -> v` direction (dir 0).
    pub fn left_face(&self, e: EdgeId) -> u32 {
        self.face_of[2 * e.index()]
    }

    /// Face on the side of `e` traversed in `v -> u` direction (dir 1).
    pub fn right_face(&self, e: EdgeId) -> u32 {
        self.face_of[2 * e.index() + 1]
    }

    /// Whether the face has an odd boundary walk. For a plane graph these
    /// are exactly the T-nodes of the dual T-join formulation of
    /// bipartization: the dual node's degree parity equals the boundary
    /// walk parity.
    pub fn is_odd(&self, face: u32) -> bool {
        self.face_len[face as usize] % 2 == 1
    }

    /// Indices of odd faces.
    pub fn odd_faces(&self) -> Vec<u32> {
        (0..self.count as u32).filter(|&f| self.is_odd(f)).collect()
    }
}

/// Traces the faces of the alive subgraph's straight-line drawing.
///
/// Requires a *plane* drawing: no two alive edges may cross (run
/// [`crate::planarize`] first) and no two nodes may share coordinates (see
/// [`EmbeddedGraph::nudge_duplicate_positions`]).
///
/// # Panics
///
/// Panics if an alive edge has zero length (coincident endpoint
/// coordinates).
pub fn trace_faces(g: &EmbeddedGraph) -> Faces {
    let half_count = 2 * g.edge_count();
    // Rotation system: outgoing half-edges per node, sorted CCW by angle.
    let mut rotations: Vec<Vec<u32>> = vec![Vec::new(); g.node_count()];
    for e in g.alive_edges() {
        let (u, v) = g.endpoints(e);
        rotations[u.index()].push(2 * e.0);
        rotations[v.index()].push(2 * e.0 + 1);
    }
    let source = |h: u32| -> NodeId {
        let e = EdgeId(h / 2);
        let (u, v) = g.endpoints(e);
        if h.is_multiple_of(2) {
            u
        } else {
            v
        }
    };
    let target = |h: u32| -> NodeId {
        let e = EdgeId(h / 2);
        let (u, v) = g.endpoints(e);
        if h.is_multiple_of(2) {
            v
        } else {
            u
        }
    };
    for (ni, rot) in rotations.iter_mut().enumerate() {
        let from = g.pos(NodeId(ni as u32));
        rot.sort_by(|&ha, &hb| {
            let da = g.pos(target(ha)) - from;
            let db = g.pos(target(hb)) - from;
            assert!(
                (da.x, da.y) != (0, 0) && (db.x, db.y) != (0, 0),
                "zero-length edge in plane drawing"
            );
            da.cmp_angle(db).then(ha.cmp(&hb))
        });
    }
    // Position of each outgoing half-edge within its source rotation.
    let mut rot_pos = vec![u32::MAX; half_count];
    for rot in &rotations {
        for (i, &h) in rot.iter().enumerate() {
            rot_pos[h as usize] = i as u32;
        }
    }

    // Face successor of half-edge h = (u -> v): the half-edge after
    // twin(h) = (v -> u) in the CCW rotation at v.
    let next = |h: u32| -> u32 {
        let twin = h ^ 1;
        let v = source(twin);
        let rot = &rotations[v.index()];
        let i = rot_pos[twin as usize] as usize;
        rot[(i + 1) % rot.len()]
    };

    let mut face_of = vec![u32::MAX; half_count];
    let mut face_len = Vec::new();
    let mut count = 0u32;
    for e in g.alive_edges() {
        for dir in 0..2u32 {
            let start = 2 * e.0 + dir;
            if face_of[start as usize] != u32::MAX {
                continue;
            }
            let mut len = 0u32;
            let mut h = start;
            loop {
                debug_assert_eq!(face_of[h as usize], u32::MAX);
                face_of[h as usize] = count;
                len += 1;
                h = next(h);
                if h == start {
                    break;
                }
            }
            face_len.push(len);
            count += 1;
        }
    }
    Faces {
        count: count as usize,
        face_of,
        face_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connected_components;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    /// Per-component Euler formula: V - E + F = 2 for components with
    /// edges. Components are identified by their nodes; a face belongs to
    /// the component of any of its boundary nodes.
    fn check_euler(g: &EmbeddedGraph, faces: &Faces) {
        let comps = connected_components(g);
        let mut v = vec![0usize; comps.count];
        let mut e = vec![0usize; comps.count];
        let mut fset: Vec<std::collections::HashSet<u32>> =
            vec![std::collections::HashSet::new(); comps.count];
        let mut has_edge = vec![false; comps.count];
        for n in g.nodes() {
            v[comps.component(n) as usize] += 1;
        }
        for ed in g.alive_edges() {
            let (u, _) = g.endpoints(ed);
            let c = comps.component(u) as usize;
            e[c] += 1;
            has_edge[c] = true;
            fset[c].insert(faces.left_face(ed));
            fset[c].insert(faces.right_face(ed));
        }
        for c in 0..comps.count {
            if has_edge[c] {
                assert_eq!(
                    v[c] as i64 - e[c] as i64 + fset[c].len() as i64,
                    2,
                    "euler failed for component {c}"
                );
            }
        }
    }

    #[test]
    fn single_edge_one_face_of_length_two() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(10, 0));
        let e = g.add_edge(a, b, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 1);
        assert_eq!(f.face_len, vec![2]);
        assert_eq!(f.left_face(e), f.right_face(e));
        check_euler(&g, &f);
    }

    #[test]
    fn triangle_two_odd_faces() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 2);
        let mut lens = f.face_len.clone();
        lens.sort_unstable();
        assert_eq!(lens, vec![3, 3]);
        assert_eq!(f.odd_faces().len(), 2);
        check_euler(&g, &f);
    }

    #[test]
    fn square_two_even_faces() {
        let mut g = EmbeddedGraph::new();
        let n: Vec<_> = [(0, 0), (100, 0), (100, 100), (0, 100)]
            .iter()
            .map(|&(x, y)| g.add_node(p(x, y)))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        let f = trace_faces(&g);
        assert_eq!(f.count, 2);
        assert!(f.odd_faces().is_empty());
        check_euler(&g, &f);
    }

    #[test]
    fn k4_planar_drawing_has_four_faces() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(200, 0));
        let c = g.add_node(p(100, 160));
        let m = g.add_node(p(100, 60)); // inside the triangle
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        g.add_edge(m, a, 1);
        g.add_edge(m, b, 1);
        g.add_edge(m, c, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 4);
        assert_eq!(f.face_len.iter().sum::<u32>(), 12); // 2E
        assert_eq!(f.odd_faces().len(), 4);
        check_euler(&g, &f);
    }

    #[test]
    fn tree_has_single_face() {
        let mut g = EmbeddedGraph::new();
        let r = g.add_node(p(0, 0));
        let a = g.add_node(p(100, 10));
        let b = g.add_node(p(-100, 20));
        let c = g.add_node(p(10, 100));
        let d = g.add_node(p(110, 110));
        g.add_edge(r, a, 1);
        g.add_edge(r, b, 1);
        g.add_edge(r, c, 1);
        g.add_edge(a, d, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 1);
        assert_eq!(f.face_len, vec![8]); // every edge visited twice
        check_euler(&g, &f);
    }

    #[test]
    fn two_components_each_get_faces() {
        let mut g = EmbeddedGraph::new();
        // Triangle at origin.
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        // Far-away single edge.
        let x = g.add_node(p(10_000, 0));
        let y = g.add_node(p(10_100, 0));
        g.add_edge(x, y, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 3);
        check_euler(&g, &f);
    }

    #[test]
    fn face_walk_lengths_sum_to_twice_edges() {
        use crate::{planarize, PlanarizeOrder};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(4..40);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(3..80) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..20));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            let f = trace_faces(&g);
            assert_eq!(
                f.face_len.iter().sum::<u32>() as usize,
                2 * g.alive_edge_count()
            );
            check_euler(&g, &f);
            // Odd faces come in even numbers per component.
            assert_eq!(f.odd_faces().len() % 2, 0);
        }
    }
}
