use crate::{connected_components, EdgeId, EmbeddedGraph, NodeId};

/// The faces of a plane straight-line drawing of the alive subgraph.
///
/// Computed by [`trace_faces`] from the *rotation system* induced by the
/// node coordinates (incident edges sorted counter-clockwise). Each
/// directed half-edge belongs to exactly one face; the face boundary walk
/// of a bridge visits it twice (once per direction).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Faces {
    /// Number of faces traced.
    pub count: usize,
    /// Face id per half-edge (`2*edge + dir`); `u32::MAX` for dead edges.
    pub face_of: Vec<u32>,
    /// Boundary walk length per face (number of half-edges).
    pub face_len: Vec<u32>,
}

impl Faces {
    /// Face on the side of `e` traversed in `u -> v` direction (dir 0).
    pub fn left_face(&self, e: EdgeId) -> u32 {
        self.face_of[2 * e.index()]
    }

    /// Face on the side of `e` traversed in `v -> u` direction (dir 1).
    pub fn right_face(&self, e: EdgeId) -> u32 {
        self.face_of[2 * e.index() + 1]
    }

    /// Whether the face has an odd boundary walk. For a plane graph these
    /// are exactly the T-nodes of the dual T-join formulation of
    /// bipartization: the dual node's degree parity equals the boundary
    /// walk parity.
    pub fn is_odd(&self, face: u32) -> bool {
        self.face_len[face as usize] % 2 == 1
    }

    /// Indices of odd faces.
    pub fn odd_faces(&self) -> Vec<u32> {
        (0..self.count as u32).filter(|&f| self.is_odd(f)).collect()
    }

    /// Validates this face structure against the graph it was traced from
    /// — the reusable debug assertion behind every face-tracing test
    /// (serial and parallel alike).
    ///
    /// Checks, in order:
    ///
    /// 1. **Half-edge coverage**: every alive half-edge carries a face id
    ///    below [`Faces::count`]; every dead half-edge carries `u32::MAX`.
    /// 2. **Walk lengths**: the number of half-edges assigned to each face
    ///    equals its recorded [`Faces::face_len`] (so walks sum to twice
    ///    the alive edge count).
    /// 3. **Per-component Euler formula**: `V − E + F = 2` for every
    ///    connected component with at least one alive edge.
    /// 4. **Bridge double-visit**: an alive edge has the same face on both
    ///    sides (its boundary walk visits it twice) **iff** it is a bridge
    ///    of the alive subgraph, independently computed by DFS low-link.
    ///
    /// Returns `Err` with a description of the first violation. Intended
    /// for `debug_assert!(faces.validate(&g).is_ok())`-style use and test
    /// suites; it allocates and runs a DFS, so keep it off release hot
    /// paths.
    pub fn validate(&self, g: &EmbeddedGraph) -> Result<(), String> {
        if self.face_of.len() != 2 * g.edge_count() {
            return Err(format!(
                "face_of covers {} half-edges, graph has {}",
                self.face_of.len(),
                2 * g.edge_count()
            ));
        }
        if self.face_len.len() != self.count {
            return Err(format!(
                "face_len has {} entries for {} faces",
                self.face_len.len(),
                self.count
            ));
        }
        let mut assigned = vec![0u64; self.count];
        for e in g.all_edges() {
            for dir in 0..2 {
                let f = self.face_of[2 * e.index() + dir];
                if g.is_alive(e) {
                    if f == u32::MAX {
                        return Err(format!("alive half-edge {e}/{dir} has no face"));
                    }
                    if f as usize >= self.count {
                        return Err(format!("half-edge {e}/{dir} has face {f} >= count"));
                    }
                    assigned[f as usize] += 1;
                } else if f != u32::MAX {
                    return Err(format!("dead half-edge {e}/{dir} assigned to face {f}"));
                }
            }
        }
        for (f, (&n, &len)) in assigned.iter().zip(&self.face_len).enumerate() {
            if n != u64::from(len) {
                return Err(format!("face {f} has {n} half-edges but walk length {len}"));
            }
        }
        // Per-component Euler formula.
        let comps = connected_components(g);
        let mut v = vec![0i64; comps.count];
        let mut e_cnt = vec![0i64; comps.count];
        let mut comp_of_face = vec![u32::MAX; self.count];
        let mut f_cnt = vec![0i64; comps.count];
        for n in g.nodes() {
            v[comps.component(n) as usize] += 1;
        }
        for ed in g.alive_edges() {
            let c = comps.component(g.endpoints(ed).0);
            e_cnt[c as usize] += 1;
            for f in [self.left_face(ed), self.right_face(ed)] {
                let slot = &mut comp_of_face[f as usize];
                if *slot == u32::MAX {
                    *slot = c;
                    f_cnt[c as usize] += 1;
                } else if *slot != c {
                    return Err(format!("face {f} spans components {} and {c}", *slot));
                }
            }
        }
        for c in 0..comps.count {
            if e_cnt[c] > 0 && v[c] - e_cnt[c] + f_cnt[c] != 2 {
                return Err(format!(
                    "component {c} violates Euler: V={} E={} F={}",
                    v[c], e_cnt[c], f_cnt[c]
                ));
            }
        }
        // Bridge double-visit: same-face-both-sides must coincide with
        // bridgeness of the alive subgraph.
        let bridges = alive_bridges(g);
        for ed in g.alive_edges() {
            let double_visit = self.left_face(ed) == self.right_face(ed);
            if double_visit != bridges[ed.index()] {
                return Err(format!(
                    "edge {ed}: double-visit {double_visit} but bridge {}",
                    bridges[ed.index()]
                ));
            }
        }
        Ok(())
    }
}

/// Bridges of the alive subgraph by iterative DFS low-link, indexed by
/// edge id. Parallel edges are never bridges (the duplicate is a back
/// edge), which the parent-*edge* tracking below preserves.
fn alive_bridges(g: &EmbeddedGraph) -> Vec<bool> {
    let n = g.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited, else discovery time + 1
    let mut low = vec![0u32; n];
    let mut bridge = vec![false; g.edge_count()];
    let mut timer = 1u32;
    struct Frame {
        node: NodeId,
        parent_edge: Option<EdgeId>,
        /// Alive incident edges, collected once when the frame is pushed.
        incident: Vec<EdgeId>,
        next: usize,
    }
    let frame_for = |node: NodeId, parent_edge: Option<EdgeId>| Frame {
        node,
        parent_edge,
        incident: g.incident(node).collect(),
        next: 0,
    };
    for root in g.nodes() {
        if disc[root.index()] != 0 {
            continue;
        }
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        let mut stack = vec![frame_for(root, None)];
        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            if frame.next < frame.incident.len() {
                let e = frame.incident[frame.next];
                frame.next += 1;
                if Some(e) == frame.parent_edge {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if disc[v.index()] == 0 {
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push(frame_for(v, Some(e)));
                } else {
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                let parent_edge = frame.parent_edge;
                stack.pop();
                if let Some(pe) = parent_edge {
                    // Invariant, not an error path: a frame with a parent edge
                    // sits above its parent's frame on the DFS stack.
                    #[allow(clippy::expect_used)]
                    let parent = stack.last().expect("parent frame exists").node;
                    low[parent.index()] = low[parent.index()].min(low[u.index()]);
                    if low[u.index()] > disc[parent.index()] {
                        bridge[pe.index()] = true;
                    }
                }
            }
        }
    }
    bridge
}

/// Traces the faces of the alive subgraph's straight-line drawing.
///
/// Requires a *plane* drawing: no two alive edges may cross (run
/// [`crate::planarize`] first) and no two nodes may share coordinates (see
/// [`EmbeddedGraph::nudge_duplicate_positions`]).
///
/// # Panics
///
/// Panics if an alive edge has zero length (coincident endpoint
/// coordinates).
pub fn trace_faces(g: &EmbeddedGraph) -> Faces {
    // One canonical trace algorithm for serial and parallel alike:
    // `embed::trace_edge_list` over the identity partition (all alive
    // edges, global node numbering). Scanning the dense half-edge list in
    // ascending order visits global half-edges in ascending order, so the
    // local face ids *are* the serial face ids — only the half-edge
    // indices need scattering back to the global `2*edge + dir` layout.
    let edges: Vec<EdgeId> = g.alive_edges().collect();
    let node_local: Vec<u32> = (0..g.node_count() as u32).collect();
    let (local_face_of, face_len, _anchors) =
        crate::embed::trace_edge_list(g, &edges, &node_local, g.node_count());
    let mut face_of = vec![u32::MAX; 2 * g.edge_count()];
    for (i, &e) in edges.iter().enumerate() {
        face_of[2 * e.index()] = local_face_of[2 * i];
        face_of[2 * e.index() + 1] = local_face_of[2 * i + 1];
    }
    Faces {
        count: face_len.len(),
        face_of,
        face_len,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    fn check_euler(g: &EmbeddedGraph, faces: &Faces) {
        faces.validate(g).expect("traced faces must validate");
    }

    #[test]
    fn single_edge_one_face_of_length_two() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(10, 0));
        let e = g.add_edge(a, b, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 1);
        assert_eq!(f.face_len, vec![2]);
        assert_eq!(f.left_face(e), f.right_face(e));
        check_euler(&g, &f);
    }

    #[test]
    fn triangle_two_odd_faces() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 2);
        let mut lens = f.face_len.clone();
        lens.sort_unstable();
        assert_eq!(lens, vec![3, 3]);
        assert_eq!(f.odd_faces().len(), 2);
        check_euler(&g, &f);
    }

    #[test]
    fn square_two_even_faces() {
        let mut g = EmbeddedGraph::new();
        let n: Vec<_> = [(0, 0), (100, 0), (100, 100), (0, 100)]
            .iter()
            .map(|&(x, y)| g.add_node(p(x, y)))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        let f = trace_faces(&g);
        assert_eq!(f.count, 2);
        assert!(f.odd_faces().is_empty());
        check_euler(&g, &f);
    }

    #[test]
    fn k4_planar_drawing_has_four_faces() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(200, 0));
        let c = g.add_node(p(100, 160));
        let m = g.add_node(p(100, 60)); // inside the triangle
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        g.add_edge(m, a, 1);
        g.add_edge(m, b, 1);
        g.add_edge(m, c, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 4);
        assert_eq!(f.face_len.iter().sum::<u32>(), 12); // 2E
        assert_eq!(f.odd_faces().len(), 4);
        check_euler(&g, &f);
    }

    #[test]
    fn tree_has_single_face() {
        let mut g = EmbeddedGraph::new();
        let r = g.add_node(p(0, 0));
        let a = g.add_node(p(100, 10));
        let b = g.add_node(p(-100, 20));
        let c = g.add_node(p(10, 100));
        let d = g.add_node(p(110, 110));
        g.add_edge(r, a, 1);
        g.add_edge(r, b, 1);
        g.add_edge(r, c, 1);
        g.add_edge(a, d, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 1);
        assert_eq!(f.face_len, vec![8]); // every edge visited twice
        check_euler(&g, &f);
    }

    #[test]
    fn two_components_each_get_faces() {
        let mut g = EmbeddedGraph::new();
        // Triangle at origin.
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        // Far-away single edge.
        let x = g.add_node(p(10_000, 0));
        let y = g.add_node(p(10_100, 0));
        g.add_edge(x, y, 1);
        let f = trace_faces(&g);
        assert_eq!(f.count, 3);
        check_euler(&g, &f);
    }

    #[test]
    fn face_walk_lengths_sum_to_twice_edges() {
        use crate::{planarize, PlanarizeOrder};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        for _ in 0..20 {
            let n = rng.gen_range(4..40);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(3..80) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..20));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            let f = trace_faces(&g);
            assert_eq!(
                f.face_len.iter().sum::<u32>() as usize,
                2 * g.alive_edge_count()
            );
            check_euler(&g, &f);
            // Odd faces come in even numbers per component.
            assert_eq!(f.odd_faces().len() % 2, 0);
        }
    }
}
