use crate::{EdgeId, EmbeddedGraph, ParityUnionFind, UnionFind};

/// Result of a greedy forest / subgraph construction: the kept edges and
/// the leftover (deleted) edges.
#[derive(Clone, Debug)]
pub struct SpanningForest {
    /// Edges kept in the forest / bipartite subgraph.
    pub kept: Vec<EdgeId>,
    /// Edges that could not be added; in the greedy-bipartization baselines
    /// these are the AAPSM conflicts selected for correction.
    pub leftover: Vec<EdgeId>,
}

impl SpanningForest {
    /// Total weight of the leftover edges.
    pub fn leftover_weight(&self, g: &EmbeddedGraph) -> i64 {
        g.total_weight(self.leftover.iter().copied())
    }
}

/// Sorts alive edges by decreasing weight (ties by ascending id, so results
/// are deterministic).
fn edges_by_weight_desc(g: &EmbeddedGraph) -> Vec<EdgeId> {
    let mut edges: Vec<EdgeId> = g.alive_edges().collect();
    edges.sort_by_key(|&e| (std::cmp::Reverse(g.weight(e)), e.index()));
    edges
}

/// The literal greedy-bipartization baseline of the paper (column GB of
/// Table 1): build a maximum-weight spanning forest by greedily taking the
/// heaviest edge that does not close *any* cycle; every leftover edge is
/// declared an AAPSM conflict.
///
/// Note this over-deletes: chords closing even cycles do not hurt
/// bipartiteness but are still deleted. See [`greedy_parity_subgraph`] for
/// the parity-aware variant.
///
/// ```
/// use aapsm_geom::Point;
/// use aapsm_graph::{max_weight_spanning_forest, EmbeddedGraph};
/// let mut g = EmbeddedGraph::new();
/// let a = g.add_node(Point::new(0, 0));
/// let b = g.add_node(Point::new(10, 0));
/// let c = g.add_node(Point::new(5, 8));
/// g.add_edge(a, b, 5);
/// g.add_edge(b, c, 4);
/// let cheap = g.add_edge(c, a, 1);
/// let forest = max_weight_spanning_forest(&g);
/// assert_eq!(forest.leftover, vec![cheap]);
/// ```
pub fn max_weight_spanning_forest(g: &EmbeddedGraph) -> SpanningForest {
    let mut uf = UnionFind::new(g.node_count());
    let mut kept = Vec::new();
    let mut leftover = Vec::new();
    for e in edges_by_weight_desc(g) {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index()) {
            kept.push(e);
        } else {
            leftover.push(e);
        }
    }
    SpanningForest { kept, leftover }
}

/// Parity-aware greedy bipartization: greedily keep the heaviest edges that
/// leave the kept subgraph bipartite (via a parity union-find); leftover
/// edges are exactly the edges that would close an odd cycle at the moment
/// they are considered.
///
/// This is the natural strengthening of the paper's GB baseline and is
/// reported alongside it.
pub fn greedy_parity_subgraph(g: &EmbeddedGraph) -> SpanningForest {
    let mut uf = ParityUnionFind::new(g.node_count());
    let mut kept = Vec::new();
    let mut leftover = Vec::new();
    for e in edges_by_weight_desc(g) {
        let (u, v) = g.endpoints(e);
        match uf.union(u.index(), v.index(), 1) {
            Ok(_) => kept.push(e),
            Err(_) => leftover.push(e),
        }
    }
    SpanningForest { kept, leftover }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::two_color_excluding;
    use aapsm_geom::Point;

    fn cycle(n: usize, weights: &[i64]) -> EmbeddedGraph {
        let mut g = EmbeddedGraph::new();
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                g.add_node(Point::new(
                    (1000.0 * a.cos()) as i64,
                    (1000.0 * a.sin()) as i64,
                ))
            })
            .collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], weights[i]);
        }
        g
    }

    #[test]
    fn spanning_forest_drops_min_weight_cycle_edge() {
        let g = cycle(4, &[10, 20, 30, 5]);
        let f = max_weight_spanning_forest(&g);
        assert_eq!(f.leftover.len(), 1);
        assert_eq!(g.weight(f.leftover[0]), 5);
    }

    #[test]
    fn parity_greedy_keeps_even_cycles() {
        let g = cycle(4, &[10, 20, 30, 5]);
        let f = greedy_parity_subgraph(&g);
        assert!(f.leftover.is_empty(), "even cycle needs no deletion");
    }

    #[test]
    fn parity_greedy_breaks_odd_cycles_cheaply() {
        let g = cycle(5, &[10, 20, 30, 5, 8]);
        let f = greedy_parity_subgraph(&g);
        assert_eq!(f.leftover.len(), 1);
        assert_eq!(g.weight(f.leftover[0]), 5);
    }

    #[test]
    fn parity_greedy_result_is_bipartite() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..40 {
            let n = rng.gen_range(3..30);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| g.add_node(Point::new(i as i64, (i as i64 * 13) % 31)))
                .collect();
            for _ in 0..rng.gen_range(1..4 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..100));
                }
            }
            let f = greedy_parity_subgraph(&g);
            assert!(two_color_excluding(&g, &f.leftover).is_ok());
            // GB (spanning forest) always deletes at least as many edges.
            let gb = max_weight_spanning_forest(&g);
            assert!(gb.leftover.len() >= f.leftover.len());
        }
    }

    #[test]
    fn deterministic_under_ties() {
        let g = cycle(5, &[7, 7, 7, 7, 7]);
        let a = greedy_parity_subgraph(&g);
        let b = greedy_parity_subgraph(&g);
        assert_eq!(a.leftover, b.leftover);
    }
}
