//! Parallel face tracing and dual construction.
//!
//! [`crate::trace_faces`] and [`crate::build_dual`] are inherently
//! per-component computations: the rotation system of a node involves only
//! its own incident half-edges, a face boundary walk never leaves its
//! connected component, and every dual edge connects two faces of one
//! component. This module exploits that to run the whole planar-embedding
//! back end — the largest serial fraction of bipartization once extraction
//! and solving are parallel — on `std::thread::scope` workers:
//!
//! * [`component_embeddings`] partitions the alive edges by connected
//!   component and traces each component's faces independently, with dense
//!   per-component renumbering of nodes, half-edges and faces;
//! * [`trace_faces_par`] deterministically merges those local traces back
//!   into the exact global [`Faces`] layout;
//! * [`build_dual_par`] classifies alive edges into dual edges and bridges
//!   on contiguous chunks merged in chunk order.
//!
//! # Bit-identity guarantee
//!
//! Both parallel entry points are **bit-identical to their serial
//! counterparts at every parallelism degree** (property-tested in
//! `crates/graph/tests/proptest_graph.rs` across parallelism 0/1/2/4 and
//! asserted on every `bench_json` run). The merge rule that makes face ids
//! line up: the serial trace scans half-edges in ascending id order and
//! opens a new face at the first unvisited half-edge, so serial face ids
//! are exactly the faces sorted by their minimal half-edge id (the face's
//! *anchor*). A per-component trace scanning its own half-edges in
//! ascending global order discovers the same faces at the same anchors in
//! ascending order, so sorting all components' faces by anchor reproduces
//! the serial id assignment — no renumbering fixpoint, no tie-breaking
//! heuristics.

use crate::{
    build_dual, connected_components, trace_faces, DualEdge, DualGraph, EdgeId, EmbeddedGraph,
    Faces,
};
use aapsm_fault::{Budget, BudgetExceeded, FaultSite, Stage};
use aapsm_geom::{par_map_indexed, resolve_workers};

/// The faces of one connected component's plane drawing, in dense local
/// numbering.
///
/// Local half-edge `2*i + dir` is direction `dir` of `edges[i]` (dir 0 =
/// insertion order `u -> v`), mirroring the global `2*edge + dir` layout.
/// Local face ids are assigned in trace order — ascending
/// [`ComponentEmbedding::anchors`] — which equals the restriction of the
/// global serial face order to this component.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentEmbedding {
    /// Global ids of this component's alive edges, ascending.
    pub edges: Vec<EdgeId>,
    /// Local face id per local half-edge.
    pub face_of: Vec<u32>,
    /// Boundary walk length per local face, in trace order.
    pub face_len: Vec<u32>,
    /// Global id of the minimal half-edge on each local face's boundary,
    /// strictly ascending — the key of the deterministic global merge.
    pub anchors: Vec<u32>,
}

impl ComponentEmbedding {
    /// Number of faces of this component.
    pub fn face_count(&self) -> usize {
        self.face_len.len()
    }

    /// Whether any face has an odd boundary walk (⇔ the component's dual
    /// T-join has a non-empty T-set ⇔ the component is not bipartite).
    pub fn has_odd_face(&self) -> bool {
        self.face_len.iter().any(|&l| l % 2 == 1)
    }
}

/// Minimum global half-edge count before auto parallelism spawns trace
/// workers.
///
/// Below this the whole trace is a few hundred microseconds and thread
/// spawn/join would dominate. Applies only to `parallelism = 0`; an
/// explicit worker count is honored. Purely a scheduling decision —
/// results are bit-identical either way.
const SERIAL_FALLBACK_HALF_EDGES: usize = 4096;

/// Resolves the parallelism knob against the component count and the
/// adaptive serial fallback.
fn trace_workers(g: &EmbeddedGraph, parallelism: usize, components: usize) -> usize {
    if parallelism == 0 && 2 * g.edge_count() < SERIAL_FALLBACK_HALF_EDGES {
        1
    } else {
        resolve_workers(parallelism).min(components).max(1)
    }
}

/// Traces the faces of every edge-bearing connected component of the alive
/// subgraph on up to `parallelism` workers (`0` = auto, `1` = inline).
///
/// Components are returned in [`connected_components`] order with
/// edge-free components skipped; each entry's trace is bit-identical to
/// what the serial [`crate::trace_faces`] computes for that component (see
/// the module docs for the merge rule). Same planarity contract and
/// zero-length-edge panics as the serial trace.
pub fn component_embeddings(g: &EmbeddedGraph, parallelism: usize) -> Vec<ComponentEmbedding> {
    match component_embeddings_budgeted(g, parallelism, &Budget::unlimited()) {
        Ok(embeddings) => embeddings,
        Err(_) => unreachable!("unlimited budget never trips"),
    }
}

/// [`component_embeddings`] under a [`Budget`]: each component's trace
/// charges [`Stage::Embed`] with its half-edge count before running, and
/// the whole call aborts with the first trip.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when the deadline, embed work cap, or
/// cancellation token trips; partial traces are discarded.
pub fn component_embeddings_budgeted(
    g: &EmbeddedGraph,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<ComponentEmbedding>, BudgetExceeded> {
    let partition = ComponentPartition::of(g);
    trace_partition(g, &partition, parallelism, budget)
}

/// The serial O(V + E) preamble of per-component tracing: dense node
/// renumbering plus the edge-bearing components' ascending edge lists.
/// The expensive part of tracing (the angular rotation sorts) happens on
/// the workers afterwards.
struct ComponentPartition {
    /// `(component id, its alive edges ascending)`, edge-bearing
    /// components only, in [`connected_components`] order.
    work: Vec<(usize, Vec<EdgeId>)>,
    /// Index of each node within its component.
    node_local: Vec<u32>,
    /// Node count per component (all components, edge-bearing or not).
    node_counts: Vec<u32>,
}

impl ComponentPartition {
    fn of(g: &EmbeddedGraph) -> ComponentPartition {
        let comps = connected_components(g);
        let mut node_local = vec![0u32; g.node_count()];
        let mut node_counts = vec![0u32; comps.count];
        for n in g.nodes() {
            let c = comps.component(n) as usize;
            node_local[n.index()] = node_counts[c];
            node_counts[c] += 1;
        }
        let work: Vec<(usize, Vec<EdgeId>)> = comps
            .edges_by_component(g)
            .into_iter()
            .enumerate()
            .filter(|(_, edges)| !edges.is_empty())
            .collect();
        ComponentPartition {
            work,
            node_local,
            node_counts,
        }
    }
}

fn trace_partition(
    g: &EmbeddedGraph,
    partition: &ComponentPartition,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<ComponentEmbedding>, BudgetExceeded> {
    let workers = trace_workers(g, parallelism, partition.work.len());
    par_map_indexed(
        partition.work.len(),
        workers,
        || (),
        |(), k| {
            let (c, edges) = &partition.work[k];
            aapsm_fault::hit(FaultSite::EmbedComponent);
            budget.charge(Stage::Embed, 2 * edges.len() as u64)?;
            Ok(trace_component(
                g,
                edges,
                &partition.node_local,
                partition.node_counts[*c] as usize,
            ))
        },
    )
    .into_iter()
    .collect()
}

/// [`trace_edge_list`] packaged as a [`ComponentEmbedding`] (clones the
/// edge list — callers that don't need it use [`trace_edge_list`]
/// directly).
fn trace_component(
    g: &EmbeddedGraph,
    edges: &[EdgeId],
    node_local: &[u32],
    node_count: usize,
) -> ComponentEmbedding {
    let (face_of, face_len, anchors) = trace_edge_list(g, edges, node_local, node_count);
    ComponentEmbedding {
        edges: edges.to_vec(),
        face_of,
        face_len,
        anchors,
    }
}

/// The canonical face-tracing algorithm, over an arbitrary ascending
/// alive-edge list with a dense node renumbering: builds the CCW rotation
/// system, walks face successors, and assigns face ids in ascending
/// first-half-edge order. Returns `(face_of, face_len, anchors)` in the
/// [`ComponentEmbedding`] layout. [`crate::trace_faces`] runs it once
/// over the identity partition; the parallel path runs it per component
/// — one implementation, so the serial/parallel bit-identity contract
/// cannot drift.
pub(crate) fn trace_edge_list(
    g: &EmbeddedGraph,
    edges: &[EdgeId],
    node_local: &[u32],
    node_count: usize,
) -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let half_count = 2 * edges.len();
    // Local rotation system. Local half-edge order at a node is monotone
    // in global half-edge order (edge ids ascend with local edge index),
    // so the local id tie-break below equals the serial global tie-break.
    let mut rotations: Vec<Vec<u32>> = vec![Vec::new(); node_count];
    for (i, &e) in edges.iter().enumerate() {
        let (u, v) = g.endpoints(e);
        rotations[node_local[u.index()] as usize].push(2 * i as u32);
        rotations[node_local[v.index()] as usize].push(2 * i as u32 + 1);
    }
    let target_pos = |h: u32| {
        let e = edges[(h / 2) as usize];
        let (u, v) = g.endpoints(e);
        if h.is_multiple_of(2) {
            g.pos(v)
        } else {
            g.pos(u)
        }
    };
    let source_pos = |h: u32| target_pos(h ^ 1);
    for rot in rotations.iter_mut() {
        if rot.len() < 2 {
            continue;
        }
        let from = source_pos(rot[0]);
        rot.sort_by(|&ha, &hb| {
            let da = target_pos(ha) - from;
            let db = target_pos(hb) - from;
            assert!(
                (da.x, da.y) != (0, 0) && (db.x, db.y) != (0, 0),
                "zero-length edge in plane drawing"
            );
            da.cmp_angle(db).then(ha.cmp(&hb))
        });
    }
    let mut rot_pos = vec![u32::MAX; half_count];
    for rot in &rotations {
        for (i, &h) in rot.iter().enumerate() {
            rot_pos[h as usize] = i as u32;
        }
    }
    let local_node_of_half_target = |h: u32| -> usize {
        let e = edges[(h / 2) as usize];
        let (u, v) = g.endpoints(e);
        let t = if h.is_multiple_of(2) { v } else { u };
        node_local[t.index()] as usize
    };
    // Face successor of h = (u -> v): the half-edge after twin(h) in the
    // CCW rotation at v.
    let next = |h: u32| -> u32 {
        let twin = h ^ 1;
        let rot = &rotations[local_node_of_half_target(h)];
        let i = rot_pos[twin as usize] as usize;
        rot[(i + 1) % rot.len()]
    };

    let mut face_of = vec![u32::MAX; half_count];
    let mut face_len = Vec::new();
    let mut anchors = Vec::new();
    let mut count = 0u32;
    for start in 0..half_count as u32 {
        if face_of[start as usize] != u32::MAX {
            continue;
        }
        let mut len = 0u32;
        let mut h = start;
        loop {
            debug_assert_eq!(face_of[h as usize], u32::MAX);
            face_of[h as usize] = count;
            len += 1;
            h = next(h);
            if h == start {
                break;
            }
        }
        face_len.push(len);
        // The global anchor: scanning local half-edges in ascending order
        // visits global half-edges in ascending order, so `start` is the
        // face's minimal half-edge both locally and globally.
        anchors.push(2 * edges[(start / 2) as usize].0 + (start & 1));
        count += 1;
    }
    (face_of, face_len, anchors)
}

/// [`crate::trace_faces`] on up to `parallelism` workers (`0` = auto,
/// `1` = inline).
///
/// Traces each connected component independently via
/// [`component_embeddings`] and merges the local traces by sorting faces
/// on their anchor half-edge — **bit-identical to the serial trace**
/// (`count`, `face_of`, `face_len`) at every parallelism degree; see the
/// module docs for why the merge is exact.
///
/// When the knob resolves to a single worker (explicit `1`, one
/// available CPU, or a graph under the adaptive threshold) the partition
/// and merge would be pure overhead, so the call runs the serial trace
/// directly — a scheduling decision only, covered by the same bit-identity
/// property tests.
pub fn trace_faces_par(g: &EmbeddedGraph, parallelism: usize) -> Faces {
    let single = resolve_workers(parallelism) <= 1
        || (parallelism == 0 && 2 * g.edge_count() < SERIAL_FALLBACK_HALF_EDGES);
    if single {
        return trace_faces(g);
    }
    let partition = ComponentPartition::of(g);
    if partition.work.len() <= 1 {
        // One edge-bearing component: nothing to parallelize, and the
        // local renumbering + merge would only add overhead.
        return trace_faces(g);
    }
    let embeddings = match trace_partition(g, &partition, parallelism, &Budget::unlimited()) {
        Ok(embeddings) => embeddings,
        Err(_) => unreachable!("unlimited budget never trips"),
    };
    merge_embeddings(g, &embeddings)
}

/// Merges per-component traces into the global serial [`Faces`] layout.
fn merge_embeddings(g: &EmbeddedGraph, embeddings: &[ComponentEmbedding]) -> Faces {
    let total_faces: usize = embeddings.iter().map(|e| e.face_count()).sum();
    // Global face id = rank of the anchor half-edge across all components
    // (the serial trace order; anchors are globally unique).
    let mut order: Vec<(u32, u32, u32)> = Vec::with_capacity(total_faces);
    for (k, emb) in embeddings.iter().enumerate() {
        for (lf, &a) in emb.anchors.iter().enumerate() {
            order.push((a, k as u32, lf as u32));
        }
    }
    order.sort_unstable();
    let mut global_of: Vec<Vec<u32>> = embeddings
        .iter()
        .map(|e| vec![0u32; e.face_count()])
        .collect();
    let mut face_len = Vec::with_capacity(total_faces);
    for (gid, &(_, k, lf)) in order.iter().enumerate() {
        global_of[k as usize][lf as usize] = gid as u32;
        face_len.push(embeddings[k as usize].face_len[lf as usize]);
    }
    let mut face_of = vec![u32::MAX; 2 * g.edge_count()];
    for (k, emb) in embeddings.iter().enumerate() {
        let map = &global_of[k];
        for (i, &e) in emb.edges.iter().enumerate() {
            face_of[2 * e.index()] = map[emb.face_of[2 * i] as usize];
            face_of[2 * e.index() + 1] = map[emb.face_of[2 * i + 1] as usize];
        }
    }
    Faces {
        count: total_faces,
        face_of,
        face_len,
    }
}

/// [`crate::build_dual`] on up to `parallelism` workers (`0` = auto,
/// `1` = inline).
///
/// Alive edges are classified into dual edges and bridges on contiguous
/// chunks whose outputs are concatenated in chunk order, so the result is
/// **bit-identical to the serial build** (`edges`, `bridges`, `odd_face`)
/// at every parallelism degree.
pub fn build_dual_par(g: &EmbeddedGraph, faces: &Faces, parallelism: usize) -> DualGraph {
    let resolved = resolve_workers(parallelism);
    if resolved <= 1 || (parallelism == 0 && 2 * g.edge_count() < SERIAL_FALLBACK_HALF_EDGES) {
        return build_dual(g, faces);
    }
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    let workers = resolved.min(alive.len()).max(1);
    if workers <= 1 {
        return build_dual(g, faces);
    }
    // Even chunk split; any chunking yields the same concatenation.
    let chunk = alive.len().div_ceil(workers);
    let chunks = alive.len().div_ceil(chunk);
    let parts: Vec<(Vec<DualEdge>, Vec<EdgeId>)> = par_map_indexed(
        chunks,
        workers,
        || (),
        |(), k| {
            let lo = k * chunk;
            let hi = (lo + chunk).min(alive.len());
            let mut edges = Vec::new();
            let mut bridges = Vec::new();
            for &e in &alive[lo..hi] {
                let a = faces.left_face(e);
                let b = faces.right_face(e);
                if a == b {
                    bridges.push(e);
                } else {
                    edges.push(DualEdge {
                        primal: e,
                        a,
                        b,
                        weight: g.weight(e),
                    });
                }
            }
            (edges, bridges)
        },
    );
    let mut edges = Vec::new();
    let mut bridges = Vec::new();
    for (e, b) in parts {
        edges.extend(e);
        bridges.extend(b);
    }
    let odd_face = (0..faces.count as u32).map(|f| faces.is_odd(f)).collect();
    DualGraph {
        face_count: faces.count,
        edges,
        bridges,
        odd_face,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{planarize, trace_faces, PlanarizeOrder};
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    fn assert_identical(g: &EmbeddedGraph, label: &str) {
        let serial = trace_faces(g);
        serial.validate(g).expect("serial trace valid");
        let dual_serial = build_dual(g, &serial);
        for parallelism in [0usize, 1, 2, 4] {
            let par = trace_faces_par(g, parallelism);
            assert_eq!(par, serial, "{label}: trace diverged at p={parallelism}");
            let dual_par = build_dual_par(g, &par, parallelism);
            assert_eq!(
                dual_par, dual_serial,
                "{label}: dual diverged at p={parallelism}"
            );
        }
    }

    /// Interleaved components: edge ids alternate between two far-apart
    /// triangles, so serial face ids interleave components — the merge
    /// must reproduce that order, not a per-component blocking.
    #[test]
    fn interleaved_components_merge_to_serial_order() {
        let mut g = EmbeddedGraph::new();
        let a0 = g.add_node(p(0, 0));
        let b0 = g.add_node(p(100, 0));
        let c0 = g.add_node(p(50, 80));
        let a1 = g.add_node(p(10_000, 0));
        let b1 = g.add_node(p(10_100, 0));
        let c1 = g.add_node(p(10_050, 80));
        g.add_edge(a0, b0, 1);
        g.add_edge(a1, b1, 1);
        g.add_edge(b0, c0, 1);
        g.add_edge(b1, c1, 1);
        g.add_edge(c0, a0, 1);
        g.add_edge(c1, a1, 1);
        assert_identical(&g, "interleaved triangles");
        let f = trace_faces_par(&g, 4);
        assert_eq!(f.count, 4);
    }

    #[test]
    fn bridge_heavy_star_and_empty_graph() {
        let mut g = EmbeddedGraph::new();
        let hub = g.add_node(p(0, 0));
        for i in 0..7i64 {
            let leaf = g.add_node(p(100 + 13 * i, 17 * i - 40));
            g.add_edge(hub, leaf, 1 + i);
        }
        assert_identical(&g, "star");
        assert_identical(&EmbeddedGraph::new(), "empty");
    }

    #[test]
    fn parallel_edges_and_dead_edges() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        let dead = g.add_edge(a, c, 3);
        g.add_edge(b, c, 4);
        g.kill_edge(dead);
        assert_identical(&g, "parallel + dead");
        let f = trace_faces_par(&g, 2);
        assert_eq!(f.face_of[2 * dead.index()], u32::MAX);
        assert_eq!(f.face_of[2 * dead.index() + 1], u32::MAX);
    }

    #[test]
    fn component_embeddings_skip_isolated_nodes() {
        let mut g = EmbeddedGraph::new();
        g.add_node(p(-500, -500)); // isolated
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        g.add_node(p(500, 500)); // isolated
        let embs = component_embeddings(&g, 2);
        assert_eq!(embs.len(), 1);
        assert_eq!(embs[0].face_count(), 2);
        assert!(embs[0].has_odd_face());
        assert!(embs[0].anchors.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn budgeted_embeddings_trip_or_match_exactly() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let starved = aapsm_fault::BudgetSpec {
            embed_ticks: Some(1),
            ..aapsm_fault::BudgetSpec::default()
        }
        .build();
        let err = component_embeddings_budgeted(&g, 1, &starved)
            .expect_err("1 tick cannot pay for 6 half-edges");
        assert_eq!(err.stage, Stage::Embed);
        let ok = component_embeddings_budgeted(&g, 2, &Budget::unlimited()).expect("unlimited");
        assert_eq!(ok, component_embeddings(&g, 2));
    }

    #[test]
    fn random_planarized_graphs_are_bit_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for trial in 0..15 {
            let n = rng.gen_range(4..40);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(3..90) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..20));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            assert_identical(&g, &format!("random trial {trial}"));
        }
    }
}
