use crate::{EdgeId, EmbeddedGraph};
use aapsm_geom::{DirtyRegions, GridIndex, SegmentSoA};

/// The set of crossing edge pairs of a straight-line drawing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingSet {
    /// Unordered crossing pairs, each reported once with the smaller edge
    /// id first.
    pub pairs: Vec<(EdgeId, EdgeId)>,
}

/// Crossing adjacency in CSR (offsets + data) form: one flat `data` array
/// of partners with a per-edge offset table, instead of one heap `Vec` per
/// edge. Built once per planarization and read on its hot removal loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingAdjacency {
    offsets: Vec<u32>,
    data: Vec<EdgeId>,
}

impl CrossingAdjacency {
    /// The edges crossing `e`.
    pub fn neighbors(&self, e: EdgeId) -> &[EdgeId] {
        let (lo, hi) = (self.offsets[e.index()], self.offsets[e.index() + 1]);
        &self.data[lo as usize..hi as usize]
    }

    /// Number of edges the table covers.
    pub fn edge_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

impl CrossingSet {
    /// Whether the drawing is already planar (no crossings).
    pub fn is_planar(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of crossings each edge participates in, indexed by edge id.
    pub fn counts(&self, edge_count: usize) -> Vec<u32> {
        let mut counts = vec![0u32; edge_count];
        for &(a, b) in &self.pairs {
            counts[a.index()] += 1;
            counts[b.index()] += 1;
        }
        counts
    }

    /// Adjacency: for each edge, the edges it crosses, as a flat CSR table
    /// (two counting passes, no per-edge heap allocation).
    pub fn partners(&self, edge_count: usize) -> CrossingAdjacency {
        let mut offsets = vec![0u32; edge_count + 1];
        for &(a, b) in &self.pairs {
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut data = vec![EdgeId(0); self.pairs.len() * 2];
        for &(a, b) in &self.pairs {
            data[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            data[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        CrossingAdjacency { offsets, data }
    }
}

/// Finds all crossing pairs among alive edges using a spatial grid with an
/// automatically chosen cell size (the median edge bounding-box extent).
///
/// Two edges *cross* when their segments intersect anywhere beyond a shared
/// endpoint — see [`aapsm_geom::Segment::crosses`]. Edges meeting only at a
/// common node do not cross; parallel edges (coincident segments) and
/// collinear containments *do*, so that the planarized drawing is a proper
/// plane graph with a well-defined rotation system.
pub fn crossing_pairs(g: &EmbeddedGraph) -> CrossingSet {
    crossing_pairs_par(g, 1)
}

/// [`crossing_pairs`] with an explicit parallelism degree (`0` = one
/// worker per CPU, `1` = serial, `k` = at most `k` workers).
///
/// The sweep shards the spatial grid's occupied cells into contiguous
/// bands ([`GridIndex::par_collect_pairs`]); workers test segment pairs in
/// disjoint bands and per-band buffers are merged in band order, so the
/// result is **bit-identical to serial** at every degree.
pub fn crossing_pairs_par(g: &EmbeddedGraph, parallelism: usize) -> CrossingSet {
    let mut extents: Vec<i64> = g
        .alive_edges()
        .map(|e| {
            let (x_lo, y_lo, x_hi, y_hi) = g.segment(e).bbox_ranges();
            (x_hi - x_lo).max(y_hi - y_lo).max(1)
        })
        .collect();
    if extents.is_empty() {
        return CrossingSet::default();
    }
    let mid = extents.len() / 2;
    extents.select_nth_unstable(mid);
    let cell = extents[mid].max(16);
    crossing_pairs_with_cell_par(g, cell, parallelism)
}

/// Finds all crossing pairs among alive edges with an explicit grid cell
/// size (dbu).
///
/// # Panics
///
/// Panics if `cell <= 0`.
pub fn crossing_pairs_with_cell(g: &EmbeddedGraph, cell: i64) -> CrossingSet {
    crossing_pairs_with_cell_par(g, cell, 1)
}

/// [`crossing_pairs_with_cell`] with an explicit parallelism degree; see
/// [`crossing_pairs_par`] for the sharding and determinism contract.
///
/// # Panics
///
/// Panics if `cell <= 0`.
pub fn crossing_pairs_with_cell_par(
    g: &EmbeddedGraph,
    cell: i64,
    parallelism: usize,
) -> CrossingSet {
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    // The sweep probes far more candidate pairs than it reports, so the
    // crossing test reads endpoint coordinates from a packed SoA buffer
    // (bit-identical to [`aapsm_geom::Segment::crosses`]) instead of
    // chasing node positions through the graph per probe.
    let mut segs = SegmentSoA::with_capacity(alive.len());
    let mut grid = GridIndex::new(cell);
    for (i, &e) in alive.iter().enumerate() {
        segs.push(&g.segment(e));
        let (x_lo, y_lo, x_hi, y_hi) = g.segment(e).bbox_ranges();
        grid.insert(i as u32, (x_lo, y_lo, x_hi, y_hi));
    }
    let segs = &segs;
    let mut pairs = grid.par_collect_pairs(parallelism, |ia, ib| {
        // Edges sharing a graph node share that segment endpoint, which
        // [`Segment::crosses`] already discounts; edges that *additionally*
        // overlap (parallel edges, collinear containment) are genuine
        // planarity violations and must be reported.
        if segs.crosses(ia as usize, ib as usize) {
            let (ea, eb) = (alive[ia as usize], alive[ib as usize]);
            let (lo, hi) = if ea.index() < eb.index() {
                (ea, eb)
            } else {
                (eb, ea)
            };
            Some((lo, hi))
        } else {
            None
        }
    });
    // The grid streams each candidate pair exactly once, so no dedup is
    // needed; sort for the canonical edge-id order the callers rely on.
    pairs.sort_unstable();
    CrossingSet { pairs }
}

/// Incrementally recomputes the crossing set of `new_g` from the crossing
/// set of `old_g` after an end-to-end-cut batch summarized by `dirty`.
///
/// `old_of_new` maps each new edge id to the old edge encoding the same
/// constraint (`None` for constraints created by the cuts); both graphs
/// must be fully alive (pre-planarization). The result is **bit-identical**
/// to [`crossing_pairs`] on `new_g`.
///
/// # How it stays exact
///
/// Each new edge is classified once:
///
/// * **Translated** — it has an old counterpart and its segment is the
///   old segment plus one rigid vector `δ` (endpoint-wise, in stored
///   endpoint order).
/// * **Region-consistent** — additionally, `δ` is exactly the
///   [`DirtyRegions::rigid_shift_of`] of its old bounding box. Such
///   edges strictly avoid every inserted slab after the cuts, and two of
///   them with *different* `δ` end up separated by a slab (the
///   slab-separation invariant), so they cannot cross.
/// * **Suspect** — everything else: unmapped, non-translated, or
///   translated by a delta its region does not explain (e.g. the flank
///   edge of a stretched feature, whose midpoint-derived endpoints move
///   by half a cut width).
///
/// A crossing pair with no suspect member consists of two
/// region-consistent edges; if their deltas differ they cannot cross, and
/// if the deltas agree, translation by the common vector preserves
/// crossing *and* non-crossing exactly — so the pair crosses in `new_g`
/// iff its pre-image crossed in `old_g`. Those pairs are copied from the
/// old set. Every pair with a suspect member is re-tested geometrically:
/// suspects are queried against a fresh spatial grid over the new edges
/// (an edge pair that crosses has intersecting bounding boxes, so the
/// query finds every partner). The two sources are disjoint by
/// construction, and their union is sorted into the canonical edge-id
/// order.
pub fn crossing_pairs_incremental(
    new_g: &EmbeddedGraph,
    old_g: &EmbeddedGraph,
    old_set: &CrossingSet,
    old_of_new: &[Option<EdgeId>],
    dirty: &DirtyRegions,
) -> CrossingSet {
    let edge_count = new_g.edge_count();
    debug_assert_eq!(old_of_new.len(), edge_count);

    // ---- Classify every new edge. ----
    let mut new_of_old: Vec<Option<EdgeId>> = vec![None; old_g.edge_count()];
    let mut delta: Vec<Option<(i64, i64)>> = vec![None; edge_count];
    let mut suspect = vec![true; edge_count];
    for e in new_g.all_edges() {
        let Some(old_e) = old_of_new[e.index()] else {
            continue;
        };
        new_of_old[old_e.index()] = Some(e);
        let (nu, nv) = new_g.endpoints(e);
        let (ou, ov) = old_g.endpoints(old_e);
        let (np0, np1) = (new_g.pos(nu), new_g.pos(nv));
        let (op0, op1) = (old_g.pos(ou), old_g.pos(ov));
        let d0 = (np0.x - op0.x, np0.y - op0.y);
        let d1 = (np1.x - op1.x, np1.y - op1.y);
        if d0 != d1 {
            continue; // not a rigid translation
        }
        delta[e.index()] = Some(d0);
        let old_bbox = old_g.segment(old_e).bbox_ranges();
        suspect[e.index()] = dirty.rigid_shift_of(old_bbox) != Some(d0);
    }

    // ---- Keep old crossings between non-suspect same-delta edges. ----
    let mut pairs: Vec<(EdgeId, EdgeId)> = Vec::new();
    for &(oa, ob) in &old_set.pairs {
        let (Some(na), Some(nb)) = (new_of_old[oa.index()], new_of_old[ob.index()]) else {
            continue;
        };
        if suspect[na.index()] || suspect[nb.index()] {
            continue; // re-tested below
        }
        if delta[na.index()] != delta[nb.index()] {
            continue; // slab-separated: provably no longer crossing
        }
        let (lo, hi) = if na.index() < nb.index() {
            (na, nb)
        } else {
            (nb, na)
        };
        pairs.push((lo, hi));
    }

    // ---- Re-test every pair with a suspect member. ----
    let suspects: Vec<EdgeId> = new_g.all_edges().filter(|e| suspect[e.index()]).collect();
    // Adaptive bail-out: once most edges are suspect (a whole-chip cut
    // batch), per-suspect queries cost more than the streaming
    // owner-cell sweep. Purely a scheduling decision — both paths are
    // bit-identical.
    if suspects.len() * 2 > edge_count.max(1) {
        return crossing_pairs(new_g);
    }
    if !suspects.is_empty() {
        let mut extents: Vec<i64> = new_g
            .all_edges()
            .map(|e| {
                let (x_lo, y_lo, x_hi, y_hi) = new_g.segment(e).bbox_ranges();
                (x_hi - x_lo).max(y_hi - y_lo).max(1)
            })
            .collect();
        let mid = extents.len() / 2;
        extents.select_nth_unstable(mid);
        let cell = extents[mid].max(16);
        let mut grid = GridIndex::new(cell);
        // Packed endpoints indexed by edge id — same locality win as the
        // from-scratch sweep (every edge is alive here by contract, so
        // ids are dense).
        let mut segs = SegmentSoA::with_capacity(edge_count);
        for e in new_g.all_edges() {
            segs.push(&new_g.segment(e));
            grid.insert(e.0, new_g.segment(e).bbox_ranges());
        }
        let mut scratch = aapsm_geom::QueryScratch::default();
        let mut found = Vec::new();
        for &s in &suspects {
            grid.query_into(grid.bbox(s.0), &mut scratch, &mut found);
            for &partner in &found {
                let p = EdgeId(partner);
                if p == s || (suspect[p.index()] && p.index() < s.index()) {
                    continue;
                }
                if segs.crosses(s.index(), p.index()) {
                    let (lo, hi) = if s.index() < p.index() {
                        (s, p)
                    } else {
                        (p, s)
                    };
                    pairs.push((lo, hi));
                }
            }
        }
    }

    pairs.sort_unstable();
    CrossingSet { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn detects_x_crossing() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let cs = crossing_pairs(&g);
        assert_eq!(cs.pairs, vec![(e1, e2)]);
        assert_eq!(cs.counts(g.edge_count()), vec![1, 1]);
    }

    #[test]
    fn shared_node_edges_do_not_cross() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 100));
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 1);
        g.add_edge(b, c, 1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn dead_edges_ignored() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        g.add_edge(c, d, 1);
        g.kill_edge(e1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn matches_brute_force_on_random_drawings() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..20 {
            let n = rng.gen_range(4..25);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            // nudge duplicates to keep drawings simple
            let mut gg = g.clone();
            for _ in 0..rng.gen_range(3..40) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && gg.pos(nodes[u]) != gg.pos(nodes[v]) {
                    gg.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let fast = crossing_pairs(&gg).pairs;
            // Brute force.
            let alive: Vec<EdgeId> = gg.alive_edges().collect();
            let mut brute = Vec::new();
            for i in 0..alive.len() {
                for j in i + 1..alive.len() {
                    let (ea, eb) = (alive[i], alive[j]);
                    if gg.segment(ea).crosses(&gg.segment(eb)) {
                        brute.push((ea, eb));
                    }
                }
            }
            brute.sort_unstable();
            assert_eq!(fast, brute);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let n = rng.gen_range(6..30);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-600..600), rng.gen_range(-600..600))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(5..50) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let serial = crossing_pairs(&g);
            for parallelism in [0usize, 2, 4, 8] {
                assert_eq!(crossing_pairs_par(&g, parallelism), serial);
            }
        }
    }

    #[test]
    fn csr_partners_match_pairs() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let mid_l = g.add_node(p(-50, 50));
        let mid_r = g.add_node(p(150, 50));
        let e3 = g.add_edge(mid_l, mid_r, 1); // horizontal through both
        let cs = crossing_pairs(&g);
        let adj = cs.partners(g.edge_count());
        assert_eq!(adj.edge_count(), 3);
        let mut n1: Vec<_> = adj.neighbors(e1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![e2, e3]);
        let mut n3: Vec<_> = adj.neighbors(e3).to_vec();
        n3.sort_unstable();
        assert_eq!(n3, vec![e1, e2]);
        // Degree bookkeeping agrees with counts().
        let counts = cs.counts(g.edge_count());
        for e in [e1, e2, e3] {
            assert_eq!(adj.neighbors(e).len(), counts[e.index()] as usize);
        }
    }

    #[test]
    fn incremental_sweep_matches_scratch_after_synthetic_cut() {
        use aapsm_geom::{Axis, CutSpec, DirtyRegions};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(131);
        for trial in 0..20 {
            // Old graph: random nodes/edges.
            let n = rng.gen_range(8..30);
            let mut old_g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| p(rng.gen_range(-600..600), rng.gen_range(-600..600)))
                .map(|pt| old_g.add_node(pt))
                .collect();
            for _ in 0..rng.gen_range(6..40) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && old_g.pos(nodes[u]) != old_g.pos(nodes[v]) {
                    old_g.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let old_set = crossing_pairs(&old_g);

            // "Cut": shift every node at x >= position by width; nodes
            // exactly on the line move too (their edges straddle and are
            // caught as non-region-consistent or dirty).
            let position = rng.gen_range(-200..200);
            let width = rng.gen_range(1..300);
            let dirty = DirtyRegions::from_cuts([CutSpec {
                axis: Axis::X,
                position,
                width,
            }]);
            let mut new_g = EmbeddedGraph::new();
            for node in old_g.nodes() {
                let q = old_g.pos(node);
                let x = if q.x >= position { q.x + width } else { q.x };
                new_g.add_node(p(x, q.y));
            }
            // Drop a couple of edges (vanished constraints), keep the
            // rest mapped 1:1, and add one brand-new edge.
            let mut old_of_new: Vec<Option<EdgeId>> = Vec::new();
            for e in old_g.all_edges() {
                if e.index() % 7 == trial % 7 {
                    continue; // vanished
                }
                let (u, v) = old_g.endpoints(e);
                new_g.add_edge(u, v, 1);
                old_of_new.push(Some(e));
            }
            let a = rng.gen_range(0..n);
            let b = (a + 1 + rng.gen_range(0..n - 1)) % n;
            if a != b && new_g.pos(nodes[a]) != new_g.pos(nodes[b]) {
                new_g.add_edge(nodes[a], nodes[b], 1);
                old_of_new.push(None);
            }

            let scratch = crossing_pairs(&new_g);
            let incremental =
                crossing_pairs_incremental(&new_g, &old_g, &old_set, &old_of_new, &dirty);
            assert_eq!(incremental, scratch, "trial {trial}");
        }
    }

    #[test]
    fn collinear_chain_is_planar() {
        // The PCG overlap-node pattern: a -- o -- b on one straight line.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let o = g.add_node(p(50, 0));
        let b = g.add_node(p(100, 0));
        g.add_edge(a, o, 1);
        g.add_edge(o, b, 1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn edge_through_foreign_vertex_counts_as_crossing() {
        // A long edge passing exactly through another edge's endpoint
        // breaks planarity of the drawing and must be reported.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 0));
        let d = g.add_node(p(50, 50));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let cs = crossing_pairs(&g);
        assert_eq!(cs.pairs, vec![(e1, e2)]);
    }
}
