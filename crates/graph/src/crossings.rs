use crate::{EdgeId, EmbeddedGraph};
use aapsm_geom::GridIndex;

/// The set of crossing edge pairs of a straight-line drawing.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingSet {
    /// Unordered crossing pairs, each reported once with the smaller edge
    /// id first.
    pub pairs: Vec<(EdgeId, EdgeId)>,
}

/// Crossing adjacency in CSR (offsets + data) form: one flat `data` array
/// of partners with a per-edge offset table, instead of one heap `Vec` per
/// edge. Built once per planarization and read on its hot removal loop.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrossingAdjacency {
    offsets: Vec<u32>,
    data: Vec<EdgeId>,
}

impl CrossingAdjacency {
    /// The edges crossing `e`.
    pub fn neighbors(&self, e: EdgeId) -> &[EdgeId] {
        let (lo, hi) = (self.offsets[e.index()], self.offsets[e.index() + 1]);
        &self.data[lo as usize..hi as usize]
    }

    /// Number of edges the table covers.
    pub fn edge_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

impl CrossingSet {
    /// Whether the drawing is already planar (no crossings).
    pub fn is_planar(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Number of crossings each edge participates in, indexed by edge id.
    pub fn counts(&self, edge_count: usize) -> Vec<u32> {
        let mut counts = vec![0u32; edge_count];
        for &(a, b) in &self.pairs {
            counts[a.index()] += 1;
            counts[b.index()] += 1;
        }
        counts
    }

    /// Adjacency: for each edge, the edges it crosses, as a flat CSR table
    /// (two counting passes, no per-edge heap allocation).
    pub fn partners(&self, edge_count: usize) -> CrossingAdjacency {
        let mut offsets = vec![0u32; edge_count + 1];
        for &(a, b) in &self.pairs {
            offsets[a.index() + 1] += 1;
            offsets[b.index() + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursor = offsets.clone();
        let mut data = vec![EdgeId(0); self.pairs.len() * 2];
        for &(a, b) in &self.pairs {
            data[cursor[a.index()] as usize] = b;
            cursor[a.index()] += 1;
            data[cursor[b.index()] as usize] = a;
            cursor[b.index()] += 1;
        }
        CrossingAdjacency { offsets, data }
    }
}

/// Finds all crossing pairs among alive edges using a spatial grid with an
/// automatically chosen cell size (the median edge bounding-box extent).
///
/// Two edges *cross* when their segments intersect anywhere beyond a shared
/// endpoint — see [`aapsm_geom::Segment::crosses`]. Edges meeting only at a
/// common node do not cross; parallel edges (coincident segments) and
/// collinear containments *do*, so that the planarized drawing is a proper
/// plane graph with a well-defined rotation system.
pub fn crossing_pairs(g: &EmbeddedGraph) -> CrossingSet {
    crossing_pairs_par(g, 1)
}

/// [`crossing_pairs`] with an explicit parallelism degree (`0` = one
/// worker per CPU, `1` = serial, `k` = at most `k` workers).
///
/// The sweep shards the spatial grid's occupied cells into contiguous
/// bands ([`GridIndex::par_collect_pairs`]); workers test segment pairs in
/// disjoint bands and per-band buffers are merged in band order, so the
/// result is **bit-identical to serial** at every degree.
pub fn crossing_pairs_par(g: &EmbeddedGraph, parallelism: usize) -> CrossingSet {
    let mut extents: Vec<i64> = g
        .alive_edges()
        .map(|e| {
            let (x_lo, y_lo, x_hi, y_hi) = g.segment(e).bbox_ranges();
            (x_hi - x_lo).max(y_hi - y_lo).max(1)
        })
        .collect();
    if extents.is_empty() {
        return CrossingSet::default();
    }
    let mid = extents.len() / 2;
    extents.select_nth_unstable(mid);
    let cell = extents[mid].max(16);
    crossing_pairs_with_cell_par(g, cell, parallelism)
}

/// Finds all crossing pairs among alive edges with an explicit grid cell
/// size (dbu).
///
/// # Panics
///
/// Panics if `cell <= 0`.
pub fn crossing_pairs_with_cell(g: &EmbeddedGraph, cell: i64) -> CrossingSet {
    crossing_pairs_with_cell_par(g, cell, 1)
}

/// [`crossing_pairs_with_cell`] with an explicit parallelism degree; see
/// [`crossing_pairs_par`] for the sharding and determinism contract.
///
/// # Panics
///
/// Panics if `cell <= 0`.
pub fn crossing_pairs_with_cell_par(
    g: &EmbeddedGraph,
    cell: i64,
    parallelism: usize,
) -> CrossingSet {
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    let mut grid = GridIndex::new(cell);
    for (i, &e) in alive.iter().enumerate() {
        let (x_lo, y_lo, x_hi, y_hi) = g.segment(e).bbox_ranges();
        grid.insert(i as u32, (x_lo, y_lo, x_hi, y_hi));
    }
    let mut pairs = grid.par_collect_pairs(parallelism, |ia, ib| {
        let (ea, eb) = (alive[ia as usize], alive[ib as usize]);
        // Edges sharing a graph node share that segment endpoint, which
        // [`Segment::crosses`] already discounts; edges that *additionally*
        // overlap (parallel edges, collinear containment) are genuine
        // planarity violations and must be reported.
        if g.segment(ea).crosses(&g.segment(eb)) {
            let (lo, hi) = if ea.index() < eb.index() {
                (ea, eb)
            } else {
                (eb, ea)
            };
            Some((lo, hi))
        } else {
            None
        }
    });
    // The grid streams each candidate pair exactly once, so no dedup is
    // needed; sort for the canonical edge-id order the callers rely on.
    pairs.sort_unstable();
    CrossingSet { pairs }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn detects_x_crossing() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let cs = crossing_pairs(&g);
        assert_eq!(cs.pairs, vec![(e1, e2)]);
        assert_eq!(cs.counts(g.edge_count()), vec![1, 1]);
    }

    #[test]
    fn shared_node_edges_do_not_cross() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 100));
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 1);
        g.add_edge(b, c, 1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn dead_edges_ignored() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        g.add_edge(c, d, 1);
        g.kill_edge(e1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn matches_brute_force_on_random_drawings() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(19);
        for _ in 0..20 {
            let n = rng.gen_range(4..25);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            // nudge duplicates to keep drawings simple
            let mut gg = g.clone();
            for _ in 0..rng.gen_range(3..40) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v && gg.pos(nodes[u]) != gg.pos(nodes[v]) {
                    gg.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let fast = crossing_pairs(&gg).pairs;
            // Brute force.
            let alive: Vec<EdgeId> = gg.alive_edges().collect();
            let mut brute = Vec::new();
            for i in 0..alive.len() {
                for j in i + 1..alive.len() {
                    let (ea, eb) = (alive[i], alive[j]);
                    if gg.segment(ea).crosses(&gg.segment(eb)) {
                        brute.push((ea, eb));
                    }
                }
            }
            brute.sort_unstable();
            assert_eq!(fast, brute);
        }
    }

    #[test]
    fn parallel_sweep_is_bit_identical() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for _ in 0..10 {
            let n = rng.gen_range(6..30);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-600..600), rng.gen_range(-600..600))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(5..50) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let serial = crossing_pairs(&g);
            for parallelism in [0usize, 2, 4, 8] {
                assert_eq!(crossing_pairs_par(&g, parallelism), serial);
            }
        }
    }

    #[test]
    fn csr_partners_match_pairs() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let mid_l = g.add_node(p(-50, 50));
        let mid_r = g.add_node(p(150, 50));
        let e3 = g.add_edge(mid_l, mid_r, 1); // horizontal through both
        let cs = crossing_pairs(&g);
        let adj = cs.partners(g.edge_count());
        assert_eq!(adj.edge_count(), 3);
        let mut n1: Vec<_> = adj.neighbors(e1).to_vec();
        n1.sort_unstable();
        assert_eq!(n1, vec![e2, e3]);
        let mut n3: Vec<_> = adj.neighbors(e3).to_vec();
        n3.sort_unstable();
        assert_eq!(n3, vec![e1, e2]);
        // Degree bookkeeping agrees with counts().
        let counts = cs.counts(g.edge_count());
        for e in [e1, e2, e3] {
            assert_eq!(adj.neighbors(e).len(), counts[e.index()] as usize);
        }
    }

    #[test]
    fn collinear_chain_is_planar() {
        // The PCG overlap-node pattern: a -- o -- b on one straight line.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let o = g.add_node(p(50, 0));
        let b = g.add_node(p(100, 0));
        g.add_edge(a, o, 1);
        g.add_edge(o, b, 1);
        assert!(crossing_pairs(&g).is_planar());
    }

    #[test]
    fn edge_through_foreign_vertex_counts_as_crossing() {
        // A long edge passing exactly through another edge's endpoint
        // breaks planarity of the drawing and must be reported.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 0));
        let d = g.add_node(p(50, 50));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(c, d, 1);
        let cs = crossing_pairs(&g);
        assert_eq!(cs.pairs, vec![(e1, e2)]);
    }
}
