/// A classic disjoint-set forest with path halving and union by size.
///
/// ```
/// use aapsm_graph::UnionFind;
/// let mut uf = UnionFind::new(4);
/// assert!(uf.union(0, 1));
/// assert!(!uf.union(1, 0)); // already joined
/// assert_eq!(uf.find(0), uf.find(1));
/// assert_ne!(uf.find(0), uf.find(2));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            size: vec![1; n],
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] as usize != x {
            self.parent[x] = self.parent[self.parent[x] as usize];
            x = self.parent[x] as usize;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns whether a merge happened.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra as u32;
        self.size[ra] += self.size[rb];
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }
}

/// A disjoint-set forest that also tracks the parity (same / opposite) of
/// each element relative to its set representative.
///
/// This is the engine behind both the independent phase-assignability
/// checker and the greedy parity-aware bipartization baseline: a *same
/// phase* constraint is a union with relation `0`, an *opposite phase*
/// constraint a union with relation `1`; a constraint that contradicts the
/// recorded parity certifies an odd cycle.
///
/// ```
/// use aapsm_graph::ParityUnionFind;
/// let mut uf = ParityUnionFind::new(3);
/// assert!(uf.union(0, 1, 1).is_ok()); // 0 and 1 differ
/// assert!(uf.union(1, 2, 1).is_ok()); // 1 and 2 differ
/// assert!(uf.union(0, 2, 1).is_err()); // 0 and 2 must be equal: odd cycle
/// assert_eq!(uf.relation(0, 2), Some(0));
/// ```
#[derive(Clone, Debug)]
pub struct ParityUnionFind {
    parent: Vec<u32>,
    /// Parity of the element relative to its parent.
    parity: Vec<u8>,
    size: Vec<u32>,
}

/// Error returned by [`ParityUnionFind::union`] when a constraint
/// contradicts the already-recorded relation between the two elements.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParityConflict {
    /// The relation that was already implied between the two elements.
    pub existing_relation: u8,
}

impl std::fmt::Display for ParityConflict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parity constraint contradicts existing relation {}",
            self.existing_relation
        )
    }
}

impl std::error::Error for ParityConflict {}

impl ParityUnionFind {
    /// Creates `n` singleton sets with parity 0.
    pub fn new(n: usize) -> Self {
        ParityUnionFind {
            parent: (0..n as u32).collect(),
            parity: vec![0; n],
            size: vec![1; n],
        }
    }

    /// Returns `(representative, parity of x relative to it)`.
    pub fn find(&mut self, x: usize) -> (usize, u8) {
        if self.parent[x] as usize == x {
            return (x, 0);
        }
        let (root, par_parent) = self.find(self.parent[x] as usize);
        self.parent[x] = root as u32;
        self.parity[x] ^= par_parent;
        (root, self.parity[x])
    }

    /// Records the constraint `parity(a) XOR parity(b) == relation`
    /// (`0` = same, `1` = opposite).
    ///
    /// Returns `Ok(true)` if two sets were merged, `Ok(false)` if the
    /// constraint was already implied.
    ///
    /// # Errors
    ///
    /// Returns [`ParityConflict`] when the constraint contradicts the
    /// relation already implied between `a` and `b` (i.e. it would close an
    /// odd cycle in the constraint graph).
    pub fn union(&mut self, a: usize, b: usize, relation: u8) -> Result<bool, ParityConflict> {
        debug_assert!(relation <= 1);
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            let existing = pa ^ pb;
            return if existing == relation {
                Ok(false)
            } else {
                Err(ParityConflict {
                    existing_relation: existing,
                })
            };
        }
        let (big, small, par_small) = if self.size[ra] >= self.size[rb] {
            // parity of rb relative to ra: pa ^ pb ^ relation
            (ra, rb, pa ^ pb ^ relation)
        } else {
            (rb, ra, pa ^ pb ^ relation)
        };
        self.parent[small] = big as u32;
        self.parity[small] = par_small;
        self.size[big] += self.size[small];
        Ok(true)
    }

    /// The implied relation between `a` and `b` (`0` same, `1` opposite),
    /// or `None` if they are in different sets.
    pub fn relation(&mut self, a: usize, b: usize) -> Option<u8> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        (ra == rb).then_some(pa ^ pb)
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        let (ra, _) = self.find(a);
        let (rb, _) = self.find(b);
        ra == rb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(2, 3));
        assert!(uf.union(0, 3));
        assert!(uf.same(1, 2));
        assert!(!uf.same(1, 4));
    }

    #[test]
    fn parity_even_cycle_is_fine() {
        let mut uf = ParityUnionFind::new(4);
        uf.union(0, 1, 1).unwrap();
        uf.union(1, 2, 1).unwrap();
        uf.union(2, 3, 1).unwrap();
        // 0-3 differ by 1^1^1 = 1; closing with relation 1 is consistent.
        assert_eq!(uf.union(3, 0, 1), Ok(false));
        assert_eq!(uf.relation(0, 2), Some(0));
    }

    #[test]
    fn parity_odd_cycle_detected() {
        let mut uf = ParityUnionFind::new(3);
        uf.union(0, 1, 1).unwrap();
        uf.union(1, 2, 1).unwrap();
        let err = uf.union(2, 0, 1).unwrap_err();
        assert_eq!(err.existing_relation, 0);
    }

    #[test]
    fn mixed_relations() {
        let mut uf = ParityUnionFind::new(5);
        uf.union(0, 1, 0).unwrap(); // same
        uf.union(1, 2, 1).unwrap(); // diff
        uf.union(3, 4, 0).unwrap();
        uf.union(2, 3, 0).unwrap();
        assert_eq!(uf.relation(0, 4), Some(1));
        assert_eq!(uf.relation(0, 1), Some(0));
        assert!(uf.union(0, 4, 0).is_err());
    }

    #[test]
    fn deep_chain_path_compression() {
        let n = 10_000;
        let mut uf = ParityUnionFind::new(n);
        for i in 0..n - 1 {
            uf.union(i, i + 1, 1).unwrap();
        }
        assert_eq!(uf.relation(0, n - 1), Some(((n - 1) % 2) as u8));
    }
}
