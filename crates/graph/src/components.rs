use crate::{EdgeId, EmbeddedGraph, NodeId};

/// Partition of a graph's alive subgraph into connected components.
#[derive(Clone, Debug)]
pub struct Components {
    /// Component index per node (nodes of dead-only incidence form
    /// singleton components too).
    pub comp_of: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Component of a node.
    pub fn component(&self, n: NodeId) -> u32 {
        self.comp_of[n.index()]
    }

    /// Groups node ids by component.
    pub fn nodes_by_component(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.count];
        for (i, &c) in self.comp_of.iter().enumerate() {
            out[c as usize].push(NodeId(i as u32));
        }
        out
    }

    /// Groups alive edge ids by the component of their endpoints.
    pub fn edges_by_component(&self, g: &EmbeddedGraph) -> Vec<Vec<EdgeId>> {
        let mut out = vec![Vec::new(); self.count];
        for e in g.alive_edges() {
            let (u, _) = g.endpoints(e);
            out[self.comp_of[u.index()] as usize].push(e);
        }
        out
    }
}

/// Computes connected components of the alive subgraph.
///
/// ```
/// use aapsm_geom::Point;
/// use aapsm_graph::{connected_components, EmbeddedGraph};
/// let mut g = EmbeddedGraph::new();
/// let a = g.add_node(Point::new(0, 0));
/// let b = g.add_node(Point::new(1, 0));
/// let _c = g.add_node(Point::new(9, 9));
/// g.add_edge(a, b, 1);
/// assert_eq!(connected_components(&g).count, 2);
/// ```
pub fn connected_components(g: &EmbeddedGraph) -> Components {
    let n = g.node_count();
    let mut comp_of = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack = Vec::new();
    for start in g.nodes() {
        if comp_of[start.index()] != u32::MAX {
            continue;
        }
        comp_of[start.index()] = count;
        stack.push(start);
        while let Some(u) = stack.pop() {
            for e in g.incident(u) {
                let v = g.other_endpoint(e, u);
                if comp_of[v.index()] == u32::MAX {
                    comp_of[v.index()] = count;
                    stack.push(v);
                }
            }
        }
        count += 1;
    }
    Components {
        comp_of,
        count: count as usize,
    }
}

/// Computes the biconnected components (blocks) of the alive subgraph,
/// returned as edge sets. Every alive edge belongs to exactly one block.
///
/// Odd cycles live entirely inside one block, so bipartization decomposes
/// exactly over blocks; running the optimal bipartization per block instead
/// of per connected component is the decomposition ablation of the bench
/// suite.
pub fn biconnected_components(g: &EmbeddedGraph) -> Vec<Vec<EdgeId>> {
    let n = g.node_count();
    let mut disc = vec![0u32; n]; // 0 = unvisited; otherwise discovery time + 1
    let mut low = vec![0u32; n];
    let mut blocks: Vec<Vec<EdgeId>> = Vec::new();
    let mut edge_stack: Vec<EdgeId> = Vec::new();
    let mut timer = 1u32;

    // Iterative DFS frame: (node, parent edge, iterator index into adj).
    struct Frame {
        node: NodeId,
        parent_edge: Option<EdgeId>,
        next: usize,
    }

    let mut on_stack_edge = vec![false; g.edge_count()];

    for root in g.nodes() {
        if disc[root.index()] != 0 {
            continue;
        }
        disc[root.index()] = timer;
        low[root.index()] = timer;
        timer += 1;
        let mut stack = vec![Frame {
            node: root,
            parent_edge: None,
            next: 0,
        }];
        while let Some(frame) = stack.last_mut() {
            let u = frame.node;
            // Gather incident alive edges lazily by index.
            let incident: Vec<EdgeId> = g.incident(u).collect();
            if frame.next < incident.len() {
                let e = incident[frame.next];
                frame.next += 1;
                if Some(e) == frame.parent_edge {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if disc[v.index()] == 0 {
                    // Tree edge: descend.
                    edge_stack.push(e);
                    on_stack_edge[e.index()] = true;
                    disc[v.index()] = timer;
                    low[v.index()] = timer;
                    timer += 1;
                    stack.push(Frame {
                        node: v,
                        parent_edge: Some(e),
                        next: 0,
                    });
                } else if disc[v.index()] < disc[u.index()] && !on_stack_edge[e.index()] {
                    // Back edge to an ancestor.
                    edge_stack.push(e);
                    on_stack_edge[e.index()] = true;
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                } else if disc[v.index()] < disc[u.index()] {
                    low[u.index()] = low[u.index()].min(disc[v.index()]);
                }
            } else {
                // Done with u; propagate low to parent and maybe pop a block.
                let parent_edge = frame.parent_edge;
                stack.pop();
                if let Some(pe) = parent_edge {
                    // Invariant, not an error path: a frame with a parent edge
                    // sits above its parent's frame on the DFS stack.
                    #[allow(clippy::expect_used)]
                    let parent = stack.last().expect("parent frame exists").node;
                    low[parent.index()] = low[parent.index()].min(low[u.index()]);
                    if low[u.index()] >= disc[parent.index()] {
                        // parent is an articulation point (or root): pop a block.
                        let mut block = Vec::new();
                        while let Some(&top) = edge_stack.last() {
                            edge_stack.pop();
                            block.push(top);
                            if top == pe {
                                break;
                            }
                        }
                        blocks.push(block);
                    }
                }
            }
        }
    }
    debug_assert!(edge_stack.is_empty());
    blocks
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn node(g: &mut EmbeddedGraph, x: i64, y: i64) -> NodeId {
        g.add_node(Point::new(x, y))
    }

    #[test]
    fn components_respect_dead_edges() {
        let mut g = EmbeddedGraph::new();
        let a = node(&mut g, 0, 0);
        let b = node(&mut g, 1, 0);
        let e = g.add_edge(a, b, 1);
        assert_eq!(connected_components(&g).count, 1);
        g.kill_edge(e);
        assert_eq!(connected_components(&g).count, 2);
    }

    #[test]
    fn edges_by_component_partitions() {
        let mut g = EmbeddedGraph::new();
        let a = node(&mut g, 0, 0);
        let b = node(&mut g, 1, 0);
        let c = node(&mut g, 100, 0);
        let d = node(&mut g, 101, 0);
        g.add_edge(a, b, 1);
        g.add_edge(c, d, 1);
        let comps = connected_components(&g);
        let per = comps.edges_by_component(&g);
        assert_eq!(per.iter().map(Vec::len).sum::<usize>(), 2);
        assert!(per.iter().all(|v| v.len() == 1));
    }

    /// Two triangles sharing one articulation node: 2 blocks.
    #[test]
    fn bowtie_has_two_blocks() {
        let mut g = EmbeddedGraph::new();
        let m = node(&mut g, 0, 0);
        let a = node(&mut g, -10, 5);
        let b = node(&mut g, -10, -5);
        let c = node(&mut g, 10, 5);
        let d = node(&mut g, 10, -5);
        g.add_edge(m, a, 1);
        g.add_edge(a, b, 1);
        g.add_edge(b, m, 1);
        g.add_edge(m, c, 1);
        g.add_edge(c, d, 1);
        g.add_edge(d, m, 1);
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 2);
        assert!(blocks.iter().all(|b| b.len() == 3));
    }

    #[test]
    fn path_blocks_are_single_edges() {
        let mut g = EmbeddedGraph::new();
        let nodes: Vec<_> = (0..5).map(|i| node(&mut g, i * 10, 0)).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 1);
        }
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 4);
        assert!(blocks.iter().all(|b| b.len() == 1));
    }

    #[test]
    fn cycle_is_one_block() {
        let mut g = EmbeddedGraph::new();
        let nodes: Vec<_> = (0..6).map(|i| node(&mut g, i * 10, (i % 2) * 10)).collect();
        for i in 0..6 {
            g.add_edge(nodes[i], nodes[(i + 1) % 6], 1);
        }
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 6);
    }

    #[test]
    fn every_alive_edge_in_exactly_one_block() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..30 {
            let n = rng.gen_range(2..25);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| node(&mut g, i as i64 * 3, (i as i64 * 7) % 13))
                .collect();
            for _ in 0..rng.gen_range(1..3 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], 1);
                }
            }
            let blocks = biconnected_components(&g);
            let mut seen = vec![0usize; g.edge_count()];
            for b in &blocks {
                for e in b {
                    seen[e.index()] += 1;
                }
            }
            for e in g.alive_edges() {
                assert_eq!(seen[e.index()], 1, "edge {e} in {} blocks", seen[e.index()]);
            }
        }
    }

    #[test]
    fn parallel_edges_form_a_block() {
        let mut g = EmbeddedGraph::new();
        let a = node(&mut g, 0, 0);
        let b = node(&mut g, 10, 0);
        g.add_edge(a, b, 1);
        g.add_edge(a, b, 2);
        let blocks = biconnected_components(&g);
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len(), 2);
    }
}
