//! Embedded multigraphs and the graph machinery of phase-conflict analysis.
//!
//! The bright-field AAPSM flow of Chiang–Kahng–Sinha–Xu–Zelikovsky (DATE
//! 2005) reduces layout phase assignment to questions about a graph drawn in
//! the plane with straight-line edges:
//!
//! * is it **bipartite** (⇔ the layout is phase-assignable)?
//! * which minimum-weight edge set makes it bipartite (**bipartization**)?
//! * which edges must be deleted so the straight-line drawing has no
//!   crossings (**planarization**)?
//! * what are the **faces** of the resulting plane graph and its geometric
//!   **dual** (on which the bipartization becomes a T-join problem)?
//!
//! This crate provides all of that on a single concrete representation,
//! [`EmbeddedGraph`] — a weighted multigraph whose nodes carry exact integer
//! coordinates ([`aapsm_geom::Point`]).
//!
//! # Example
//!
//! ```
//! use aapsm_geom::Point;
//! use aapsm_graph::EmbeddedGraph;
//!
//! // An odd triangle is not bipartite.
//! let mut g = EmbeddedGraph::new();
//! let a = g.add_node(Point::new(0, 0));
//! let b = g.add_node(Point::new(10, 0));
//! let c = g.add_node(Point::new(5, 8));
//! g.add_edge(a, b, 1);
//! g.add_edge(b, c, 1);
//! g.add_edge(c, a, 1);
//! assert!(aapsm_graph::two_color(&g).is_err());
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bipartite;
mod components;
mod crossings;
mod dual;
mod embed;
mod faces;
mod graph;
mod planarize;
mod spanning;
mod unionfind;

pub use bipartite::{two_color, two_color_excluding, OddCycle, TwoColoring};
pub use components::{biconnected_components, connected_components, Components};
pub use crossings::{
    crossing_pairs, crossing_pairs_incremental, crossing_pairs_par, crossing_pairs_with_cell,
    crossing_pairs_with_cell_par, CrossingAdjacency, CrossingSet,
};
pub use dual::{build_dual, DualEdge, DualGraph};
pub use embed::{
    build_dual_par, component_embeddings, component_embeddings_budgeted, trace_faces_par,
    ComponentEmbedding,
};
pub use faces::{trace_faces, Faces};
pub use graph::{EdgeId, EmbeddedGraph, NodeId};
pub use planarize::{
    planarize, planarize_par, planarize_with_crossings, PlanarizeOrder, PlanarizeResult,
};
pub use spanning::{greedy_parity_subgraph, max_weight_spanning_forest, SpanningForest};
pub use unionfind::{ParityUnionFind, UnionFind};
