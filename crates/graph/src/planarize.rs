use crate::{crossing_pairs, EdgeId, EmbeddedGraph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The edge-selection policy of the greedy planarization step.
///
/// The paper removes minimum-weight crossing edges greedily
/// ([`PlanarizeOrder::MinWeightFirst`]); the other policies exist for the
/// ablation bench.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanarizeOrder {
    /// Remove the cheapest crossing edge first (the paper's policy).
    MinWeightFirst,
    /// Remove the most-crossing edge first, ties by cheapest.
    MostCrossingsFirst,
    /// Remove the edge with the smallest weight-per-crossing ratio first.
    MinWeightPerCrossing,
}

/// Result of planarization: which edges were removed to clear all
/// crossings.
#[derive(Clone, Debug)]
pub struct PlanarizeResult {
    /// Removed edges (the paper's potential conflict set `P`), in removal
    /// order.
    pub removed: Vec<EdgeId>,
    /// Number of crossing pairs in the original drawing.
    pub initial_crossings: usize,
}

impl PlanarizeResult {
    /// Total weight of the removed edges.
    pub fn removed_weight(&self, g: &EmbeddedGraph) -> i64 {
        g.total_weight(self.removed.iter().copied())
    }
}

/// Greedily removes crossing edges until the straight-line drawing of the
/// alive subgraph is planar.
///
/// Removed edges are killed in `g` and returned. This is Step 1(b) of the
/// paper's flow; the removed set is the *potential conflict set P*, which
/// Step 3 later re-examines against the bipartization coloring.
pub fn planarize(g: &mut EmbeddedGraph, order: PlanarizeOrder) -> PlanarizeResult {
    planarize_par(g, order, 1)
}

/// [`planarize`] with an explicit parallelism degree for the initial
/// crossing sweep (`0` = one worker per CPU, `1` = serial). The greedy
/// removal loop itself is inherently sequential; results are bit-identical
/// at every degree because the sweep is ([`crate::crossing_pairs_par`]).
pub fn planarize_par(
    g: &mut EmbeddedGraph,
    order: PlanarizeOrder,
    parallelism: usize,
) -> PlanarizeResult {
    let crossings = crate::crossing_pairs_par(g, parallelism);
    planarize_with_crossings(g, order, &crossings)
}

/// [`planarize`] over a precomputed crossing set of the *current* alive
/// subgraph — callers that already ran the sweep (e.g. for statistics)
/// avoid paying it twice.
pub fn planarize_with_crossings(
    g: &mut EmbeddedGraph,
    order: PlanarizeOrder,
    crossings: &crate::CrossingSet,
) -> PlanarizeResult {
    let initial = crossings.pairs.len();
    let edge_count = g.edge_count();
    let partners = crossings.partners(edge_count);
    let mut count = crossings.counts(edge_count);

    // Priority value per policy; lower = removed earlier. Recomputed lazily.
    let priority = |g: &EmbeddedGraph, e: EdgeId, cnt: u32, order: PlanarizeOrder| -> (i128, i64) {
        match order {
            PlanarizeOrder::MinWeightFirst => (g.weight(e) as i128, e.index() as i64),
            PlanarizeOrder::MostCrossingsFirst => (-(cnt as i128), g.weight(e)),
            PlanarizeOrder::MinWeightPerCrossing => {
                // Scale to avoid rationals: weight / count compared as
                // the integer ratio weight * 2^20 / count. The widening
                // to i128 matters: in i64 the shift overflows for
                // weights >= 2^43, inverting removal order (or
                // panicking in debug builds).
                let ratio = ((g.weight(e) as i128) << 20) / cnt.max(1) as i128;
                (ratio, g.weight(e))
            }
        }
    };

    // (priority, crossing count at insertion, edge).
    type HeapEntry = Reverse<((i128, i64), u32, EdgeId)>;
    let mut heap: BinaryHeap<HeapEntry> = BinaryHeap::new();
    for e in g.alive_edges() {
        let c = count[e.index()];
        if c > 0 {
            heap.push(Reverse((priority(g, e, c, order), c, e)));
        }
    }

    let mut removed = Vec::new();
    while let Some(Reverse((_, stale_count, e))) = heap.pop() {
        let c = count[e.index()];
        if !g.is_alive(e) || c == 0 {
            continue;
        }
        if c != stale_count {
            // Count changed since insertion: re-queue with fresh priority.
            heap.push(Reverse((priority(g, e, c, order), c, e)));
            continue;
        }
        g.kill_edge(e);
        removed.push(e);
        count[e.index()] = 0;
        // Each edge is killed at most once, so every CSR row is walked at
        // most once from here.
        for &p in partners.neighbors(e) {
            if g.is_alive(p) && count[p.index()] > 0 {
                count[p.index()] -= 1;
            }
        }
    }

    debug_assert!(crossing_pairs(g).is_planar());
    PlanarizeResult {
        removed,
        initial_crossings: initial,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn removes_cheapest_of_crossing_pair() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let cheap = g.add_edge(a, b, 1);
        let dear = g.add_edge(c, d, 50);
        let res = planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        assert_eq!(res.removed, vec![cheap]);
        assert!(!g.is_alive(cheap));
        assert!(g.is_alive(dear));
        assert_eq!(res.initial_crossings, 1);
    }

    #[test]
    fn planar_input_untouched() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 100));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let res = planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        assert!(res.removed.is_empty());
        assert_eq!(g.alive_edge_count(), 3);
    }

    #[test]
    fn one_hub_edge_crossing_many() {
        // One cheap long edge crossing three expensive ones: only the long
        // edge should go, under any policy.
        let mut g = EmbeddedGraph::new();
        let l = g.add_node(p(-100, 0));
        let r = g.add_node(p(100, 0));
        let hub = g.add_edge(l, r, 2);
        for i in 0..3 {
            let x = -50 + i * 50;
            let t = g.add_node(p(x, 50));
            let b = g.add_node(p(x, -50));
            g.add_edge(t, b, 100);
        }
        for order in [
            PlanarizeOrder::MinWeightFirst,
            PlanarizeOrder::MostCrossingsFirst,
            PlanarizeOrder::MinWeightPerCrossing,
        ] {
            let mut gg = g.clone();
            let res = planarize(&mut gg, order);
            assert_eq!(res.removed, vec![hub], "order {order:?}");
        }
    }

    #[test]
    fn always_ends_planar_on_random_drawings() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for _ in 0..15 {
            let n = rng.gen_range(5..30);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(p(rng.gen_range(-400..400), rng.gen_range(-400..400))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(5..60) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..50));
                }
            }
            let res = planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            assert!(crossing_pairs(&g).is_planar());
            // Removed edges really were killed.
            assert!(res.removed.iter().all(|&e| !g.is_alive(e)));
        }
    }

    #[test]
    fn weight_per_crossing_survives_huge_weights() {
        // Regression: weights at and beyond 2^43 used to overflow the
        // `weight << 20` ratio in MinWeightPerCrossing, flipping the
        // removal order (debug builds panicked). The cheap edge of each
        // crossing pair must still be the one removed.
        let huge = 1i64 << 50;
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 100));
        let c = g.add_node(p(0, 100));
        let d = g.add_node(p(100, 0));
        let cheap = g.add_edge(a, b, huge);
        let dear = g.add_edge(c, d, huge + 12345);
        let res = planarize(&mut g, PlanarizeOrder::MinWeightPerCrossing);
        assert_eq!(res.removed, vec![cheap]);
        assert!(!g.is_alive(cheap));
        assert!(g.is_alive(dear));
    }

    #[test]
    fn min_weight_policy_prefers_cheap_edges_globally() {
        // Two independent crossing pairs; each must lose its cheap member.
        let mut g = EmbeddedGraph::new();
        let mk = |g: &mut EmbeddedGraph, ox: i64| {
            let a = g.add_node(p(ox, 0));
            let b = g.add_node(p(ox + 100, 100));
            let c = g.add_node(p(ox, 100));
            let d = g.add_node(p(ox + 100, 0));
            let cheap = g.add_edge(a, b, 1);
            let _dear = g.add_edge(c, d, 9);
            cheap
        };
        let c1 = mk(&mut g, 0);
        let c2 = mk(&mut g, 1000);
        let res = planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        let mut removed = res.removed.clone();
        removed.sort_unstable();
        assert_eq!(removed, vec![c1, c2]);
    }
}
