use crate::{EdgeId, EmbeddedGraph, NodeId};

/// A proper 2-coloring of an [`EmbeddedGraph`].
#[derive(Clone, Debug)]
pub struct TwoColoring {
    /// Color (0 or 1) per node index. Isolated nodes get color 0.
    pub color: Vec<u8>,
}

impl TwoColoring {
    /// The color of a node.
    pub fn color_of(&self, n: NodeId) -> u8 {
        self.color[n.index()]
    }

    /// Whether the coloring properly colors the given edge (endpoints
    /// differ).
    pub fn is_proper(&self, g: &EmbeddedGraph, e: EdgeId) -> bool {
        let (u, v) = g.endpoints(e);
        self.color[u.index()] != self.color[v.index()]
    }
}

/// Witness that a graph is not bipartite: the alive edges of one odd cycle.
#[derive(Clone, Debug)]
pub struct OddCycle {
    /// Edge ids of the cycle, in order around the cycle.
    pub edges: Vec<EdgeId>,
}

impl OddCycle {
    /// Cycle length (always odd).
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether the cycle is empty (it never is for a valid witness).
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// 2-colors the alive subgraph, or returns an odd cycle.
///
/// # Errors
///
/// Returns an [`OddCycle`] witness when the alive subgraph is not
/// bipartite.
///
/// ```
/// use aapsm_geom::Point;
/// use aapsm_graph::{two_color, EmbeddedGraph};
/// let mut g = EmbeddedGraph::new();
/// let a = g.add_node(Point::new(0, 0));
/// let b = g.add_node(Point::new(1, 0));
/// g.add_edge(a, b, 1);
/// let coloring = two_color(&g).unwrap();
/// assert_ne!(coloring.color[0], coloring.color[1]);
/// ```
pub fn two_color(g: &EmbeddedGraph) -> Result<TwoColoring, OddCycle> {
    two_color_excluding(g, &[])
}

/// 2-colors the alive subgraph minus the given extra edge set, or returns
/// an odd cycle avoiding those edges.
///
/// `excluded` is a sorted-or-not slice of edge ids treated as deleted in
/// addition to dead edges. This is Step 3 of the paper's flow: color
/// `G_p − D` and test the planarization-removed edges against the coloring.
///
/// # Errors
///
/// Returns an [`OddCycle`] whose edges all remain in the filtered subgraph.
pub fn two_color_excluding(
    g: &EmbeddedGraph,
    excluded: &[EdgeId],
) -> Result<TwoColoring, OddCycle> {
    let mut skip = vec![false; g.edge_count()];
    for &e in excluded {
        skip[e.index()] = true;
    }
    let n = g.node_count();
    let mut color = vec![u8::MAX; n];
    // Parent edge that discovered each node, for odd-cycle extraction.
    let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
    let mut parent_node: Vec<Option<NodeId>> = vec![None; n];
    let mut queue = std::collections::VecDeque::new();

    for start in g.nodes() {
        if color[start.index()] != u8::MAX {
            continue;
        }
        color[start.index()] = 0;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for e in g.incident(u) {
                if skip[e.index()] {
                    continue;
                }
                let v = g.other_endpoint(e, u);
                if color[v.index()] == u8::MAX {
                    color[v.index()] = color[u.index()] ^ 1;
                    parent_edge[v.index()] = Some(e);
                    parent_node[v.index()] = Some(u);
                    queue.push_back(v);
                } else if color[v.index()] == color[u.index()] {
                    return Err(extract_odd_cycle(g, u, v, e, &parent_edge, &parent_node));
                }
            }
        }
    }
    for c in &mut color {
        if *c == u8::MAX {
            *c = 0;
        }
    }
    Ok(TwoColoring { color })
}

/// Walks parent pointers from both endpoints of the violating edge up to
/// their lowest common ancestor in the BFS forest, producing a cycle.
fn extract_odd_cycle(
    g: &EmbeddedGraph,
    u: NodeId,
    v: NodeId,
    closing: EdgeId,
    parent_edge: &[Option<EdgeId>],
    parent_node: &[Option<NodeId>],
) -> OddCycle {
    // Collect ancestor chains (node -> root).
    let chain = |mut n: NodeId| {
        let mut nodes = vec![n];
        let mut edges = Vec::new();
        while let Some(p) = parent_node[n.index()] {
            // Invariant, not an error path: BFS sets parent_edge with parent_node.
            #[allow(clippy::expect_used)]
            edges.push(parent_edge[n.index()].expect("parent edge set with parent node"));
            n = p;
            nodes.push(n);
        }
        (nodes, edges)
    };
    let (nu, eu) = chain(u);
    let (nv, ev) = chain(v);
    // Find LCA: deepest common node. Chains end at the same BFS root.
    let set: std::collections::HashMap<NodeId, usize> = nu
        .iter()
        .copied()
        .enumerate()
        .map(|(i, n)| (n, i))
        .collect();
    let mut lca_idx_v = 0;
    let mut lca_idx_u = nu.len() - 1;
    for (i, n) in nv.iter().enumerate() {
        if let Some(&j) = set.get(n) {
            lca_idx_v = i;
            lca_idx_u = j;
            break;
        }
    }
    let mut edges = Vec::new();
    edges.extend_from_slice(&eu[..lca_idx_u]);
    let mut back: Vec<EdgeId> = ev[..lca_idx_v].to_vec();
    back.reverse();
    edges.extend(back);
    edges.push(closing);
    debug_assert!(edges.len() % 2 == 1, "extracted cycle must be odd");
    debug_assert!(edges.iter().all(|&e| g.is_alive(e)));
    OddCycle { edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;

    fn path_graph(n: usize) -> EmbeddedGraph {
        let mut g = EmbeddedGraph::new();
        let nodes: Vec<_> = (0..n)
            .map(|i| g.add_node(Point::new(i as i64 * 10, 0)))
            .collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1], 1);
        }
        g
    }

    fn cycle_graph(n: usize) -> EmbeddedGraph {
        let mut g = EmbeddedGraph::new();
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                // Place on a convex polygon.
                let a = i as f64 / n as f64 * std::f64::consts::TAU;
                g.add_node(Point::new(
                    (1000.0 * a.cos()) as i64,
                    (1000.0 * a.sin()) as i64,
                ))
            })
            .collect();
        for i in 0..n {
            g.add_edge(nodes[i], nodes[(i + 1) % n], 1);
        }
        g
    }

    #[test]
    fn paths_and_even_cycles_are_bipartite() {
        assert!(two_color(&path_graph(7)).is_ok());
        assert!(two_color(&cycle_graph(8)).is_ok());
    }

    #[test]
    fn odd_cycle_witness_has_odd_length() {
        for n in [3usize, 5, 9, 13] {
            let g = cycle_graph(n);
            let cyc = two_color(&g).unwrap_err();
            assert_eq!(cyc.len(), n);
        }
    }

    #[test]
    fn killing_an_edge_restores_bipartiteness() {
        let mut g = cycle_graph(5);
        let cyc = two_color(&g).unwrap_err();
        g.kill_edge(cyc.edges[0]);
        assert!(two_color(&g).is_ok());
    }

    #[test]
    fn excluding_edges_is_like_killing_them() {
        let g = cycle_graph(7);
        let cyc = two_color(&g).unwrap_err();
        let coloring = two_color_excluding(&g, &[cyc.edges[3]]).unwrap();
        // All remaining edges properly colored.
        for e in g.alive_edges() {
            if e != cyc.edges[3] {
                assert!(coloring.is_proper(&g, e));
            }
        }
    }

    #[test]
    fn multiple_components() {
        let mut g = path_graph(3);
        // Add a disjoint triangle far away.
        let a = g.add_node(Point::new(1000, 1000));
        let b = g.add_node(Point::new(1010, 1000));
        let c = g.add_node(Point::new(1005, 1010));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        let e = g.add_edge(c, a, 1);
        let cyc = two_color(&g).unwrap_err();
        assert_eq!(cyc.len(), 3);
        g.kill_edge(e);
        assert!(two_color(&g).is_ok());
    }

    #[test]
    fn odd_cycle_in_dense_graph_is_valid() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for trial in 0..50 {
            let n = rng.gen_range(3..20);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|i| g.add_node(Point::new(i as i64 * 7, (i * i) as i64 % 23)))
                .collect();
            for _ in 0..rng.gen_range(n..3 * n) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], 1);
                }
            }
            if let Err(cyc) = two_color(&g) {
                assert!(cyc.len() % 2 == 1, "trial {trial}");
                // Check the edges actually form a closed walk.
                use std::collections::HashMap;
                let mut deg: HashMap<NodeId, usize> = HashMap::new();
                for &e in &cyc.edges {
                    let (u, v) = g.endpoints(e);
                    *deg.entry(u).or_default() += 1;
                    *deg.entry(v).or_default() += 1;
                }
                assert!(
                    deg.values().all(|&d| d % 2 == 0),
                    "trial {trial}: not a closed walk"
                );
            }
        }
    }
}
