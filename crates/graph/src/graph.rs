use aapsm_geom::{Point, Segment};
use std::fmt;

/// Identifier of a node in an [`EmbeddedGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

/// Identifier of an edge in an [`EmbeddedGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl NodeId {
    /// The index of this node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The index of this edge.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
struct Edge {
    u: NodeId,
    v: NodeId,
    weight: i64,
    alive: bool,
}

/// A weighted multigraph drawn in the plane with straight-line edges.
///
/// Nodes carry exact integer coordinates; an edge is geometrically the
/// segment between its endpoints' coordinates. Edges can be soft-deleted
/// ("killed") — planarization and bipartization express their results as
/// sets of killed edges while all indices stay stable.
///
/// Self-loops are rejected; parallel edges are allowed (they arise naturally
/// when a shifter pair is constrained both by flanking and by overlap).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EmbeddedGraph {
    positions: Vec<Point>,
    edges: Vec<Edge>,
    adj: Vec<Vec<EdgeId>>,
}

impl EmbeddedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        EmbeddedGraph::default()
    }

    /// Pre-allocates for `nodes` additional nodes and `edges` additional
    /// edges (the conflict-graph builders know both counts up front).
    pub fn reserve(&mut self, nodes: usize, edges: usize) {
        self.positions.reserve(nodes);
        self.adj.reserve(nodes);
        self.edges.reserve(edges);
    }

    /// Adds a node at `pos` and returns its id.
    pub fn add_node(&mut self, pos: Point) -> NodeId {
        let id = NodeId(self.positions.len() as u32);
        self.positions.push(pos);
        self.adj.push(Vec::new());
        id
    }

    /// Adds an edge between distinct nodes and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `u == v` or either id is out of range.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: i64) -> EdgeId {
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(u.index() < self.positions.len() && v.index() < self.positions.len());
        let id = EdgeId(self.edges.len() as u32);
        self.edges.push(Edge {
            u,
            v,
            weight,
            alive: true,
        });
        self.adj[u.index()].push(id);
        self.adj[v.index()].push(id);
        id
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.positions.len()
    }

    /// Number of edges ever added (including killed ones).
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges currently alive.
    pub fn alive_edge_count(&self) -> usize {
        self.edges.iter().filter(|e| e.alive).count()
    }

    /// Coordinates of a node.
    pub fn pos(&self, n: NodeId) -> Point {
        self.positions[n.index()]
    }

    /// Overwrites the coordinates of a node.
    ///
    /// Used to nudge degenerate (coincident) node placements before
    /// crossing detection; see [`EmbeddedGraph::nudge_duplicate_positions`].
    pub fn set_pos(&mut self, n: NodeId, pos: Point) {
        self.positions[n.index()] = pos;
    }

    /// The endpoints `(u, v)` of an edge in insertion order.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e.index()];
        (edge.u, edge.v)
    }

    /// The endpoint of `e` that is not `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of `e`.
    pub fn other_endpoint(&self, e: EdgeId, n: NodeId) -> NodeId {
        let (u, v) = self.endpoints(e);
        if n == u {
            v
        } else {
            assert_eq!(n, v, "{n} is not an endpoint of {e}");
            u
        }
    }

    /// Weight of an edge.
    pub fn weight(&self, e: EdgeId) -> i64 {
        self.edges[e.index()].weight
    }

    /// Whether an edge is alive.
    pub fn is_alive(&self, e: EdgeId) -> bool {
        self.edges[e.index()].alive
    }

    /// Soft-deletes an edge. Killing a dead edge is a no-op.
    pub fn kill_edge(&mut self, e: EdgeId) {
        self.edges[e.index()].alive = false;
    }

    /// Resurrects a previously killed edge.
    pub fn revive_edge(&mut self, e: EdgeId) {
        self.edges[e.index()].alive = true;
    }

    /// The straight-line segment realizing an edge.
    pub fn segment(&self, e: EdgeId) -> Segment {
        let (u, v) = self.endpoints(e);
        Segment::new(self.pos(u), self.pos(v))
    }

    /// Iterates over the ids of all alive edges.
    pub fn alive_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.alive)
            .map(|(i, _)| EdgeId(i as u32))
    }

    /// Iterates over all edge ids, dead or alive.
    pub fn all_edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len() as u32).map(EdgeId)
    }

    /// Iterates over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.positions.len() as u32).map(NodeId)
    }

    /// Alive edges incident to `n`.
    pub fn incident(&self, n: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.adj[n.index()]
            .iter()
            .copied()
            .filter(move |e| self.edges[e.index()].alive)
    }

    /// Alive degree of `n`.
    pub fn degree(&self, n: NodeId) -> usize {
        self.incident(n).count()
    }

    /// Total weight of the given edges.
    pub fn total_weight<I: IntoIterator<Item = EdgeId>>(&self, edges: I) -> i64 {
        edges.into_iter().map(|e| self.weight(e)).sum()
    }

    /// Ensures no two nodes share exact coordinates by nudging later
    /// duplicates one dbu at a time along a deterministic spiral.
    ///
    /// Exact coincidences break the angular rotation system used by face
    /// tracing; at nm resolution a 1-dbu nudge is far below any design rule
    /// and does not meaningfully change which edges cross. Returns how many
    /// nodes were moved.
    pub fn nudge_duplicate_positions(&mut self) -> usize {
        let mut seen: aapsm_geom::FxHashSet<Point> =
            aapsm_geom::FxHashSet::with_capacity_and_hasher(
                self.positions.len(),
                aapsm_geom::FxBuildHasher::default(),
            );
        let spiral: [(i64, i64); 8] = [
            (1, 0),
            (0, 1),
            (-1, 0),
            (0, -1),
            (1, 1),
            (-1, 1),
            (-1, -1),
            (1, -1),
        ];
        let mut moved = 0;
        for i in 0..self.positions.len() {
            let mut p = self.positions[i];
            if seen.contains(&p) {
                let mut radius = 1i64;
                'search: loop {
                    for (dx, dy) in spiral {
                        let q = Point::new(p.x + dx * radius, p.y + dy * radius);
                        if !seen.contains(&q) {
                            p = q;
                            break 'search;
                        }
                    }
                    radius += 1;
                }
                self.positions[i] = p;
                moved += 1;
            }
            seen.insert(p);
        }
        moved
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn build_and_query() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(10, 0));
        let c = g.add_node(p(5, 5));
        let e1 = g.add_edge(a, b, 3);
        let e2 = g.add_edge(b, c, 4);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.alive_edge_count(), 2);
        assert_eq!(g.other_endpoint(e1, a), b);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.total_weight([e1, e2]), 7);
        g.kill_edge(e1);
        assert_eq!(g.alive_edge_count(), 1);
        assert_eq!(g.degree(b), 1);
        g.revive_edge(e1);
        assert_eq!(g.degree(b), 2);
    }

    #[test]
    fn parallel_edges_allowed() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(10, 0));
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        assert_ne!(e1, e2);
        assert_eq!(g.degree(a), 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        g.add_edge(a, a, 1);
    }

    #[test]
    fn nudge_separates_duplicates() {
        let mut g = EmbeddedGraph::new();
        for _ in 0..5 {
            g.add_node(p(7, 7));
        }
        let moved = g.nudge_duplicate_positions();
        assert_eq!(moved, 4);
        let mut pts: Vec<_> = g.nodes().map(|n| g.pos(n)).collect();
        pts.sort_unstable();
        pts.dedup();
        assert_eq!(pts.len(), 5);
    }

    #[test]
    fn segment_matches_positions() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(1, 2));
        let b = g.add_node(p(3, 4));
        let e = g.add_edge(a, b, 1);
        assert_eq!(g.segment(e), Segment::new(p(1, 2), p(3, 4)));
    }
}
