use crate::{EdgeId, EmbeddedGraph, Faces};

/// One edge of the geometric dual: it crosses a primal edge and connects
/// the two faces on its sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DualEdge {
    /// The primal edge this dual edge crosses.
    pub primal: EdgeId,
    /// Face on the `u -> v` side.
    pub a: u32,
    /// Face on the `v -> u` side.
    pub b: u32,
    /// Weight inherited from the primal edge.
    pub weight: i64,
}

/// The geometric dual of a plane drawing, specialized for the
/// bipartization-as-T-join reduction.
///
/// Nodes are the faces of the primal drawing. Bridges of the primal graph
/// would become dual self-loops; since a bridge lies on no cycle it can
/// never be part of a minimum odd-cycle cover, so bridges are segregated
/// into [`DualGraph::bridges`] and excluded from the dual edge set.
///
/// The T-set of the bipartization T-join is exactly the odd faces
/// ([`DualGraph::t_set`]); for a plane multigraph the dual degree of a face
/// equals its boundary-walk length, so "odd-degree dual nodes" (the paper's
/// phrasing) and "odd faces" coincide.
#[derive(Clone, Debug)]
pub struct DualGraph {
    /// Number of dual nodes (faces).
    pub face_count: usize,
    /// Dual edges (bridges excluded).
    pub edges: Vec<DualEdge>,
    /// Primal bridge edges (same face on both sides).
    pub bridges: Vec<EdgeId>,
    /// `true` for faces with odd boundary walk.
    pub odd_face: Vec<bool>,
}

impl DualGraph {
    /// The faces forming the T-set of the bipartization T-join.
    pub fn t_set(&self) -> Vec<u32> {
        (0..self.face_count as u32)
            .filter(|&f| self.odd_face[f as usize])
            .collect()
    }

    /// Degree of each dual node, counting only non-bridge dual edges.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.face_count];
        for e in &self.edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        deg
    }
}

/// Builds the geometric dual of the alive subgraph's plane drawing.
///
/// `faces` must come from [`crate::trace_faces`] on the same graph state.
pub fn build_dual(g: &EmbeddedGraph, faces: &Faces) -> DualGraph {
    let mut edges = Vec::new();
    let mut bridges = Vec::new();
    for e in g.alive_edges() {
        let a = faces.left_face(e);
        let b = faces.right_face(e);
        if a == b {
            bridges.push(e);
        } else {
            edges.push(DualEdge {
                primal: e,
                a,
                b,
                weight: g.weight(e),
            });
        }
    }
    let odd_face = (0..faces.count as u32).map(|f| faces.is_odd(f)).collect();
    DualGraph {
        face_count: faces.count,
        edges,
        bridges,
        odd_face,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_faces;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn triangle_dual_is_three_parallel_edges() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 3);
        g.add_edge(b, c, 5);
        g.add_edge(c, a, 7);
        let f = trace_faces(&g);
        let d = build_dual(&g, &f);
        assert_eq!(d.face_count, 2);
        assert_eq!(d.edges.len(), 3);
        assert!(d.bridges.is_empty());
        assert_eq!(d.t_set().len(), 2);
        // All three dual edges connect the same two faces.
        for e in &d.edges {
            assert_ne!(e.a, e.b);
        }
        assert_eq!(d.degrees(), vec![3, 3]);
    }

    #[test]
    fn bridges_are_segregated() {
        // A triangle with a pendant edge.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        let d = g.add_node(p(200, 0));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let pendant = g.add_edge(b, d, 1);
        let f = trace_faces(&g);
        let dual = build_dual(&g, &f);
        assert_eq!(dual.bridges, vec![pendant]);
        assert_eq!(dual.edges.len(), 3);
        // Outer face walk: a-b, b-d, d-b, b-c... length 5 -> odd; inner
        // triangle odd; so both faces are in T.
        assert_eq!(dual.t_set().len(), 2);
    }

    #[test]
    fn dual_degree_equals_face_walk_length_minus_bridges() {
        let mut g = EmbeddedGraph::new();
        // Square with a diagonal chord.
        let n: Vec<_> = [(0, 0), (100, 0), (100, 100), (0, 100)]
            .iter()
            .map(|&(x, y)| g.add_node(p(x, y)))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        g.add_edge(n[0], n[2], 1); // chord
        let f = trace_faces(&g);
        let d = build_dual(&g, &f);
        assert_eq!(d.face_count, 3);
        assert_eq!(d.edges.len(), 5);
        let mut degs = d.degrees();
        degs.sort_unstable();
        assert_eq!(degs, vec![3, 3, 4]);
        // Two triangles from the chord are odd.
        assert_eq!(d.t_set().len(), 2);
    }
}
