use crate::{EdgeId, EmbeddedGraph, Faces};

/// One edge of the geometric dual: it crosses a primal edge and connects
/// the two faces on its sides.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DualEdge {
    /// The primal edge this dual edge crosses.
    pub primal: EdgeId,
    /// Face on the `u -> v` side.
    pub a: u32,
    /// Face on the `v -> u` side.
    pub b: u32,
    /// Weight inherited from the primal edge.
    pub weight: i64,
}

/// The geometric dual of a plane drawing, specialized for the
/// bipartization-as-T-join reduction.
///
/// Nodes are the faces of the primal drawing. Bridges of the primal graph
/// would become dual self-loops; since a bridge lies on no cycle it can
/// never be part of a minimum odd-cycle cover, so bridges are segregated
/// into [`DualGraph::bridges`] and excluded from the dual edge set.
///
/// The T-set of the bipartization T-join is exactly the odd faces
/// ([`DualGraph::t_set`]); for a plane multigraph the dual degree of a face
/// equals its boundary-walk length, so "odd-degree dual nodes" (the paper's
/// phrasing) and "odd faces" coincide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DualGraph {
    /// Number of dual nodes (faces).
    pub face_count: usize,
    /// Dual edges (bridges excluded).
    pub edges: Vec<DualEdge>,
    /// Primal bridge edges (same face on both sides).
    pub bridges: Vec<EdgeId>,
    /// `true` for faces with odd boundary walk.
    pub odd_face: Vec<bool>,
}

impl DualGraph {
    /// The faces forming the T-set of the bipartization T-join.
    pub fn t_set(&self) -> Vec<u32> {
        (0..self.face_count as u32)
            .filter(|&f| self.odd_face[f as usize])
            .collect()
    }

    /// Degree of each dual node, counting only non-bridge dual edges.
    pub fn degrees(&self) -> Vec<usize> {
        let mut deg = vec![0usize; self.face_count];
        for e in &self.edges {
            deg[e.a as usize] += 1;
            deg[e.b as usize] += 1;
        }
        deg
    }
}

/// Builds the geometric dual of the alive subgraph's plane drawing.
///
/// `faces` must come from [`crate::trace_faces`] on the same graph state.
pub fn build_dual(g: &EmbeddedGraph, faces: &Faces) -> DualGraph {
    let mut edges = Vec::new();
    let mut bridges = Vec::new();
    for e in g.alive_edges() {
        let a = faces.left_face(e);
        let b = faces.right_face(e);
        if a == b {
            bridges.push(e);
        } else {
            edges.push(DualEdge {
                primal: e,
                a,
                b,
                weight: g.weight(e),
            });
        }
    }
    let odd_face = (0..faces.count as u32).map(|f| faces.is_odd(f)).collect();
    DualGraph {
        face_count: faces.count,
        edges,
        bridges,
        odd_face,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace_faces;
    use aapsm_geom::Point;

    fn p(x: i64, y: i64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn triangle_dual_is_three_parallel_edges() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 3);
        g.add_edge(b, c, 5);
        g.add_edge(c, a, 7);
        let f = trace_faces(&g);
        let d = build_dual(&g, &f);
        assert_eq!(d.face_count, 2);
        assert_eq!(d.edges.len(), 3);
        assert!(d.bridges.is_empty());
        assert_eq!(d.t_set().len(), 2);
        // All three dual edges connect the same two faces.
        for e in &d.edges {
            assert_ne!(e.a, e.b);
        }
        assert_eq!(d.degrees(), vec![3, 3]);
    }

    #[test]
    fn bridges_are_segregated() {
        // A triangle with a pendant edge.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        let d = g.add_node(p(200, 0));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let pendant = g.add_edge(b, d, 1);
        let f = trace_faces(&g);
        let dual = build_dual(&g, &f);
        assert_eq!(dual.bridges, vec![pendant]);
        assert_eq!(dual.edges.len(), 3);
        // Outer face walk: a-b, b-d, d-b, b-c... length 5 -> odd; inner
        // triangle odd; so both faces are in T.
        assert_eq!(dual.t_set().len(), 2);
    }

    #[test]
    fn bridge_heavy_barbell_segregates_every_bridge() {
        // Two odd triangles joined by a three-edge bridge path: the dual
        // must keep exactly the six cycle edges and segregate the path.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(-100, 60));
        let c = g.add_node(p(-100, -60));
        let m1 = g.add_node(p(150, 5));
        let m2 = g.add_node(p(300, -5));
        let d = g.add_node(p(450, 0));
        let e = g.add_node(p(550, 60));
        let f = g.add_node(p(550, -60));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        let p1 = g.add_edge(a, m1, 1);
        let p2 = g.add_edge(m1, m2, 1);
        let p3 = g.add_edge(m2, d, 1);
        g.add_edge(d, e, 1);
        g.add_edge(e, f, 1);
        g.add_edge(f, d, 1);
        let faces = trace_faces(&g);
        faces.validate(&g).expect("plane drawing");
        let dual = build_dual(&g, &faces);
        assert_eq!(dual.bridges, vec![p1, p2, p3]);
        assert_eq!(dual.edges.len(), 6);
        // One component: V=8, E=9, F=3 (two triangle interiors + outer).
        assert_eq!(dual.face_count, 3);
        // Both triangle interiors are odd; the outer walk (3+3 cycle
        // edges + 2*3 bridge visits = 12) is even — T has two faces.
        assert_eq!(dual.t_set().len(), 2);
    }

    #[test]
    fn multi_component_dual_keeps_components_disjoint() {
        let mut g = EmbeddedGraph::new();
        // Component 0: triangle (2 faces, both odd).
        let a = g.add_node(p(0, 0));
        let b = g.add_node(p(100, 0));
        let c = g.add_node(p(50, 80));
        g.add_edge(a, b, 1);
        g.add_edge(b, c, 1);
        g.add_edge(c, a, 1);
        // Component 1: square (2 faces, both even).
        let n: Vec<_> = [(5000, 0), (5100, 0), (5100, 100), (5000, 100)]
            .iter()
            .map(|&(x, y)| g.add_node(p(x, y)))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        // Component 2: lone bridge edge (1 face).
        let x = g.add_node(p(10_000, 0));
        let y = g.add_node(p(10_100, 0));
        let lone = g.add_edge(x, y, 1);
        let faces = trace_faces(&g);
        let dual = build_dual(&g, &faces);
        assert_eq!(dual.face_count, 5);
        assert_eq!(dual.edges.len(), 7);
        assert_eq!(dual.bridges, vec![lone]);
        assert_eq!(dual.t_set().len(), 2);
        // No dual edge may connect faces of different components: the two
        // odd (triangle) faces must be linked to each other, never to the
        // square's or the lone edge's faces.
        let t = dual.t_set();
        for de in &dual.edges {
            let a_odd = t.contains(&de.a);
            let b_odd = t.contains(&de.b);
            assert_eq!(a_odd, b_odd, "dual edge {de:?} spans components");
        }
    }

    #[test]
    fn dual_has_no_self_loops_even_on_bridge_rich_graphs() {
        // Bridges would be dual self-loops; `build_dual` must exclude
        // them so downstream T-join instances (which reject self-loops)
        // stay well-formed. Star + triangle + pendant chains.
        let mut g = EmbeddedGraph::new();
        let hub = g.add_node(p(0, 0));
        let mut prev = hub;
        for i in 1..6i64 {
            let nn = g.add_node(p(120 * i, 30 * (i % 3)));
            g.add_edge(prev, nn, 1);
            prev = nn;
        }
        let t1 = g.add_node(p(-100, 100));
        let t2 = g.add_node(p(-200, 20));
        g.add_edge(hub, t1, 1);
        g.add_edge(t1, t2, 1);
        g.add_edge(t2, hub, 1);
        let faces = trace_faces(&g);
        faces.validate(&g).expect("plane drawing");
        let dual = build_dual(&g, &faces);
        for de in &dual.edges {
            assert_ne!(de.a, de.b, "dual self-loop leaked for {de:?}");
        }
        assert_eq!(dual.edges.len() + dual.bridges.len(), g.alive_edge_count());
        assert_eq!(dual.bridges.len(), 5);
        // Killing the chain leaves the pure triangle: bridges vanish.
        for e in dual.bridges.clone() {
            g.kill_edge(e);
        }
        let faces = trace_faces(&g);
        let dual = build_dual(&g, &faces);
        assert!(dual.bridges.is_empty());
        assert_eq!(dual.edges.len(), 3);
    }

    #[test]
    fn dual_degree_equals_face_walk_length_minus_bridges() {
        let mut g = EmbeddedGraph::new();
        // Square with a diagonal chord.
        let n: Vec<_> = [(0, 0), (100, 0), (100, 100), (0, 100)]
            .iter()
            .map(|&(x, y)| g.add_node(p(x, y)))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        g.add_edge(n[0], n[2], 1); // chord
        let f = trace_faces(&g);
        let d = build_dual(&g, &f);
        assert_eq!(d.face_count, 3);
        assert_eq!(d.edges.len(), 5);
        let mut degs = d.degrees();
        degs.sort_unstable();
        assert_eq!(degs, vec![3, 3, 4]);
        // Two triangles from the chord are odd.
        assert_eq!(d.t_set().len(), 2);
    }
}
