//! Property-based tests of the embedded-graph machinery: planarization,
//! face tracing, duals and bipartization invariants.

use aapsm_geom::Point;
use aapsm_graph::{
    biconnected_components, build_dual, build_dual_par, connected_components, crossing_pairs,
    greedy_parity_subgraph, planarize, trace_faces, trace_faces_par, two_color,
    two_color_excluding, EmbeddedGraph, ParityUnionFind, PlanarizeOrder,
};
use proptest::prelude::*;

/// Parallelism degrees every parallel entry point is checked at.
const DEGREES: [usize; 4] = [0, 1, 2, 4];

fn random_graph() -> impl Strategy<Value = EmbeddedGraph> {
    let node = (-400i64..400, -400i64..400);
    (
        proptest::collection::vec(node, 2..25),
        proptest::collection::vec((0usize..25, 0usize..25, 1i64..50), 0..50),
    )
        .prop_map(|(pts, raw_edges)| {
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = pts
                .into_iter()
                .map(|(x, y)| g.add_node(Point::new(x, y)))
                .collect();
            g.nudge_duplicate_positions();
            for (u, v, w) in raw_edges {
                let (u, v) = (u % nodes.len(), v % nodes.len());
                if u != v {
                    g.add_edge(nodes[u], nodes[v], w);
                }
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Planarization always yields a plane drawing, and only kills edges.
    #[test]
    fn planarize_clears_all_crossings(mut g in random_graph()) {
        let before = g.alive_edge_count();
        let removed = planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        prop_assert!(crossing_pairs(&g).is_planar());
        prop_assert_eq!(g.alive_edge_count() + removed.removed.len(), before);
    }

    /// Euler's formula holds per component after planarization, and face
    /// walks cover each half-edge exactly once.
    #[test]
    fn faces_satisfy_euler(mut g in random_graph()) {
        planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        let faces = trace_faces(&g);
        prop_assert_eq!(
            faces.face_len.iter().sum::<u32>() as usize,
            2 * g.alive_edge_count()
        );
        // V - E + F = 2 per component with edges.
        let comps = connected_components(&g);
        let mut v = vec![0i64; comps.count];
        let mut e = vec![0i64; comps.count];
        let mut fs: Vec<std::collections::HashSet<u32>> =
            vec![Default::default(); comps.count];
        for n in g.nodes() {
            v[comps.component(n) as usize] += 1;
        }
        for ed in g.alive_edges() {
            let c = comps.component(g.endpoints(ed).0) as usize;
            e[c] += 1;
            fs[c].insert(faces.left_face(ed));
            fs[c].insert(faces.right_face(ed));
        }
        for c in 0..comps.count {
            if e[c] > 0 {
                prop_assert_eq!(v[c] - e[c] + fs[c].len() as i64, 2);
            }
        }
    }

    /// The parallel per-component face trace merges to the exact serial
    /// `Faces` layout at every parallelism degree, and both traces pass
    /// the full structural validator (half-edge coverage, per-component
    /// Euler formula, bridge double-visit).
    #[test]
    fn parallel_trace_is_bit_identical_and_valid(mut g in random_graph()) {
        planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        let serial = trace_faces(&g);
        prop_assert!(serial.validate(&g).is_ok(), "{:?}", serial.validate(&g));
        for parallelism in DEGREES {
            let par = trace_faces_par(&g, parallelism);
            prop_assert!(par.validate(&g).is_ok(), "{:?}", par.validate(&g));
            prop_assert_eq!(&par, &serial, "trace diverged at parallelism {}", parallelism);
        }
    }

    /// The chunked parallel dual build is bit-identical to the serial
    /// build at every parallelism degree.
    #[test]
    fn parallel_dual_is_bit_identical(mut g in random_graph()) {
        planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        let faces = trace_faces(&g);
        let serial = build_dual(&g, &faces);
        for parallelism in DEGREES {
            let par = build_dual_par(&g, &faces, parallelism);
            prop_assert_eq!(&par, &serial, "dual diverged at parallelism {}", parallelism);
        }
    }

    /// The dual's odd faces come in even counts per component, and dual
    /// degrees sum to twice the non-bridge edges.
    #[test]
    fn dual_parity_invariants(mut g in random_graph()) {
        planarize(&mut g, PlanarizeOrder::MinWeightFirst);
        let faces = trace_faces(&g);
        let dual = build_dual(&g, &faces);
        prop_assert_eq!(dual.t_set().len() % 2, 0);
        prop_assert_eq!(
            dual.degrees().iter().sum::<usize>(),
            2 * dual.edges.len()
        );
        prop_assert_eq!(
            dual.edges.len() + dual.bridges.len(),
            g.alive_edge_count()
        );
    }

    /// A graph is bipartite iff the greedy parity subgraph deletes nothing;
    /// excluding the parity-greedy leftovers always leaves it bipartite.
    #[test]
    fn parity_greedy_coherence(g in random_graph()) {
        let f = greedy_parity_subgraph(&g);
        prop_assert_eq!(two_color(&g).is_ok(), f.leftover.is_empty());
        prop_assert!(two_color_excluding(&g, &f.leftover).is_ok());
    }

    /// Odd-cycle witnesses are genuinely odd closed walks.
    #[test]
    fn odd_cycle_witness_valid(g in random_graph()) {
        if let Err(cycle) = two_color(&g) {
            prop_assert_eq!(cycle.edges.len() % 2, 1);
            let mut deg = std::collections::HashMap::new();
            for &e in &cycle.edges {
                let (u, v) = g.endpoints(e);
                *deg.entry(u).or_insert(0) += 1;
                *deg.entry(v).or_insert(0) += 1;
            }
            prop_assert!(deg.values().all(|d| d % 2 == 0));
        }
    }

    /// Every alive edge lands in exactly one biconnected block.
    #[test]
    fn blocks_partition_edges(g in random_graph()) {
        let blocks = biconnected_components(&g);
        let mut count = vec![0usize; g.edge_count()];
        for b in &blocks {
            for e in b {
                count[e.index()] += 1;
            }
        }
        for e in g.alive_edges() {
            prop_assert_eq!(count[e.index()], 1);
        }
    }

    /// Parity union-find agrees with BFS 2-coloring on bipartiteness.
    #[test]
    fn parity_uf_agrees_with_bfs(g in random_graph()) {
        let mut uf = ParityUnionFind::new(g.node_count());
        let mut consistent = true;
        for e in g.alive_edges() {
            let (u, v) = g.endpoints(e);
            if uf.union(u.index(), v.index(), 1).is_err() {
                consistent = false;
                break;
            }
        }
        prop_assert_eq!(consistent, two_color(&g).is_ok());
    }
}
