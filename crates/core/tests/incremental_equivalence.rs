//! Property tests: the incremental re-detect engine is **bit-identical**
//! to from-scratch detection on the post-cut layout — conflicts (kinds,
//! weights, sources, order), geometry, and every count in `DetectStats` —
//! across `parallelism` 0/1/2/4, multiple tile counts, planner-produced
//! cuts, adversarial hand-made cuts (boundary-touching, criticality-
//! flipping), and multi-round correction loops.

use aapsm_core::{
    detect_conflicts, plan_correction, CorrectionOptions, DetectConfig, DetectReport, GraphKind,
    RedetectEngine,
};
use aapsm_geom::Axis;
use aapsm_layout::synth::{generate, SynthParams};
use aapsm_layout::{apply_cuts, extract_phase_geometry, fixtures, DesignRules, Layout, SpaceCut};
use proptest::prelude::*;

const PARALLELISM: [usize; 4] = [0, 1, 2, 4];
const TILE_COUNTS: [usize; 3] = [0, 1, 3];

fn assert_reports_match(a: &DetectReport, b: &DetectReport, context: &str) {
    assert_eq!(a.conflicts, b.conflicts, "{context}: conflict sets differ");
    assert_eq!(a.stats.graph_nodes, b.stats.graph_nodes, "{context}");
    assert_eq!(a.stats.graph_edges, b.stats.graph_edges, "{context}");
    assert_eq!(a.stats.crossings, b.stats.crossings, "{context}");
    assert_eq!(
        a.stats.planarize_removed, b.stats.planarize_removed,
        "{context}"
    );
    assert_eq!(
        a.stats.bipartize_conflicts, b.stats.bipartize_conflicts,
        "{context}"
    );
    assert_eq!(
        a.stats.recheck_conflicts, b.stats.recheck_conflicts,
        "{context}"
    );
}

/// Drives the planner-fed detect→correct→re-detect loop for one
/// configuration, checking every round against scratch detection.
fn check_correction_loop(layout: &Layout, parallelism: usize, tiles: usize) -> usize {
    let rules = DesignRules::default();
    let config = DetectConfig {
        parallelism,
        ..DetectConfig::default()
    };
    let mut engine = RedetectEngine::with_tiles(rules, config.clone(), tiles);
    let mut report = engine.detect_full(layout);
    {
        let scratch_geom = extract_phase_geometry(layout, &rules);
        let scratch = detect_conflicts(&scratch_geom, &config);
        assert_reports_match(
            &report,
            &scratch,
            &format!("round 0, parallelism {parallelism}, tiles {tiles}"),
        );
    }
    let mut current = layout.clone();
    let mut rounds = 0usize;
    for round in 1..=4 {
        if report.conflict_count() == 0 {
            break;
        }
        let plan = plan_correction(
            engine.geometry().expect("detected"),
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        if plan.cuts.is_empty() {
            break; // uncorrectable leftovers; nothing to re-detect
        }
        let modified = apply_cuts(&current, &plan.cuts);
        report = engine.redetect_after_correction(&modified, &plan.cuts);
        let context = format!("round {round}, parallelism {parallelism}, tiles {tiles}");
        let scratch_geom = extract_phase_geometry(&modified, &rules);
        assert_eq!(
            engine.geometry(),
            Some(&scratch_geom),
            "{context}: geometry diverged"
        );
        let scratch = detect_conflicts(&scratch_geom, &config);
        assert_reports_match(&report, &scratch, &context);
        current = modified;
        rounds = round;
    }
    rounds
}

#[test]
fn fixture_suite_is_bit_identical_across_parallelism_and_tiles() {
    let rules = DesignRules::default();
    let layouts = [
        ("gate_over_strap", fixtures::gate_over_strap(&rules)),
        ("stacked_jog", fixtures::stacked_jog(&rules)),
        ("short_middle", fixtures::short_middle_wire(&rules)),
        ("bus", fixtures::strap_under_bus(6, &rules)),
        ("two_round", fixtures::corridor_unblock_two_round(&rules)),
        ("clean_row", fixtures::wire_row(5, 600)),
    ];
    for (name, layout) in &layouts {
        let mut corrected_any = false;
        for parallelism in PARALLELISM {
            for tiles in TILE_COUNTS {
                corrected_any |= check_correction_loop(layout, parallelism, tiles) > 0;
            }
        }
        // Every conflicting fixture must actually exercise a re-detect.
        if *name != "clean_row" {
            assert!(corrected_any, "{name} never reached a correction round");
        }
    }
}

#[test]
fn multi_round_loop_stays_identical_each_round() {
    // The two-round fixture needs a second correction; both incremental
    // rounds must match scratch (checked inside the loop driver).
    let rules = DesignRules::default();
    let layout = fixtures::corridor_unblock_two_round(&rules);
    for parallelism in PARALLELISM {
        let rounds = check_correction_loop(&layout, parallelism, 0);
        assert!(rounds >= 2, "expected ≥ 2 correction rounds, got {rounds}");
    }
}

#[test]
fn feature_graph_kind_redetects_via_full_path() {
    let rules = DesignRules::default();
    let config = DetectConfig {
        graph: GraphKind::Feature,
        ..DetectConfig::default()
    };
    let layout = fixtures::strap_under_bus(4, &rules);
    let mut engine = RedetectEngine::new(rules, config.clone());
    let report = engine.detect_full(&layout);
    let plan = plan_correction(
        engine.geometry().unwrap(),
        &report.conflicts,
        &rules,
        &CorrectionOptions::default(),
    );
    let modified = apply_cuts(&layout, &plan.cuts);
    let redetected = engine.redetect_after_correction(&modified, &plan.cuts);
    assert!(!engine.last_stats().incremental);
    let scratch = detect_conflicts(&extract_phase_geometry(&modified, &rules), &config);
    assert_reports_match(&redetected, &scratch, "feature-graph fallback");
}

/// A random conflict-rich synthetic layout.
fn synth_layout() -> impl Strategy<Value = Layout> {
    (0u64..1_000_000, 1usize..=2, 10usize..=25).prop_map(|(seed, rows, gates)| {
        generate(
            &SynthParams {
                rows,
                gates_per_row: gates,
                strap_frac: 0.7,
                jog_frac: 0.08,
                short_mid_frac: 0.06,
                seed,
                ..SynthParams::default()
            },
            &DesignRules::default(),
        )
    })
}

/// An arbitrary cut batch over a layout's bounding box — including
/// boundary-touching positions and cuts through feature interiors, which
/// must route through the structural fallback rather than produce wrong
/// reuse.
fn arbitrary_cuts(layout: &Layout) -> impl Strategy<Value = Vec<SpaceCut>> {
    let bbox = layout.bbox().expect("non-empty synth layout");
    let (x_lo, x_hi) = (bbox.x_lo(), bbox.x_hi());
    let (y_lo, y_hi) = (bbox.y_lo(), bbox.y_hi());
    proptest::collection::vec(
        (any::<bool>(), 0i64..=1000, 1i64..=400).prop_map(move |(is_x, frac, width)| {
            let (lo, hi) = if is_x { (x_lo, x_hi) } else { (y_lo, y_hi) };
            SpaceCut {
                axis: if is_x { Axis::X } else { Axis::Y },
                position: lo + (hi - lo) * frac / 1000,
                width,
            }
        }),
        1..=3,
    )
    .prop_filter("distinct positions per axis", |cuts| {
        for (i, a) in cuts.iter().enumerate() {
            for b in &cuts[i + 1..] {
                if a.axis == b.axis && a.position == b.position {
                    return false;
                }
            }
        }
        true
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Planner-produced cuts: the full correction loop on random layouts
    /// is bit-identical to scratch at every round, parallelism degree
    /// and tile count.
    #[test]
    fn synthetic_correction_loops_match_scratch(layout in synth_layout()) {
        for parallelism in PARALLELISM {
            for tiles in [0usize, 3] {
                check_correction_loop(&layout, parallelism, tiles);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Adversarial cuts (not from the planner, any position including
    /// feature interiors and edge-touching lines): re-detection still
    /// matches scratch, via reuse or fallback.
    #[test]
    fn arbitrary_cuts_match_scratch(
        (layout, cuts) in synth_layout().prop_flat_map(|l| {
            let cuts = arbitrary_cuts(&l);
            (Just(l), cuts)
        })
    ) {
        let rules = DesignRules::default();
        let config = DetectConfig::default();
        let mut engine = RedetectEngine::new(rules, config.clone());
        engine.detect_full(&layout);
        let modified = apply_cuts(&layout, &cuts);
        let report = engine.redetect_after_correction(&modified, &cuts);
        let scratch_geom = extract_phase_geometry(&modified, &rules);
        prop_assert_eq!(engine.geometry(), Some(&scratch_geom));
        let scratch = detect_conflicts(&scratch_geom, &config);
        assert_reports_match(&report, &scratch, "arbitrary cuts");
    }
}
