//! Property tests: hierarchical detection is bit-identical to flattening.
//!
//! `detect_hier(&h, …)` must report byte-for-byte the same conflict set
//! (and the same stage counters) as `detect_conflicts(&h.flatten()?, …)`,
//! for every hierarchy shape — repeated instances, all eight placement
//! orientations, nested cells, instances close enough to interact across
//! their boundaries — and every `parallelism` ∈ {0, 1, 2, 4}, on both
//! graph reductions. The hierarchy is a solve-reuse strategy, never a
//! different answer.

use aapsm_core::{detect_conflicts, detect_hier, DetectConfig, DetectReport, GraphKind};
use aapsm_geom::Rect;
use aapsm_layout::synth::{generate, SynthParams};
use aapsm_layout::{
    extract_phase_geometry, Cell, DesignRules, HierLayout, Instance, Layout, Orient, Placement, Rot,
};
use proptest::prelude::*;

const DEGREES: [usize; 4] = [0, 1, 2, 4];

/// A conflict-rich leaf cell cut from the synthetic generator.
fn leaf_cell(name: &str, seed: u64, gates: usize) -> Cell {
    let layout = generate(
        &SynthParams {
            rows: 1,
            gates_per_row: gates,
            strap_frac: 0.7,
            jog_frac: 0.08,
            short_mid_frac: 0.06,
            seed,
            ..SynthParams::default()
        },
        &DesignRules::default(),
    );
    let mut cell = Cell::new(name);
    cell.rects = layout.rects().to_vec();
    cell
}

fn cell_bbox(cell: &Cell) -> Rect {
    Layout::from_rects(cell.rects.clone())
        .stats()
        .bbox
        .expect("leaf cell has rects")
}

/// A top cell placing `cols × rows` copies of one leaf on a square grid.
/// Each slot's delta is chosen so the *oriented* bounding box lands on
/// the grid slot, so rotated/reflected instances tile the same way.
/// `gap` controls whether neighboring instances interact: below the
/// design-rule interaction radius, conflict-graph components straddle
/// instance boundaries and must be stitched (and will miss the primed
/// cache); above it, every component is interior to one instance.
fn grid_hier(leaf: Cell, cols: usize, rows: usize, gap: i64, orient_all: bool) -> HierLayout {
    let bbox = cell_bbox(&leaf);
    let pitch = bbox.width().max(bbox.height()) + gap;
    let mut h = HierLayout::new();
    let leaf_ix = h.add_cell(leaf);
    let mut top = Cell::new("TOP");
    for r in 0..rows {
        for c in 0..cols {
            let orient = if orient_all {
                Orient::all()[(r * cols + c) % 8]
            } else {
                Orient::IDENTITY
            };
            let obb = orient.try_apply_rect(&bbox).expect("oriented bbox fits");
            top.instances.push(Instance {
                cell: leaf_ix,
                placement: Placement::new(
                    orient,
                    c as i64 * pitch - obb.x_lo(),
                    r as i64 * pitch - obb.y_lo(),
                ),
            });
        }
    }
    let top_ix = h.add_cell(top);
    h.top = Some(top_ix);
    h
}

fn config(kind: GraphKind, parallelism: usize) -> DetectConfig {
    DetectConfig {
        graph: kind,
        parallelism,
        ..DetectConfig::default()
    }
}

/// Conflicts byte-identical, stage counters identical; timings excluded.
fn assert_reports_match(hier: &DetectReport, flat: &DetectReport, label: &str) {
    assert_eq!(hier.conflicts, flat.conflicts, "{label}: conflict sets");
    assert_eq!(
        hier.stats.graph_nodes, flat.stats.graph_nodes,
        "{label}: nodes"
    );
    assert_eq!(
        hier.stats.graph_edges, flat.stats.graph_edges,
        "{label}: edges"
    );
    assert_eq!(
        hier.stats.crossings, flat.stats.crossings,
        "{label}: crossings"
    );
    assert_eq!(
        hier.stats.planarize_removed, flat.stats.planarize_removed,
        "{label}: planarize_removed"
    );
    assert_eq!(
        hier.stats.bipartize_conflicts, flat.stats.bipartize_conflicts,
        "{label}: bipartize_conflicts"
    );
    assert_eq!(
        hier.stats.recheck_conflicts, flat.stats.recheck_conflicts,
        "{label}: recheck_conflicts"
    );
}

fn check_equivalence(h: &HierLayout, kind: GraphKind) {
    let rules = DesignRules::default();
    let flat = h.flatten().expect("valid hierarchy");
    let flat_geom = extract_phase_geometry(&flat, &rules);
    for &parallelism in &DEGREES {
        let cfg = config(kind, parallelism);
        let hier_report = detect_hier(h, &rules, &cfg).expect("valid hierarchy");
        let flat_report = detect_conflicts(&flat_geom, &cfg);
        assert_reports_match(
            &hier_report.report,
            &flat_report,
            &format!("{kind:?} parallelism {parallelism}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random grids of one repeated leaf — identity placements, varying
    /// instance gap (interacting and isolated), both graph reductions.
    #[test]
    fn hier_matches_flat_on_grids(
        seed in 0u64..1_000_000,
        gates in 6usize..=14,
        cols in 1usize..=3,
        rows in 1usize..=2,
        gap_ix in 0usize..3,
    ) {
        let gap = [40i64, 400, 20_000][gap_ix];
        let h = grid_hier(leaf_cell("LEAF", seed, gates), cols, rows, gap, false);
        check_equivalence(&h, GraphKind::PhaseConflict);
        check_equivalence(&h, GraphKind::Feature);
    }

    /// All eight orientations in one grid: the placement algebra and the
    /// per-orientation priming classes agree with the flat pipeline.
    #[test]
    fn hier_matches_flat_under_all_orientations(
        seed in 0u64..1_000_000,
        gates in 6usize..=12,
        gap_ix in 0usize..2,
    ) {
        let gap = [120i64, 20_000][gap_ix];
        let h = grid_hier(leaf_cell("LEAF", seed, gates), 4, 2, gap, true);
        check_equivalence(&h, GraphKind::PhaseConflict);
    }
}

/// Nested hierarchy: TOP places two MIDs, each MID places two LEAFs.
/// Depth-2 occurrences fold into their depth-1 ancestor's tile.
#[test]
fn nested_hierarchy_matches_flat() {
    let mut h = HierLayout::new();
    let leaf = h.add_cell(leaf_cell("LEAF", 77, 8));
    let bbox = cell_bbox(&h.cells[leaf]);
    let pitch = bbox.width().max(bbox.height()) + 200;
    let mut mid = Cell::new("MID");
    mid.instances.push(Instance {
        cell: leaf,
        placement: Placement::IDENTITY,
    });
    mid.instances.push(Instance {
        cell: leaf,
        placement: Placement::new(Orient::rotated(Rot::R90), pitch, 0),
    });
    let mid = h.add_cell(mid);
    let mut top = Cell::new("TOP");
    top.instances.push(Instance {
        cell: mid,
        placement: Placement::IDENTITY,
    });
    top.instances.push(Instance {
        cell: mid,
        placement: Placement::at(0, 2 * pitch),
    });
    let top = h.add_cell(top);
    h.top = Some(top);
    check_equivalence(&h, GraphKind::PhaseConflict);
    check_equivalence(&h, GraphKind::Feature);
}

/// The acceptance property for reuse: on a grid of one repeated cell
/// with isolating gaps, the second-through-Nth instances answer from
/// the primed cache — `instances_reused > 0` and steady-state misses
/// stay bounded by the top-level stitching, not the instance count.
#[test]
fn repeated_instances_hit_the_primed_cache() {
    let rules = DesignRules::default();
    let h = grid_hier(leaf_cell("LEAF", 31, 12), 3, 2, 20_000, false);
    let report = detect_hier(&h, &rules, &config(GraphKind::PhaseConflict, 0)).expect("valid");
    assert_eq!(report.hier.cells_detected, 1, "one (cell, orient) class");
    assert_eq!(report.hier.instances_total, 6);
    assert!(
        report.hier.instances_reused > 0,
        "no cache reuse across {} instances: {:?}",
        report.hier.instances_total,
        report.hier
    );
    // Isolated instances: every component is interior to some instance,
    // so the only permissible misses are components the priming pass
    // never saw (there are none here — same cell, same orientation).
    assert_eq!(
        report.hier.solve_misses, 0,
        "isolated repeated instances should all hit: {:?}",
        report.hier
    );
}

/// Reuse accounting distinguishes orientation classes: all eight
/// orientations of one cell prime eight classes, and each still hits.
#[test]
fn orientation_classes_prime_separately() {
    let rules = DesignRules::default();
    let h = grid_hier(leaf_cell("LEAF", 31, 10), 4, 4, 20_000, true);
    let report = detect_hier(&h, &rules, &config(GraphKind::PhaseConflict, 0)).expect("valid");
    assert_eq!(report.hier.cells_detected, 8, "eight orientation classes");
    assert_eq!(report.hier.instances_total, 16);
    assert!(report.hier.instances_reused > 0, "{:?}", report.hier);
    assert_eq!(report.hier.solve_misses, 0, "{:?}", report.hier);
}

/// Structural errors propagate instead of panicking or truncating.
#[test]
fn invalid_hierarchies_are_structured_errors() {
    let mut h = HierLayout::new();
    let a = h.add_cell(Cell::new("A"));
    let b = h.add_cell(Cell::new("B"));
    h.cells[a].instances.push(Instance {
        cell: b,
        placement: Placement::IDENTITY,
    });
    h.cells[b].instances.push(Instance {
        cell: a,
        placement: Placement::IDENTITY,
    });
    h.top = Some(a);
    let rules = DesignRules::default();
    let err = detect_hier(&h, &rules, &DetectConfig::default());
    assert!(err.is_err(), "reference cycle must be rejected");
}
