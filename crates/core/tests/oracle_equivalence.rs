//! Adversarial cross-validation of [`BipartizeMethod::OptimalDual`]
//! against three *independent* brute-force oracles on small random
//! embedded graphs, across parallelism 0/1/2/4:
//!
//! 1. **Minimum odd-cycle cover by subset enumeration**: every edge
//!    subset is tested for leaving a bipartite remainder with a parity
//!    union-find (a different bipartiteness checker than the BFS
//!    two-coloring the production pipeline asserts with).
//! 2. **Dual T-join by subset enumeration** (`aapsm_tjoin::brute`): the
//!    paper's reduction re-derived in the test — trace faces, build the
//!    geometric dual, T = odd faces — and solved by enumerating dual edge
//!    subsets, validating both the reduction and the solvers.
//! 3. **T-pair matching** (`aapsm_matching::exhaustive`): the classical
//!    theorem that a minimum T-join weighs exactly as much as a minimum
//!    perfect matching of T under the shortest-path metric (non-negative
//!    weights), with all-pairs distances by Floyd–Warshall and the
//!    matching by exhaustive subset DP.
//!
//! Every oracle must agree with every configuration (both decomposition
//! modes; gadget, shortest-path and auto-selected T-join engines; every
//! parallelism degree) on total weight, and every returned deletion set
//! must actually leave the graph bipartite.

use aapsm_core::{bipartize_with, BipartizeMethod, GadgetKind, TJoinMethod};
use aapsm_graph::{
    build_dual, planarize, trace_faces, two_color_excluding, EdgeId, EmbeddedGraph,
    ParityUnionFind, PlanarizeOrder,
};
use aapsm_matching::exhaustive;
use aapsm_tjoin::{brute::solve_brute, TJoinInstance};
use proptest::prelude::*;

const DEGREES: [usize; 4] = [0, 1, 2, 4];

/// A small random planarized multigraph (≤ 14 alive edges, so subset
/// enumeration stays ≤ 2¹⁴).
fn small_plane_graph() -> impl Strategy<Value = EmbeddedGraph> {
    let node = (-300i64..300, -300i64..300);
    (
        proptest::collection::vec(node, 3..9),
        proptest::collection::vec((0usize..9, 0usize..9, 1i64..30), 1..15),
    )
        .prop_map(|(pts, raw_edges)| {
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = pts
                .into_iter()
                .map(|(x, y)| g.add_node(aapsm_geom::Point::new(x, y)))
                .collect();
            g.nudge_duplicate_positions();
            for (u, v, w) in raw_edges {
                let (u, v) = (u % nodes.len(), v % nodes.len());
                if u != v {
                    g.add_edge(nodes[u], nodes[v], w);
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            g
        })
}

/// Oracle 1: minimum-weight edge set whose removal leaves the alive
/// subgraph bipartite, by full subset enumeration with a parity
/// union-find bipartiteness check.
fn oracle_cover_weight(g: &EmbeddedGraph) -> i64 {
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    let m = alive.len();
    assert!(m <= 20, "oracle limited to 20 edges");
    let mut best = i64::MAX;
    'subsets: for mask in 0u32..(1 << m) {
        let mut weight = 0i64;
        for (i, &e) in alive.iter().enumerate() {
            if mask & (1 << i) != 0 {
                weight += g.weight(e);
                if weight >= best {
                    continue 'subsets;
                }
            }
        }
        let mut uf = ParityUnionFind::new(g.node_count());
        for (i, &e) in alive.iter().enumerate() {
            if mask & (1 << i) == 0 {
                let (u, v) = g.endpoints(e);
                if uf.union(u.index(), v.index(), 1).is_err() {
                    continue 'subsets;
                }
            }
        }
        best = weight;
    }
    best
}

/// The whole-graph dual T-join instance of the paper's reduction
/// (T = odd faces, bridges excluded), plus the primal weight of an empty
/// dual: `None` when the graph is already bipartite everywhere.
fn dual_instance(g: &EmbeddedGraph) -> Option<TJoinInstance> {
    let faces = trace_faces(g);
    let dual = build_dual(g, &faces);
    if dual.t_set().is_empty() {
        return None;
    }
    let edges: Vec<(usize, usize, i64)> = dual
        .edges
        .iter()
        .map(|de| (de.a as usize, de.b as usize, de.weight))
        .collect();
    Some(TJoinInstance::new(dual.face_count, edges, dual.odd_face.clone()).expect("well-formed"))
}

/// Oracle 2: the dual T-join solved by subset enumeration.
fn oracle_tjoin_weight(inst: &TJoinInstance) -> i64 {
    solve_brute(inst)
        .expect("odd faces come in even numbers per component")
        .weight
}

/// Oracle 3: minimum perfect matching of T under the shortest-path
/// metric (Floyd–Warshall over the dual). Returns `None` when T is too
/// large for the exhaustive DP.
fn oracle_matching_weight(inst: &TJoinInstance) -> Option<i64> {
    let n = inst.node_count();
    let t_nodes: Vec<usize> = (0..n).filter(|&v| inst.t_set()[v]).collect();
    if t_nodes.len() > 12 {
        return None;
    }
    const INF: i64 = i64::MAX / 4;
    let mut dist = vec![vec![INF; n]; n];
    for (v, row) in dist.iter_mut().enumerate() {
        row[v] = 0;
    }
    for &(u, v, w) in inst.edges() {
        dist[u][v] = dist[u][v].min(w);
        dist[v][u] = dist[v][u].min(w);
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                if dist[i][k] + dist[k][j] < dist[i][j] {
                    dist[i][j] = dist[i][k] + dist[k][j];
                }
            }
        }
    }
    let mut pair_edges = Vec::new();
    for a in 0..t_nodes.len() {
        for b in a + 1..t_nodes.len() {
            let d = dist[t_nodes[a]][t_nodes[b]];
            if d < INF {
                pair_edges.push((a, b, d));
            }
        }
    }
    let matching = exhaustive::min_weight_perfect_matching(t_nodes.len(), &pair_edges)
        .expect("T is even per component, so a finite perfect matching exists");
    Some(matching.weight)
}

fn configs() -> Vec<BipartizeMethod> {
    let mut out = Vec::new();
    for blocks in [false, true] {
        for tjoin in [
            TJoinMethod::Gadget(GadgetKind::default()),
            TJoinMethod::ShortestPath,
            TJoinMethod::Auto,
        ] {
            out.push(BipartizeMethod::OptimalDual { tjoin, blocks });
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every optimal-dual configuration, at every parallelism degree,
    /// matches all three oracles on total weight, returns the identical
    /// deleted set across degrees, and actually bipartizes the graph.
    #[test]
    fn optimal_dual_matches_brute_force_oracles(g in small_plane_graph()) {
        let cover = oracle_cover_weight(&g);
        if let Some(inst) = dual_instance(&g) {
            let tjoin = oracle_tjoin_weight(&inst);
            prop_assert_eq!(
                tjoin, cover,
                "dual T-join reduction diverged from the direct cover oracle"
            );
            if let Some(matching) = oracle_matching_weight(&inst) {
                prop_assert_eq!(matching, cover, "T-pair matching oracle diverged");
            }
        } else {
            prop_assert_eq!(cover, 0, "no odd faces but a non-empty cover");
        }
        for method in configs() {
            let serial = bipartize_with(&g, method, 1);
            prop_assert_eq!(
                serial.weight, cover,
                "{:?}: optimal weight diverged from the cover oracle", method
            );
            prop_assert!(
                two_color_excluding(&g, &serial.deleted).is_ok(),
                "{:?}: deleted set does not bipartize", method
            );
            for parallelism in DEGREES {
                let par = bipartize_with(&g, method, parallelism);
                prop_assert_eq!(
                    &par.deleted, &serial.deleted,
                    "{:?}: deleted set diverged at parallelism {}", method, parallelism
                );
                prop_assert_eq!(par.weight, serial.weight);
            }
        }
    }
}

/// Deterministic adversarial shapes the random strategy is unlikely to
/// hit: interleaved components, a bridge forest hanging off odd cycles,
/// and parallel edges forming even 2-cycles next to an odd triangle.
#[test]
fn oracle_agreement_on_adversarial_shapes() {
    use aapsm_geom::Point;
    let p = Point::new;
    let mut shapes: Vec<(&str, EmbeddedGraph)> = Vec::new();

    // Two interleaved triangles (edge ids alternate components).
    let mut g = EmbeddedGraph::new();
    let a0 = g.add_node(p(0, 0));
    let b0 = g.add_node(p(100, 0));
    let c0 = g.add_node(p(50, 80));
    let a1 = g.add_node(p(10_000, 0));
    let b1 = g.add_node(p(10_100, 0));
    let c1 = g.add_node(p(10_050, 80));
    g.add_edge(a0, b0, 7);
    g.add_edge(a1, b1, 2);
    g.add_edge(b0, c0, 5);
    g.add_edge(b1, c1, 9);
    g.add_edge(c0, a0, 3);
    g.add_edge(c1, a1, 4);
    {
        let inst = dual_instance(&g).expect("triangles have odd faces");
        assert_eq!(
            aapsm_core::select_method(&inst),
            TJoinMethod::ShortestPath,
            "sparse-T shape must auto-select the metric closure"
        );
    }
    shapes.push(("interleaved triangles", g));

    // An odd triangle with a pendant tree (bridges must never be chosen).
    let mut g = EmbeddedGraph::new();
    let a = g.add_node(p(0, 0));
    let b = g.add_node(p(100, 0));
    let c = g.add_node(p(50, 80));
    let d = g.add_node(p(200, 10));
    let e = g.add_node(p(300, -20));
    g.add_edge(a, b, 10);
    g.add_edge(b, c, 10);
    g.add_edge(c, a, 1);
    g.add_edge(b, d, 1); // bridge, cheaper than every cycle edge
    g.add_edge(d, e, 1); // bridge
    shapes.push(("triangle with pendant tree", g));

    // Bowtie: two odd triangles sharing one articulation node, so the
    // component and block decompositions produce different instance
    // shapes with the same optimum.
    let mut g = EmbeddedGraph::new();
    let m = g.add_node(p(0, 0));
    let a = g.add_node(p(-100, 50));
    let b = g.add_node(p(-100, -50));
    let c = g.add_node(p(100, 50));
    let d = g.add_node(p(100, -50));
    g.add_edge(m, a, 4);
    g.add_edge(a, b, 6);
    g.add_edge(b, m, 5);
    g.add_edge(m, c, 3);
    g.add_edge(c, d, 8);
    g.add_edge(d, m, 7);
    shapes.push(("bowtie", g));

    // Bipartite square: no odd faces at all, so the dual T-join has
    // |T| = 0 and every method must return an empty zero-weight answer.
    let mut g = EmbeddedGraph::new();
    let a = g.add_node(p(0, 0));
    let b = g.add_node(p(100, 0));
    let c = g.add_node(p(100, 100));
    let d = g.add_node(p(0, 100));
    g.add_edge(a, b, 2);
    g.add_edge(b, c, 3);
    g.add_edge(c, d, 4);
    g.add_edge(d, a, 5);
    shapes.push(("bipartite square", g));

    // Dense-|T| fan: apex over a path of 8 nodes makes 7 odd triangle
    // faces plus an odd (9-edge) outer face, so |T| = 8 against 15 dual
    // edges — the K_|T| closure instance out-sizes the dual and the
    // auto-selection must keep the gadget here. The sparse shapes above
    // sit on the other side of the threshold.
    let mut g = EmbeddedGraph::new();
    let apex = g.add_node(p(350, -200));
    let path: Vec<_> = (0..8).map(|i| g.add_node(p(i * 100, 0))).collect();
    for w in path.windows(2) {
        g.add_edge(w[0], w[1], 2);
    }
    for (i, &u) in path.iter().enumerate() {
        g.add_edge(apex, u, 3 + i as i64);
    }
    {
        let inst = dual_instance(&g).expect("fan has odd faces");
        assert_eq!(
            aapsm_core::select_method(&inst),
            TJoinMethod::Gadget(GadgetKind::default()),
            "dense fan must auto-select the gadget"
        );
    }
    shapes.push(("dense-T fan", g));

    for (name, g) in shapes {
        let cover = oracle_cover_weight(&g);
        match dual_instance(&g) {
            Some(inst) => {
                assert_eq!(oracle_tjoin_weight(&inst), cover, "{name}: T-join oracle");
                assert_eq!(
                    oracle_matching_weight(&inst),
                    Some(cover),
                    "{name}: matching oracle"
                );
            }
            None => assert_eq!(cover, 0, "{name}: bipartite shape must cost 0"),
        }
        for method in configs() {
            for parallelism in DEGREES {
                let out = bipartize_with(&g, method, parallelism);
                assert_eq!(out.weight, cover, "{name}: {method:?} p={parallelism}");
                assert!(two_color_excluding(&g, &out.deleted).is_ok(), "{name}");
            }
        }
    }
}
