//! Edge cases of [`run_flow`]'s budget and round accounting: a zero
//! round cap, a deadline already expired at entry, cooperative
//! cancellation, and a work cap that trips exactly between rounds.

use aapsm_core::{
    run_flow, BudgetSpec, BudgetStage, DetectConfig, ExhaustReason, FlowConfig, FlowError,
    RedetectEngine, StageProvenance,
};
use aapsm_layout::{fixtures, DesignRules};
use std::time::Duration;

#[test]
fn max_rounds_zero_behaves_as_one_round() {
    // `max_rounds: 0` is clamped to one correction round — the flow
    // always detects at least once and corrects what it found.
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    let zero = run_flow(
        &layout,
        &rules,
        &FlowConfig {
            max_rounds: 0,
            ..FlowConfig::default()
        },
    )
    .unwrap();
    let one = run_flow(
        &layout,
        &rules,
        &FlowConfig {
            max_rounds: 1,
            ..FlowConfig::default()
        },
    )
    .unwrap();
    assert_eq!(zero.round_count(), one.round_count());
    assert_eq!(zero.correction.modified, one.correction.modified);
    assert_eq!(zero.verified, one.verified);
    assert!(zero.rounds[0].cuts >= 1, "rounds: {:?}", zero.rounds);
}

#[test]
fn expired_deadline_at_entry_is_a_budget_error() {
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    let budget = BudgetSpec {
        deadline: Some(Duration::ZERO),
        ..BudgetSpec::default()
    }
    .build();
    match run_flow(&layout, &rules, &FlowConfig::with_budget(budget)) {
        Err(FlowError::Budget(e)) => assert_eq!(e.reason, ExhaustReason::Deadline),
        other => panic!("expected an entry budget error, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_budget_is_a_budget_error() {
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    let budget = BudgetSpec::default().build();
    budget.cancel_token().expect("spec-built").cancel();
    match run_flow(&layout, &rules, &FlowConfig::with_budget(budget)) {
        Err(FlowError::Budget(e)) => assert_eq!(e.reason, ExhaustReason::Cancelled),
        other => panic!("expected a cancellation error, got {other:?}"),
    }
}

#[test]
fn work_cap_exhausted_mid_flow_returns_truthful_partial_result() {
    // Calibrate: measure exactly how many graph-build ticks the *first*
    // detection charges, then cap the flow budget at that number. Round
    // 1 (detect + correct) fits; round 2's incremental re-detect must
    // rebuild at least one tile, over-draws, and trips.
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    let probe = BudgetSpec::default().build();
    let mut engine = RedetectEngine::new(
        rules,
        DetectConfig {
            budget: probe.clone(),
            ..DetectConfig::default()
        },
    );
    engine.try_detect_full(&layout).expect("uncapped probe");
    let first_round_ticks = probe.used(BudgetStage::GraphBuild);
    assert!(first_round_ticks > 0, "the fixture charges tile builds");

    let budget = BudgetSpec {
        graph_build_ticks: Some(first_round_ticks),
        ..BudgetSpec::default()
    }
    .build();
    let res = run_flow(&layout, &rules, &FlowConfig::with_budget(budget.clone()))
        .expect("mid-flow exhaustion degrades, it does not error");

    // Round 1 completed exactly and planned cuts; the final round is a
    // truthfully skipped stub (the budget stopped re-verification).
    assert!(!res.verified);
    assert!(!res.all_exact(), "provenance: {:?}", res.provenance);
    assert_eq!(res.round_count(), 2, "rounds: {:?}", res.rounds);
    assert!(res.rounds[0].cuts >= 1);
    assert!(res.provenance[0].build.is_exact());
    assert!(res.provenance[0].bipartize.is_exact());
    let last = res.provenance.last().unwrap();
    for stage in [&last.build, &last.bipartize, &last.correct] {
        assert!(
            matches!(stage, StageProvenance::Skipped(reason) if reason.contains("budget")),
            "provenance: {:?}",
            res.provenance
        );
    }
    // The partial result still carries the applied round-1 cuts.
    assert_ne!(res.correction.modified, layout);
    // And the trip really was the work cap, spent past the calibration.
    assert!(budget.used(BudgetStage::GraphBuild) > first_round_ticks);
}
