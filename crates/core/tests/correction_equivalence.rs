//! Property tests of the decompose-then-solve correction planner:
//!
//! * **Parallel equivalence** — `plan_correction` is bit-identical (the
//!   whole [`CorrectionPlan`], not merely the weight) across `parallelism`
//!   ∈ {0, 1, 2, 4} on fixtures and random synthetic layouts, mirroring
//!   the detection-side suites in `parallel_equivalence.rs`.
//! * **Coverage soundness** — every conflict the plan claims in
//!   [`CorrectionPlan::corrected`] is actually resolved: after
//!   `apply_correction` + re-extraction of the modified layout, no overlap
//!   between the same two shifters (identified by their stable
//!   `(feature, side)` keys — cuts never change feature order or
//!   criticality) survives. Cut-*created* conflicts are legal (the
//!   multi-round flow handles them); covered-but-surviving ones are not.
//! * **Truth-telling** — `cover_optimal` is monotone in the node budget
//!   and never `true` when any component was truncated or solved greedily.

use aapsm_core::{
    detect_conflicts, plan_correction, ConstraintKind, CorrectionOptions, CorrectionPlan,
    DetectConfig,
};
use aapsm_layout::synth::{generate, SynthParams};
use aapsm_layout::{
    apply_cuts, extract_phase_geometry, fixtures, DesignRules, Layout, PhaseGeometry, Side,
};
use proptest::prelude::*;

const DEGREES: [usize; 4] = [0, 1, 2, 4];

/// A random conflict-rich synthetic layout.
fn synth_layout() -> impl Strategy<Value = Layout> {
    (0u64..1_000_000, 1usize..=3, 10usize..=30).prop_map(|(seed, rows, gates)| {
        generate(
            &SynthParams {
                rows,
                gates_per_row: gates,
                strap_frac: 0.7,
                jog_frac: 0.08,
                short_mid_frac: 0.06,
                seed,
                ..SynthParams::default()
            },
            &DesignRules::default(),
        )
    })
}

fn fixture_layouts(rules: &DesignRules) -> Vec<(&'static str, Layout)> {
    vec![
        ("gate_over_strap", fixtures::gate_over_strap(rules)),
        ("stacked_jog", fixtures::stacked_jog(rules)),
        ("short_middle_wire", fixtures::short_middle_wire(rules)),
        ("strap_under_bus", fixtures::strap_under_bus(6, rules)),
        ("diagonal_jog", fixtures::diagonal_jog(rules)),
        (
            "corridor_unblock",
            fixtures::corridor_unblock_two_round(rules),
        ),
    ]
}

/// Plans at every parallelism degree and asserts bit-identical plans;
/// returns the serial plan.
fn plan_all_degrees(
    geom: &PhaseGeometry,
    conflicts: &[aapsm_core::Conflict],
    rules: &DesignRules,
    name: &str,
) -> CorrectionPlan {
    let base = plan_correction(
        geom,
        conflicts,
        rules,
        &CorrectionOptions {
            parallelism: 1,
            ..CorrectionOptions::default()
        },
    );
    for parallelism in DEGREES {
        let plan = plan_correction(
            geom,
            conflicts,
            rules,
            &CorrectionOptions {
                parallelism,
                ..CorrectionOptions::default()
            },
        );
        assert_eq!(plan, base, "{name}: parallelism {parallelism} diverged");
    }
    base
}

/// Asserts that no conflict claimed as corrected survives re-extraction of
/// the cut layout. Shifters are identified by `(feature, side)`: cuts
/// preserve rect order and criticality, so feature indices are stable.
fn assert_corrected_conflicts_resolved(
    layout: &Layout,
    geom: &PhaseGeometry,
    conflicts: &[aapsm_core::Conflict],
    plan: &CorrectionPlan,
    rules: &DesignRules,
    name: &str,
) {
    if plan.cuts.is_empty() {
        return;
    }
    let modified = apply_cuts(layout, &plan.cuts);
    let new_geom = extract_phase_geometry(&modified, rules);
    assert_eq!(
        geom.features.len(),
        new_geom.features.len(),
        "{name}: cuts must not change the feature set"
    );
    let key = |g: &PhaseGeometry, s: usize| -> (usize, Side) {
        (g.shifters[s].feature, g.shifters[s].side)
    };
    let surviving: std::collections::HashSet<((usize, Side), (usize, Side))> = new_geom
        .overlaps
        .iter()
        .map(|o| (key(&new_geom, o.a), key(&new_geom, o.b)))
        .collect();
    for &ci in &plan.corrected {
        let ConstraintKind::Overlap(oi) = conflicts[ci].constraint else {
            panic!("{name}: only overlaps are correctable");
        };
        let o = &geom.overlaps[oi];
        let pair = (key(geom, o.a), key(geom, o.b));
        assert!(
            !surviving.contains(&pair) && !surviving.contains(&(pair.1, pair.0)),
            "{name}: corrected conflict {ci} (shifters {:?}) survives the cuts",
            pair
        );
    }
}

#[test]
fn planner_parallel_equivalence_and_coverage_on_fixtures() {
    let rules = DesignRules::default();
    for (name, layout) in fixture_layouts(&rules) {
        let geom = extract_phase_geometry(&layout, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_all_degrees(&geom, &report.conflicts, &rules, name);
        assert_corrected_conflicts_resolved(&layout, &geom, &report.conflicts, &plan, &rules, name);
    }
}

#[test]
fn cover_optimality_is_monotone_in_the_node_budget_on_fixtures() {
    let rules = DesignRules::default();
    for (name, layout) in fixture_layouts(&rules) {
        let geom = extract_phase_geometry(&layout, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let mut prev_proven = 0usize;
        for budget in [1u64, 16, 256, 200_000] {
            let plan = plan_correction(
                &geom,
                &report.conflicts,
                &rules,
                &CorrectionOptions {
                    exact_node_limit: budget,
                    ..CorrectionOptions::default()
                },
            );
            assert!(
                plan.cover_optimal_components >= prev_proven,
                "{name}: raising the budget to {budget} lost proven components"
            );
            assert_eq!(
                plan.cover_optimal,
                plan.cover_optimal_components == plan.cover_components,
                "{name}: cover_optimal must equal all-components-proven"
            );
            prev_proven = plan.cover_optimal_components;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random synthetic layouts: plans are bit-identical at every
    /// parallelism degree, and no corrected conflict survives the cuts.
    #[test]
    fn planner_equivalence_and_coverage_on_synth(layout in synth_layout()) {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(&layout, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_all_degrees(&geom, &report.conflicts, &rules, "synth");
        prop_assert!(plan.cover_optimal_components <= plan.cover_components);
        assert_corrected_conflicts_resolved(
            &layout,
            &geom,
            &report.conflicts,
            &plan,
            &rules,
            "synth",
        );
    }

    /// The end-to-end flow stays bit-identical across parallelism degrees
    /// now that the planner (not only detection) honors the knob.
    #[test]
    fn flow_bit_identical_across_degrees(layout in synth_layout()) {
        use aapsm_core::{run_flow, FlowConfig};
        let rules = DesignRules::default();
        let base = run_flow(&layout, &rules, &FlowConfig::default());
        for parallelism in DEGREES {
            let config = FlowConfig {
                detect: DetectConfig { parallelism, ..DetectConfig::default() },
                ..FlowConfig::default()
            };
            let res = run_flow(&layout, &rules, &config);
            match (&base, &res) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(&a.plan, &b.plan);
                    prop_assert_eq!(&a.correction.modified, &b.correction.modified);
                    prop_assert_eq!(a.verified, b.verified);
                    prop_assert_eq!(a.round_count(), b.round_count());
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "flow feasibility diverged across degrees"),
            }
        }
    }
}
