//! Property tests: every parallel path of the detection pipeline is
//! bit-identical to its serial counterpart — same bytes, not merely the
//! same weight — across random synthetic layouts and `parallelism`
//! ∈ {1, 2, 4, 8} (plus `0` = auto):
//!
//! * the sharded crossing sweep (`crossing_pairs_par`),
//! * the sharded merge-constraint scan (`extract_phase_geometry_par`),
//! * the tile-sharded conflict-graph build (`build_conflict_graph_tiled`),
//! * the crossing sweep feeding planarization (`planarize_graph_par`),
//! * the decompose-then-solve bipartization (`bipartize_with`), both
//!   decomposition modes and every T-join engine,
//! * and the end-to-end `detect_conflicts` report.

use aapsm_core::{
    bipartize_with, build_conflict_graph, build_conflict_graph_tiled, detect_conflicts,
    planarize_graph, planarize_graph_par, BipartizeMethod, DetectConfig, GadgetKind, GraphKind,
    TJoinMethod, TileConfig,
};
use aapsm_graph::{
    build_dual, build_dual_par, crossing_pairs, crossing_pairs_par, trace_faces, trace_faces_par,
    EmbeddedGraph, PlanarizeOrder,
};
use aapsm_layout::synth::{generate, SynthParams};
use aapsm_layout::{extract_phase_geometry, extract_phase_geometry_par, DesignRules, Layout};
use proptest::prelude::*;

const DEGREES: [usize; 4] = [0, 2, 4, 8];

/// A random conflict-rich synthetic layout.
fn synth_layout() -> impl Strategy<Value = Layout> {
    (0u64..1_000_000, 1usize..=3, 10usize..=30).prop_map(|(seed, rows, gates)| {
        generate(
            &SynthParams {
                rows,
                gates_per_row: gates,
                strap_frac: 0.7,
                jog_frac: 0.08,
                short_mid_frac: 0.06,
                seed,
                ..SynthParams::default()
            },
            &DesignRules::default(),
        )
    })
}

/// A planarized phase conflict graph from a seeded synthetic layout.
fn planarized_pcg() -> impl Strategy<Value = EmbeddedGraph> {
    synth_layout().prop_map(|layout| {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(&layout, &rules);
        let mut cg = build_conflict_graph(&geom, GraphKind::PhaseConflict);
        planarize_graph(&mut cg, PlanarizeOrder::MinWeightFirst);
        cg.graph
    })
}

fn methods() -> Vec<TJoinMethod> {
    vec![
        TJoinMethod::Gadget(GadgetKind::Complete),
        TJoinMethod::Gadget(GadgetKind::Optimized),
        TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 8 }),
        TJoinMethod::ShortestPath,
    ]
}

/// The parallel face trace and dual build are bit-identical to serial on
/// fixture-derived planarized phase conflict graphs — the production graph
/// shapes, complementing the adversarial synthetic graphs of
/// `crates/graph/tests/proptest_graph.rs` and `embed.rs`.
#[test]
fn face_dual_parallel_matches_serial_on_fixtures() {
    use aapsm_layout::fixtures;
    let rules = DesignRules::default();
    for (name, layout) in [
        ("gate_over_strap", fixtures::gate_over_strap(&rules)),
        ("stacked_jog", fixtures::stacked_jog(&rules)),
        ("strap_under_bus", fixtures::strap_under_bus(6, &rules)),
        ("short_middle_wire", fixtures::short_middle_wire(&rules)),
        ("wire_row", fixtures::wire_row(8, 600)),
    ] {
        let geom = extract_phase_geometry(&layout, &rules);
        for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
            let mut cg = build_conflict_graph(&geom, kind);
            planarize_graph(&mut cg, PlanarizeOrder::MinWeightFirst);
            let serial = trace_faces(&cg.graph);
            serial
                .validate(&cg.graph)
                .unwrap_or_else(|e| panic!("{name}/{kind:?}: serial trace invalid: {e}"));
            let dual_serial = build_dual(&cg.graph, &serial);
            for parallelism in DEGREES {
                let par = trace_faces_par(&cg.graph, parallelism);
                assert_eq!(
                    par, serial,
                    "{name}/{kind:?}: trace diverged at {parallelism}"
                );
                let dual_par = build_dual_par(&cg.graph, &par, parallelism);
                assert_eq!(
                    dual_par, dual_serial,
                    "{name}/{kind:?}: dual diverged at {parallelism}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial (1), bounded (4) and auto (0) parallelism agree exactly.
    #[test]
    fn parallel_matches_serial(g in planarized_pcg()) {
        for blocks in [false, true] {
            for tjoin in methods() {
                let method = BipartizeMethod::OptimalDual { tjoin, blocks };
                let serial = bipartize_with(&g, method, 1);
                for parallelism in [0usize, 2, 4] {
                    let par = bipartize_with(&g, method, parallelism);
                    prop_assert_eq!(
                        &serial.deleted,
                        &par.deleted,
                        "deleted sets diverge: blocks={} tjoin={:?} parallelism={}",
                        blocks,
                        tjoin,
                        parallelism
                    );
                    prop_assert_eq!(serial.weight, par.weight);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The sharded merge-constraint scan of phase-geometry extraction is
    /// bit-identical to serial at every parallelism degree.
    #[test]
    fn parallel_extraction_matches_serial(layout in synth_layout()) {
        let rules = DesignRules::default();
        let serial = extract_phase_geometry(&layout, &rules);
        for parallelism in DEGREES {
            let par = extract_phase_geometry_par(&layout, &rules, parallelism);
            prop_assert_eq!(&par, &serial, "parallelism {}", parallelism);
        }
    }

    /// The sharded crossing sweep is bit-identical to serial on both
    /// conflict-graph reductions, and so is the planarization built on it.
    #[test]
    fn parallel_crossing_sweep_matches_serial(layout in synth_layout()) {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(&layout, &rules);
        for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
            let cg = build_conflict_graph(&geom, kind);
            let serial = crossing_pairs(&cg.graph);
            for parallelism in DEGREES {
                prop_assert_eq!(
                    &crossing_pairs_par(&cg.graph, parallelism),
                    &serial,
                    "{:?} parallelism {}",
                    kind,
                    parallelism
                );
            }
            let mut serial_cg = cg.clone();
            let serial_removed = planarize_graph(&mut serial_cg, PlanarizeOrder::MinWeightFirst);
            for parallelism in DEGREES {
                let mut par_cg = cg.clone();
                let par_removed =
                    planarize_graph_par(&mut par_cg, PlanarizeOrder::MinWeightFirst, parallelism);
                prop_assert_eq!(&par_removed, &serial_removed);
                prop_assert_eq!(&par_cg, &serial_cg);
            }
        }
    }

    /// The tile-sharded conflict-graph build stitches to a graph
    /// bit-identical to the serial builders for every tile count and
    /// parallelism degree, on both reductions.
    #[test]
    fn tiled_build_matches_serial(layout in synth_layout()) {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(&layout, &rules);
        for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
            let serial = build_conflict_graph(&geom, kind);
            for tiles in [0usize, 1, 3, 6] {
                for parallelism in DEGREES {
                    let cfg = TileConfig { tiles, parallelism };
                    let tiled = build_conflict_graph_tiled(&geom, kind, &cfg);
                    prop_assert_eq!(
                        &tiled,
                        &serial,
                        "{:?} tiles {} parallelism {}",
                        kind,
                        tiles,
                        parallelism
                    );
                }
            }
        }
    }

    /// End to end: the full detection report is identical at every
    /// parallelism degree (conflicts, sources, weights and counts).
    #[test]
    fn parallel_detection_matches_serial(layout in synth_layout()) {
        let rules = DesignRules::default();
        let serial_geom = extract_phase_geometry(&layout, &rules);
        let serial = detect_conflicts(&serial_geom, &DetectConfig::default());
        for parallelism in DEGREES {
            let geom = extract_phase_geometry_par(&layout, &rules, parallelism);
            prop_assert_eq!(&geom, &serial_geom);
            let report = detect_conflicts(
                &geom,
                &DetectConfig {
                    parallelism,
                    ..DetectConfig::default()
                },
            );
            prop_assert_eq!(&report.conflicts, &serial.conflicts, "parallelism {}", parallelism);
        }
    }
}
