//! Property test: the parallel decompose-then-solve bipartization is
//! bit-identical to the serial path — same deleted edge set (not merely
//! the same weight) — across synthetic layouts, both decomposition modes
//! and every T-join engine.

use aapsm_core::{
    bipartize_with, build_conflict_graph, planarize_graph, BipartizeMethod, GadgetKind, GraphKind,
    TJoinMethod,
};
use aapsm_graph::{EmbeddedGraph, PlanarizeOrder};
use aapsm_layout::synth::{generate, SynthParams};
use aapsm_layout::{extract_phase_geometry, DesignRules};
use proptest::prelude::*;

/// A planarized phase conflict graph from a seeded synthetic layout.
fn planarized_pcg() -> impl Strategy<Value = EmbeddedGraph> {
    (0u64..1_000_000, 1usize..=3, 10usize..=30).prop_map(|(seed, rows, gates)| {
        let rules = DesignRules::default();
        let layout = generate(
            &SynthParams {
                rows,
                gates_per_row: gates,
                strap_frac: 0.7,
                jog_frac: 0.08,
                short_mid_frac: 0.06,
                seed,
                ..SynthParams::default()
            },
            &rules,
        );
        let geom = extract_phase_geometry(&layout, &rules);
        let mut cg = build_conflict_graph(&geom, GraphKind::PhaseConflict);
        planarize_graph(&mut cg, PlanarizeOrder::MinWeightFirst);
        cg.graph
    })
}

fn methods() -> Vec<TJoinMethod> {
    vec![
        TJoinMethod::Gadget(GadgetKind::Complete),
        TJoinMethod::Gadget(GadgetKind::Optimized),
        TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 8 }),
        TJoinMethod::ShortestPath,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Serial (1), bounded (4) and auto (0) parallelism agree exactly.
    #[test]
    fn parallel_matches_serial(g in planarized_pcg()) {
        for blocks in [false, true] {
            for tjoin in methods() {
                let method = BipartizeMethod::OptimalDual { tjoin, blocks };
                let serial = bipartize_with(&g, method, 1);
                for parallelism in [0usize, 2, 4] {
                    let par = bipartize_with(&g, method, parallelism);
                    prop_assert_eq!(
                        &serial.deleted,
                        &par.deleted,
                        "deleted sets diverge: blocks={} tjoin={:?} parallelism={}",
                        blocks,
                        tjoin,
                        parallelism
                    );
                    prop_assert_eq!(serial.weight, par.weight);
                }
            }
        }
    }
}
