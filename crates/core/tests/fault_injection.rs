//! The never-silently-wrong property of the fault-tolerant flow.
//!
//! Every deterministic fault a [`FaultPlan`] can inject — a worker panic
//! at the n-th instrumented site, a persistent panic at every occurrence,
//! a forced budget exhaustion from the n-th charge of a stage — must
//! leave [`run_flow`] in one of exactly two states:
//!
//! 1. a **complete** result, bit-identical to the fault-free baseline
//!    (the fault was healed, e.g. by the per-item retry of
//!    `par_map_indexed`), with all-exact provenance; or
//! 2. a **truthfully flagged** outcome: degraded/skipped provenance, a
//!    `verified == false` partial result, or a structured error
//!    ([`FlowError::Budget`] / [`FlowError::WorkerPanic`]).
//!
//! A degraded answer masquerading as a proven one is the only forbidden
//! state, and whenever `verified` *is* claimed it is re-checked against
//! the independent constraint-propagation oracle
//! (`aapsm_layout::check_assignable`). Checked across parallelism
//! 0/1/2/4. GDS record corruption (the fourth fault site) is covered by
//! the `aapsm-gds` truncation/byte-flip suite.
//!
//! Fault occurrence indices vary with `AAPSM_FAULT_SEED` (default 42),
//! which CI sweeps over several values. The hooks are compiled out in
//! release builds, so this whole suite is debug-only.
#![cfg(debug_assertions)]

use aapsm_core::{run_flow, BudgetSpec, ExhaustReason, FlowConfig, FlowError, FlowResult};
use aapsm_fault::{with_plan, FaultPlan, FaultSite, Stage};
use aapsm_layout::{check_assignable, extract_phase_geometry, fixtures, DesignRules, Layout};

const PARALLELISM: [usize; 4] = [0, 1, 2, 4];
const SITES: [FaultSite; 3] = [
    FaultSite::TileBuild,
    FaultSite::EmbedComponent,
    FaultSite::CoverComponent,
];
const STAGES: [Stage; 4] = [
    Stage::GraphBuild,
    Stage::Embed,
    Stage::Matching,
    Stage::Cover,
];

fn seed() -> u64 {
    std::env::var("AAPSM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// A flow config with a fresh spec-built budget (injected exhaustion only
/// applies to limited budgets; `Budget::unlimited` stays infallible).
fn config(parallelism: usize) -> FlowConfig {
    let mut c = FlowConfig::with_budget(BudgetSpec::default().build());
    c.detect.parallelism = parallelism;
    c
}

fn assert_same(a: &FlowResult, b: &FlowResult, context: &str) {
    assert_eq!(
        a.detection.conflicts, b.detection.conflicts,
        "{context}: first-round conflicts differ"
    );
    assert_eq!(a.verified, b.verified, "{context}: verified differs");
    assert_eq!(
        a.correction.modified, b.correction.modified,
        "{context}: corrected layouts differ"
    );
    assert_eq!(
        a.assignment.phase, b.assignment.phase,
        "{context}: assignments differ"
    );
    assert_eq!(
        a.rounds.len(),
        b.rounds.len(),
        "{context}: round counts differ"
    );
    for (i, (x, y)) in a.rounds.iter().zip(&b.rounds).enumerate() {
        assert_eq!(x.conflicts, y.conflicts, "{context}: round {i} conflicts");
        assert_eq!(x.cuts, y.cuts, "{context}: round {i} cuts");
    }
    assert_eq!(a.provenance, b.provenance, "{context}: provenance differs");
}

/// The central invariant: complete ⇒ bit-identical; otherwise flagged.
fn assert_truthful(outcome: &Result<FlowResult, FlowError>, baseline: &FlowResult, context: &str) {
    match outcome {
        Ok(res) => {
            if res.all_exact() {
                assert_same(res, baseline, context);
            }
            if res.verified {
                // A claimed verification is re-proved by the independent
                // oracle on the layout actually returned.
                let geom =
                    extract_phase_geometry(&res.correction.modified, &DesignRules::default());
                assert!(
                    check_assignable(&geom).is_ok(),
                    "{context}: verified result fails the oracle"
                );
                assert!(
                    res.assignment.satisfies(&geom),
                    "{context}: assignment does not satisfy the geometry"
                );
            }
        }
        Err(FlowError::Budget(_) | FlowError::WorkerPanic(_)) => {}
        Err(other) => panic!("{context}: unexpected error class {other:?}"),
    }
}

fn fixture_suite(rules: &DesignRules) -> Vec<(&'static str, Layout)> {
    vec![
        ("bus", fixtures::strap_under_bus(5, rules)),
        ("two_round", fixtures::corridor_unblock_two_round(rules)),
    ]
}

#[test]
fn transient_panic_heals_to_bit_identical_result() {
    let rules = DesignRules::default();
    for (name, layout) in &fixture_suite(&rules) {
        for parallelism in PARALLELISM {
            let baseline = run_flow(layout, &rules, &config(parallelism)).unwrap();
            for site in SITES {
                // Occurrence 0 always fires; the seeded occurrence may
                // fall past the last hit (then nothing fires — the
                // invariant holds trivially).
                for occurrence in [0, seed() % 3] {
                    let context =
                        format!("{name}, parallelism {parallelism}, {site:?} hit {occurrence}");
                    let res = with_plan(
                        FaultPlan {
                            panic_at: Some((site, occurrence)),
                            ..FaultPlan::default()
                        },
                        || run_flow(layout, &rules, &config(parallelism)),
                    );
                    // A single panic is healed by the per-item retry:
                    // not merely truthful, the result is *complete*.
                    let res = res.unwrap_or_else(|e| panic!("{context}: not healed: {e}"));
                    assert!(res.all_exact(), "{context}: {:?}", res.provenance);
                    assert_same(&res, &baseline, &context);
                }
            }
        }
    }
}

#[test]
fn persistent_panic_surfaces_as_structured_error() {
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);
    for parallelism in PARALLELISM {
        for site in SITES {
            let context = format!("parallelism {parallelism}, {site:?} always panicking");
            let res = with_plan(
                FaultPlan {
                    panic_always: Some(site),
                    ..FaultPlan::default()
                },
                || run_flow(&layout, &rules, &config(parallelism)),
            );
            match res {
                Err(FlowError::WorkerPanic(msg)) => {
                    assert!(
                        msg.contains("injected fault"),
                        "{context}: message lost: {msg}"
                    );
                }
                other => panic!("{context}: expected WorkerPanic, got {other:?}"),
            }
        }
    }
}

#[test]
fn injected_exhaustion_is_never_silently_wrong() {
    let rules = DesignRules::default();
    for (name, layout) in &fixture_suite(&rules) {
        for parallelism in [0, 2] {
            let baseline = run_flow(layout, &rules, &config(parallelism)).unwrap();
            for stage in STAGES {
                for occurrence in [0, 1 + seed() % 4, 7 + seed() % 8] {
                    let context = format!(
                        "{name}, parallelism {parallelism}, exhaust {stage:?} from charge {occurrence}"
                    );
                    let res = with_plan(
                        FaultPlan {
                            exhaust_at: Some((stage, occurrence)),
                            ..FaultPlan::default()
                        },
                        || run_flow(layout, &rules, &config(parallelism)),
                    );
                    assert_truthful(&res, &baseline, &context);
                }
            }
        }
    }
}

#[test]
fn exhaustion_at_entry_and_ladder_rungs_are_reported() {
    let rules = DesignRules::default();
    let layout = fixtures::strap_under_bus(5, &rules);

    // Graph-build exhaustion from the very first check trips the entry
    // gate: the one stage with no degraded form aborts the flow.
    let res = with_plan(
        FaultPlan {
            exhaust_at: Some((Stage::GraphBuild, 0)),
            ..FaultPlan::default()
        },
        || run_flow(&layout, &rules, &config(0)),
    );
    match res {
        Err(FlowError::Budget(e)) => {
            assert_eq!(e.stage, Stage::GraphBuild);
            assert_eq!(e.reason, ExhaustReason::Injected);
        }
        other => panic!("expected an entry budget error, got {other:?}"),
    }

    // Embed exhaustion from charge 0: optimal bipartization falls back
    // to parity-greedy and says so in the provenance.
    let res = with_plan(
        FaultPlan {
            exhaust_at: Some((Stage::Embed, 0)),
            ..FaultPlan::default()
        },
        || run_flow(&layout, &rules, &config(0)),
    )
    .expect("bipartization degrades, it does not error");
    assert!(!res.all_exact(), "provenance: {:?}", res.provenance);
    assert!(
        !res.provenance[0].bipartize.is_exact(),
        "provenance: {:?}",
        res.provenance
    );

    // Cover exhaustion from charge 0: the planner keeps its greedy
    // incumbent and the round's correct stage reads Degraded.
    let res = with_plan(
        FaultPlan {
            exhaust_at: Some((Stage::Cover, 0)),
            ..FaultPlan::default()
        },
        || run_flow(&layout, &rules, &config(0)),
    )
    .expect("cover degrades, it does not error");
    assert!(!res.all_exact(), "provenance: {:?}", res.provenance);
    assert!(
        matches!(
            res.provenance[0].correct,
            aapsm_core::StageProvenance::Degraded(_)
        ),
        "provenance: {:?}",
        res.provenance
    );
}
