//! Minimum-weight graph bipartization.
//!
//! The optimal method is the paper's: per component of the plane drawing,
//! trace faces, build the geometric dual, and solve the T-join with
//! T = odd faces — which is exact for embedded planar graphs (Hadlock /
//! Kahng et al.). Greedy baselines (the paper's GB column and its
//! parity-aware strengthening) and a brute-force reference are included.

use aapsm_fault::{Budget, BudgetExceeded};
use aapsm_graph::{
    biconnected_components, component_embeddings_budgeted, greedy_parity_subgraph,
    max_weight_spanning_forest, two_color_excluding, EdgeId, EmbeddedGraph,
};
use aapsm_tjoin::{solve_budgeted, MatchingContext, TJoinError, TJoinInstance, TJoinMethod};

/// Bipartization algorithm selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BipartizeMethod {
    /// Optimal planar bipartization via the dual T-join; the inner
    /// T-join/matching machinery is pluggable (O-gadget, G-gadget,
    /// shortest path).
    OptimalDual {
        /// How to solve the dual T-joins.
        tjoin: TJoinMethod,
        /// Decompose per biconnected block instead of per connected
        /// component (ablation; identical results, different runtime).
        blocks: bool,
    },
    /// Maximum-weight spanning forest; all leftover edges deleted (the
    /// paper's literal GB baseline).
    GreedySpanning,
    /// Greedy with parity union-find: delete only edges that close odd
    /// cycles.
    GreedyParity,
}

impl Default for BipartizeMethod {
    fn default() -> Self {
        BipartizeMethod::OptimalDual {
            tjoin: TJoinMethod::default(),
            blocks: false,
        }
    }
}

/// Result of bipartization.
#[derive(Clone, Debug)]
pub struct BipartizeOutcome {
    /// Deleted edges (ascending id).
    pub deleted: Vec<EdgeId>,
    /// Their total weight.
    pub weight: i64,
}

/// Computes an edge set whose removal makes the alive subgraph bipartite.
///
/// For [`BipartizeMethod::OptimalDual`] the graph must be a plane drawing
/// (planarize first); the result is then a *minimum-weight* such set.
/// Edges are **not** killed in `g`.
///
/// Serial entry point; see [`bipartize_with`] for the parallel one (their
/// results are identical bit for bit).
///
/// # Panics
///
/// Panics if the optimal method is used on a drawing with crossings
/// (debug builds), or if an internal T-join turns out infeasible — which
/// cannot happen for duals of plane graphs.
pub fn bipartize(g: &EmbeddedGraph, method: BipartizeMethod) -> BipartizeOutcome {
    bipartize_with(g, method, 1)
}

/// [`bipartize`] with an explicit parallelism degree.
///
/// The optimal-dual path is a decompose-then-solve pipeline: every
/// independent dual T-join instance (one per component, or per biconnected
/// block) is extracted first, then the instances are solved on
/// `parallelism` worker threads, each holding its own reusable
/// [`MatchingContext`] arena. Deleted-edge sets are merged in instance
/// order and sorted by [`EdgeId`], so the outcome is **bit-identical to
/// the serial path** for every parallelism degree.
///
/// `parallelism` semantics: `0` = one worker per available CPU, `1` =
/// solve inline on the calling thread, `k` = at most `k` workers. The
/// greedy methods are inherently sequential and ignore the knob.
///
/// # Panics
///
/// Same contract as [`bipartize`].
pub fn bipartize_with(
    g: &EmbeddedGraph,
    method: BipartizeMethod,
    parallelism: usize,
) -> BipartizeOutcome {
    match method {
        BipartizeMethod::GreedySpanning => {
            let f = max_weight_spanning_forest(g);
            finish(g, f.leftover)
        }
        BipartizeMethod::GreedyParity => {
            let f = greedy_parity_subgraph(g);
            finish(g, f.leftover)
        }
        BipartizeMethod::OptimalDual { tjoin, blocks } => {
            match optimal_uncached_budgeted(g, tjoin, blocks, parallelism, &Budget::unlimited()) {
                Ok(outcome) => outcome,
                Err(_) => unreachable!("unlimited budget never trips"),
            }
        }
    }
}

/// Per-call solve-cache activity of one bipartization, for the caller's
/// statistics (zero for uncached runs).
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct CacheActivity {
    /// Instances answered from the cache in this call.
    pub hits: usize,
    /// Instances solved fresh in this call.
    pub misses: usize,
}

/// How one bipartization call memoizes its per-instance solutions.
pub(crate) enum CacheRef<'a> {
    /// No memoization.
    None,
    /// Through a caller-owned cache (single-session engines).
    Owned(&'a mut SolveCache),
    /// Through a cross-session shared cache; the lock is scoped to the
    /// lookup and the commit, never to the solve.
    Shared(&'a SharedSolveCache),
}

/// Outcome of a budgeted optimal bipartization attempt, with truthful
/// degradation provenance: `degraded` carries the budget trip that forced
/// the fall-back to [`BipartizeMethod::GreedyParity`] (the result is then
/// still a valid — bipartiteness-restoring — conflict set, just possibly
/// heavier than the optimum).
pub(crate) struct BipartizeRun {
    /// The (exact or degraded) bipartization.
    pub outcome: BipartizeOutcome,
    /// `Some` iff the optimal path tripped its budget and the parity-greedy
    /// heuristic produced `outcome` instead.
    pub degraded: Option<BudgetExceeded>,
    /// Solve-cache hits/misses of this call.
    pub activity: CacheActivity,
}

/// Budgeted optimal bipartization with a graceful-degradation rung: the
/// face trace charges `Stage::Embed`, the Blossom loop `Stage::Matching`;
/// on a trip the whole stage falls back to the (cheap, unbudgeted)
/// parity-greedy heuristic rather than failing the caller.
pub(crate) fn bipartize_optimal_budgeted(
    g: &EmbeddedGraph,
    tjoin: TJoinMethod,
    blocks: bool,
    parallelism: usize,
    budget: &Budget,
    cache: CacheRef<'_>,
) -> BipartizeRun {
    let attempt = match cache {
        CacheRef::Owned(cache) => {
            cached_budgeted(g, tjoin, blocks, parallelism, &mut *cache, budget).map(|outcome| {
                (
                    outcome,
                    CacheActivity {
                        hits: cache.hits,
                        misses: cache.misses,
                    },
                )
            })
        }
        CacheRef::Shared(shared) => {
            cached_shared_budgeted(g, tjoin, blocks, parallelism, shared, budget)
        }
        CacheRef::None => optimal_uncached_budgeted(g, tjoin, blocks, parallelism, budget)
            .map(|outcome| (outcome, CacheActivity::default())),
    };
    match attempt {
        Ok((outcome, activity)) => BipartizeRun {
            outcome,
            degraded: None,
            activity,
        },
        Err(e) => BipartizeRun {
            outcome: bipartize_with(g, BipartizeMethod::GreedyParity, parallelism),
            degraded: Some(e),
            activity: CacheActivity::default(),
        },
    }
}

fn optimal_uncached_budgeted(
    g: &EmbeddedGraph,
    tjoin: TJoinMethod,
    blocks: bool,
    parallelism: usize,
    budget: &Budget,
) -> Result<BipartizeOutcome, BudgetExceeded> {
    let instances = if blocks {
        extract_block_instances(g, parallelism, budget)?
    } else {
        extract_component_instances(g, parallelism, budget)?
    };
    let deleted = solve_instances(&instances, tjoin, parallelism, budget)?;
    Ok(finish(g, deleted))
}

fn finish(g: &EmbeddedGraph, mut deleted: Vec<EdgeId>) -> BipartizeOutcome {
    deleted.sort_unstable();
    let weight = g.total_weight(deleted.iter().copied());
    debug_assert!(
        two_color_excluding(g, &deleted).is_ok(),
        "bipartization result must be bipartite"
    );
    BipartizeOutcome { deleted, weight }
}

/// One independent dual T-join to solve, with the mapping back from its
/// dense edge ids to primal conflict-graph edges.
struct DualTJoin {
    inst: TJoinInstance,
    primal_of_edge: Vec<EdgeId>,
}

/// Memoization key of a dual T-join instance: its full canonical bytes
/// (T-set plus dense edge list with weights). Collisions are impossible —
/// equal keys *are* equal instances — so a hit may reuse the cached
/// solution unconditionally: the solvers are deterministic functions of
/// the instance (property-tested parallel == serial), independent of the
/// worker arena they run in.
#[derive(Clone, PartialEq, Eq, Hash)]
struct InstanceKey {
    t: Vec<bool>,
    edges: Vec<(usize, usize, i64)>,
}

impl InstanceKey {
    fn of(inst: &TJoinInstance) -> InstanceKey {
        InstanceKey {
            t: inst.t_set().to_vec(),
            edges: inst.edges().to_vec(),
        }
    }
}

#[derive(Clone)]
struct CachedJoin {
    /// Local instance edge indices of the minimum T-join.
    edges: Vec<usize>,
    /// The concrete method that produced this join (never
    /// [`TJoinMethod::Auto`]; see [`aapsm_tjoin::resolve_method`]).
    /// Different solvers may return different equally-optimal joins, so a
    /// lookup under a different resolved method is a miss, not a hit —
    /// this keeps every cached result bit-identical to what the caller's
    /// own configuration would have computed fresh.
    method: TJoinMethod,
    /// Generation of the last solve/hit (for idle eviction).
    last_used: u64,
    /// Monotone recency stamp of the last solve/hit (for LRU eviction).
    touched: u64,
}

/// Cumulative activity and occupancy of a [`SolveCache`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Retained solutions right now.
    pub entries: usize,
    /// The LRU capacity bound.
    pub capacity: usize,
    /// Lifetime instances answered from the cache.
    pub hits: u64,
    /// Lifetime instances solved fresh.
    pub misses: u64,
    /// Lifetime entries evicted (idle-based and LRU combined).
    pub evictions: u64,
}

/// A cross-round memo of dual T-join solutions, keyed by exact instance
/// bytes.
///
/// In a detect→correct→re-detect loop, most connected components are
/// untouched by a correction round: their extracted instances — dense
/// local renumbering, weights, T-set — are byte-identical to the previous
/// round's (the flank weight is bucketed to a power of two in
/// `flank_weight_for` precisely so a few removed overlaps elsewhere do
/// not reweight every flank edge). Solving is the dominant pipeline cost,
/// so replaying those solutions is the back-end half of the incremental
/// re-detect.
///
/// The cache is **bounded** on two axes. Entries idle for
/// [`SolveCache::MAX_IDLE_GENERATIONS`] rounds are evicted (the
/// round-based policy of the single-session engine; disabled by
/// [`SolveCache::with_capacity`]), and the entry count never exceeds the
/// LRU capacity (default [`SolveCache::DEFAULT_CAPACITY`]): beyond it the
/// least-recently-touched entries go first, so a resident process cannot
/// grow the memo without bound. Lifetime hit/miss/eviction counters are
/// in [`SolveCache::stats`].
///
/// Every entry records **method provenance**: the concrete
/// [`TJoinMethod`] (with [`TJoinMethod::Auto`] resolved per instance by
/// [`aapsm_tjoin::resolve_method`]) that produced its join. A lookup whose
/// resolved method differs from the entry's is a miss — the instance is
/// re-solved and the entry overwritten — because different solvers may
/// return different (equally optimal) joins and serving one across
/// configurations would break bit-identity with the uncached path. This
/// makes it safe to share one cache across engines with different
/// `tjoin` configurations; the `blocks` axis needs no tag because both
/// decompositions key the same canonical instance bytes and a byte-equal
/// instance has the same solution either way.
#[derive(Clone)]
pub struct SolveCache {
    map: std::collections::HashMap<InstanceKey, CachedJoin>,
    generation: u64,
    /// Monotone LRU clock; every hit or insert advances it.
    touch: u64,
    /// Maximum retained entries (≥ 1).
    capacity: usize,
    /// Generations an entry may idle before eviction; `None` disables the
    /// idle policy (cross-session caches, where one session's rounds must
    /// not age out another's entries).
    idle_limit: Option<u64>,
    stat_hits: u64,
    stat_misses: u64,
    stat_evictions: u64,
    /// Instances answered from the cache in the last call.
    pub hits: usize,
    /// Instances solved fresh in the last call.
    pub misses: usize,
}

impl Default for SolveCache {
    fn default() -> Self {
        SolveCache {
            map: std::collections::HashMap::new(),
            generation: 0,
            touch: 0,
            capacity: SolveCache::DEFAULT_CAPACITY,
            idle_limit: Some(SolveCache::MAX_IDLE_GENERATIONS),
            stat_hits: 0,
            stat_misses: 0,
            stat_evictions: 0,
            hits: 0,
            misses: 0,
        }
    }
}

impl SolveCache {
    /// Rounds an entry may go unused before eviction. One round of slack
    /// lets a component blink out of the conflict set (a cut can erase
    /// it) and come back unchanged.
    const MAX_IDLE_GENERATIONS: u64 = 2;

    /// Default LRU capacity: generous for any single design (a round
    /// produces one instance per odd component), small enough that a
    /// resident process's memo stays bounded.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// Creates an empty cache with the default capacity and the
    /// round-idle eviction policy.
    pub fn new() -> SolveCache {
        SolveCache::default()
    }

    /// Creates an empty cache bounded to `capacity` entries (clamped to
    /// ≥ 1), with round-idle eviction **disabled** — the configuration
    /// for a cache shared across sessions, where interleaved rounds from
    /// one session must not age out another session's entries.
    pub fn with_capacity(capacity: usize) -> SolveCache {
        SolveCache {
            capacity: capacity.max(1),
            idle_limit: None,
            ..SolveCache::default()
        }
    }

    /// Number of retained solutions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache holds no solutions.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The LRU capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            entries: self.map.len(),
            capacity: self.capacity,
            hits: self.stat_hits,
            misses: self.stat_misses,
            evictions: self.stat_evictions,
        }
    }

    fn next_touch(&mut self) -> u64 {
        self.touch += 1;
        self.touch
    }

    /// Applies both eviction policies: drop round-idle entries (when the
    /// policy is enabled), then trim to capacity, least-recently-touched
    /// first. Deterministic: recency stamps are unique.
    fn evict(&mut self) {
        if let Some(idle) = self.idle_limit {
            let generation = self.generation;
            let before = self.map.len();
            self.map.retain(|_, v| generation - v.last_used < idle);
            self.stat_evictions += (before - self.map.len()) as u64;
        }
        while self.map.len() > self.capacity {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, v)| v.touched)
                .map(|(k, _)| k.clone());
            let Some(key) = victim else { break };
            self.map.remove(&key);
            self.stat_evictions += 1;
        }
    }
}

impl std::fmt::Debug for SolveCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SolveCache")
            .field("entries", &self.map.len())
            .field("capacity", &self.capacity)
            .field("generation", &self.generation)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

/// A [`SolveCache`] behind an `Arc<Mutex>`, shareable across sessions and
/// threads. Keys are canonical instance bytes and the solvers are
/// deterministic, so cross-session hits are sound: a byte-equal
/// instance's cached join is exactly what a fresh solve would return,
/// whoever solved it first.
///
/// The lock is held only for the lookup and the commit — the solve of the
/// missing instances (the dominant cost) runs unlocked, so concurrent
/// sessions never serialize on each other's matching work. Two sessions
/// missing the same instance concurrently both solve it; the duplicate
/// work is wasted but the duplicate insert is harmless (identical
/// deterministic solution).
#[derive(Clone, Debug, Default)]
pub struct SharedSolveCache {
    inner: std::sync::Arc<std::sync::Mutex<SolveCache>>,
}

impl SharedSolveCache {
    /// A shared cache bounded to `capacity` entries (round-idle eviction
    /// disabled; see [`SolveCache::with_capacity`]).
    pub fn new(capacity: usize) -> SharedSolveCache {
        SharedSolveCache {
            inner: std::sync::Arc::new(std::sync::Mutex::new(SolveCache::with_capacity(capacity))),
        }
    }

    /// Lifetime hit/miss/eviction counters and current occupancy.
    pub fn stats(&self) -> CacheStats {
        self.lock().stats()
    }

    /// A poisoned lock only means a panicking thread died mid-access; the
    /// cache map itself is always structurally valid (no partial inserts
    /// escape), so recover the guard instead of propagating.
    fn lock(&self) -> std::sync::MutexGuard<'_, SolveCache> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// [`bipartize_with`] for the optimal-dual method, memoizing per-instance
/// solutions in `cache`. Bit-identical to the uncached path (see
/// [`SolveCache`]); hit/miss counts are left in the cache's public
/// counters.
pub fn bipartize_with_cache(
    g: &EmbeddedGraph,
    tjoin: TJoinMethod,
    blocks: bool,
    parallelism: usize,
    cache: &mut SolveCache,
) -> BipartizeOutcome {
    match cached_budgeted(g, tjoin, blocks, parallelism, cache, &Budget::unlimited()) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("unlimited budget never trips"),
    }
}

/// The cached-vs-to-solve split of one call's instances, produced under
/// the cache lock by [`cache_lookup`] and consumed lock-free afterwards.
struct CacheSplit {
    /// Per-instance primal deleted edges; `Some` for hits, filled in for
    /// misses once solved.
    deleted_per_instance: Vec<Option<Vec<EdgeId>>>,
    /// Indices of instances that must be solved fresh.
    unsolved: Vec<usize>,
    /// The miss keys, retained for the commit (`None` for hits).
    keys: Vec<Option<InstanceKey>>,
    /// The resolved concrete method per miss, retained for the commit's
    /// provenance tag (`None` for hits).
    methods: Vec<Option<TJoinMethod>>,
    /// Hits answered in this lookup.
    hits: usize,
}

/// The lookup phase: answers hits from the cache, updates recency, and
/// returns the split. Also resets the cache's per-call `hits`/`misses`
/// counters. Short and allocation-light — safe to run under a shared
/// cache's lock.
///
/// A hit requires both a byte-equal instance key **and** matching method
/// provenance: the entry must have been produced by the same concrete
/// method `tjoin` resolves to for this instance (see [`CachedJoin`]).
fn cache_lookup(cache: &mut SolveCache, instances: &[DualTJoin], tjoin: TJoinMethod) -> CacheSplit {
    cache.generation += 1;
    cache.hits = 0;
    cache.misses = 0;
    let mut deleted_per_instance: Vec<Option<Vec<EdgeId>>> = vec![None; instances.len()];
    let mut unsolved: Vec<usize> = Vec::new();
    let mut keys: Vec<Option<InstanceKey>> = vec![None; instances.len()];
    let mut methods: Vec<Option<TJoinMethod>> = vec![None; instances.len()];
    for (i, dt) in instances.iter().enumerate() {
        let key = InstanceKey::of(&dt.inst);
        let concrete = aapsm_tjoin::resolve_method(tjoin, &dt.inst);
        let generation = cache.generation;
        let touched = cache.next_touch();
        match cache.map.get_mut(&key) {
            Some(entry) if entry.method == concrete => {
                entry.last_used = generation;
                entry.touched = touched;
                deleted_per_instance[i] = Some(
                    entry
                        .edges
                        .iter()
                        .map(|&ei| dt.primal_of_edge[ei])
                        .collect(),
                );
                cache.hits += 1;
            }
            _ => {
                keys[i] = Some(key);
                methods[i] = Some(concrete);
                unsolved.push(i);
            }
        }
    }
    cache.misses = unsolved.len();
    cache.stat_hits += cache.hits as u64;
    cache.stat_misses += cache.misses as u64;
    CacheSplit {
        deleted_per_instance,
        unsolved,
        keys,
        methods,
        hits: cache.hits,
    }
}

/// The solve phase: runs the missing instances with the same scheduling
/// policy as the uncached path. Lock-free by construction — it only reads
/// the instances and the split.
fn solve_missing(
    instances: &[DualTJoin],
    unsolved: &[usize],
    tjoin: TJoinMethod,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<Vec<usize>>, BudgetExceeded> {
    let workers = solve_worker_count(instances, unsolved.len(), parallelism);
    aapsm_geom::par_map_indexed(unsolved.len(), workers, MatchingContext::new, |ctx, k| {
        let dt = &instances[unsolved[k]];
        solve_dual_join(&dt.inst, tjoin, ctx, budget).map(|join| join.edges)
    })
    .into_iter()
    .collect::<Result<_, BudgetExceeded>>()
}

/// The commit phase: files the solved joins into the split and inserts
/// them into the cache, then evicts. Short — safe to run under a shared
/// cache's lock. A budget trip in the solve phase reaches neither this
/// nor eviction (nothing is inserted), so a tripped round can never
/// pollute later bit-identity.
// Invariant, not an error path: a key is retained for every miss.
#[allow(clippy::expect_used)]
fn cache_commit(
    cache: &mut SolveCache,
    instances: &[DualTJoin],
    split: &mut CacheSplit,
    joins: Vec<Vec<usize>>,
) {
    for (k, join) in split.unsolved.iter().zip(joins) {
        let dt = &instances[*k];
        split.deleted_per_instance[*k] =
            Some(join.iter().map(|&ei| dt.primal_of_edge[ei]).collect());
        let last_used = cache.generation;
        let touched = cache.next_touch();
        cache.map.insert(
            split.keys[*k].take().expect("key retained for every miss"),
            CachedJoin {
                edges: join,
                method: split.methods[*k]
                    .take()
                    .expect("method retained for every miss"),
                last_used,
                touched,
            },
        );
    }
    cache.evict();
}

// Invariant, not an error path: every instance is either solved or
// answered from cache.
#[allow(clippy::expect_used)]
fn assemble(g: &EmbeddedGraph, split: CacheSplit) -> BipartizeOutcome {
    let deleted: Vec<EdgeId> = split
        .deleted_per_instance
        .into_iter()
        .flat_map(|d| d.expect("every instance solved or cached"))
        .collect();
    finish(g, deleted)
}

/// The budgeted body of [`bipartize_with_cache`]: lookup → solve misses →
/// commit, all against a caller-owned cache.
fn cached_budgeted(
    g: &EmbeddedGraph,
    tjoin: TJoinMethod,
    blocks: bool,
    parallelism: usize,
    cache: &mut SolveCache,
    budget: &Budget,
) -> Result<BipartizeOutcome, BudgetExceeded> {
    let instances = if blocks {
        extract_block_instances(g, parallelism, budget)?
    } else {
        extract_component_instances(g, parallelism, budget)?
    };
    let mut split = cache_lookup(cache, &instances, tjoin);
    let joins = solve_missing(&instances, &split.unsolved, tjoin, parallelism, budget)?;
    cache_commit(cache, &instances, &mut split, joins);
    Ok(assemble(g, split))
}

/// [`cached_budgeted`] against a [`SharedSolveCache`]: the same three
/// phases, with the lock scoped to the lookup and the commit only — the
/// solve of the missing instances runs unlocked, so concurrent sessions
/// never serialize on each other's matching work.
fn cached_shared_budgeted(
    g: &EmbeddedGraph,
    tjoin: TJoinMethod,
    blocks: bool,
    parallelism: usize,
    shared: &SharedSolveCache,
    budget: &Budget,
) -> Result<(BipartizeOutcome, CacheActivity), BudgetExceeded> {
    let instances = if blocks {
        extract_block_instances(g, parallelism, budget)?
    } else {
        extract_component_instances(g, parallelism, budget)?
    };
    let mut split = cache_lookup(&mut shared.lock(), &instances, tjoin);
    let joins = solve_missing(&instances, &split.unsolved, tjoin, parallelism, budget)?;
    cache_commit(&mut shared.lock(), &instances, &mut split, joins);
    let activity = CacheActivity {
        hits: split.hits,
        misses: split.unsolved.len(),
    };
    Ok((assemble(g, split), activity))
}

/// Solves one dual T-join under the budget. Infeasibility cannot happen
/// here — odd faces come in even numbers per component — so only budget
/// trips surface as errors.
fn solve_dual_join(
    inst: &TJoinInstance,
    tjoin: TJoinMethod,
    ctx: &mut MatchingContext,
    budget: &Budget,
) -> Result<aapsm_tjoin::TJoin, BudgetExceeded> {
    match solve_budgeted(inst, tjoin, ctx, budget) {
        Ok(join) => Ok(join),
        Err(TJoinError::Budget(e)) => Err(e),
        Err(other) => unreachable!("dual T-join of a plane component is feasible: {other:?}"),
    }
}

/// Extracts one dual T-join instance per connected component that has odd
/// faces, on up to `parallelism` workers.
///
/// Faces are traced **per component**
/// ([`aapsm_graph::component_embeddings`]): each worker traces one
/// component's rotation system and the dual T-join falls out of the
/// partition for free — local face ids are already dense, the T-set is
/// the local odd-face flags, and a second parallel pass classifies each
/// component's edges into dual edges (pushed with their local face
/// endpoints) and bridges (skipped — a bridge lies on no cycle). The
/// historical global-trace-then-regroup pass and its `comp_of_face` /
/// `local_of_face` remapping are gone, yet the extracted instances are
/// byte-identical to it at every parallelism degree: local face order
/// equals the serial trace order restricted to the component, and
/// component order is [`aapsm_graph::connected_components`] order either
/// way — which keeps [`SolveCache`] keys stable too.
// Invariant, not an error path: dual T-join instances are well-formed by
// construction.
#[allow(clippy::expect_used)]
fn extract_component_instances(
    g: &EmbeddedGraph,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<DualTJoin>, BudgetExceeded> {
    debug_assert!(aapsm_graph::crossing_pairs(g).is_planar());
    let embeddings = component_embeddings_budgeted(g, parallelism, budget)?;
    let with_odd: Vec<_> = embeddings.iter().filter(|e| e.has_odd_face()).collect();
    if with_odd.is_empty() {
        return Ok(Vec::new());
    }
    // Same adaptive policy (and the same dual-edge metric) as
    // `solve_instances`: under auto parallelism, assembling a handful of
    // tiny instances is microsecond work and thread spawn/join would
    // dominate. The classification scan runs only on the auto path —
    // explicit degrees don't need the count.
    let auto_serial = parallelism == 0 && {
        let total_dual_edges: usize = with_odd
            .iter()
            .map(|emb| {
                (0..emb.edges.len())
                    .filter(|&i| emb.face_of[2 * i] != emb.face_of[2 * i + 1])
                    .count()
            })
            .sum();
        total_dual_edges < SERIAL_FALLBACK_DUAL_EDGES
    };
    let workers = if auto_serial {
        1
    } else {
        effective_workers(parallelism, with_odd.len())
    };
    Ok(aapsm_geom::par_map_indexed(
        with_odd.len(),
        workers,
        || (),
        |(), k| {
            let emb = with_odd[k];
            let mut edges = Vec::with_capacity(emb.edges.len());
            let mut primal = Vec::with_capacity(emb.edges.len());
            for (i, &e) in emb.edges.iter().enumerate() {
                let a = emb.face_of[2 * i];
                let b = emb.face_of[2 * i + 1];
                if a == b {
                    continue; // bridge: dual self-loop, never in a minimum cover
                }
                edges.push((a as usize, b as usize, g.weight(e)));
                primal.push(e);
            }
            let t: Vec<bool> = emb.face_len.iter().map(|&l| l % 2 == 1).collect();
            let inst =
                TJoinInstance::new(t.len(), edges, t).expect("dual T-join instance is well-formed");
            DualTJoin {
                inst,
                primal_of_edge: primal,
            }
        },
    ))
}

/// Extracts instances per biconnected block: each block's drawing is
/// traced and dualized in isolation. Same optimum as the component
/// decomposition (odd cycles never span blocks), different instance
/// shapes — this is the paper's ablation axis.
fn extract_block_instances(
    g: &EmbeddedGraph,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<DualTJoin>, BudgetExceeded> {
    let blocks = biconnected_components(g);
    let mut instances = Vec::new();
    let mut scratch = g.clone();
    for block in &blocks {
        if block.len() < 3 {
            // A block with < 3 edges has no odd cycles: single edges and
            // tree pairs are acyclic, and a parallel pair is an even
            // 2-cycle.
            continue;
        }
        // Restrict the scratch graph to this block.
        for e in g.alive_edges() {
            scratch.kill_edge(e);
        }
        for &e in block {
            scratch.revive_edge(e);
        }
        // A block is connected, so this is at most one instance; the
        // worker resolution inside collapses to an inline trace.
        instances.extend(extract_component_instances(&scratch, parallelism, budget)?);
    }
    Ok(instances)
}

/// Minimum total dual-edge work before auto parallelism spawns threads.
///
/// Below this, the whole solve takes well under a millisecond, so thread
/// spawn/join overhead dominates any speedup — the `BENCH_bipartize_scaling`
/// regression at many tiny instances. Applies only to `parallelism = 0`
/// (an explicit worker count is honored) and is purely a scheduling
/// decision: results are bit-identical either way.
const SERIAL_FALLBACK_DUAL_EDGES: usize = 2048;

/// Solves the extracted instances and returns the merged primal deleted
/// edges, in deterministic instance order regardless of `parallelism`.
///
/// Adaptive: under auto parallelism, tiny total instance work (see
/// [`SERIAL_FALLBACK_DUAL_EDGES`]) keeps the solve on the calling thread.
fn solve_instances(
    instances: &[DualTJoin],
    tjoin: TJoinMethod,
    parallelism: usize,
    budget: &Budget,
) -> Result<Vec<EdgeId>, BudgetExceeded> {
    let workers = solve_worker_count(instances, instances.len(), parallelism);
    // Each worker owns one arena for its whole batch; results merge in
    // instance order (see `par_map_indexed`), so the outcome is
    // independent of scheduling.
    let per_instance: Vec<Vec<EdgeId>> =
        aapsm_geom::par_map_indexed(instances.len(), workers, MatchingContext::new, |ctx, i| {
            let dt = &instances[i];
            solve_dual_join(&dt.inst, tjoin, ctx, budget)
                .map(|join| join.edges.iter().map(|&ei| dt.primal_of_edge[ei]).collect())
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
    Ok(per_instance.into_iter().flatten().collect())
}

/// Resolves the `parallelism` knob (`0` = auto) against the instance count.
fn effective_workers(parallelism: usize, instances: usize) -> usize {
    aapsm_geom::resolve_workers(parallelism)
        .min(instances)
        .max(1)
}

/// Worker count for solving (a subset of) a call's instances. The
/// adaptive serial fallback is decided by the **total** dual-edge work of
/// all the call's instances, never by the subset actually being solved:
/// the cached path hands this the post-lookup miss subset, and basing the
/// decision on the misses alone would let a warm cache fall back to
/// serial while the uncached path spawns workers for the byte-identical
/// input — same results (the policy is pure scheduling), but divergent
/// thread behavior on identical inputs is exactly what the parallel
/// property suite pins down.
fn solve_worker_count(instances: &[DualTJoin], batch: usize, parallelism: usize) -> usize {
    let total_dual_edges: usize = instances.iter().map(|dt| dt.inst.edges().len()).sum();
    if parallelism == 0 && total_dual_edges < SERIAL_FALLBACK_DUAL_EDGES {
        1
    } else {
        effective_workers(parallelism, batch)
    }
}

/// Per-method pick counts of the [`TJoinMethod::Auto`] heuristic over a
/// drawing's extracted dual instances.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MethodCensus {
    /// Instances routed to the Edmonds–Johnson metric closure
    /// ([`TJoinMethod::ShortestPath`]).
    pub closure: usize,
    /// Instances routed to a gadget reduction.
    pub gadget: usize,
}

/// How [`TJoinMethod::Auto`] splits `g`'s dual T-join instances between
/// the metric closure and the gadget reduction, under the component
/// (`blocks = false`) or biconnected-block (`blocks = true`)
/// decomposition. Purely diagnostic — the benchmark harness emits and
/// gates these counts so the heuristic's behavior per design is
/// machine-checked.
pub fn tjoin_method_census(g: &EmbeddedGraph, blocks: bool) -> MethodCensus {
    let extracted = if blocks {
        extract_block_instances(g, 1, &Budget::unlimited())
    } else {
        extract_component_instances(g, 1, &Budget::unlimited())
    };
    let instances = match extracted {
        Ok(instances) => instances,
        Err(_) => unreachable!("unlimited budget never trips"),
    };
    let mut census = MethodCensus::default();
    for dt in &instances {
        match aapsm_tjoin::resolve_method(TJoinMethod::Auto, &dt.inst) {
            TJoinMethod::ShortestPath => census.closure += 1,
            TJoinMethod::Gadget(_) => census.gadget += 1,
            TJoinMethod::Auto => unreachable!("resolve_method never returns Auto"),
        }
    }
    census
}

/// Brute-force minimum-weight bipartization by subset enumeration (test
/// oracle; ≤ 20 alive edges).
///
/// # Panics
///
/// Panics if the graph has more than 20 alive edges.
// Invariant, not an error path: deleting all edges is always bipartite,
// so a best subset always exists.
#[allow(clippy::expect_used)]
pub fn brute_force_bipartize(g: &EmbeddedGraph) -> BipartizeOutcome {
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    assert!(alive.len() <= 20, "brute force limited to 20 edges");
    let mut best: Option<(i64, Vec<EdgeId>)> = None;
    for mask in 0u32..(1 << alive.len()) {
        let subset: Vec<EdgeId> = (0..alive.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| alive[i])
            .collect();
        let weight = g.total_weight(subset.iter().copied());
        if best.as_ref().is_some_and(|(bw, _)| weight >= *bw) {
            continue;
        }
        if two_color_excluding(g, &subset).is_ok() {
            best = Some((weight, subset));
        }
    }
    let (weight, deleted) = best.expect("deleting all edges is always bipartite");
    BipartizeOutcome { deleted, weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;
    use aapsm_graph::{planarize, PlanarizeOrder};
    use aapsm_tjoin::GadgetKind;
    use rand::{Rng, SeedableRng};

    fn methods() -> Vec<BipartizeMethod> {
        vec![
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::Complete),
                blocks: false,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::Optimized),
                blocks: false,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::default()),
                blocks: true,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::ShortestPath,
                blocks: false,
            },
        ]
    }

    #[test]
    fn triangle_deletes_cheapest_edge() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(Point::new(0, 0));
        let b = g.add_node(Point::new(100, 0));
        let c = g.add_node(Point::new(50, 80));
        g.add_edge(a, b, 5);
        g.add_edge(b, c, 3);
        let cheap = g.add_edge(c, a, 2);
        for m in methods() {
            let out = bipartize(&g, m);
            assert_eq!(out.deleted, vec![cheap], "{m:?}");
            assert_eq!(out.weight, 2);
        }
    }

    #[test]
    fn bipartite_graph_deletes_nothing() {
        let mut g = EmbeddedGraph::new();
        let n: Vec<_> = (0..4)
            .map(|i| g.add_node(Point::new([0, 100, 100, 0][i], [0, 0, 100, 100][i])))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        for m in methods() {
            assert!(bipartize(&g, m).deleted.is_empty(), "{m:?}");
        }
    }

    #[test]
    fn two_fused_triangles_share_one_deletion() {
        // Two triangles sharing an edge: deleting the shared edge fixes
        // both odd cycles at once — optimal must find that.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(Point::new(0, 0));
        let b = g.add_node(Point::new(100, 0));
        let top = g.add_node(Point::new(50, 80));
        let bot = g.add_node(Point::new(50, -80));
        g.add_edge(a, top, 10);
        g.add_edge(top, b, 10);
        g.add_edge(a, bot, 10);
        g.add_edge(bot, b, 10);
        let shared = g.add_edge(a, b, 15);
        for m in methods() {
            let out = bipartize(&g, m);
            assert_eq!(out.deleted, vec![shared], "{m:?}");
            assert_eq!(out.weight, 15);
        }
        // Greedy parity deletes one edge too (any closing edge).
        let gp = bipartize(&g, BipartizeMethod::GreedyParity);
        assert!(gp.weight >= 15 || !gp.deleted.is_empty());
        // Literal spanning-forest GB deletes |E| - (V-1) = 2 edges.
        let gb = bipartize(&g, BipartizeMethod::GreedySpanning);
        assert_eq!(gb.deleted.len(), 2);
    }

    #[test]
    fn optimal_matches_brute_force_on_random_plane_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        for trial in 0..40 {
            let n = rng.gen_range(4..12);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| {
                    g.add_node(Point::new(
                        rng.gen_range(-300..300),
                        rng.gen_range(-300..300),
                    ))
                })
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(3..18) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..40));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            if g.alive_edge_count() > 20 {
                continue;
            }
            let brute = brute_force_bipartize(&g);
            for m in methods() {
                let out = bipartize(&g, m);
                assert_eq!(
                    out.weight, brute.weight,
                    "trial {trial} {m:?}: optimal must match brute force"
                );
                assert!(two_color_excluding(&g, &out.deleted).is_ok());
            }
            // Greedy baselines are valid but possibly heavier.
            for m in [
                BipartizeMethod::GreedyParity,
                BipartizeMethod::GreedySpanning,
            ] {
                let out = bipartize(&g, m);
                assert!(out.weight >= brute.weight, "trial {trial} {m:?}");
            }
        }
    }

    #[test]
    fn cached_bipartize_is_bit_identical_and_hits_on_replay() {
        // Two far-apart triangles: two components, each with an odd face
        // forcing one deletion.
        let mut g = EmbeddedGraph::new();
        for ox in [0i64, 10_000] {
            let a = g.add_node(Point::new(ox, 0));
            let b = g.add_node(Point::new(ox + 100, 0));
            let c = g.add_node(Point::new(ox + 50, 80));
            g.add_edge(a, b, 5);
            g.add_edge(b, c, 3);
            g.add_edge(c, a, 2);
        }
        let tjoin = TJoinMethod::default();
        let plain = bipartize_with(
            &g,
            BipartizeMethod::OptimalDual {
                tjoin,
                blocks: false,
            },
            1,
        );
        let mut cache = SolveCache::new();
        let first = bipartize_with_cache(&g, tjoin, false, 1, &mut cache);
        assert_eq!(first.deleted, plain.deleted);
        assert_eq!(first.weight, plain.weight);
        assert_eq!(cache.hits, 0);
        assert!(cache.misses > 0);
        // Replaying the identical graph answers everything from cache.
        let second = bipartize_with_cache(&g, tjoin, false, 2, &mut cache);
        assert_eq!(second.deleted, plain.deleted);
        assert_eq!(cache.misses, 0);
        assert!(cache.hits > 0);
        // Parallel cached solve stays bit-identical too.
        let mut cache2 = SolveCache::new();
        let par = bipartize_with_cache(&g, tjoin, false, 4, &mut cache2);
        assert_eq!(par.deleted, plain.deleted);
    }

    #[test]
    fn solve_cache_evicts_idle_entries() {
        let mut g1 = EmbeddedGraph::new();
        let a = g1.add_node(Point::new(0, 0));
        let b = g1.add_node(Point::new(100, 0));
        let c = g1.add_node(Point::new(50, 80));
        g1.add_edge(a, b, 5);
        g1.add_edge(b, c, 3);
        g1.add_edge(c, a, 2);
        let mut g2 = EmbeddedGraph::new();
        let d = g2.add_node(Point::new(0, 0));
        let e = g2.add_node(Point::new(90, 0));
        let f = g2.add_node(Point::new(45, 70));
        g2.add_edge(d, e, 9);
        g2.add_edge(e, f, 8);
        g2.add_edge(f, d, 7);
        let mut cache = SolveCache::new();
        bipartize_with_cache(&g1, TJoinMethod::default(), false, 1, &mut cache);
        assert_eq!(cache.len(), 1);
        // g1's entry survives one idle round, then is evicted.
        bipartize_with_cache(&g2, TJoinMethod::default(), false, 1, &mut cache);
        assert_eq!(cache.len(), 2);
        bipartize_with_cache(&g2, TJoinMethod::default(), false, 1, &mut cache);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn solve_cache_capacity_bound_evicts_lru() {
        // Three distinct single-triangle graphs against a capacity-1
        // cache: each new solve evicts the previous entry, and lifetime
        // counters see every hit, miss and eviction.
        let graphs: Vec<EmbeddedGraph> = [(5, 3, 2), (9, 8, 7), (13, 12, 11)]
            .iter()
            .map(|&(w1, w2, w3)| {
                let mut g = EmbeddedGraph::new();
                let a = g.add_node(Point::new(0, 0));
                let b = g.add_node(Point::new(100, 0));
                let c = g.add_node(Point::new(50, 80));
                g.add_edge(a, b, w1);
                g.add_edge(b, c, w2);
                g.add_edge(c, a, w3);
                g
            })
            .collect();
        let mut cache = SolveCache::with_capacity(1);
        assert_eq!(cache.capacity(), 1);
        for g in &graphs {
            bipartize_with_cache(g, TJoinMethod::default(), false, 1, &mut cache);
            assert_eq!(cache.len(), 1, "capacity bound must hold");
        }
        // Re-solving the most recent graph hits; an evicted one misses.
        bipartize_with_cache(&graphs[2], TJoinMethod::default(), false, 1, &mut cache);
        assert_eq!(cache.hits, 1);
        bipartize_with_cache(&graphs[0], TJoinMethod::default(), false, 1, &mut cache);
        assert_eq!(cache.misses, 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.evictions, 3);
        // `with_capacity` disables round-idle eviction: the capacity is
        // the only policy, so an entry survives arbitrarily many idle
        // generations as long as the cache has room.
        let mut roomy = SolveCache::with_capacity(16);
        bipartize_with_cache(&graphs[0], TJoinMethod::default(), false, 1, &mut roomy);
        for _ in 0..4 {
            bipartize_with_cache(&graphs[1], TJoinMethod::default(), false, 1, &mut roomy);
        }
        assert_eq!(roomy.len(), 2, "no idle eviction under with_capacity");
    }

    #[test]
    fn shared_cache_cross_session_hits_are_bit_identical() {
        // Two "sessions" solving the same graph through one shared cache:
        // the second session's instances are answered from entries the
        // first session seeded, and the outcome matches the uncached
        // path bit for bit.
        let mut g = EmbeddedGraph::new();
        for ox in [0i64, 10_000] {
            let a = g.add_node(Point::new(ox, 0));
            let b = g.add_node(Point::new(ox + 100, 0));
            let c = g.add_node(Point::new(ox + 50, 80));
            g.add_edge(a, b, 5);
            g.add_edge(b, c, 3);
            g.add_edge(c, a, 2);
        }
        let tjoin = TJoinMethod::default();
        let plain = bipartize_with(
            &g,
            BipartizeMethod::OptimalDual {
                tjoin,
                blocks: false,
            },
            1,
        );
        let shared = SharedSolveCache::new(64);
        let (first, a1) =
            cached_shared_budgeted(&g, tjoin, false, 1, &shared, &Budget::unlimited()).unwrap();
        assert_eq!(first.deleted, plain.deleted);
        assert_eq!(a1.hits, 0);
        assert!(a1.misses > 0);
        let (second, a2) =
            cached_shared_budgeted(&g, tjoin, false, 2, &shared, &Budget::unlimited()).unwrap();
        assert_eq!(second.deleted, plain.deleted);
        assert_eq!(a2.misses, 0);
        assert!(a2.hits > 0);
        let stats = shared.stats();
        assert_eq!(stats.hits, a2.hits as u64);
        assert_eq!(stats.misses, a1.misses as u64);
    }

    /// Synthesizes `count` dual instances of `edges_each` path edges (no
    /// T-nodes; only the edge totals matter to the scheduling policy).
    fn synth_instances(count: usize, edges_each: usize) -> Vec<DualTJoin> {
        (0..count)
            .map(|_| {
                let edges: Vec<(usize, usize, i64)> =
                    (0..edges_each).map(|i| (i, i + 1, 1)).collect();
                let inst =
                    TJoinInstance::new(edges_each + 1, edges, vec![false; edges_each + 1]).unwrap();
                DualTJoin {
                    inst,
                    primal_of_edge: Vec::new(),
                }
            })
            .collect()
    }

    #[test]
    fn serial_fallback_decision_uses_total_work_not_the_solved_subset() {
        // Below the threshold: auto parallelism stays serial no matter
        // how many instances are actually being solved.
        let small = synth_instances(8, 100); // 800 dual edges < 2048
        assert_eq!(solve_worker_count(&small, small.len(), 0), 1);
        assert_eq!(solve_worker_count(&small, 2, 0), 1);
        // At/above the threshold: a warm cache (batch = few misses) and
        // the plain path (batch = all) make the same spawn decision —
        // this is the regression: the miss subset's own edge count (200,
        // far below the threshold) must not flip the cached path serial.
        let large = synth_instances(16, 200); // 3200 dual edges ≥ 2048
        let plain = solve_worker_count(&large, large.len(), 0);
        let cached = solve_worker_count(&large, 2, 0);
        assert_eq!(
            plain > 1,
            cached > 1,
            "warm cache must not flip the serial-fallback decision"
        );
        // Explicit worker counts bypass the fallback entirely.
        assert_eq!(solve_worker_count(&small, small.len(), 3), 3);
        assert_eq!(solve_worker_count(&large, 2, 3), 2);
    }

    #[test]
    fn cache_misses_on_method_mismatch_and_overwrites() {
        // Two far-apart triangles: two instances, each a 3-edge dual
        // triangle with 2 odd faces — Auto resolves them to the closure.
        let mut g = EmbeddedGraph::new();
        for ox in [0i64, 10_000] {
            let a = g.add_node(Point::new(ox, 0));
            let b = g.add_node(Point::new(ox + 100, 0));
            let c = g.add_node(Point::new(ox + 50, 80));
            g.add_edge(a, b, 5);
            g.add_edge(b, c, 3);
            g.add_edge(c, a, 2);
        }
        let gadget = TJoinMethod::Gadget(GadgetKind::default());
        let mut cache = SolveCache::with_capacity(64);
        let first = bipartize_with_cache(&g, TJoinMethod::ShortestPath, false, 1, &mut cache);
        assert_eq!(cache.misses, 2);
        // Same instances, different configured method: provenance
        // mismatch re-solves everything instead of serving the closure's
        // joins to a gadget-configured caller.
        let second = bipartize_with_cache(&g, gadget, false, 1, &mut cache);
        assert_eq!(cache.hits, 0, "method mismatch must not hit");
        assert_eq!(cache.misses, 2);
        // The entries were overwritten with gadget provenance: replay hits.
        let third = bipartize_with_cache(&g, gadget, false, 1, &mut cache);
        assert_eq!(cache.hits, 2);
        assert_eq!(cache.misses, 0);
        // Auto resolves these sparse-T instances to the closure, so it
        // misses against the gadget-tagged entries, then hits itself.
        let fourth = bipartize_with_cache(&g, TJoinMethod::Auto, false, 1, &mut cache);
        assert_eq!(cache.misses, 2);
        let fifth = bipartize_with_cache(&g, TJoinMethod::Auto, false, 1, &mut cache);
        assert_eq!(cache.hits, 2);
        for out in [&second, &third, &fourth, &fifth] {
            assert_eq!(out.weight, first.weight);
        }
    }

    #[test]
    fn method_census_counts_auto_picks() {
        // One sparse-T triangle component → closure pick.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(Point::new(0, 0));
        let b = g.add_node(Point::new(100, 0));
        let c = g.add_node(Point::new(50, 80));
        g.add_edge(a, b, 5);
        g.add_edge(b, c, 3);
        g.add_edge(c, a, 2);
        let census = tjoin_method_census(&g, false);
        assert_eq!(
            census,
            MethodCensus {
                closure: 1,
                gadget: 0
            }
        );
        // A bipartite square extracts no instance at all.
        let mut sq = EmbeddedGraph::new();
        let n: Vec<_> = (0..4)
            .map(|i| sq.add_node(Point::new([0, 100, 100, 0][i], [0, 0, 100, 100][i])))
            .collect();
        for i in 0..4 {
            sq.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        assert_eq!(tjoin_method_census(&sq, false), MethodCensus::default());
    }

    #[test]
    fn blocks_and_components_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..15 {
            let n = rng.gen_range(6..25);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| {
                    g.add_node(Point::new(
                        rng.gen_range(-500..500),
                        rng.gen_range(-500..500),
                    ))
                })
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(5..40) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..40));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            let a = bipartize(
                &g,
                BipartizeMethod::OptimalDual {
                    tjoin: TJoinMethod::default(),
                    blocks: false,
                },
            );
            let b = bipartize(
                &g,
                BipartizeMethod::OptimalDual {
                    tjoin: TJoinMethod::default(),
                    blocks: true,
                },
            );
            assert_eq!(a.weight, b.weight);
        }
    }
}
