//! Minimum-weight graph bipartization.
//!
//! The optimal method is the paper's: per component of the plane drawing,
//! trace faces, build the geometric dual, and solve the T-join with
//! T = odd faces — which is exact for embedded planar graphs (Hadlock /
//! Kahng et al.). Greedy baselines (the paper's GB column and its
//! parity-aware strengthening) and a brute-force reference are included.

use aapsm_graph::{
    biconnected_components, build_dual, connected_components, greedy_parity_subgraph,
    max_weight_spanning_forest, trace_faces, two_color_excluding, EdgeId, EmbeddedGraph,
};
use aapsm_tjoin::{solve, TJoinInstance, TJoinMethod};

/// Bipartization algorithm selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BipartizeMethod {
    /// Optimal planar bipartization via the dual T-join; the inner
    /// T-join/matching machinery is pluggable (O-gadget, G-gadget,
    /// shortest path).
    OptimalDual {
        /// How to solve the dual T-joins.
        tjoin: TJoinMethod,
        /// Decompose per biconnected block instead of per connected
        /// component (ablation; identical results, different runtime).
        blocks: bool,
    },
    /// Maximum-weight spanning forest; all leftover edges deleted (the
    /// paper's literal GB baseline).
    GreedySpanning,
    /// Greedy with parity union-find: delete only edges that close odd
    /// cycles.
    GreedyParity,
}

impl Default for BipartizeMethod {
    fn default() -> Self {
        BipartizeMethod::OptimalDual {
            tjoin: TJoinMethod::default(),
            blocks: false,
        }
    }
}

/// Result of bipartization.
#[derive(Clone, Debug)]
pub struct BipartizeOutcome {
    /// Deleted edges (ascending id).
    pub deleted: Vec<EdgeId>,
    /// Their total weight.
    pub weight: i64,
}

/// Computes an edge set whose removal makes the alive subgraph bipartite.
///
/// For [`BipartizeMethod::OptimalDual`] the graph must be a plane drawing
/// (planarize first); the result is then a *minimum-weight* such set.
/// Edges are **not** killed in `g`.
///
/// # Panics
///
/// Panics if the optimal method is used on a drawing with crossings
/// (debug builds), or if an internal T-join turns out infeasible — which
/// cannot happen for duals of plane graphs.
pub fn bipartize(g: &EmbeddedGraph, method: BipartizeMethod) -> BipartizeOutcome {
    match method {
        BipartizeMethod::GreedySpanning => {
            let f = max_weight_spanning_forest(g);
            finish(g, f.leftover)
        }
        BipartizeMethod::GreedyParity => {
            let f = greedy_parity_subgraph(g);
            finish(g, f.leftover)
        }
        BipartizeMethod::OptimalDual { tjoin, blocks } => {
            if blocks {
                bipartize_blocks(g, tjoin)
            } else {
                bipartize_components(g, tjoin)
            }
        }
    }
}

fn finish(g: &EmbeddedGraph, mut deleted: Vec<EdgeId>) -> BipartizeOutcome {
    deleted.sort_unstable();
    let weight = g.total_weight(deleted.iter().copied());
    debug_assert!(
        two_color_excluding(g, &deleted).is_ok(),
        "bipartization result must be bipartite"
    );
    BipartizeOutcome { deleted, weight }
}

/// Optimal bipartization, one dual T-join per connected component. Faces
/// are traced once globally; each component's faces are disjoint, so the
/// dual decomposes for free.
fn bipartize_components(g: &EmbeddedGraph, tjoin: TJoinMethod) -> BipartizeOutcome {
    debug_assert!(aapsm_graph::crossing_pairs(g).is_planar());
    let faces = trace_faces(g);
    let dual = build_dual(g, &faces);
    if dual.t_set().is_empty() {
        return finish(g, Vec::new());
    }
    let comps = connected_components(g);
    // Group dual edges (and odd-face T flags) by primal component.
    let mut comp_of_face = vec![u32::MAX; dual.face_count];
    for de in &dual.edges {
        let (u, _) = g.endpoints(de.primal);
        let c = comps.component(u);
        comp_of_face[de.a as usize] = c;
        comp_of_face[de.b as usize] = c;
    }
    for &b in &dual.bridges {
        let (u, _) = g.endpoints(b);
        let c = comps.component(u);
        let f = faces.left_face(b);
        comp_of_face[f as usize] = c;
    }
    let mut deleted = Vec::new();
    for c in 0..comps.count as u32 {
        // Local face renumbering.
        let local_faces: Vec<u32> = (0..dual.face_count as u32)
            .filter(|&f| comp_of_face[f as usize] == c)
            .collect();
        if local_faces.is_empty() {
            continue;
        }
        let t: Vec<bool> = local_faces
            .iter()
            .map(|&f| dual.odd_face[f as usize])
            .collect();
        if t.iter().all(|&b| !b) {
            continue; // component already bipartite
        }
        let index_of: std::collections::HashMap<u32, usize> = local_faces
            .iter()
            .enumerate()
            .map(|(i, &f)| (f, i))
            .collect();
        let mut primal_of_edge = Vec::new();
        let mut edges = Vec::new();
        for de in &dual.edges {
            if comp_of_face[de.a as usize] == c {
                edges.push((index_of[&de.a], index_of[&de.b], de.weight));
                primal_of_edge.push(de.primal);
            }
        }
        let inst = TJoinInstance::new(local_faces.len(), edges, t)
            .expect("dual T-join instance is well-formed");
        let join = solve(&inst, tjoin)
            .expect("odd faces come in even numbers per component, so the T-join is feasible");
        deleted.extend(join.edges.iter().map(|&ei| primal_of_edge[ei]));
    }
    finish(g, deleted)
}

/// Optimal bipartization decomposed per biconnected block: each block's
/// drawing is traced and dualized in isolation. Same optimum as the
/// component decomposition (odd cycles never span blocks).
fn bipartize_blocks(g: &EmbeddedGraph, tjoin: TJoinMethod) -> BipartizeOutcome {
    let blocks = biconnected_components(g);
    let mut deleted = Vec::new();
    let mut scratch = g.clone();
    for block in &blocks {
        if block.len() < 3 {
            continue; // a block with < 3 edges has no cycles... except parallel pairs
        }
        // Restrict the scratch graph to this block.
        for e in g.alive_edges() {
            scratch.kill_edge(e);
        }
        for &e in block {
            scratch.revive_edge(e);
        }
        let outcome = bipartize_components(&scratch, tjoin);
        deleted.extend(outcome.deleted);
    }
    // Parallel-pair blocks (2 edges between the same nodes) form even
    // cycles: never deleted. Blocks of size 2 that are not parallel are
    // trees: no cycles. So the skip above is safe — but parallel pairs
    // *are* cycles of length 2 (even), still safe.
    finish(g, deleted)
}

/// Brute-force minimum-weight bipartization by subset enumeration (test
/// oracle; ≤ 20 alive edges).
///
/// # Panics
///
/// Panics if the graph has more than 20 alive edges.
pub fn brute_force_bipartize(g: &EmbeddedGraph) -> BipartizeOutcome {
    let alive: Vec<EdgeId> = g.alive_edges().collect();
    assert!(alive.len() <= 20, "brute force limited to 20 edges");
    let mut best: Option<(i64, Vec<EdgeId>)> = None;
    for mask in 0u32..(1 << alive.len()) {
        let subset: Vec<EdgeId> = (0..alive.len())
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| alive[i])
            .collect();
        let weight = g.total_weight(subset.iter().copied());
        if best.as_ref().is_some_and(|(bw, _)| weight >= *bw) {
            continue;
        }
        if two_color_excluding(g, &subset).is_ok() {
            best = Some((weight, subset));
        }
    }
    let (weight, deleted) = best.expect("deleting all edges is always bipartite");
    BipartizeOutcome { deleted, weight }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Point;
    use aapsm_graph::{planarize, PlanarizeOrder};
    use aapsm_tjoin::GadgetKind;
    use rand::{Rng, SeedableRng};

    fn methods() -> Vec<BipartizeMethod> {
        vec![
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::Complete),
                blocks: false,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::Optimized),
                blocks: false,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::Gadget(GadgetKind::default()),
                blocks: true,
            },
            BipartizeMethod::OptimalDual {
                tjoin: TJoinMethod::ShortestPath,
                blocks: false,
            },
        ]
    }

    #[test]
    fn triangle_deletes_cheapest_edge() {
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(Point::new(0, 0));
        let b = g.add_node(Point::new(100, 0));
        let c = g.add_node(Point::new(50, 80));
        g.add_edge(a, b, 5);
        g.add_edge(b, c, 3);
        let cheap = g.add_edge(c, a, 2);
        for m in methods() {
            let out = bipartize(&g, m);
            assert_eq!(out.deleted, vec![cheap], "{m:?}");
            assert_eq!(out.weight, 2);
        }
    }

    #[test]
    fn bipartite_graph_deletes_nothing() {
        let mut g = EmbeddedGraph::new();
        let n: Vec<_> = (0..4)
            .map(|i| g.add_node(Point::new([0, 100, 100, 0][i], [0, 0, 100, 100][i])))
            .collect();
        for i in 0..4 {
            g.add_edge(n[i], n[(i + 1) % 4], 1);
        }
        for m in methods() {
            assert!(bipartize(&g, m).deleted.is_empty(), "{m:?}");
        }
    }

    #[test]
    fn two_fused_triangles_share_one_deletion() {
        // Two triangles sharing an edge: deleting the shared edge fixes
        // both odd cycles at once — optimal must find that.
        let mut g = EmbeddedGraph::new();
        let a = g.add_node(Point::new(0, 0));
        let b = g.add_node(Point::new(100, 0));
        let top = g.add_node(Point::new(50, 80));
        let bot = g.add_node(Point::new(50, -80));
        g.add_edge(a, top, 10);
        g.add_edge(top, b, 10);
        g.add_edge(a, bot, 10);
        g.add_edge(bot, b, 10);
        let shared = g.add_edge(a, b, 15);
        for m in methods() {
            let out = bipartize(&g, m);
            assert_eq!(out.deleted, vec![shared], "{m:?}");
            assert_eq!(out.weight, 15);
        }
        // Greedy parity deletes one edge too (any closing edge).
        let gp = bipartize(&g, BipartizeMethod::GreedyParity);
        assert!(gp.weight >= 15 || gp.deleted.len() >= 1);
        // Literal spanning-forest GB deletes |E| - (V-1) = 2 edges.
        let gb = bipartize(&g, BipartizeMethod::GreedySpanning);
        assert_eq!(gb.deleted.len(), 2);
    }

    #[test]
    fn optimal_matches_brute_force_on_random_plane_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(321);
        for trial in 0..40 {
            let n = rng.gen_range(4..12);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(Point::new(rng.gen_range(-300..300), rng.gen_range(-300..300))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(3..18) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..40));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            if g.alive_edge_count() > 20 {
                continue;
            }
            let brute = brute_force_bipartize(&g);
            for m in methods() {
                let out = bipartize(&g, m);
                assert_eq!(
                    out.weight, brute.weight,
                    "trial {trial} {m:?}: optimal must match brute force"
                );
                assert!(two_color_excluding(&g, &out.deleted).is_ok());
            }
            // Greedy baselines are valid but possibly heavier.
            for m in [BipartizeMethod::GreedyParity, BipartizeMethod::GreedySpanning] {
                let out = bipartize(&g, m);
                assert!(out.weight >= brute.weight, "trial {trial} {m:?}");
            }
        }
    }

    #[test]
    fn blocks_and_components_agree() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for _ in 0..15 {
            let n = rng.gen_range(6..25);
            let mut g = EmbeddedGraph::new();
            let nodes: Vec<_> = (0..n)
                .map(|_| g.add_node(Point::new(rng.gen_range(-500..500), rng.gen_range(-500..500))))
                .collect();
            g.nudge_duplicate_positions();
            for _ in 0..rng.gen_range(5..40) {
                let u = rng.gen_range(0..n);
                let v = rng.gen_range(0..n);
                if u != v {
                    g.add_edge(nodes[u], nodes[v], rng.gen_range(1..40));
                }
            }
            planarize(&mut g, PlanarizeOrder::MinWeightFirst);
            let a = bipartize(
                &g,
                BipartizeMethod::OptimalDual {
                    tjoin: TJoinMethod::default(),
                    blocks: false,
                },
            );
            let b = bipartize(
                &g,
                BipartizeMethod::OptimalDual {
                    tjoin: TJoinMethod::default(),
                    blocks: true,
                },
            );
            assert_eq!(a.weight, b.weight);
        }
    }
}
