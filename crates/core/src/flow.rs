//! The one-call end-to-end flow: a detect → correct → **re-detect**
//! convergence loop over the incremental [`crate::RedetectEngine`],
//! followed by phase assignment.

use crate::{
    plan_correction, CorrectionOptions, CorrectionPlan, CorrectionReport, DetectConfig,
    DetectReport, RedetectEngine,
};
use aapsm_layout::{
    apply_cuts, check_assignable, DesignRules, Layout, PhaseAssignment, PhaseGeometry,
};
use std::fmt;

/// Configuration of [`run_flow`].
#[derive(Clone, Copy, Debug)]
pub struct FlowConfig {
    /// Detection pipeline configuration.
    pub detect: DetectConfig,
    /// Correction planner options. [`CorrectionOptions::parallelism`] is
    /// overridden by [`DetectConfig::parallelism`] inside [`run_flow`]:
    /// the whole flow — detection *and* the correction planner's
    /// per-component cover solves — sits behind the one knob, and every
    /// degree is bit-identical.
    pub correct: CorrectionOptions,
    /// Maximum detect→correct rounds. Round `k+1` re-verifies round
    /// `k`'s cuts incrementally; the loop ends early once a round
    /// detects no conflicts. Space insertion can *unblock* a previously
    /// feature-blocked shifter corridor (the stretched geometry opens a
    /// clear sightline), so a single round is not always enough.
    pub max_rounds: usize,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            detect: DetectConfig::default(),
            correct: CorrectionOptions::default(),
            max_rounds: 8,
        }
    }
}

/// One round of the detect→correct→re-detect loop.
#[derive(Clone, Copy, Debug)]
pub struct FlowRound {
    /// Conflicts the round detected.
    pub conflicts: usize,
    /// End-to-end spaces it inserted (0 on the converged round).
    pub cuts: usize,
    /// Whether detection ran incrementally (round 0 never does).
    pub incremental: bool,
}

/// Errors of the end-to-end flow.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// The design rules are inconsistent.
    BadRules(String),
    /// Some of the *first* detection round's conflicts could not be
    /// corrected by space insertion (indices into that round's report —
    /// the `detection` the caller would have received); the caller
    /// should route them to feature widening / mask splitting.
    /// Uncorrectable conflicts that only *appear* in a later round (cut
    /// geometry can create them) do not error: the flow returns its
    /// partial result with `verified == false` and the leftover count in
    /// the final [`FlowRound`].
    Uncorrectable(Vec<usize>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::BadRules(msg) => write!(f, "invalid design rules: {msg}"),
            FlowError::Uncorrectable(v) => {
                write!(
                    f,
                    "{} conflicts not correctable by space insertion",
                    v.len()
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Everything the flow produced.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Extracted phase geometry of the input layout.
    pub geometry: PhaseGeometry,
    /// Conflict detection report of the first round.
    pub detection: DetectReport,
    /// First-round correction plan (empty when the layout was already
    /// assignable). Later rounds' cut counts are in [`FlowResult::rounds`].
    pub plan: CorrectionPlan,
    /// Cumulative correction report: the final layout and the overall
    /// area change.
    pub correction: CorrectionReport,
    /// Phase assignment of the corrected layout.
    pub assignment: PhaseAssignment,
    /// Whether the corrected layout verifies as phase-assignable.
    pub verified: bool,
    /// The detect→correct rounds the loop ran, in order.
    pub rounds: Vec<FlowRound>,
}

impl FlowResult {
    /// Number of detect rounds run (≥ 1).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Conflicts detected in the final round (0 when converged).
    pub fn final_conflicts(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.conflicts)
    }
}

/// Runs the full bright-field AAPSM flow on a layout:
///
/// 1. extract features/shifters/overlaps,
/// 2. detect the minimal conflict set (phase conflict graph →
///    planarization → dual-T-join bipartization → recheck),
/// 3. plan and apply end-to-end space insertion,
/// 4. **re-detect incrementally** and repeat from 3 until no conflicts
///    remain (or [`FlowConfig::max_rounds`] is hit — the result then has
///    `verified == false`),
/// 5. phase-assign the corrected layout.
///
/// Re-detection reuses the prior round's extraction state, tile
/// decomposition, crossing set and dual-T-join solutions
/// ([`RedetectEngine`]); every round's report is bit-identical to a
/// from-scratch detection of the round's layout.
///
/// # Errors
///
/// * [`FlowError::BadRules`] for inconsistent design rules;
/// * [`FlowError::Uncorrectable`] when some conflicts cannot be fixed by
///   spacing (T-shape-like cases the paper routes to feature widening or
///   mask splitting).
pub fn run_flow(
    layout: &Layout,
    rules: &DesignRules,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    rules.validate().map_err(FlowError::BadRules)?;
    // One knob for the whole flow: the correction planner's cover solves
    // run at the detection pipeline's parallelism degree.
    let correct_options = CorrectionOptions {
        parallelism: config.detect.parallelism,
        ..config.correct
    };
    let mut engine = RedetectEngine::new(*rules, config.detect);
    let mut current = layout.clone();
    let mut rounds: Vec<FlowRound> = Vec::new();
    let mut first: Option<(PhaseGeometry, DetectReport, CorrectionPlan)> = None;
    let mut report = engine.detect_full(&current);
    let mut recorded_final = false;
    for _correction_round in 0..config.max_rounds.max(1) {
        let geometry = engine.geometry().expect("detection ran");
        let plan = plan_correction(geometry, &report.conflicts, rules, &correct_options);
        if first.is_none() {
            first = Some((geometry.clone(), report.clone(), plan.clone()));
        }
        if report.conflict_count() == 0 {
            rounds.push(FlowRound {
                conflicts: 0,
                cuts: 0,
                incremental: engine.last_stats().incremental,
            });
            recorded_final = true;
            break;
        }
        if !plan.uncorrectable.is_empty() {
            if rounds.is_empty() {
                // First detection: the error's indices address the
                // report the caller would have received.
                return Err(FlowError::Uncorrectable(plan.uncorrectable));
            }
            // A *cut-created* conflict with no legal correction line:
            // stop correcting and return the partial result (verified
            // = false, remaining conflicts in the final round) instead
            // of an error whose indices would address a report the
            // caller never sees.
            rounds.push(FlowRound {
                conflicts: report.conflict_count(),
                cuts: 0,
                incremental: engine.last_stats().incremental,
            });
            recorded_final = true;
            break;
        }
        rounds.push(FlowRound {
            conflicts: report.conflict_count(),
            cuts: plan.cuts.len(),
            incremental: engine.last_stats().incremental,
        });
        debug_assert!(!plan.cuts.is_empty(), "correctable conflicts yield cuts");
        let modified = apply_cuts(&current, &plan.cuts);
        report = engine.redetect_after_correction(&modified, &plan.cuts);
        current = modified;
    }
    if !recorded_final {
        // Round cap hit: record the last re-detection (converged or not)
        // without planning another correction.
        rounds.push(FlowRound {
            conflicts: report.conflict_count(),
            cuts: 0,
            incremental: engine.last_stats().incremental,
        });
    }

    let (geometry, detection, plan) = first.expect("at least one round ran");
    let final_geom = engine.geometry().expect("detection ran");
    let converged = report.conflict_count() == 0;
    let (assignment, assignable) = match check_assignable(final_geom) {
        Ok(a) => (a, true),
        Err(_) => (
            // Verification failed; return the trivial assignment with
            // verified = false so callers can inspect.
            PhaseAssignment {
                phase: vec![0; final_geom.shifters.len()],
            },
            false,
        ),
    };
    let verified = converged && assignable;
    let correction = CorrectionReport::from_modified(current, layout.stats().bbox_area, verified);
    Ok(FlowResult {
        geometry,
        detection,
        plan,
        correction,
        assignment,
        verified,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_layout::{extract_phase_geometry, fixtures};

    #[test]
    fn flow_on_clean_layout_is_identity() {
        let rules = DesignRules::default();
        let layout = fixtures::wire_row(6, 600);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert_eq!(res.detection.conflict_count(), 0);
        assert!(res.plan.cuts.is_empty());
        assert_eq!(res.correction.modified, layout);
        assert!(res.verified);
    }

    #[test]
    fn flow_fixes_conflicting_fixture() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(5, &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.detection.conflict_count() > 0);
        assert!(res.verified);
        // The assignment satisfies the corrected geometry.
        let geom = extract_phase_geometry(&res.correction.modified, &rules);
        assert!(res.assignment.satisfies(&geom));
    }

    #[test]
    fn bad_rules_rejected() {
        let rules = DesignRules {
            shifter_width: -1,
            ..DesignRules::default()
        };
        assert!(matches!(
            run_flow(&fixtures::wire_row(2, 600), &rules, &FlowConfig::default()),
            Err(FlowError::BadRules(_))
        ));
    }

    #[test]
    fn two_round_fixture_converges_with_round_accounting() {
        // The corridor-unblock fixture: round 1's cut stretches the
        // straps and opens a previously blocked corridor, so a *new*
        // conflict appears and a second correction round is required.
        let rules = DesignRules::default();
        let layout = fixtures::corridor_unblock_two_round(&rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.verified);
        assert_eq!(res.round_count(), 3, "rounds: {:?}", res.rounds);
        assert_eq!(res.rounds[0].conflicts, 1);
        assert!(!res.rounds[0].incremental);
        assert!(res.rounds[0].cuts >= 1);
        assert_eq!(res.rounds[1].conflicts, 1, "rounds: {:?}", res.rounds);
        assert!(res.rounds[1].incremental);
        assert_eq!(res.rounds[2].conflicts, 0);
        assert_eq!(res.final_conflicts(), 0);
        // Single-round flows must not regress: the bus fixture still
        // converges after one correction.
        let bus = run_flow(
            &fixtures::strap_under_bus(5, &rules),
            &rules,
            &FlowConfig::default(),
        )
        .unwrap();
        assert_eq!(bus.round_count(), 2, "rounds: {:?}", bus.rounds);
        assert_eq!(bus.final_conflicts(), 0);
    }

    #[test]
    fn later_round_uncorrectable_returns_partial_result() {
        // The two-round fixture plus a far-away horizontal wall whose
        // forbidden y-span outlaws every correction candidate of the
        // round-2 (cut-created) conflict: the flow must stop with an
        // inspectable partial result, not an error indexing a report the
        // caller never sees.
        let rules = DesignRules::default();
        let mut rects = fixtures::corridor_unblock_two_round(&rules)
            .rects()
            .to_vec();
        rects.push(aapsm_geom::Rect::new(5000, 99, 6000, 601));
        let layout = aapsm_layout::Layout::from_rects(rects);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(!res.verified);
        assert_eq!(res.round_count(), 2, "rounds: {:?}", res.rounds);
        assert!(res.final_conflicts() > 0);
        assert_eq!(res.rounds[1].cuts, 0, "no further correction attempted");
        // A round-0 uncorrectable still errors with indices into the
        // first report.
        let direct = fixtures::corridor_unblock_two_round(&rules);
        assert!(run_flow(&direct, &rules, &FlowConfig::default()).is_ok());
    }

    #[test]
    fn round_cap_reports_unconverged() {
        let rules = DesignRules::default();
        let layout = fixtures::corridor_unblock_two_round(&rules);
        let res = run_flow(
            &layout,
            &rules,
            &FlowConfig {
                max_rounds: 1,
                ..FlowConfig::default()
            },
        )
        .unwrap();
        // One correction round is not enough for this fixture.
        assert!(!res.verified);
        assert_eq!(res.round_count(), 2);
        assert!(res.final_conflicts() > 0);
    }

    #[test]
    fn flow_on_synthetic_design() {
        let rules = DesignRules::default();
        let layout =
            aapsm_layout::synth::generate(&aapsm_layout::synth::SynthParams::default(), &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.verified);
        assert!(res.correction.area_increase_pct >= 0.0);
    }
}
