//! The one-call end-to-end flow: a detect → correct → **re-detect**
//! convergence loop over the incremental [`crate::RedetectEngine`],
//! followed by phase assignment.
//!
//! The flow is *budgeted* and *fault-isolated*: the budget carried by
//! [`DetectConfig::budget`] is checked at entry and charged by every
//! stage, degradations are recorded per round in
//! [`FlowResult::provenance`], and a worker panic that survives the
//! per-item retry of `aapsm_geom::par_map_indexed` surfaces as
//! [`FlowError::WorkerPanic`] instead of unwinding through the caller.

use crate::{
    plan_correction, CorrectionOptions, CorrectionPlan, CorrectionReport, DetectConfig,
    DetectReport, RedetectEngine, SharedSolveCache,
};
use aapsm_fault::{Budget, BudgetExceeded, Stage};
use aapsm_layout::{
    apply_cuts, check_assignable, DesignRules, Layout, LayoutError, PhaseAssignment, PhaseGeometry,
};
use std::fmt;

/// Configuration of [`run_flow`].
#[derive(Clone, Debug)]
pub struct FlowConfig {
    /// Detection pipeline configuration. Its [`DetectConfig::budget`] is
    /// the **flow-wide** budget: [`run_flow`] checks it at entry and
    /// drives the correction planner's cover solves with it too.
    pub detect: DetectConfig,
    /// Correction planner options. [`CorrectionOptions::parallelism`]
    /// and [`CorrectionOptions::budget`] are overridden by the `detect`
    /// field's inside [`run_flow`]: the whole flow — detection *and* the
    /// correction planner's per-component cover solves — sits behind one
    /// knob and one budget, and every degree is bit-identical.
    pub correct: CorrectionOptions,
    /// Maximum detect→correct rounds. Round `k+1` re-verifies round
    /// `k`'s cuts incrementally; the loop ends early once a round
    /// detects no conflicts. Space insertion can *unblock* a previously
    /// feature-blocked shifter corridor (the stretched geometry opens a
    /// clear sightline), so a single round is not always enough.
    pub max_rounds: usize,
    /// Optional cross-session dual-T-join memo: when set, the flow's
    /// internal [`RedetectEngine`] routes its solve cache through this
    /// shared cache (the resident service points every session here).
    /// Every flow sharing one cache must use the same
    /// [`DetectConfig::tjoin`]/[`DetectConfig::blocks`] configuration.
    pub solve_cache: Option<SharedSolveCache>,
}

impl Default for FlowConfig {
    fn default() -> Self {
        FlowConfig {
            detect: DetectConfig::default(),
            correct: CorrectionOptions::default(),
            max_rounds: 8,
            solve_cache: None,
        }
    }
}

impl FlowConfig {
    /// A default configuration whose detection *and* correction stages
    /// share `budget` — the one-call way to run a deadline-bounded flow.
    pub fn with_budget(budget: Budget) -> FlowConfig {
        FlowConfig {
            detect: DetectConfig {
                budget: budget.clone(),
                ..DetectConfig::default()
            },
            correct: CorrectionOptions {
                budget,
                ..CorrectionOptions::default()
            },
            max_rounds: 8,
            solve_cache: None,
        }
    }
}

/// One round of the detect→correct→re-detect loop.
#[derive(Clone, Copy, Debug)]
pub struct FlowRound {
    /// Conflicts the round detected.
    pub conflicts: usize,
    /// End-to-end spaces it inserted (0 on the converged round).
    pub cuts: usize,
    /// Whether detection ran incrementally (round 0 never does).
    pub incremental: bool,
}

/// How one flow stage of one round obtained its result.
///
/// The truthfulness contract of the degradation ladder: a stage may fall
/// back to a cheaper method when the budget trips, but the fall-back is
/// always recorded here — a degraded answer can never masquerade as a
/// proven one.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StageProvenance {
    /// The stage ran its exact/optimal algorithm to completion.
    Exact,
    /// The stage fell back to a cheaper method (the payload says why);
    /// its result is valid but not proven optimal.
    Degraded(String),
    /// The stage did not run (the payload says why).
    Skipped(String),
}

impl StageProvenance {
    /// Whether this stage ran its exact algorithm to completion.
    pub fn is_exact(&self) -> bool {
        matches!(self, StageProvenance::Exact)
    }
}

/// Per-stage provenance of one [`FlowRound`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RoundProvenance {
    /// Conflict-graph build (tile-sharded or incremental). Never
    /// degraded: a graph build that trips its budget aborts the flow
    /// instead (no cheaper build exists).
    pub build: StageProvenance,
    /// Optimal bipartization; degrades to parity-greedy on a budget trip.
    pub bipartize: StageProvenance,
    /// Correction cover; degraded when the exact branch-and-bound was
    /// truncated or budget-tripped (the plan keeps its feasible
    /// incumbent).
    pub correct: StageProvenance,
}

impl RoundProvenance {
    /// Whether every stage of the round ran exactly.
    pub fn is_exact(&self) -> bool {
        self.build.is_exact() && self.bipartize.is_exact() && self.correct.is_exact()
    }

    fn skipped(reason: &str) -> RoundProvenance {
        RoundProvenance {
            build: StageProvenance::Skipped(reason.to_string()),
            bipartize: StageProvenance::Skipped(reason.to_string()),
            correct: StageProvenance::Skipped(reason.to_string()),
        }
    }
}

/// Errors of the end-to-end flow.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// The design rules are inconsistent.
    BadRules(String),
    /// The input layout failed sanitization ([`Layout::sanitize`]):
    /// degenerate rects, duplicated geometry, or coordinates too close
    /// to the GDS i32 range for the rules' shifter extents.
    BadLayout(LayoutError),
    /// Some of the *first* detection round's conflicts could not be
    /// corrected by space insertion (indices into that round's report —
    /// the `detection` the caller would have received); the caller
    /// should route them to feature widening / mask splitting.
    /// Uncorrectable conflicts that only *appear* in a later round (cut
    /// geometry can create them) do not error: the flow returns its
    /// partial result with `verified == false` and the leftover count in
    /// the final [`FlowRound`].
    Uncorrectable(Vec<usize>),
    /// The budget was exhausted (or cancelled) before any partial result
    /// worth returning existed: already expired at entry, or tripped
    /// during a graph build — the one stage with no degraded form.
    Budget(BudgetExceeded),
    /// A worker panic survived the per-item retry; the payload is the
    /// panic message.
    WorkerPanic(String),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::BadRules(msg) => write!(f, "invalid design rules: {msg}"),
            FlowError::BadLayout(e) => write!(f, "invalid layout: {e}"),
            FlowError::Uncorrectable(v) => {
                write!(
                    f,
                    "{} conflicts not correctable by space insertion (report indices",
                    v.len()
                )?;
                for (n, i) in v.iter().take(8).enumerate() {
                    write!(f, "{} {i}", if n == 0 { "" } else { "," })?;
                }
                if v.len() > 8 {
                    write!(f, ", …")?;
                }
                write!(f, ")")
            }
            FlowError::Budget(e) => write!(f, "flow budget exhausted: {e}"),
            FlowError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for FlowError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlowError::BadLayout(e) => Some(e),
            FlowError::Budget(e) => Some(e),
            FlowError::BadRules(_) | FlowError::Uncorrectable(_) | FlowError::WorkerPanic(_) => {
                None
            }
        }
    }
}

/// Everything the flow produced.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Extracted phase geometry of the input layout.
    pub geometry: PhaseGeometry,
    /// Conflict detection report of the first round.
    pub detection: DetectReport,
    /// First-round correction plan (empty when the layout was already
    /// assignable). Later rounds' cut counts are in [`FlowResult::rounds`].
    pub plan: CorrectionPlan,
    /// Cumulative correction report: the final layout and the overall
    /// area change.
    pub correction: CorrectionReport,
    /// Phase assignment of the corrected layout.
    pub assignment: PhaseAssignment,
    /// Whether the corrected layout verifies as phase-assignable.
    pub verified: bool,
    /// The detect→correct rounds the loop ran, in order.
    pub rounds: Vec<FlowRound>,
    /// Per-stage provenance of each round, parallel to
    /// [`FlowResult::rounds`]: which stages ran exactly, which degraded
    /// under the budget, which were skipped.
    pub provenance: Vec<RoundProvenance>,
}

impl FlowResult {
    /// Number of detect rounds run (≥ 1).
    pub fn round_count(&self) -> usize {
        self.rounds.len()
    }

    /// Conflicts detected in the final round (0 when converged).
    pub fn final_conflicts(&self) -> usize {
        self.rounds.last().map_or(0, |r| r.conflicts)
    }

    /// Whether the flow never walked the degradation ladder: every
    /// detection stage ran exactly and no cover was truncated. Benign
    /// skips (a converged round with nothing to correct, the round cap)
    /// don't count; a budget-stopped final round (all stages skipped)
    /// does.
    pub fn all_exact(&self) -> bool {
        self.provenance.iter().all(|p| {
            p.build.is_exact()
                && p.bipartize.is_exact()
                && !matches!(p.correct, StageProvenance::Degraded(_))
        })
    }
}

/// Runs the full bright-field AAPSM flow on a layout:
///
/// 1. extract features/shifters/overlaps,
/// 2. detect the minimal conflict set (phase conflict graph →
///    planarization → dual-T-join bipartization → recheck),
/// 3. plan and apply end-to-end space insertion,
/// 4. **re-detect incrementally** and repeat from 3 until no conflicts
///    remain (or [`FlowConfig::max_rounds`] is hit — the result then has
///    `verified == false`),
/// 5. phase-assign the corrected layout.
///
/// Re-detection reuses the prior round's extraction state, tile
/// decomposition, crossing set and dual-T-join solutions
/// ([`RedetectEngine`]); every round's report is bit-identical to a
/// from-scratch detection of the round's layout.
///
/// Under a limited [`DetectConfig::budget`] the flow degrades gracefully
/// where a cheaper valid method exists (see [`RoundProvenance`]) and
/// stops early — returning the partial result with `verified == false` —
/// when the budget trips between rounds; only an entry-expired budget or
/// a trip inside a graph build errors.
///
/// # Errors
///
/// * [`FlowError::BadRules`] for inconsistent design rules;
/// * [`FlowError::BadLayout`] for layouts failing [`Layout::sanitize`];
/// * [`FlowError::Uncorrectable`] when some conflicts cannot be fixed by
///   spacing (T-shape-like cases the paper routes to feature widening or
///   mask splitting);
/// * [`FlowError::Budget`] when the budget is exhausted with nothing to
///   return;
/// * [`FlowError::WorkerPanic`] when a worker panic survives the retry.
pub fn run_flow(
    layout: &Layout,
    rules: &DesignRules,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    rules.validate().map_err(FlowError::BadRules)?;
    layout.sanitize(rules).map_err(FlowError::BadLayout)?;
    let budget = config.detect.budget.clone();
    budget.check(Stage::GraphBuild).map_err(FlowError::Budget)?;
    // Panic isolation: `par_map_indexed` already retries a panicked item
    // once serially; a panic that survives that retry (or one on the
    // calling thread) is converted to a structured error here rather
    // than unwinding through the caller.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_flow_inner(layout, rules, config, &budget)
    })) {
        Ok(result) => result,
        Err(payload) => Err(FlowError::WorkerPanic(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panic".to_string()
    }
}

// Invariants, not error paths: detection runs before the loop, so the
// engine geometry and the first-round snapshot always exist.
#[allow(clippy::expect_used)]
fn run_flow_inner(
    layout: &Layout,
    rules: &DesignRules,
    config: &FlowConfig,
    budget: &Budget,
) -> Result<FlowResult, FlowError> {
    // One knob and one budget for the whole flow: the correction
    // planner's cover solves run at the detection pipeline's parallelism
    // degree and charge the detection budget.
    let correct_options = CorrectionOptions {
        parallelism: config.detect.parallelism,
        budget: budget.clone(),
        ..config.correct.clone()
    };
    let mut engine = RedetectEngine::new(*rules, config.detect.clone());
    if let Some(cache) = &config.solve_cache {
        engine.set_shared_cache(cache.clone());
    }
    let mut current = layout.clone();
    let mut rounds: Vec<FlowRound> = Vec::new();
    let mut provenance: Vec<RoundProvenance> = Vec::new();
    let mut first: Option<(PhaseGeometry, DetectReport, CorrectionPlan)> = None;
    let (mut report, mut bip_prov) = engine
        .try_detect_full(&current)
        .map_err(FlowError::Budget)?;
    // The last successfully detected geometry: the engine drops its
    // state on a failed re-detect, so the final verification needs its
    // own copy.
    let mut last_geom: PhaseGeometry = engine.geometry().expect("detection ran").clone();
    let mut recorded_final = false;
    let mut budget_stopped = false;
    for _correction_round in 0..config.max_rounds.max(1) {
        let geometry = engine.geometry().expect("detection ran");
        let plan = plan_correction(geometry, &report.conflicts, rules, &correct_options);
        if first.is_none() {
            first = Some((geometry.clone(), report.clone(), plan.clone()));
        }
        if report.conflict_count() == 0 {
            rounds.push(FlowRound {
                conflicts: 0,
                cuts: 0,
                incremental: engine.last_stats().incremental,
            });
            provenance.push(RoundProvenance {
                build: StageProvenance::Exact,
                bipartize: bip_prov.clone(),
                correct: StageProvenance::Skipped("no conflicts to correct".to_string()),
            });
            recorded_final = true;
            break;
        }
        if !plan.uncorrectable.is_empty() {
            if rounds.is_empty() {
                // First detection: the error's indices address the
                // report the caller would have received.
                return Err(FlowError::Uncorrectable(plan.uncorrectable));
            }
            // A *cut-created* conflict with no legal correction line:
            // stop correcting and return the partial result (verified
            // = false, remaining conflicts in the final round) instead
            // of an error whose indices would address a report the
            // caller never sees.
            rounds.push(FlowRound {
                conflicts: report.conflict_count(),
                cuts: 0,
                incremental: engine.last_stats().incremental,
            });
            provenance.push(RoundProvenance {
                build: StageProvenance::Exact,
                bipartize: bip_prov.clone(),
                correct: StageProvenance::Skipped(
                    "cut-created conflicts have no legal correction line".to_string(),
                ),
            });
            recorded_final = true;
            break;
        }
        rounds.push(FlowRound {
            conflicts: report.conflict_count(),
            cuts: plan.cuts.len(),
            incremental: engine.last_stats().incremental,
        });
        provenance.push(RoundProvenance {
            build: StageProvenance::Exact,
            bipartize: bip_prov.clone(),
            correct: if plan.cover_optimal {
                StageProvenance::Exact
            } else {
                StageProvenance::Degraded(
                    "cover search truncated (node limit or budget); feasible incumbent kept"
                        .to_string(),
                )
            },
        });
        debug_assert!(!plan.cuts.is_empty(), "correctable conflicts yield cuts");
        let modified = apply_cuts(&current, &plan.cuts);
        current = modified;
        match engine.try_redetect_after_correction(&current, &plan.cuts) {
            Ok((r, p)) => {
                report = r;
                bip_prov = p;
                last_geom = engine.geometry().expect("detection ran").clone();
            }
            Err(e) => {
                // The cuts just applied were planned from a *verified*
                // detection, so `current` is a sound partial result; only
                // its re-verification is missing. Record a truthfully
                // skipped final round and stop.
                rounds.push(FlowRound {
                    conflicts: 0,
                    cuts: 0,
                    incremental: false,
                });
                provenance.push(RoundProvenance::skipped(&format!(
                    "re-detection stopped by budget: {e}"
                )));
                budget_stopped = true;
                recorded_final = true;
                break;
            }
        }
    }
    if !recorded_final {
        // Round cap hit: record the last re-detection (converged or not)
        // without planning another correction.
        rounds.push(FlowRound {
            conflicts: report.conflict_count(),
            cuts: 0,
            incremental: engine.last_stats().incremental,
        });
        provenance.push(RoundProvenance {
            build: StageProvenance::Exact,
            bipartize: bip_prov.clone(),
            correct: StageProvenance::Skipped("round cap reached".to_string()),
        });
    }

    let (geometry, detection, plan) = first.expect("at least one round ran");
    let converged = !budget_stopped && report.conflict_count() == 0;
    let (assignment, assignable) = if budget_stopped {
        // `last_geom` predates the final (unverified) cuts; skip the
        // check and return the trivial assignment with verified = false.
        (
            PhaseAssignment {
                phase: vec![0; last_geom.shifters.len()],
            },
            false,
        )
    } else {
        match check_assignable(&last_geom) {
            Ok(a) => (a, true),
            Err(_) => (
                // Verification failed; return the trivial assignment with
                // verified = false so callers can inspect.
                PhaseAssignment {
                    phase: vec![0; last_geom.shifters.len()],
                },
                false,
            ),
        }
    };
    let verified = converged && assignable;
    let correction = CorrectionReport::from_modified(current, layout.stats().bbox_area, verified);
    Ok(FlowResult {
        geometry,
        detection,
        plan,
        correction,
        assignment,
        verified,
        rounds,
        provenance,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_layout::{extract_phase_geometry, fixtures};

    #[test]
    fn flow_on_clean_layout_is_identity() {
        let rules = DesignRules::default();
        let layout = fixtures::wire_row(6, 600);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert_eq!(res.detection.conflict_count(), 0);
        assert!(res.plan.cuts.is_empty());
        assert_eq!(res.correction.modified, layout);
        assert!(res.verified);
        assert!(res.all_exact(), "provenance: {:?}", res.provenance);
        assert_eq!(res.provenance.len(), res.rounds.len());
    }

    #[test]
    fn flow_fixes_conflicting_fixture() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(5, &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.detection.conflict_count() > 0);
        assert!(res.verified);
        // The assignment satisfies the corrected geometry.
        let geom = extract_phase_geometry(&res.correction.modified, &rules);
        assert!(res.assignment.satisfies(&geom));
        // Unbudgeted rounds are all-exact except the final skip reason.
        assert_eq!(res.provenance.len(), res.rounds.len());
        for p in &res.provenance {
            assert!(p.build.is_exact());
            assert!(p.bipartize.is_exact());
        }
    }

    #[test]
    fn bad_rules_rejected() {
        let rules = DesignRules {
            shifter_width: -1,
            ..DesignRules::default()
        };
        assert!(matches!(
            run_flow(&fixtures::wire_row(2, 600), &rules, &FlowConfig::default()),
            Err(FlowError::BadRules(_))
        ));
    }

    #[test]
    fn bad_layout_rejected() {
        let rules = DesignRules::default();
        let mut rects = fixtures::wire_row(2, 600).rects().to_vec();
        rects.push(rects[0]); // exact duplicate
        let layout = aapsm_layout::Layout::from_rects(rects);
        assert!(matches!(
            run_flow(&layout, &rules, &FlowConfig::default()),
            Err(FlowError::BadLayout(LayoutError::DuplicateRect { .. }))
        ));
    }

    #[test]
    fn two_round_fixture_converges_with_round_accounting() {
        // The corridor-unblock fixture: round 1's cut stretches the
        // straps and opens a previously blocked corridor, so a *new*
        // conflict appears and a second correction round is required.
        let rules = DesignRules::default();
        let layout = fixtures::corridor_unblock_two_round(&rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.verified);
        assert_eq!(res.round_count(), 3, "rounds: {:?}", res.rounds);
        assert_eq!(res.rounds[0].conflicts, 1);
        assert!(!res.rounds[0].incremental);
        assert!(res.rounds[0].cuts >= 1);
        assert_eq!(res.rounds[1].conflicts, 1, "rounds: {:?}", res.rounds);
        assert!(res.rounds[1].incremental);
        assert_eq!(res.rounds[2].conflicts, 0);
        assert_eq!(res.final_conflicts(), 0);
        // Single-round flows must not regress: the bus fixture still
        // converges after one correction.
        let bus = run_flow(
            &fixtures::strap_under_bus(5, &rules),
            &rules,
            &FlowConfig::default(),
        )
        .unwrap();
        assert_eq!(bus.round_count(), 2, "rounds: {:?}", bus.rounds);
        assert_eq!(bus.final_conflicts(), 0);
    }

    #[test]
    fn later_round_uncorrectable_returns_partial_result() {
        // The two-round fixture plus a far-away horizontal wall whose
        // forbidden y-span outlaws every correction candidate of the
        // round-2 (cut-created) conflict: the flow must stop with an
        // inspectable partial result, not an error indexing a report the
        // caller never sees.
        let rules = DesignRules::default();
        let mut rects = fixtures::corridor_unblock_two_round(&rules)
            .rects()
            .to_vec();
        rects.push(aapsm_geom::Rect::new(5000, 99, 6000, 601));
        let layout = aapsm_layout::Layout::from_rects(rects);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(!res.verified);
        assert_eq!(res.round_count(), 2, "rounds: {:?}", res.rounds);
        assert!(res.final_conflicts() > 0);
        assert_eq!(res.rounds[1].cuts, 0, "no further correction attempted");
        assert!(
            matches!(res.provenance[1].correct, StageProvenance::Skipped(_)),
            "provenance: {:?}",
            res.provenance
        );
        // A round-0 uncorrectable still errors with indices into the
        // first report.
        let direct = fixtures::corridor_unblock_two_round(&rules);
        assert!(run_flow(&direct, &rules, &FlowConfig::default()).is_ok());
    }

    #[test]
    fn round_cap_reports_unconverged() {
        let rules = DesignRules::default();
        let layout = fixtures::corridor_unblock_two_round(&rules);
        let res = run_flow(
            &layout,
            &rules,
            &FlowConfig {
                max_rounds: 1,
                ..FlowConfig::default()
            },
        )
        .unwrap();
        // One correction round is not enough for this fixture.
        assert!(!res.verified);
        assert_eq!(res.round_count(), 2);
        assert!(res.final_conflicts() > 0);
        assert!(
            matches!(res.provenance[1].correct, StageProvenance::Skipped(_)),
            "provenance: {:?}",
            res.provenance
        );
    }

    #[test]
    fn flow_on_synthetic_design() {
        let rules = DesignRules::default();
        let layout =
            aapsm_layout::synth::generate(&aapsm_layout::synth::SynthParams::default(), &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.verified);
        assert!(res.correction.area_increase_pct >= 0.0);
    }
}
