//! The one-call end-to-end flow: extract → detect → correct → assign.

use crate::{
    apply_correction, detect_conflicts, plan_correction, CorrectionOptions, CorrectionPlan,
    CorrectionReport, DetectConfig, DetectReport,
};
use aapsm_layout::{
    check_assignable, extract_phase_geometry, extract_phase_geometry_par, DesignRules, Layout,
    PhaseAssignment, PhaseGeometry,
};
use std::fmt;

/// Configuration of [`run_flow`].
#[derive(Clone, Copy, Debug, Default)]
pub struct FlowConfig {
    /// Detection pipeline configuration.
    pub detect: DetectConfig,
    /// Correction planner options.
    pub correct: CorrectionOptions,
}

/// Errors of the end-to-end flow.
#[derive(Clone, Debug)]
pub enum FlowError {
    /// The design rules are inconsistent.
    BadRules(String),
    /// Some conflicts could not be corrected by space insertion (indices
    /// into the detection report's conflicts); the caller should route
    /// them to feature widening / mask splitting.
    Uncorrectable(Vec<usize>),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::BadRules(msg) => write!(f, "invalid design rules: {msg}"),
            FlowError::Uncorrectable(v) => {
                write!(
                    f,
                    "{} conflicts not correctable by space insertion",
                    v.len()
                )
            }
        }
    }
}

impl std::error::Error for FlowError {}

/// Everything the flow produced.
#[derive(Clone, Debug)]
pub struct FlowResult {
    /// Extracted phase geometry of the input layout.
    pub geometry: PhaseGeometry,
    /// Conflict detection report.
    pub detection: DetectReport,
    /// Correction plan (empty when the layout was already assignable).
    pub plan: CorrectionPlan,
    /// Correction application report (the modified layout and areas).
    pub correction: CorrectionReport,
    /// Phase assignment of the corrected layout.
    pub assignment: PhaseAssignment,
    /// Whether the corrected layout verifies as phase-assignable.
    pub verified: bool,
}

/// Runs the full bright-field AAPSM flow on a layout:
///
/// 1. extract features/shifters/overlaps,
/// 2. detect the minimal conflict set (phase conflict graph →
///    planarization → dual-T-join bipartization → recheck),
/// 3. plan and apply end-to-end space insertion,
/// 4. phase-assign the corrected layout.
///
/// # Errors
///
/// * [`FlowError::BadRules`] for inconsistent design rules;
/// * [`FlowError::Uncorrectable`] when some conflicts cannot be fixed by
///   spacing (T-shape-like cases the paper routes to feature widening or
///   mask splitting).
pub fn run_flow(
    layout: &Layout,
    rules: &DesignRules,
    config: &FlowConfig,
) -> Result<FlowResult, FlowError> {
    rules.validate().map_err(FlowError::BadRules)?;
    // The front-end shares the detection parallelism knob; every degree is
    // bit-identical (see `extract_phase_geometry_par`).
    let geometry = extract_phase_geometry_par(layout, rules, config.detect.parallelism);
    let detection = detect_conflicts(&geometry, &config.detect);
    let plan = plan_correction(&geometry, &detection.conflicts, rules, &config.correct);
    if !plan.uncorrectable.is_empty() {
        return Err(FlowError::Uncorrectable(plan.uncorrectable));
    }
    let correction = apply_correction(layout, &plan, rules);
    let corrected_geom = extract_phase_geometry(&correction.modified, rules);
    let assignment = match check_assignable(&corrected_geom) {
        Ok(a) => a,
        Err(_) => {
            // Correction failed verification; return the trivial
            // assignment with verified = false so callers can inspect.
            PhaseAssignment {
                phase: vec![0; corrected_geom.shifters.len()],
            }
        }
    };
    let verified = correction.verified;
    Ok(FlowResult {
        geometry,
        detection,
        plan,
        correction,
        assignment,
        verified,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_layout::fixtures;

    #[test]
    fn flow_on_clean_layout_is_identity() {
        let rules = DesignRules::default();
        let layout = fixtures::wire_row(6, 600);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert_eq!(res.detection.conflict_count(), 0);
        assert!(res.plan.cuts.is_empty());
        assert_eq!(res.correction.modified, layout);
        assert!(res.verified);
    }

    #[test]
    fn flow_fixes_conflicting_fixture() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(5, &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.detection.conflict_count() > 0);
        assert!(res.verified);
        // The assignment satisfies the corrected geometry.
        let geom = extract_phase_geometry(&res.correction.modified, &rules);
        assert!(res.assignment.satisfies(&geom));
    }

    #[test]
    fn bad_rules_rejected() {
        let rules = DesignRules {
            shifter_width: -1,
            ..DesignRules::default()
        };
        assert!(matches!(
            run_flow(&fixtures::wire_row(2, 600), &rules, &FlowConfig::default()),
            Err(FlowError::BadRules(_))
        ));
    }

    #[test]
    fn flow_on_synthetic_design() {
        let rules = DesignRules::default();
        let layout =
            aapsm_layout::synth::generate(&aapsm_layout::synth::SynthParams::default(), &rules);
        let res = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
        assert!(res.verified);
        assert!(res.correction.area_increase_pct >= 0.0);
    }
}
