//! Layout modification by end-to-end space insertion (Section 3.2).
//!
//! Each correctable conflict yields one or two *correction intervals* (the
//! projections of its shifter gap); interval endpoints define candidate
//! grid lines; a weighted set cover picks the lines; the chosen lines
//! become [`SpaceCut`]s. Cut positions are *legal* only where they do not
//! widen any feature (a vertical cut must not pass through the interior of
//! a vertical feature's x-span) — this is how the scheme guarantees that
//! "only the lengths of features are increased but the widths remain the
//! same".

use crate::{Conflict, ConstraintKind};
use aapsm_cover::{solve_auto, CoverInstance};
use aapsm_geom::{Axis, Interval};
use aapsm_layout::{
    apply_cuts, check_assignable, extract_phase_geometry, DesignRules, FeatureOrientation, Layout,
    PhaseGeometry, SpaceCut,
};

/// Options of the correction planner.
#[derive(Clone, Copy, Debug)]
pub struct CorrectionOptions {
    /// Above this many candidate sets the cover falls back from exact
    /// branch-and-bound to greedy.
    pub exact_cover_limit: usize,
}

impl Default for CorrectionOptions {
    fn default() -> Self {
        CorrectionOptions {
            exact_cover_limit: 48,
        }
    }
}

/// A planned correction.
#[derive(Clone, Debug)]
pub struct CorrectionPlan {
    /// The end-to-end spaces to insert.
    pub cuts: Vec<SpaceCut>,
    /// Conflict indices (into the input slice) corrected by the plan.
    pub corrected: Vec<usize>,
    /// Conflict indices with no legal correction interval — the paper's
    /// mask-splitting bucket.
    pub uncorrectable: Vec<usize>,
    /// The largest number of conflicts corrected by a single grid line
    /// (Table 2, column Max).
    pub max_conflicts_single_line: usize,
    /// Whether the set cover was solved to proven optimality.
    pub cover_optimal: bool,
}

impl CorrectionPlan {
    /// Number of grid lines where spaces are inserted (Table 2, column
    /// Grid).
    pub fn grid_line_count(&self) -> usize {
        self.cuts.len()
    }

    /// Total inserted width along an axis.
    pub fn inserted_width(&self, axis: Axis) -> i64 {
        self.cuts
            .iter()
            .filter(|c| c.axis == axis)
            .map(|c| c.width)
            .sum()
    }
}

/// Result of applying a correction plan.
#[derive(Clone, Debug)]
pub struct CorrectionReport {
    /// The modified layout.
    pub modified: Layout,
    /// Bounding-box area before modification (dbu²).
    pub area_before: i128,
    /// Bounding-box area after modification.
    pub area_after: i128,
    /// Percentage area increase (the paper's 0.7–11.8% metric).
    pub area_increase_pct: f64,
    /// Whether the modified layout re-extracts as phase-assignable
    /// (always true when `uncorrectable` was empty).
    pub verified: bool,
}

/// One candidate grid line.
#[derive(Clone, Debug)]
struct Candidate {
    axis: Axis,
    position: i64,
    covered: Vec<usize>, // indices into `correctable`
    width: i64,          // max needed space among covered conflicts
}

/// Plans end-to-end space insertions correcting the given conflicts.
///
/// Only [`ConstraintKind::Overlap`] conflicts are correctable by spacing;
/// flank and direct conflicts land in
/// [`CorrectionPlan::uncorrectable`], as do overlaps whose shifters
/// interpenetrate on both axes or whose every candidate line would widen a
/// feature.
pub fn plan_correction(
    geom: &PhaseGeometry,
    conflicts: &[Conflict],
    rules: &DesignRules,
    options: &CorrectionOptions,
) -> CorrectionPlan {
    if conflicts.is_empty() {
        // Nothing to correct: skip the forbidden-span setup entirely (an
        // empty set cover is trivially optimal). Every already-assignable
        // round of the flow's convergence loop takes this path.
        return CorrectionPlan {
            cuts: Vec::new(),
            corrected: Vec::new(),
            uncorrectable: Vec::new(),
            max_conflicts_single_line: 0,
            cover_optimal: true,
        };
    }
    // Forbidden spans per axis: a cut may not pass through the interior of
    // a feature's *width* span (a vertical cut through a vertical feature
    // would widen it). Merged and sorted for binary search.
    let forbidden = |axis: Axis| -> Vec<(i64, i64)> {
        let mut spans: Vec<(i64, i64)> = geom
            .features
            .iter()
            .filter(|f| match f.orientation {
                FeatureOrientation::Vertical => axis == Axis::X,
                FeatureOrientation::Horizontal => axis == Axis::Y,
            })
            .map(|f| {
                let s = f.rect.span(axis);
                (s.lo(), s.hi())
            })
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::with_capacity(spans.len());
        for (lo, hi) in spans {
            match merged.last_mut() {
                // Open interiors: spans touching only at endpoints do not
                // merge (a cut exactly at the contact point is legal).
                Some(last) if lo < last.1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    };
    let forbidden_x = forbidden(Axis::X);
    let forbidden_y = forbidden(Axis::Y);
    let spans_for = |axis: Axis| -> &Vec<(i64, i64)> {
        match axis {
            Axis::X => &forbidden_x,
            Axis::Y => &forbidden_y,
        }
    };
    let legal = |axis: Axis, pos: i64| -> bool {
        let spans = spans_for(axis);
        let i = spans.partition_point(|&(lo, _)| lo < pos);
        i == 0 || spans[i - 1].1 <= pos
    };

    // Correction intervals per conflict. A conflict between shifters of
    // features Fa and Fb can be corrected along an axis iff the *features*
    // are separable along it: any cut strictly between them moves Fb (and
    // its regenerated shifters) away from Fa, growing the shifter gap by
    // the cut width.
    struct Item {
        conflict_index: usize,
        intervals: Vec<(Axis, Interval, i64)>, // (axis, cut positions, needed width)
    }
    let mut correctable: Vec<Item> = Vec::new();
    let mut uncorrectable = Vec::new();
    for (ci, c) in conflicts.iter().enumerate() {
        let ConstraintKind::Overlap(oi) = c.constraint else {
            uncorrectable.push(ci);
            continue;
        };
        let o = &geom.overlaps[oi];
        let fa = geom.features[geom.shifters[o.a].feature].rect;
        let fb = geom.features[geom.shifters[o.b].feature].rect;
        let shifter_gap = |axis: Axis| match axis {
            Axis::X => o.gap_x,
            Axis::Y => o.gap_y,
        };
        let mut intervals = Vec::new();
        for axis in [Axis::X, Axis::Y] {
            if fa.gap(&fb, axis) < 0 {
                continue; // features not separable along this axis
            }
            let (lo, hi) = if fa.span(axis).lo() <= fb.span(axis).lo() {
                (fa.span(axis).hi(), fb.span(axis).lo())
            } else {
                (fb.span(axis).hi(), fa.span(axis).lo())
            };
            let needed = rules.shifter_spacing - shifter_gap(axis);
            debug_assert!(needed > 0, "an overlap pair always needs positive space");
            intervals.push((axis, Interval::new(lo, hi), needed));
        }
        if intervals.is_empty() {
            uncorrectable.push(ci);
        } else {
            correctable.push(Item {
                conflict_index: ci,
                intervals,
            });
        }
    }

    // Candidate grid lines: interval endpoints plus legality boundaries
    // inside the intervals (a cut anywhere in an interval corrects its
    // conflict, so the optimum can always be normalized to one of these).
    use std::collections::HashSet;
    let mut positions: HashSet<(u8, i64)> = HashSet::new();
    for item in &correctable {
        for &(axis, iv, _) in &item.intervals {
            for pos in [iv.lo(), iv.hi()] {
                if legal(axis, pos) {
                    positions.insert((axis_tag(axis), pos));
                }
            }
            // Boundaries of forbidden spans inside the interval are the
            // other normalization points.
            let spans = spans_for(axis);
            let start = spans.partition_point(|&(_, hi)| hi < iv.lo());
            for &(lo, hi) in &spans[start..] {
                if lo > iv.hi() {
                    break;
                }
                for pos in [lo, hi] {
                    if iv.contains(pos) && legal(axis, pos) {
                        positions.insert((axis_tag(axis), pos));
                    }
                }
            }
        }
    }
    // A candidate covers every conflict whose (same-axis) interval
    // contains its position.
    let mut candidates: Vec<Candidate> = Vec::new();
    for &(tag, pos) in &positions {
        let axis = tag_axis(tag);
        let mut covered = Vec::new();
        let mut width = 0i64;
        for (item_idx, item) in correctable.iter().enumerate() {
            for &(a, iv, needed) in &item.intervals {
                if a == axis && iv.contains(pos) {
                    covered.push(item_idx);
                    width = width.max(needed);
                    break;
                }
            }
        }
        if !covered.is_empty() {
            candidates.push(Candidate {
                axis,
                position: pos,
                covered,
                width,
            });
        }
    }
    candidates.sort_by_key(|c| (axis_tag(c.axis), c.position));

    // Items whose every endpoint was illegal are uncorrectable.
    let mut coverable = vec![false; correctable.len()];
    for c in &candidates {
        for &i in &c.covered {
            coverable[i] = true;
        }
    }
    for (item_idx, item) in correctable.iter().enumerate() {
        if !coverable[item_idx] {
            uncorrectable.push(item.conflict_index);
        }
    }

    // Weighted set cover over the coverable items.
    let element_of: Vec<Option<usize>> = {
        let mut next = 0usize;
        coverable
            .iter()
            .map(|&c| {
                c.then(|| {
                    let e = next;
                    next += 1;
                    e
                })
            })
            .collect()
    };
    let universe = element_of.iter().flatten().count();
    let sets: Vec<(i64, Vec<usize>)> = candidates
        .iter()
        .map(|c| {
            (
                c.width.max(1),
                c.covered.iter().filter_map(|&i| element_of[i]).collect(),
            )
        })
        .collect();
    let inst = CoverInstance::new(universe, sets);
    let (solution, cover_optimal) = solve_auto(&inst, options.exact_cover_limit);

    let mut cuts = Vec::new();
    let mut corrected_items = std::collections::HashSet::new();
    let mut max_single = 0usize;
    for &s in &solution.chosen {
        let c = &candidates[s];
        cuts.push(SpaceCut {
            axis: c.axis,
            position: c.position,
            width: c.width,
        });
        max_single = max_single.max(c.covered.len());
        corrected_items.extend(c.covered.iter().copied());
    }
    let corrected: Vec<usize> = {
        let mut v: Vec<usize> = corrected_items
            .into_iter()
            .map(|i| correctable[i].conflict_index)
            .collect();
        v.sort_unstable();
        v
    };
    uncorrectable.sort_unstable();
    uncorrectable.dedup();
    CorrectionPlan {
        cuts,
        corrected,
        uncorrectable,
        max_conflicts_single_line: max_single,
        cover_optimal,
    }
}

fn axis_tag(a: Axis) -> u8 {
    match a {
        Axis::X => 0,
        Axis::Y => 1,
    }
}

fn tag_axis(t: u8) -> Axis {
    if t == 0 {
        Axis::X
    } else {
        Axis::Y
    }
}

impl CorrectionReport {
    /// Builds a report from the modified layout and the original
    /// bounding-box area — the one place the area-increase accounting
    /// lives ([`apply_correction`] and `run_flow` both end here).
    pub(crate) fn from_modified(
        modified: Layout,
        area_before: i128,
        verified: bool,
    ) -> CorrectionReport {
        let area_after = modified.stats().bbox_area;
        let area_increase_pct = if area_before > 0 {
            (area_after - area_before) as f64 / area_before as f64 * 100.0
        } else {
            0.0
        };
        CorrectionReport {
            modified,
            area_before,
            area_after,
            area_increase_pct,
            verified,
        }
    }
}

/// Applies a correction plan and verifies the result by re-extraction.
pub fn apply_correction(
    layout: &Layout,
    plan: &CorrectionPlan,
    rules: &DesignRules,
) -> CorrectionReport {
    let area_before = layout.stats().bbox_area;
    let modified = apply_cuts(layout, &plan.cuts);
    let verified = plan.uncorrectable.is_empty()
        && check_assignable(&extract_phase_geometry(&modified, rules)).is_ok();
    CorrectionReport::from_modified(modified, area_before, verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_conflicts, DetectConfig};
    use aapsm_layout::fixtures;

    fn correct_layout(l: &Layout) -> (CorrectionPlan, CorrectionReport) {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        let outcome = apply_correction(l, &plan, &rules);
        (plan, outcome)
    }

    #[test]
    fn gate_over_strap_corrected_by_one_space() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::gate_over_strap(&rules));
        assert_eq!(plan.grid_line_count(), 1);
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified, "modified layout must be assignable");
        assert!(outcome.area_after > outcome.area_before);
    }

    #[test]
    fn jog_corrected_and_verified() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::stacked_jog(&rules));
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified);
    }

    #[test]
    fn short_middle_corrected_by_vertical_space() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::short_middle_wire(&rules));
        assert!(plan.uncorrectable.is_empty());
        assert!(plan.cuts.iter().any(|c| c.axis == Axis::X));
        assert!(outcome.verified);
    }

    #[test]
    fn bus_conflicts_share_one_horizontal_space() {
        // The Figure 5 scenario: many conflicts corrected by one
        // end-to-end space.
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::strap_under_bus(6, &rules));
        assert!(outcome.verified);
        assert!(
            plan.max_conflicts_single_line >= 6,
            "one line should clear the whole bus: {plan:?}"
        );
        assert_eq!(plan.grid_line_count(), 1);
    }

    #[test]
    fn no_conflicts_means_no_cuts() {
        let _rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::wire_row(5, 600));
        assert!(plan.cuts.is_empty());
        assert_eq!(outcome.area_increase_pct, 0.0);
        assert!(outcome.verified);
    }

    #[test]
    fn synthetic_design_end_to_end() {
        let rules = DesignRules::default();
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 3,
                gates_per_row: 50,
                strap_frac: 0.6,
                jog_frac: 0.05,
                short_mid_frac: 0.05,
                ..Default::default()
            },
            &rules,
        );
        let (plan, outcome) = correct_layout(&l);
        assert!(
            plan.uncorrectable.is_empty(),
            "synthetic conflicts are spacing-correctable: {:?}",
            plan.uncorrectable
        );
        assert!(outcome.verified);
        // The paper's area increases range 0.7%..11.8%; stay in a sane band.
        assert!(
            outcome.area_increase_pct < 25.0,
            "area increase {:.2}% looks wrong",
            outcome.area_increase_pct
        );
    }

    #[test]
    fn uncorrectable_bucket_collects_flank_direct_and_blocked_overlaps() {
        use crate::ConflictSource;
        use aapsm_geom::Rect;
        // Two facing wires whose only separating interval is fully
        // covered by a wide (non-critical) wall's forbidden x-span, plus
        // hand-made flank/direct conflicts: all three conflict kinds land
        // in `uncorrectable`, in input order.
        let rules = DesignRules::default();
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 2000),       // A (critical)
            Rect::new(600, 0, 700, 2000),     // B (critical)
            Rect::new(99, -9000, 601, -7000), // wall: outlaws x in (99, 601)
        ]);
        let geom = extract_phase_geometry(&layout, &rules);
        let oi = geom
            .overlaps
            .iter()
            .position(|o| o.gap_x >= 0)
            .expect("facing pair exists");
        let conflicts = vec![
            Conflict {
                constraint: ConstraintKind::Overlap(oi),
                weight: geom.overlaps[oi].weight,
                source: ConflictSource::Bipartization,
            },
            Conflict {
                constraint: ConstraintKind::Flank(0),
                weight: 1,
                source: ConflictSource::Planarization,
            },
            Conflict {
                constraint: ConstraintKind::Direct(1),
                weight: 1,
                source: ConflictSource::Degenerate,
            },
        ];
        let plan = plan_correction(&geom, &conflicts, &rules, &CorrectionOptions::default());
        assert_eq!(plan.uncorrectable, vec![0, 1, 2]);
        assert!(plan.cuts.is_empty());
        assert!(plan.corrected.is_empty());
        assert_eq!(plan.max_conflicts_single_line, 0);
    }

    #[test]
    fn cover_optimal_flips_exactly_at_the_exact_cover_limit() {
        // The bus fixture yields a multi-candidate cover; scanning the
        // limit must show greedy (not proven optimal) below a single
        // threshold and exact above it, with both sides still correcting
        // every conflict.
        let rules = DesignRules::default();
        let l = fixtures::strap_under_bus(6, &rules);
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan_at = |limit: usize| {
            plan_correction(
                &geom,
                &report.conflicts,
                &rules,
                &CorrectionOptions {
                    exact_cover_limit: limit,
                },
            )
        };
        let mut flip = None;
        let mut prev_optimal = false;
        for limit in 0..=64 {
            let plan = plan_at(limit);
            assert!(plan.uncorrectable.is_empty());
            assert_eq!(
                plan.corrected.len(),
                report.conflict_count(),
                "limit {limit}: every conflict stays corrected"
            );
            if plan.cover_optimal && !prev_optimal {
                assert!(flip.is_none(), "optimality must flip exactly once");
                flip = Some(limit);
            }
            assert!(
                plan.cover_optimal || flip.is_none(),
                "limit {limit}: optimality must be monotone in the limit"
            );
            prev_optimal = plan.cover_optimal;
        }
        let flip = flip.expect("some limit admits the exact solver");
        assert!(flip > 0, "limit 0 must force the greedy fallback");
        // The exact side can only improve (or match) the greedy weight.
        let greedy = plan_at(flip - 1);
        let exact = plan_at(flip);
        assert!(!greedy.cover_optimal && exact.cover_optimal);
        let width = |p: &CorrectionPlan| p.inserted_width(Axis::X) + p.inserted_width(Axis::Y);
        assert!(width(&exact) <= width(&greedy));
    }

    #[test]
    fn inserted_width_accounts_per_axis() {
        // Two independent conflicts far apart: one needs a vertical
        // space (Axis::X), the other a horizontal one (Axis::Y); the
        // plan must report both axes separately and their sum must match
        // the cut list.
        let rules = DesignRules::default();
        let mut rects = fixtures::short_middle_wire(&rules).rects().to_vec(); // X-cut conflict
        for r in fixtures::stacked_jog(&rules).rects() {
            // Far above, out of interaction range.
            rects.push(aapsm_geom::Rect::new(
                r.x_lo() + 20_000,
                r.y_lo() + 20_000,
                r.x_hi() + 20_000,
                r.y_hi() + 20_000,
            ));
        }
        let l = Layout::from_rects(rects);
        let (plan, outcome) = correct_layout(&l);
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified);
        let wx = plan.inserted_width(Axis::X);
        let wy = plan.inserted_width(Axis::Y);
        assert!(wx > 0, "short-middle needs a vertical space: {plan:?}");
        assert!(wy > 0, "the jog needs a horizontal space: {plan:?}");
        assert_eq!(wx + wy, plan.cuts.iter().map(|c| c.width).sum::<i64>());
        assert_eq!(
            plan.cuts.iter().filter(|c| c.axis == Axis::X).count()
                + plan.cuts.iter().filter(|c| c.axis == Axis::Y).count(),
            plan.grid_line_count()
        );
    }

    #[test]
    fn cut_widths_meet_spacing_needs() {
        let rules = DesignRules::default();
        let l = fixtures::gate_over_strap(&rules);
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        // A cut never needs more than the full spacing rule plus the
        // deepest possible shifter interpenetration.
        let bound = rules.shifter_spacing + 2 * (rules.shifter_width + rules.shifter_overhang);
        for cut in &plan.cuts {
            assert!(cut.width > 0 && cut.width <= bound);
        }
    }
}
