//! Layout modification by end-to-end space insertion (Section 3.2).
//!
//! Each correctable conflict yields one or two *correction intervals* (the
//! projections of its shifter gap); interval endpoints define candidate
//! grid lines; a weighted set cover picks the lines; the chosen lines
//! become [`SpaceCut`]s. Cut positions are *legal* only where they do not
//! widen any feature (a vertical cut must not pass through the interior of
//! a vertical feature's x-span) — this is how the scheme guarantees that
//! "only the lengths of features are increased but the widths remain the
//! same".
//!
//! The planner is decompose-then-solve like the detection side: candidate
//! coverage is built by per-axis sorted-endpoint assignment (each interval
//! claims its contiguous run of candidate positions by binary search), and
//! the weighted set cover is solved per connected component of the
//! candidate–element incidence ([`aapsm_cover::solve_decomposed`]) — exact
//! branch-and-bound under a per-component node budget with greedy
//! fallback, on scoped workers behind [`CorrectionOptions::parallelism`],
//! merged deterministically so every degree yields a bit-identical
//! [`CorrectionPlan`]. Cut widths are Euclidean-minimal: a diagonal pair's
//! perpendicular gap already contributes to the spacing rule, so the cut
//! only needs `⌈√(spacing² − gap_perp²)⌉ − gap_axis`, not the full
//! per-axis deficit.

use crate::{Conflict, ConstraintKind};
use aapsm_cover::{solve_decomposed, CoverInstance, DecomposeOptions};
use aapsm_geom::{Axis, Interval};
use aapsm_layout::{
    apply_cuts, check_assignable, extract_phase_geometry, DesignRules, FeatureOrientation, Layout,
    PhaseGeometry, SpaceCut,
};

/// Options of the correction planner.
#[derive(Clone, Debug)]
pub struct CorrectionOptions {
    /// Per-component set-count cap for the exact cover solver: connected
    /// components of the candidate–element incidence with more candidate
    /// grid lines than this fall back to greedy. Components are small in
    /// practice, so this proves far more of the cover optimal than the
    /// pre-decomposition global threshold did.
    pub exact_cover_limit: usize,
    /// Branch-and-bound node budget *per cover component*. A truncated
    /// search keeps its incumbent (never worse than greedy) but the plan
    /// truthfully reports [`CorrectionPlan::cover_optimal`] `== false`.
    pub exact_node_limit: u64,
    /// Worker threads for per-component cover solving: `0` = one per
    /// available CPU, `1` = serial, `k` = at most `k`. Every degree is
    /// bit-identical. [`crate::run_flow`] drives this with
    /// [`crate::DetectConfig::parallelism`], so the whole flow sits behind
    /// one knob.
    pub parallelism: usize,
    /// Work/deadline budget charged by the cover branch-and-bound
    /// ([`aapsm_fault::Stage::Cover`], one tick per search node). Tripped
    /// components keep their greedy-warm-start incumbent and the plan
    /// truthfully reports [`CorrectionPlan::cover_optimal`] `== false`.
    /// Default: [`aapsm_fault::Budget::unlimited`].
    pub budget: aapsm_fault::Budget,
}

impl Default for CorrectionOptions {
    fn default() -> Self {
        CorrectionOptions {
            exact_cover_limit: 256,
            exact_node_limit: 200_000,
            parallelism: 1,
            budget: aapsm_fault::Budget::unlimited(),
        }
    }
}

/// A planned correction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CorrectionPlan {
    /// The end-to-end spaces to insert.
    pub cuts: Vec<SpaceCut>,
    /// Conflict indices (into the input slice) corrected by the plan.
    pub corrected: Vec<usize>,
    /// Conflict indices with no legal correction interval — the paper's
    /// mask-splitting bucket.
    pub uncorrectable: Vec<usize>,
    /// The largest number of conflicts corrected by a single grid line
    /// (Table 2, column Max).
    pub max_conflicts_single_line: usize,
    /// Connected components of the set cover's candidate–element
    /// incidence (0 when nothing was correctable).
    pub cover_components: usize,
    /// How many cover components were solved to proven optimality.
    pub cover_optimal_components: usize,
    /// Whether the set cover was solved to proven optimality: every
    /// component's exact search ran to completion. Never `true` when a
    /// search was truncated by the node budget or fell back to greedy.
    pub cover_optimal: bool,
}

impl CorrectionPlan {
    /// Number of grid lines where spaces are inserted (Table 2, column
    /// Grid).
    pub fn grid_line_count(&self) -> usize {
        self.cuts.len()
    }

    /// Total inserted width along an axis.
    pub fn inserted_width(&self, axis: Axis) -> i64 {
        self.cuts
            .iter()
            .filter(|c| c.axis == axis)
            .map(|c| c.width)
            .sum()
    }
}

/// Result of applying a correction plan.
#[derive(Clone, Debug)]
pub struct CorrectionReport {
    /// The modified layout.
    pub modified: Layout,
    /// Bounding-box area before modification (dbu²).
    pub area_before: i128,
    /// Bounding-box area after modification.
    pub area_after: i128,
    /// Percentage area increase (the paper's 0.7–11.8% metric).
    pub area_increase_pct: f64,
    /// Whether the modified layout re-extracts as phase-assignable
    /// (always true when `uncorrectable` was empty).
    pub verified: bool,
}

/// One candidate grid line.
#[derive(Clone, Debug)]
struct Candidate {
    axis: Axis,
    position: i64,
    covered: Vec<usize>, // indices into `correctable`
    width: i64,          // max needed space among covered conflicts
}

/// Plans end-to-end space insertions correcting the given conflicts.
///
/// Only [`ConstraintKind::Overlap`] conflicts are correctable by spacing;
/// flank and direct conflicts land in
/// [`CorrectionPlan::uncorrectable`], as do overlaps whose shifters
/// interpenetrate on both axes or whose every candidate line would widen a
/// feature.
pub fn plan_correction(
    geom: &PhaseGeometry,
    conflicts: &[Conflict],
    rules: &DesignRules,
    options: &CorrectionOptions,
) -> CorrectionPlan {
    if conflicts.is_empty() {
        // Nothing to correct: skip the forbidden-span setup entirely (an
        // empty set cover is trivially optimal). Every already-assignable
        // round of the flow's convergence loop takes this path.
        return CorrectionPlan {
            cuts: Vec::new(),
            corrected: Vec::new(),
            uncorrectable: Vec::new(),
            max_conflicts_single_line: 0,
            cover_components: 0,
            cover_optimal_components: 0,
            cover_optimal: true,
        };
    }
    // Forbidden spans per axis: a cut may not pass through the interior of
    // a feature's *width* span (a vertical cut through a vertical feature
    // would widen it). Merged and sorted for binary search.
    let forbidden = |axis: Axis| -> Vec<(i64, i64)> {
        let mut spans: Vec<(i64, i64)> = geom
            .features
            .iter()
            .filter(|f| match f.orientation {
                FeatureOrientation::Vertical => axis == Axis::X,
                FeatureOrientation::Horizontal => axis == Axis::Y,
            })
            .map(|f| {
                let s = f.rect.span(axis);
                (s.lo(), s.hi())
            })
            .collect();
        spans.sort_unstable();
        let mut merged: Vec<(i64, i64)> = Vec::with_capacity(spans.len());
        for (lo, hi) in spans {
            match merged.last_mut() {
                // Open interiors: spans touching only at endpoints do not
                // merge (a cut exactly at the contact point is legal).
                Some(last) if lo < last.1 => last.1 = last.1.max(hi),
                _ => merged.push((lo, hi)),
            }
        }
        merged
    };
    let forbidden_x = forbidden(Axis::X);
    let forbidden_y = forbidden(Axis::Y);
    let spans_for = |axis: Axis| -> &Vec<(i64, i64)> {
        match axis {
            Axis::X => &forbidden_x,
            Axis::Y => &forbidden_y,
        }
    };
    let legal = |axis: Axis, pos: i64| -> bool {
        let spans = spans_for(axis);
        let i = spans.partition_point(|&(lo, _)| lo < pos);
        i == 0 || spans[i - 1].1 <= pos
    };

    // Correction intervals per conflict. A conflict between shifters of
    // features Fa and Fb can be corrected along an axis iff the *features*
    // are separable along it: any cut strictly between them moves Fb (and
    // its regenerated shifters) away from Fa, growing the shifter gap by
    // the cut width.
    struct Item {
        conflict_index: usize,
        intervals: Vec<(Axis, Interval, i64)>, // (axis, cut positions, needed width)
    }
    let mut correctable: Vec<Item> = Vec::new();
    let mut uncorrectable = Vec::new();
    for (ci, c) in conflicts.iter().enumerate() {
        let ConstraintKind::Overlap(oi) = c.constraint else {
            uncorrectable.push(ci);
            continue;
        };
        let o = &geom.overlaps[oi];
        let sa = geom.shifters[o.a].rect;
        let sb = geom.shifters[o.b].rect;
        let fa = geom.features[geom.shifters[o.a].feature].rect;
        let fb = geom.features[geom.shifters[o.b].feature].rect;
        let shifter_gap = |axis: Axis| match axis {
            Axis::X => o.gap_x,
            Axis::Y => o.gap_y,
        };
        let mut intervals = Vec::new();
        for axis in [Axis::X, Axis::Y] {
            if fa.gap(&fb, axis) < 0 {
                continue; // features not separable along this axis
            }
            // The cut pushes the high-side feature (and its regenerated
            // shifters) further along +axis, so the deficit to close is
            // the *directional* shifter gap — high shifter's low edge
            // minus low shifter's high edge. For interleaved jog shifters
            // this is more negative than the signed mutual gap (which
            // measures the smaller penetration, in the direction the cut
            // cannot separate), and sizing from the mutual gap would
            // under-correct.
            let (lo, hi, gap_axis) = if fa.span(axis).lo() <= fb.span(axis).lo() {
                (
                    fa.span(axis).hi(),
                    fb.span(axis).lo(),
                    sb.span(axis).lo() - sa.span(axis).hi(),
                )
            } else {
                (
                    fb.span(axis).hi(),
                    fa.span(axis).lo(),
                    sa.span(axis).lo() - sb.span(axis).hi(),
                )
            };
            // Detection is Euclidean (`euclid_gap_sq < spacing²` over the
            // positive parts of the per-axis gaps), so the minimal
            // sufficient growth along this axis restores
            //   (gap_axis + needed)² + max(gap_perp, 0)² ≥ spacing²,
            // i.e. needed = ⌈√(spacing² − gap_perp⁺²)⌉ − gap_axis. For
            // axis-aligned pairs (gap_perp ≤ 0) this is the directional
            // deficit `spacing − gap_axis`; for diagonal pairs the
            // perpendicular gap already contributes, and the per-axis
            // deficit would over-correct.
            let gap_perp = shifter_gap(axis.perp()).max(0);
            let spacing = rules.shifter_spacing;
            let residual =
                (spacing as i128) * (spacing as i128) - (gap_perp as i128) * (gap_perp as i128);
            if residual <= 0 {
                // Unreachable for conflicts produced by detection (the
                // Euclidean predicate implies gap_perp < spacing), but
                // `plan_correction` accepts arbitrary conflict slices:
                // such a "conflict" is already spaced along the
                // perpendicular axis, so no cut is needed here — skip the
                // axis in debug and release alike.
                continue;
            }
            let needed = ceil_isqrt(residual) - gap_axis;
            if needed <= 0 {
                // Likewise unreachable for detected conflicts (their
                // Euclidean gap is below spacing, so the directional gap
                // is below √residual), but an arbitrary caller slice may
                // contain an already-spaced pair — never emit a cut of
                // non-positive width for it.
                continue;
            }
            intervals.push((axis, Interval::new(lo, hi), needed));
        }
        if intervals.is_empty() {
            uncorrectable.push(ci);
        } else {
            correctable.push(Item {
                conflict_index: ci,
                intervals,
            });
        }
    }

    // Candidate grid lines: interval endpoints plus legality boundaries
    // inside the intervals (a cut anywhere in an interval corrects its
    // conflict, so the optimum can always be normalized to one of these).
    // Collected per axis, sorted and deduplicated — the canonical
    // candidate order is axis X ascending then axis Y ascending.
    let mut positions_x: Vec<i64> = Vec::new();
    let mut positions_y: Vec<i64> = Vec::new();
    for item in &correctable {
        for &(axis, iv, _) in &item.intervals {
            let out = match axis {
                Axis::X => &mut positions_x,
                Axis::Y => &mut positions_y,
            };
            for pos in [iv.lo(), iv.hi()] {
                if legal(axis, pos) {
                    out.push(pos);
                }
            }
            // Boundaries of forbidden spans inside the interval are the
            // other normalization points.
            let spans = spans_for(axis);
            let start = spans.partition_point(|&(_, hi)| hi < iv.lo());
            for &(lo, hi) in &spans[start..] {
                if lo > iv.hi() {
                    break;
                }
                for pos in [lo, hi] {
                    if iv.contains(pos) && legal(axis, pos) {
                        out.push(pos);
                    }
                }
            }
        }
    }
    positions_x.sort_unstable();
    positions_x.dedup();
    positions_y.sort_unstable();
    positions_y.dedup();

    // A candidate covers every conflict whose (same-axis) interval
    // contains its position. Each interval claims the contiguous run of
    // sorted candidate positions it contains (two binary searches over
    // the endpoint-sorted positions), so building the coverage costs
    // O(intervals · log candidates + incidence) instead of the old
    // O(candidates × conflicts) nested scan.
    let x_count = positions_x.len();
    let mut candidates: Vec<Candidate> = positions_x
        .iter()
        .map(|&position| (Axis::X, position))
        .chain(positions_y.iter().map(|&position| (Axis::Y, position)))
        .map(|(axis, position)| Candidate {
            axis,
            position,
            covered: Vec::new(),
            width: 0,
        })
        .collect();
    for (item_idx, item) in correctable.iter().enumerate() {
        for &(axis, iv, needed) in &item.intervals {
            let (positions, base) = match axis {
                Axis::X => (&positions_x, 0),
                Axis::Y => (&positions_y, x_count),
            };
            let from = positions.partition_point(|&p| p < iv.lo());
            let to = positions.partition_point(|&p| p <= iv.hi());
            for c in &mut candidates[base + from..base + to] {
                c.covered.push(item_idx);
                c.width = c.width.max(needed);
            }
        }
    }
    // Every candidate position is an endpoint of (or a legality boundary
    // inside) some interval, which therefore contains it.
    debug_assert!(candidates.iter().all(|c| !c.covered.is_empty()));

    // Items whose every endpoint was illegal are uncorrectable.
    let mut coverable = vec![false; correctable.len()];
    for c in &candidates {
        for &i in &c.covered {
            coverable[i] = true;
        }
    }
    for (item_idx, item) in correctable.iter().enumerate() {
        if !coverable[item_idx] {
            uncorrectable.push(item.conflict_index);
        }
    }

    // Weighted set cover over the coverable items.
    let element_of: Vec<Option<usize>> = {
        let mut next = 0usize;
        coverable
            .iter()
            .map(|&c| {
                c.then(|| {
                    let e = next;
                    next += 1;
                    e
                })
            })
            .collect()
    };
    let universe = element_of.iter().flatten().count();
    let sets: Vec<(i64, Vec<usize>)> = candidates
        .iter()
        .map(|c| {
            (
                c.width.max(1),
                c.covered.iter().filter_map(|&i| element_of[i]).collect(),
            )
        })
        .collect();
    let inst = CoverInstance::new(universe, sets);
    let cover = solve_decomposed(
        &inst,
        &DecomposeOptions {
            node_limit_per_component: options.exact_node_limit,
            max_exact_sets: options.exact_cover_limit,
            parallelism: options.parallelism,
            budget: options.budget.clone(),
        },
    );
    let solution = cover.solution;

    let mut cuts = Vec::new();
    let mut corrected_items = std::collections::HashSet::new();
    let mut max_single = 0usize;
    for &s in &solution.chosen {
        let c = &candidates[s];
        cuts.push(SpaceCut {
            axis: c.axis,
            position: c.position,
            width: c.width,
        });
        max_single = max_single.max(c.covered.len());
        corrected_items.extend(c.covered.iter().copied());
    }
    let corrected: Vec<usize> = {
        let mut v: Vec<usize> = corrected_items
            .into_iter()
            .map(|i| correctable[i].conflict_index)
            .collect();
        v.sort_unstable();
        v
    };
    uncorrectable.sort_unstable();
    uncorrectable.dedup();
    CorrectionPlan {
        cuts,
        corrected,
        uncorrectable,
        max_conflicts_single_line: max_single,
        cover_components: cover.components,
        cover_optimal_components: cover.optimal_components,
        cover_optimal: cover.optimal,
    }
}

/// `⌈√x⌉` for positive `x`, in exact integer arithmetic.
fn ceil_isqrt(x: i128) -> i64 {
    debug_assert!(x > 0);
    let r = (x as u128).isqrt() as i128;
    (if r * r >= x { r } else { r + 1 }) as i64
}

impl CorrectionReport {
    /// Builds a report from the modified layout and the original
    /// bounding-box area — the one place the area-increase accounting
    /// lives ([`apply_correction`] and `run_flow` both end here).
    pub(crate) fn from_modified(
        modified: Layout,
        area_before: i128,
        verified: bool,
    ) -> CorrectionReport {
        let area_after = modified.stats().bbox_area;
        let area_increase_pct = if area_before > 0 {
            (area_after - area_before) as f64 / area_before as f64 * 100.0
        } else {
            0.0
        };
        CorrectionReport {
            modified,
            area_before,
            area_after,
            area_increase_pct,
            verified,
        }
    }
}

/// Applies a correction plan and verifies the result by re-extraction.
pub fn apply_correction(
    layout: &Layout,
    plan: &CorrectionPlan,
    rules: &DesignRules,
) -> CorrectionReport {
    let area_before = layout.stats().bbox_area;
    let modified = apply_cuts(layout, &plan.cuts);
    let verified = plan.uncorrectable.is_empty()
        && check_assignable(&extract_phase_geometry(&modified, rules)).is_ok();
    CorrectionReport::from_modified(modified, area_before, verified)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{detect_conflicts, DetectConfig};
    use aapsm_layout::fixtures;

    fn correct_layout(l: &Layout) -> (CorrectionPlan, CorrectionReport) {
        let rules = DesignRules::default();
        let geom = extract_phase_geometry(l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        let outcome = apply_correction(l, &plan, &rules);
        (plan, outcome)
    }

    #[test]
    fn gate_over_strap_corrected_by_one_space() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::gate_over_strap(&rules));
        assert_eq!(plan.grid_line_count(), 1);
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified, "modified layout must be assignable");
        assert!(outcome.area_after > outcome.area_before);
    }

    #[test]
    fn jog_corrected_and_verified() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::stacked_jog(&rules));
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified);
    }

    #[test]
    fn short_middle_corrected_by_vertical_space() {
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::short_middle_wire(&rules));
        assert!(plan.uncorrectable.is_empty());
        assert!(plan.cuts.iter().any(|c| c.axis == Axis::X));
        assert!(outcome.verified);
    }

    #[test]
    fn bus_conflicts_share_one_horizontal_space() {
        // The Figure 5 scenario: many conflicts corrected by one
        // end-to-end space.
        let rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::strap_under_bus(6, &rules));
        assert!(outcome.verified);
        assert!(
            plan.max_conflicts_single_line >= 6,
            "one line should clear the whole bus: {plan:?}"
        );
        assert_eq!(plan.grid_line_count(), 1);
    }

    #[test]
    fn no_conflicts_means_no_cuts() {
        let _rules = DesignRules::default();
        let (plan, outcome) = correct_layout(&fixtures::wire_row(5, 600));
        assert!(plan.cuts.is_empty());
        assert_eq!(outcome.area_increase_pct, 0.0);
        assert!(outcome.verified);
    }

    #[test]
    fn synthetic_design_end_to_end() {
        let rules = DesignRules::default();
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 3,
                gates_per_row: 50,
                strap_frac: 0.6,
                jog_frac: 0.05,
                short_mid_frac: 0.05,
                ..Default::default()
            },
            &rules,
        );
        let (plan, outcome) = correct_layout(&l);
        assert!(
            plan.uncorrectable.is_empty(),
            "synthetic conflicts are spacing-correctable: {:?}",
            plan.uncorrectable
        );
        assert!(outcome.verified);
        // The paper's area increases range 0.7%..11.8%; stay in a sane band.
        assert!(
            outcome.area_increase_pct < 25.0,
            "area increase {:.2}% looks wrong",
            outcome.area_increase_pct
        );
    }

    #[test]
    fn uncorrectable_bucket_collects_flank_direct_and_blocked_overlaps() {
        use crate::ConflictSource;
        use aapsm_geom::Rect;
        // Two facing wires whose only separating interval is fully
        // covered by a wide (non-critical) wall's forbidden x-span, plus
        // hand-made flank/direct conflicts: all three conflict kinds land
        // in `uncorrectable`, in input order.
        let rules = DesignRules::default();
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 2000),       // A (critical)
            Rect::new(600, 0, 700, 2000),     // B (critical)
            Rect::new(99, -9000, 601, -7000), // wall: outlaws x in (99, 601)
        ]);
        let geom = extract_phase_geometry(&layout, &rules);
        let oi = geom
            .overlaps
            .iter()
            .position(|o| o.gap_x >= 0)
            .expect("facing pair exists");
        let conflicts = vec![
            Conflict {
                constraint: ConstraintKind::Overlap(oi),
                weight: geom.overlaps[oi].weight,
                source: ConflictSource::Bipartization,
            },
            Conflict {
                constraint: ConstraintKind::Flank(0),
                weight: 1,
                source: ConflictSource::Planarization,
            },
            Conflict {
                constraint: ConstraintKind::Direct(1),
                weight: 1,
                source: ConflictSource::Degenerate,
            },
        ];
        let plan = plan_correction(&geom, &conflicts, &rules, &CorrectionOptions::default());
        assert_eq!(plan.uncorrectable, vec![0, 1, 2]);
        assert!(plan.cuts.is_empty());
        assert!(plan.corrected.is_empty());
        assert_eq!(plan.max_conflicts_single_line, 0);
        assert_eq!(plan.cover_components, 0);
        assert_eq!(plan.cover_optimal_components, 0);
        assert!(plan.cover_optimal, "an empty cover is trivially optimal");
    }

    #[test]
    fn cover_optimal_flips_exactly_at_the_exact_cover_limit() {
        // The bus fixture yields a multi-candidate cover; scanning the
        // limit must show greedy (not proven optimal) below a single
        // threshold and exact above it, with both sides still correcting
        // every conflict.
        let rules = DesignRules::default();
        let l = fixtures::strap_under_bus(6, &rules);
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan_at = |limit: usize| {
            plan_correction(
                &geom,
                &report.conflicts,
                &rules,
                &CorrectionOptions {
                    exact_cover_limit: limit,
                    ..CorrectionOptions::default()
                },
            )
        };
        let mut flip = None;
        let mut prev_optimal = false;
        for limit in 0..=64 {
            let plan = plan_at(limit);
            assert!(plan.uncorrectable.is_empty());
            assert_eq!(
                plan.corrected.len(),
                report.conflict_count(),
                "limit {limit}: every conflict stays corrected"
            );
            if plan.cover_optimal && !prev_optimal {
                assert!(flip.is_none(), "optimality must flip exactly once");
                flip = Some(limit);
            }
            assert!(
                plan.cover_optimal || flip.is_none(),
                "limit {limit}: optimality must be monotone in the limit"
            );
            prev_optimal = plan.cover_optimal;
        }
        let flip = flip.expect("some limit admits the exact solver");
        assert!(flip > 0, "limit 0 must force the greedy fallback");
        // The exact side can only improve (or match) the greedy weight.
        let greedy = plan_at(flip - 1);
        let exact = plan_at(flip);
        assert!(!greedy.cover_optimal && exact.cover_optimal);
        let width = |p: &CorrectionPlan| p.inserted_width(Axis::X) + p.inserted_width(Axis::Y);
        assert!(width(&exact) <= width(&greedy));
    }

    #[test]
    fn inserted_width_accounts_per_axis() {
        // Two independent conflicts far apart: one needs a vertical
        // space (Axis::X), the other a horizontal one (Axis::Y); the
        // plan must report both axes separately and their sum must match
        // the cut list.
        let rules = DesignRules::default();
        let mut rects = fixtures::short_middle_wire(&rules).rects().to_vec(); // X-cut conflict
        for r in fixtures::stacked_jog(&rules).rects() {
            // Far above, out of interaction range.
            rects.push(aapsm_geom::Rect::new(
                r.x_lo() + 20_000,
                r.y_lo() + 20_000,
                r.x_hi() + 20_000,
                r.y_hi() + 20_000,
            ));
        }
        let l = Layout::from_rects(rects);
        let (plan, outcome) = correct_layout(&l);
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified);
        let wx = plan.inserted_width(Axis::X);
        let wy = plan.inserted_width(Axis::Y);
        assert!(wx > 0, "short-middle needs a vertical space: {plan:?}");
        assert!(wy > 0, "the jog needs a horizontal space: {plan:?}");
        assert_eq!(wx + wy, plan.cuts.iter().map(|c| c.width).sum::<i64>());
        assert_eq!(
            plan.cuts.iter().filter(|c| c.axis == Axis::X).count()
                + plan.cuts.iter().filter(|c| c.axis == Axis::Y).count(),
            plan.grid_line_count()
        );
    }

    #[test]
    fn diagonal_pair_gets_the_euclidean_minimal_width() {
        // The two conflicts of the diagonal-jog fixture have gaps
        // (gap_x = 200, gap_y = 100) with spacing 280. The per-axis
        // deficit would demand 280 − 200 = 80 along x; the Euclidean
        // minimum is ⌈√(280² − 100²)⌉ − 200 = 62. The narrower cut must
        // still verify, and the area increase must strictly improve on
        // the per-axis sizing.
        let rules = DesignRules::default();
        let l = fixtures::diagonal_jog(&rules);
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        assert!(report.conflict_count() > 0);
        let diagonal = report.conflicts.iter().all(|c| {
            let ConstraintKind::Overlap(oi) = c.constraint else {
                return false;
            };
            let o = &geom.overlaps[oi];
            o.gap_x > 0 && o.gap_y > 0
        });
        assert!(diagonal, "fixture must select diagonal conflicts");
        let (plan, outcome) = correct_layout(&l);
        assert!(plan.uncorrectable.is_empty());
        assert!(outcome.verified, "narrower cuts must still verify");
        assert!(outcome.area_after > outcome.area_before);
        // Every cut is strictly narrower than the per-axis deficit of the
        // conflicts it corrects (all conflicts here share both gaps).
        let per_axis_deficit = |axis: Axis| {
            report
                .conflicts
                .iter()
                .map(|c| {
                    let ConstraintKind::Overlap(oi) = c.constraint else {
                        unreachable!()
                    };
                    let o = &geom.overlaps[oi];
                    rules.shifter_spacing
                        - match axis {
                            Axis::X => o.gap_x,
                            Axis::Y => o.gap_y,
                        }
                })
                .max()
                .unwrap()
        };
        let naive: Vec<SpaceCut> = plan
            .cuts
            .iter()
            .map(|c| SpaceCut {
                width: per_axis_deficit(c.axis),
                ..*c
            })
            .collect();
        for (cut, wide) in plan.cuts.iter().zip(&naive) {
            assert!(
                cut.width < wide.width,
                "euclidean width {} must beat per-axis {}",
                cut.width,
                wide.width
            );
        }
        // The per-axis sizing also verifies — the improvement is pure
        // area, not a correctness trade.
        let naive_outcome = {
            let modified = aapsm_layout::apply_cuts(&l, &naive);
            let ok = check_assignable(&extract_phase_geometry(&modified, &rules)).is_ok();
            assert!(ok);
            modified.stats().bbox_area
        };
        assert!(
            outcome.area_after < naive_outcome,
            "euclidean sizing must strictly shrink the corrected area"
        );
    }

    #[test]
    fn truncated_cover_search_is_reported_unproven() {
        // Driving the one-node budget through `plan_correction`: the
        // synthetic design's cover decomposes into several components and
        // at least one cannot be proven at the search root, so with
        // `exact_node_limit: 1` its search truncates and `cover_optimal`
        // must be false — the regression for the old "`solve_exact`
        // returned `Some`, therefore optimal" lie. (Components whose
        // greedy warm start already meets the root lower bound are proven
        // without expanding a node; truncation needs a component where
        // the bound is slack, which the synth mix reliably provides.)
        // The plan itself stays feasible: every conflict is still
        // corrected.
        let rules = DesignRules::default();
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 3,
                gates_per_row: 50,
                strap_frac: 0.6,
                jog_frac: 0.05,
                short_mid_frac: 0.05,
                ..Default::default()
            },
            &rules,
        );
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions {
                exact_node_limit: 1,
                ..CorrectionOptions::default()
            },
        );
        assert!(
            !plan.cover_optimal,
            "a truncated search must not claim optimality: {plan:?}"
        );
        assert!(plan.cover_optimal_components < plan.cover_components.max(1));
        assert!(plan.uncorrectable.is_empty());
        assert_eq!(plan.corrected.len(), report.conflict_count());
        // The generous default budget proves the same cover.
        let proven = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        assert!(proven.cover_optimal);
        assert_eq!(proven.cover_optimal_components, proven.cover_components);
        let width = |p: &CorrectionPlan| p.inserted_width(Axis::X) + p.inserted_width(Axis::Y);
        assert!(width(&proven) <= width(&plan));
    }

    #[test]
    fn planner_is_bit_identical_across_parallelism_degrees() {
        let rules = DesignRules::default();
        for layout in [
            fixtures::strap_under_bus(6, &rules),
            fixtures::diagonal_jog(&rules),
            fixtures::stacked_jog(&rules),
        ] {
            let geom = extract_phase_geometry(&layout, &rules);
            let report = detect_conflicts(&geom, &DetectConfig::default());
            let base = plan_correction(
                &geom,
                &report.conflicts,
                &rules,
                &CorrectionOptions::default(),
            );
            for parallelism in [0, 2, 4] {
                let plan = plan_correction(
                    &geom,
                    &report.conflicts,
                    &rules,
                    &CorrectionOptions {
                        parallelism,
                        ..CorrectionOptions::default()
                    },
                );
                assert_eq!(plan, base, "parallelism {parallelism} diverged");
            }
        }
    }

    #[test]
    fn cut_widths_meet_spacing_needs() {
        let rules = DesignRules::default();
        let l = fixtures::gate_over_strap(&rules);
        let geom = extract_phase_geometry(&l, &rules);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        let plan = plan_correction(
            &geom,
            &report.conflicts,
            &rules,
            &CorrectionOptions::default(),
        );
        // A cut never needs more than the full spacing rule plus the
        // deepest possible shifter interpenetration.
        let bound = rules.shifter_spacing + 2 * (rules.shifter_width + rules.shifter_overhang);
        for cut in &plan.cuts {
            assert!(cut.width > 0 && cut.width <= bound);
        }
    }
}
