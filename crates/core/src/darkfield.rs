//! Dark-field AAPSM extension.
//!
//! The paper's Section 2 reviews the dark-field formulation of Kahng et
//! al. \[5\]: in dark-field AAPSM the *features themselves* are phase
//! shifted, so two critical features closer than the minimum opposite-phase
//! spacing `b` must receive opposite phases, and the layout is assignable
//! iff the **conflict graph** (features = nodes, close pairs = edges) is
//! bipartite. The same optimal machinery applies: planarize the straight
//! line drawing, bipartize via the dual T-join, and the deleted edges are
//! the conflicts to fix by spacing.
//!
//! This module reuses the whole pipeline for that setting — the paper's
//! lineage in ~100 lines, and a useful second consumer of the graph stack.

use crate::{bipartize, BipartizeMethod};
use aapsm_geom::GridIndex;
use aapsm_graph::{planarize, EmbeddedGraph, ParityUnionFind, PlanarizeOrder};
use aapsm_layout::{DesignRules, Layout};
use aapsm_tjoin::TJoinMethod;

/// A dark-field conflict: a pair of feature indices that must be separated
/// to at least the opposite-phase spacing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DarkFieldConflict {
    /// First feature index.
    pub a: usize,
    /// Second feature index.
    pub b: usize,
    /// Spacing deficit.
    pub weight: i64,
}

/// Dark-field analysis result.
#[derive(Clone, Debug)]
pub struct DarkFieldReport {
    /// Number of opposite-phase constraint edges found.
    pub constraint_count: usize,
    /// The minimal conflict set.
    pub conflicts: Vec<DarkFieldConflict>,
    /// A satisfying feature phase assignment after voiding the conflicts
    /// (0/1 per feature; non-critical features get 0).
    pub phases: Vec<u8>,
}

/// Runs dark-field AAPSM conflict detection on a layout: critical features
/// closer than `rules.shifter_spacing` must alternate phases; returns the
/// minimum-weight constraint set to void (by respacing or mask splitting).
pub fn detect_dark_field(layout: &Layout, rules: &DesignRules) -> DarkFieldReport {
    let mut g = EmbeddedGraph::new();
    let mut critical = Vec::new();
    for (i, r) in layout.rects().iter().enumerate() {
        if r.min_dim() <= rules.critical_width {
            critical.push((i, *r, g.add_node(r.center())));
        }
    }
    // Close critical pairs -> opposite-phase edges.
    let spacing = rules.shifter_spacing;
    let mut grid = GridIndex::new((2 * spacing).max(64));
    for (k, (_, r, _)) in critical.iter().enumerate() {
        let probe = r.inflate(spacing);
        grid.insert(
            k as u32,
            (probe.x_lo(), probe.y_lo(), probe.x_hi(), probe.y_hi()),
        );
    }
    let mut pairs = Vec::new();
    let s2 = (spacing as i128) * (spacing as i128);
    // Streaming traversal: the candidate set is never materialized.
    grid.for_each_candidate_pair(|ka, kb| {
        let (ia, ra, na) = critical[ka as usize];
        let (ib, rb, nb) = critical[kb as usize];
        let gap = ra.euclid_gap_sq(&rb);
        if gap < s2 {
            let deficit = spacing - ra.x_gap(&rb).max(ra.y_gap(&rb));
            g.add_edge(na, nb, deficit.max(1));
            pairs.push((ia, ib, deficit.max(1)));
        }
    });
    g.nudge_duplicate_positions();
    let constraint_count = pairs.len();

    // Planarize + optimal bipartization + recheck, exactly as bright field.
    let removed = planarize(&mut g, PlanarizeOrder::MinWeightFirst).removed;
    let outcome = bipartize(
        &g,
        BipartizeMethod::OptimalDual {
            tjoin: TJoinMethod::default(),
            blocks: false,
        },
    );
    let mut conflicts = Vec::new();
    let deleted: std::collections::HashSet<_> = outcome.deleted.iter().copied().collect();
    let mut uf = ParityUnionFind::new(g.node_count());
    for e in g.alive_edges() {
        if !deleted.contains(&e) {
            let (u, v) = g.endpoints(e);
            // Invariant: removing `outcome.deleted` leaves the graph
            // bipartite, so re-adding the kept edges cannot conflict.
            #[allow(clippy::expect_used)]
            uf.union(u.index(), v.index(), 1)
                .expect("bipartization leaves the graph bipartite");
        }
    }
    let mut edge_conflicts: Vec<_> = outcome.deleted.clone();
    for e in removed {
        let (u, v) = g.endpoints(e);
        if uf.union(u.index(), v.index(), 1).is_err() {
            edge_conflicts.push(e);
        }
    }
    for e in &edge_conflicts {
        let idx = e.index();
        let (a, b, weight) = pairs[idx];
        conflicts.push(DarkFieldConflict { a, b, weight });
    }

    // Feature phases from the surviving constraints.
    let mut phases = vec![0u8; layout.len()];
    for (k, (i, _, _)) in critical.iter().enumerate() {
        let (_, parity) = uf.find(k);
        phases[*i] = parity;
    }
    DarkFieldReport {
        constraint_count,
        conflicts,
        phases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_geom::Rect;

    fn rules() -> DesignRules {
        DesignRules::default()
    }

    #[test]
    fn far_features_have_no_constraints() {
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 1000),
            Rect::new(5000, 0, 5100, 1000),
        ]);
        let r = detect_dark_field(&l, &rules());
        assert_eq!(r.constraint_count, 0);
        assert!(r.conflicts.is_empty());
    }

    #[test]
    fn close_pair_alternates() {
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 1000),
            Rect::new(250, 0, 350, 1000), // 150 < 280 apart
        ]);
        let r = detect_dark_field(&l, &rules());
        assert_eq!(r.constraint_count, 1);
        assert!(r.conflicts.is_empty());
        assert_ne!(r.phases[0], r.phases[1]);
    }

    #[test]
    fn odd_triangle_yields_one_conflict() {
        // Three mutually-close features: an odd cycle in the dark-field
        // conflict graph; one edge must be voided.
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 100),
            Rect::new(250, 0, 350, 100),
            Rect::new(120, 250, 220, 350),
        ]);
        let r = detect_dark_field(&l, &rules());
        assert_eq!(r.constraint_count, 3);
        assert_eq!(r.conflicts.len(), 1);
    }

    #[test]
    fn even_chain_is_fine() {
        let rects: Vec<Rect> = (0..6)
            .map(|i| Rect::new(i * 350, 0, i * 350 + 100, 800))
            .collect();
        let r = detect_dark_field(&Layout::from_rects(rects), &rules());
        assert_eq!(r.constraint_count, 5);
        assert!(r.conflicts.is_empty());
        // Alternating phases along the chain.
        for w in (0..6).collect::<Vec<_>>().windows(2) {
            assert_ne!(r.phases[w[0]], r.phases[w[1]]);
        }
    }

    /// Recomputes the close-critical-pair set independently of
    /// [`detect_dark_field`]'s grid traversal (quadratic scan) and checks
    /// the report against it: every conflict names a genuine close pair,
    /// and every close pair not voided by a conflict got opposite phases.
    fn assert_dark_field_sound(l: &Layout, r: &DesignRules, report: &DarkFieldReport) {
        let rects = l.rects();
        let critical: Vec<usize> = (0..rects.len())
            .filter(|&i| rects[i].min_dim() <= r.critical_width)
            .collect();
        let s2 = (r.shifter_spacing as i128) * (r.shifter_spacing as i128);
        let mut close = Vec::new();
        for (k, &i) in critical.iter().enumerate() {
            for &j in &critical[k + 1..] {
                if rects[i].euclid_gap_sq(&rects[j]) < s2 {
                    close.push((i.min(j), i.max(j)));
                }
            }
        }
        assert_eq!(report.constraint_count, close.len());
        let voided: std::collections::HashSet<(usize, usize)> = report
            .conflicts
            .iter()
            .map(|c| (c.a.min(c.b), c.a.max(c.b)))
            .collect();
        for v in &voided {
            assert!(close.contains(v), "conflict {v:?} is not a close pair");
        }
        for &(a, b) in &close {
            if !voided.contains(&(a, b)) {
                assert_ne!(
                    report.phases[a], report.phases[b],
                    "surviving constraint ({a},{b}) must alternate phases"
                );
            }
        }
    }

    /// Differential test against the bright-field pipeline on shared
    /// fixtures: the two formulations answer different questions — dark
    /// field phases the *features*, bright field the *shifters flanking*
    /// them — so layouts whose shifters collide while the features
    /// themselves are legally spaced conflict under bright field only.
    /// Both reports must be internally sound on every fixture.
    #[test]
    fn dark_field_vs_bright_field_on_shared_fixtures() {
        use crate::{detect_conflicts, DetectConfig};
        use aapsm_layout::{extract_phase_geometry, fixtures};
        let r = rules();
        // (fixture, expected dark conflicts, expected bright conflicts)
        let cases: Vec<(&str, Layout, usize, usize)> = vec![
            ("single_wire", fixtures::single_wire(&r), 0, 0),
            ("wire_row", fixtures::wire_row(8, 600), 0, 0),
            ("benign_block", fixtures::benign_block(&r), 0, 0),
            // The defining divergence: the gate's shifters overlap the
            // strap's, but the features sit farther apart than the
            // opposite-phase spacing — bright field must flag it, dark
            // field must not.
            ("gate_over_strap", fixtures::gate_over_strap(&r), 0, 1),
            ("stacked_jog", fixtures::stacked_jog(&r), 0, 2),
            ("short_middle_wire", fixtures::short_middle_wire(&r), 0, 1),
            ("strap_under_bus", fixtures::strap_under_bus(6, &r), 0, 6),
        ];
        for (name, l, dark_expected, bright_expected) in cases {
            let dark = detect_dark_field(&l, &r);
            assert_eq!(dark.conflicts.len(), dark_expected, "{name}: dark field");
            assert_dark_field_sound(&l, &r, &dark);
            let bright =
                detect_conflicts(&extract_phase_geometry(&l, &r), &DetectConfig::default());
            assert_eq!(
                bright.conflict_count(),
                bright_expected,
                "{name}: bright field"
            );
        }
        // A tight wire row puts the features themselves inside the
        // opposite-phase spacing: dark field now sees a constraint chain
        // (even, hence still assignable with alternating phases).
        let tight = fixtures::wire_row(6, 260);
        let dark = detect_dark_field(&tight, &r);
        assert_eq!(dark.constraint_count, 5);
        assert!(dark.conflicts.is_empty());
        assert_dark_field_sound(&tight, &r, &dark);
    }

    #[test]
    fn wide_features_ignored() {
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 500, 1000),
            Rect::new(600, 0, 1100, 1000),
        ]);
        let r = detect_dark_field(&l, &rules());
        assert_eq!(r.constraint_count, 0);
    }
}
