//! Incremental re-detection for the detect→correct→verify loop.
//!
//! A [`CorrectionPlan`](crate::CorrectionPlan)'s cuts perturb geometry
//! only along a handful of grid lines, yet re-verifying the modified
//! layout used to pay for a full from-scratch [`crate::detect_conflicts`]
//! pass. [`RedetectEngine`] retains everything the previous detection
//! computed — extraction state and spatial indices, the pristine conflict
//! graph, its crossing set, the tile decomposition, and a dual-T-join
//! solve cache — and recomputes only what the cuts touched.
//!
//! # What is incremental, and why each piece stays bit-identical
//!
//! * **Extraction** (`aapsm_layout::ExtractState`): rigid merge
//!   constraints are carried over, only slab-touching pairs are
//!   rescanned, and the spatial grids are maintained by
//!   translate-and-reinsert. Exactness: the dirty/clean split is the
//!   complementarity invariant of `aapsm_geom::DirtyRegions`.
//! * **Conflict-graph build** (`crate::shard::TileBuildState`): tiles
//!   whose core+halo box is rigid under the cuts are translated and
//!   index-remapped; tiles touching a dirty region (or absorbing a
//!   cut-created constraint) are rebuilt; the stitch is
//!   partition-agnostic, so the graph equals the canonical serial build.
//! * **Crossing sweep** (`aapsm_graph::crossing_pairs_incremental`):
//!   crossings between rigid same-shift edges are copied from the
//!   previous set; every pair with a suspect member is re-tested
//!   geometrically.
//! * **Planarization** runs in full on the (incremental) crossing set —
//!   its greedy removal loop is linear-ish and inherently global.
//! * **Bipartization** (`crate::SolveCache`): per-component dual T-join
//!   instances are memoized by exact instance bytes, so untouched
//!   components replay their previous solution; the solvers being
//!   deterministic makes a byte-equal instance's cached join exactly
//!   what a fresh solve would return. Instance extraction itself (the
//!   per-component face trace / dual build of
//!   `aapsm_graph::component_embeddings`) honors the engine's
//!   parallelism knob and yields byte-identical instances at every
//!   degree, keeping cache keys stable across serial and parallel
//!   rounds.
//!
//! Whenever a reuse precondition fails — criticality flips, a rect that
//! does not match its predicted post-cut image, the feature-graph
//! ablation, or a missing prior state — the engine degrades to the full
//! pipeline for that round (still through the solve cache, which is
//! correct unconditionally) and reports it in [`RedetectStats`].

use crate::bipartize::{CacheActivity, CacheRef};
use crate::detect::finish_pipeline;
use crate::flow::StageProvenance;
use crate::shard::{build_conflict_graph_tiled_stateful_budgeted, TileBuildState, TileConfig};
use crate::{ConflictGraph, DetectConfig, DetectReport, GraphKind, SharedSolveCache, SolveCache};
use aapsm_fault::{Budget, BudgetExceeded};
use aapsm_graph::{crossing_pairs_incremental, crossing_pairs_par, CrossingSet, EdgeId};
use aapsm_layout::{dirty_regions_for, DesignRules, ExtractState, Layout, PhaseGeometry, SpaceCut};
use std::time::Instant;

/// What the last [`RedetectEngine`] round did.
#[derive(Clone, Copy, Debug, Default)]
pub struct RedetectStats {
    /// Whether the round ran the incremental front-end (`false` for the
    /// initial detection and every fallback).
    pub incremental: bool,
    /// The incremental extraction hit a structural change and rebuilt
    /// from scratch.
    pub extraction_fallback: bool,
    /// Merge constraints carried over without rescanning.
    pub reused_overlaps: usize,
    /// Candidate shifter pairs re-run through the scan verdict.
    pub rescanned_pairs: usize,
    /// Tile groups translated + remapped without rebuilding.
    pub tiles_reused: usize,
    /// Tile groups rebuilt.
    pub tiles_rebuilt: usize,
    /// Dual T-join instances answered from the solve cache.
    pub solve_hits: usize,
    /// Dual T-join instances solved fresh.
    pub solve_misses: usize,
}

#[derive(Clone)]
struct EngineState {
    extract: ExtractState,
    /// Pristine (pre-planarization) conflict graph of the last round.
    graph: ConflictGraph,
    /// Its full crossing set.
    crossings: CrossingSet,
    tiles: TileBuildState,
    cache: SolveCache,
}

/// A detection session that supports cheap re-detection after correction
/// rounds; see the module docs.
///
/// The engine owns one fixed [`DetectConfig`] (the solve cache must not
/// be shared across T-join methods) and is driven with
/// [`RedetectEngine::detect_full`] once, then
/// [`RedetectEngine::redetect_after_correction`] per correction round.
#[derive(Clone)]
pub struct RedetectEngine {
    rules: DesignRules,
    config: DetectConfig,
    /// Tiles per axis for the sharded build (`0` = auto from the
    /// parallelism degree).
    tile_count: usize,
    /// When set, dual-T-join memoization goes through this cross-session
    /// cache instead of the state-owned one.
    shared_cache: Option<SharedSolveCache>,
    state: Option<EngineState>,
    stats: RedetectStats,
}

impl RedetectEngine {
    /// Creates an engine for a fixed rule set and detection config.
    pub fn new(rules: DesignRules, config: DetectConfig) -> RedetectEngine {
        RedetectEngine::with_tiles(rules, config, 0)
    }

    /// [`RedetectEngine::new`] with an explicit tile count per axis for
    /// the sharded conflict-graph build (`0` = auto).
    pub fn with_tiles(
        rules: DesignRules,
        config: DetectConfig,
        tile_count: usize,
    ) -> RedetectEngine {
        RedetectEngine {
            rules,
            config,
            tile_count,
            shared_cache: None,
            state: None,
            stats: RedetectStats::default(),
        }
    }

    /// Routes the engine's dual-T-join memoization through a
    /// cross-session [`SharedSolveCache`] instead of the engine-owned
    /// cache. Every engine sharing one cache must use the same
    /// [`DetectConfig::tjoin`]/[`DetectConfig::blocks`] configuration
    /// (see the [`SolveCache`] docs); keys are canonical instance bytes,
    /// so hits seeded by *other* sessions are sound.
    pub fn set_shared_cache(&mut self, cache: SharedSolveCache) {
        self.shared_cache = Some(cache);
    }

    /// Replaces the budget driving subsequent rounds — how a resident
    /// service maps per-request deadlines onto a long-lived engine. The
    /// retained state is unaffected: a tighter budget only limits new
    /// work.
    pub fn set_budget(&mut self, budget: Budget) {
        self.config.budget = budget;
    }

    /// The geometry of the last detected layout (`None` before the first
    /// detection).
    pub fn geometry(&self) -> Option<&PhaseGeometry> {
        self.state.as_ref().map(|s| s.extract.geometry())
    }

    /// Statistics of the last round.
    pub fn last_stats(&self) -> &RedetectStats {
        &self.stats
    }

    /// Full detection, establishing (or re-establishing) the retained
    /// state. The report is bit-identical to
    /// [`crate::detect_conflicts`] on the extracted geometry.
    ///
    /// # Panics
    ///
    /// Panics when the engine's [`DetectConfig::budget`] trips — use
    /// [`RedetectEngine::try_detect_full`] for budgeted sessions.
    pub fn detect_full(&mut self, layout: &Layout) -> DetectReport {
        match self.try_detect_full(layout) {
            Ok((report, _)) => report,
            Err(e) => panic!("detect_full under a limited budget: {e}"),
        }
    }

    /// [`RedetectEngine::detect_full`] honoring the config's
    /// [`DetectConfig::budget`], returning the bipartization's
    /// [`StageProvenance`] alongside the report.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the graph build trips the budget (no
    /// cheaper build exists, so detection cannot degrade there); the
    /// retained state is dropped and the next call re-detects from
    /// scratch.
    pub fn try_detect_full(
        &mut self,
        layout: &Layout,
    ) -> Result<(DetectReport, StageProvenance), BudgetExceeded> {
        let t0 = Instant::now();
        let extract = ExtractState::full(layout, &self.rules, self.config.parallelism);
        let cache = self.state.take().map(|s| s.cache).unwrap_or_default();
        let (report, provenance, activity) = self.full_back_end(t0, extract, cache)?;
        self.stats = RedetectStats {
            incremental: false,
            solve_hits: activity.hits,
            solve_misses: activity.misses,
            ..RedetectStats::default()
        };
        Ok((report, provenance))
    }

    /// Re-detects after `cuts` transformed the previously detected
    /// layout into `modified` — the incremental entry point of the
    /// correction loop. Bit-identical (conflicts, weights, counts) to a
    /// from-scratch [`crate::detect_conflicts`] on `modified`'s
    /// geometry; see `crates/core/tests/incremental_equivalence.rs`.
    pub fn redetect_after_correction(
        &mut self,
        modified: &Layout,
        cuts: &[SpaceCut],
    ) -> DetectReport {
        match self.try_redetect_after_correction(modified, cuts) {
            Ok((report, _)) => report,
            Err(e) => panic!("redetect_after_correction under a limited budget: {e}"),
        }
    }

    /// [`RedetectEngine::redetect_after_correction`] honoring the
    /// config's [`DetectConfig::budget`], returning the bipartization's
    /// [`StageProvenance`] alongside the report.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the (incremental or full) graph build
    /// trips the budget; the retained state is dropped and the next call
    /// re-detects from scratch.
    pub fn try_redetect_after_correction(
        &mut self,
        modified: &Layout,
        cuts: &[SpaceCut],
    ) -> Result<(DetectReport, StageProvenance), BudgetExceeded> {
        // The FG ablation lacks the stable id layout the remaps rely on;
        // and with no prior state there is nothing to be incremental
        // about. Both run the full pipeline (still solve-cached).
        if self.state.is_none() || self.config.graph == GraphKind::Feature {
            return self.try_detect_full(modified);
        }
        let t0 = Instant::now();
        let Some(mut state) = self.state.take() else {
            unreachable!("checked above")
        };
        let delta = state
            .extract
            .incremental(modified, cuts, &self.rules, self.config.parallelism);
        if delta.fallback {
            let (report, provenance, activity) =
                self.full_back_end(t0, state.extract, state.cache)?;
            self.stats = RedetectStats {
                incremental: false,
                extraction_fallback: true,
                solve_hits: activity.hits,
                solve_misses: activity.misses,
                ..RedetectStats::default()
            };
            return Ok((report, provenance));
        }

        // ---- Incremental front-end. ----
        let dirty = dirty_regions_for(cuts);
        let EngineState {
            extract,
            graph: old_graph,
            crossings: old_crossings,
            mut tiles,
            mut cache,
        } = state;
        let (mut cg, reuse) = tiles.rebuild_incremental(
            extract.geometry(),
            &dirty,
            &delta.overlap_map,
            &delta.overlap_preimage,
            self.config.parallelism,
            &self.config.budget,
        )?;
        let old_of_new = pcg_edge_map(
            &delta.overlap_preimage,
            old_graph.graph.edge_count(),
            extract.geometry(),
        );
        let crossings = crossing_pairs_incremental(
            &cg.graph,
            &old_graph.graph,
            &old_crossings,
            &old_of_new,
            &dirty,
        );

        // ---- Shared back end. ----
        let pristine = cg.clone();
        let cache_ref = match &self.shared_cache {
            Some(shared) => CacheRef::Shared(shared),
            None => CacheRef::Owned(&mut cache),
        };
        let (report, provenance, activity) = finish_pipeline(
            extract.geometry(),
            &mut cg,
            &crossings,
            &self.config,
            t0,
            cache_ref,
            &self.config.budget,
        );
        self.stats = RedetectStats {
            incremental: true,
            extraction_fallback: false,
            reused_overlaps: delta.reused_overlaps,
            rescanned_pairs: delta.rescanned_pairs,
            tiles_reused: reuse.reused,
            tiles_rebuilt: reuse.rebuilt,
            solve_hits: activity.hits,
            solve_misses: activity.misses,
        };
        self.state = Some(EngineState {
            extract,
            graph: pristine,
            crossings,
            tiles,
            cache,
        });
        Ok((report, provenance))
    }

    /// The from-scratch back end over a ready extraction state: tiled
    /// build (retaining the decomposition), full crossing sweep, shared
    /// pipeline tail; installs the new state.
    fn full_back_end(
        &mut self,
        t0: Instant,
        extract: ExtractState,
        mut cache: SolveCache,
    ) -> Result<(DetectReport, StageProvenance, CacheActivity), BudgetExceeded> {
        let tile_cfg = TileConfig {
            tiles: self.tile_count,
            parallelism: self.config.parallelism,
        };
        let (mut cg, tiles) = build_conflict_graph_tiled_stateful_budgeted(
            extract.geometry(),
            self.config.graph,
            &tile_cfg,
            &self.config.budget,
        )?;
        let crossings = crossing_pairs_par(&cg.graph, self.config.parallelism);
        let pristine = cg.clone();
        let cache_ref = match &self.shared_cache {
            Some(shared) => CacheRef::Shared(shared),
            None => CacheRef::Owned(&mut cache),
        };
        let (report, provenance, activity) = finish_pipeline(
            extract.geometry(),
            &mut cg,
            &crossings,
            &self.config,
            t0,
            cache_ref,
            &self.config.budget,
        );
        self.state = Some(EngineState {
            extract,
            graph: pristine,
            crossings,
            tiles,
            cache,
        });
        Ok((report, provenance, activity))
    }
}

/// New-edge → old-edge map of the phase conflict graph's canonical id
/// layout: overlap half-edges sit at `2·oi + half` and follow the
/// overlap's index mapping; flank edges occupy the trailing block in
/// critical-feature order, which the non-fallback extraction guarantees
/// is unchanged.
fn pcg_edge_map(
    overlap_preimage: &[Option<u32>],
    old_edge_count: usize,
    geom: &PhaseGeometry,
) -> Vec<Option<EdgeId>> {
    let o_new = geom.overlaps.len();
    let crit = geom
        .features
        .iter()
        .filter(|f| f.shifters.is_some())
        .count();
    debug_assert_eq!(overlap_preimage.len(), o_new);
    let o_old = (old_edge_count - crit) / 2;
    let mut map: Vec<Option<EdgeId>> = vec![None; 2 * o_new + crit];
    for (oi_new, pre) in overlap_preimage.iter().enumerate() {
        if let Some(oi_old) = pre {
            map[2 * oi_new] = Some(EdgeId(2 * oi_old));
            map[2 * oi_new + 1] = Some(EdgeId(2 * oi_old + 1));
        }
    }
    for r in 0..crit {
        map[2 * o_new + r] = Some(EdgeId((2 * o_old + r) as u32));
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detect_conflicts;
    use aapsm_geom::Axis;
    use aapsm_layout::{apply_cuts, extract_phase_geometry, fixtures};

    fn assert_reports_match(a: &DetectReport, b: &DetectReport) {
        assert_eq!(a.conflicts, b.conflicts);
        assert_eq!(a.stats.graph_nodes, b.stats.graph_nodes);
        assert_eq!(a.stats.graph_edges, b.stats.graph_edges);
        assert_eq!(a.stats.crossings, b.stats.crossings);
        assert_eq!(a.stats.planarize_removed, b.stats.planarize_removed);
        assert_eq!(a.stats.bipartize_conflicts, b.stats.bipartize_conflicts);
        assert_eq!(a.stats.recheck_conflicts, b.stats.recheck_conflicts);
    }

    #[test]
    fn full_detect_matches_detect_conflicts() {
        let rules = DesignRules::default();
        let config = DetectConfig::default();
        for layout in [
            fixtures::gate_over_strap(&rules),
            fixtures::strap_under_bus(6, &rules),
            fixtures::wire_row(5, 600),
        ] {
            let mut engine = RedetectEngine::new(rules, config.clone());
            let report = engine.detect_full(&layout);
            let scratch = detect_conflicts(&extract_phase_geometry(&layout, &rules), &config);
            assert_reports_match(&report, &scratch);
        }
    }

    #[test]
    fn redetect_without_state_is_full_detection() {
        let rules = DesignRules::default();
        let mut engine = RedetectEngine::new(rules, DetectConfig::default());
        let layout = fixtures::gate_over_strap(&rules);
        let report = engine.redetect_after_correction(&layout, &[]);
        assert!(!engine.last_stats().incremental);
        let scratch = detect_conflicts(
            &extract_phase_geometry(&layout, &rules),
            &DetectConfig::default(),
        );
        assert_reports_match(&report, &scratch);
    }

    #[test]
    fn redetect_after_manual_cut_matches_scratch() {
        let rules = DesignRules::default();
        let config = DetectConfig::default();
        let layout = fixtures::strap_under_bus(5, &rules);
        let mut engine = RedetectEngine::new(rules, config.clone());
        engine.detect_full(&layout);
        let cuts = [SpaceCut {
            axis: Axis::Y,
            position: 300,
            width: 200,
        }];
        let modified = apply_cuts(&layout, &cuts);
        let incremental = engine.redetect_after_correction(&modified, &cuts);
        assert!(engine.last_stats().incremental);
        let scratch = detect_conflicts(&extract_phase_geometry(&modified, &rules), &config);
        assert_reports_match(&incremental, &scratch);
        assert_eq!(
            engine.geometry(),
            Some(&extract_phase_geometry(&modified, &rules))
        );
    }
}
