//! Tile-sharded conflict-graph construction — the full-chip scaling
//! primitive of the detection front-end.
//!
//! The layout bounding box (over shifter centers) is cut into a K×K tile
//! grid. Every graph *constraint* has a geometric **anchor point** — the
//! midpoint of its two shifter centers for an overlap, the feature center
//! for a flanking constraint — and is **owned** by the unique tile whose
//! core contains that anchor. Each tile builds its own node/edge lists
//! with dense local renumbering, in parallel, and the tiles are stitched
//! into one [`ConflictGraph`].
//!
//! # Tile / halo / stitching invariants
//!
//! 1. **Ownership partition.** Tile cores partition the bounding box
//!    (half-open in both axes, closed on the high boundary), so every
//!    constraint is owned by exactly one tile and no constraint is lost or
//!    duplicated — stitching needs no cross-tile dedup.
//! 2. **Halo locality.** A tile may reference shifters it does not own:
//!    the endpoints of an owned constraint. Overlapping shifters lie
//!    within [`aapsm_layout::DesignRules::shifter_spacing`] of each other
//!    and a feature's own shifters flank it directly, so every referenced
//!    shifter center lies within one constraint-interaction radius of the
//!    tile core — the tile's *halo*. Tile inputs are therefore local:
//!    a distributed implementation would ship each tile only its core
//!    plus halo geometry.
//! 3. **Dense local renumbering.** Within a tile, nodes get consecutive
//!    local ids in first-use order; edges reference local ids. Each local
//!    node records its canonical global id, which is closed-form from the
//!    serial construction order (shifter nodes first, then per-constraint
//!    nodes in constraint order), so local ids never leak across tiles.
//! 4. **Bit-identical stitching.** Stitching scatters each tile's edges
//!    into their canonical global edge slots and emits nodes and edges in
//!    exactly the serial order. The stitched graph — node ids, positions,
//!    edge ids, endpoint orientation, weights, constraints, adjacency —
//!    is **bit-identical** to [`crate::build_conflict_graph`] for every
//!    tile count and parallelism degree (property-tested in
//!    `tests/parallel_equivalence.rs`).
//!
//! # Incremental rebuild invariants ([`TileBuildState`])
//!
//! The retained decomposition supports cheap rebuilds after an
//! end-to-end-cut batch (the re-detect loop); exactness rests on four
//! more invariants:
//!
//! 5. **Partition-agnostic stitch.** The stitch never looks at tile
//!    geometry — *any* grouping of the constraints scatters to the same
//!    canonical graph. Incremental rounds may therefore keep the round-0
//!    grouping (routing cut-created constraints to groups by their
//!    anchor in the round-0 frame) instead of re-tiling the grown
//!    bounding box, and lose nothing but load balance.
//! 6. **Core+halo dirtiness test.** A group's stored box hulls every
//!    owned constraint's full geometry — endpoint shifter rects and
//!    feature bodies, i.e. core *plus* halo. If that box is rigid under
//!    the cuts (`DirtyRegions::rigid_shift_of`), every input of the
//!    group's slice translated by one shared vector, so the slice can be
//!    reused; any slab contact forces a rebuild of exactly that group.
//! 7. **Exact remap of reused slices.** A reused slice is translated by
//!    the group shift and index-remapped: shifter node ids are stable
//!    (criticality pattern unchanged on this path — enforced upstream by
//!    the extraction fallback), overlap nodes/edges follow the
//!    extraction's overlap index map, flank edges take the recomputed
//!    global flank weight. Remapping is arithmetic only — no hashing, no
//!    interning — and commutes with [`build_tile`].
//! 8. **Scope.** Only the phase conflict graph is remapped; the
//!    feature-graph ablation rebuilds from scratch (its conflict-node
//!    ids depend on same-side overlap ranks that have no stable prefix).
//!
//! # Instance-as-tile invariant (hierarchical detection)
//!
//! 9. **A placed instance is a tile.** Invariant 5 makes the grouping a
//!    free variable, so [`crate::detect_hier`] groups constraints by the
//!    top-level placed instance that owns them (the instance whose flat
//!    rect range contains the constraint's anchoring feature; boundary
//!    interactions between instances land in the owner of their `o.a`
//!    shifter's feature and stitch exactly like any cross-tile halo
//!    edge). Combined with the translation-invariant planarization order
//!    (weight then edge index, both per-component stable) and the
//!    coordinate-free dual-T-join instance key, a cell's **interior**
//!    components hash identically whether built standalone or inside the
//!    chip — which is what lets one primed per-cell solve be reused
//!    across every placement of that cell, while instance-boundary
//!    components simply miss the cache and solve fresh.

use crate::graphs::{flank_weight_for, ConflictGraph, EdgeConstraint, GraphKind};
use aapsm_fault::{Budget, BudgetExceeded, FaultSite, Stage};
use aapsm_geom::{resolve_workers, DirtyRegions, Point, Rect};
use aapsm_graph::EmbeddedGraph;
use aapsm_layout::PhaseGeometry;

/// Configuration of the tile-sharded build.
#[derive(Clone, Copy, Debug)]
pub struct TileConfig {
    /// Tiles per axis (K of the K×K grid); `0` = choose from the worker
    /// count (smallest K with K² ≥ 4·workers, capped at 64).
    pub tiles: usize,
    /// Worker threads: `0` = one per available CPU, `1` = build the tiles
    /// on the calling thread, `k` = at most `k` workers.
    pub parallelism: usize,
}

impl Default for TileConfig {
    fn default() -> Self {
        TileConfig {
            tiles: 0,
            parallelism: 1,
        }
    }
}

impl TileConfig {
    /// A configuration that auto-sizes the tile grid for `parallelism`
    /// workers.
    pub fn for_parallelism(parallelism: usize) -> Self {
        TileConfig {
            tiles: 0,
            parallelism,
        }
    }

    fn tiles_per_axis(&self) -> usize {
        if self.tiles > 0 {
            return self.tiles;
        }
        let workers = resolve_workers(self.parallelism);
        let mut k = 1usize;
        while k * k < 4 * workers && k < 64 {
            k += 1;
        }
        k
    }
}

/// A tile's locally-renumbered slice of the conflict graph.
#[derive(Clone, Debug)]
struct TileGraph {
    /// Canonical global node id per local id, in first-use order.
    global_of_local: Vec<u32>,
    /// Node position per local id.
    pos: Vec<Point>,
    /// Edges as `(local u, local v, weight, constraint)`, tile-local order.
    edges: Vec<(u32, u32, i64, EdgeConstraint)>,
    /// Canonical global edge id per tile edge.
    global_edge: Vec<u32>,
}

impl TileGraph {
    fn new() -> Self {
        TileGraph {
            global_of_local: Vec::new(),
            pos: Vec::new(),
            edges: Vec::new(),
            global_edge: Vec::new(),
        }
    }

    /// Dense local id of a global node, interning it on first use.
    fn local(
        &mut self,
        global: u32,
        pos: Point,
        interned: &mut aapsm_geom::FxHashMap<u32, u32>,
    ) -> u32 {
        *interned.entry(global).or_insert_with(|| {
            let l = self.global_of_local.len() as u32;
            self.global_of_local.push(global);
            self.pos.push(pos);
            l
        })
    }

    fn push_edge(&mut self, u: u32, v: u32, w: i64, c: EdgeConstraint, gid: u32) {
        self.edges.push((u, v, w, c));
        self.global_edge.push(gid);
    }
}

/// The K×K tiling of the shifter-center bounding box.
#[derive(Clone, Debug)]
struct Tiling {
    x0: i64,
    y0: i64,
    w: i64,
    h: i64,
    k: i64,
}

impl Tiling {
    fn over(centers: impl Iterator<Item = Point>, k: usize) -> Option<Tiling> {
        let mut bounds: Option<(i64, i64, i64, i64)> = None;
        for c in centers {
            let b = bounds.get_or_insert((c.x, c.y, c.x, c.y));
            b.0 = b.0.min(c.x);
            b.1 = b.1.min(c.y);
            b.2 = b.2.max(c.x);
            b.3 = b.3.max(c.y);
        }
        let (x0, y0, x1, y1) = bounds?;
        Some(Tiling {
            x0,
            y0,
            w: x1 - x0 + 1,
            h: y1 - y0 + 1,
            k: k as i64,
        })
    }

    fn tile_count(&self) -> usize {
        (self.k * self.k) as usize
    }

    /// The tile owning an anchor point (clamped to the grid, so anchors on
    /// the high boundary land in the last tile).
    fn tile_of(&self, p: Point) -> usize {
        let tx = ((p.x - self.x0) as i128 * self.k as i128 / self.w as i128)
            .clamp(0, self.k as i128 - 1) as i64;
        let ty = ((p.y - self.y0) as i128 * self.k as i128 / self.h as i128)
            .clamp(0, self.k as i128 - 1) as i64;
        (ty * self.k + tx) as usize
    }
}

/// Canonical global id layout of a conflict graph, precomputed so tiles
/// can emit global node/edge ids without coordination.
struct IdLayout {
    shifters: usize,
    node_count: usize,
    edge_count: usize,
    /// PCG: overlap node of `oi` = `shifters + oi`; first overlap edge =
    /// `2 * oi`; flank edge of the r-th critical feature = `flank_base + r`.
    /// FG: feature node of the r-th critical feature = `shifters + r`;
    /// conflict node of the r-th same-side overlap = `conflict_base + r`;
    /// overlap edges start at `overlap_edge_offset[oi]`.
    flank_base: u32,
    conflict_base: u32,
    crit_rank: Vec<u32>,
    overlap_edge_offset: Vec<u32>,
    /// FG only: same-side rank per overlap (undefined for opposite-side).
    ss_rank: Vec<u32>,
}

fn id_layout(geom: &PhaseGeometry, kind: GraphKind) -> IdLayout {
    let s = geom.shifters.len();
    let o = geom.overlaps.len();
    let mut crit_rank = vec![0u32; geom.features.len()];
    let mut criticals = 0u32;
    for (fi, f) in geom.features.iter().enumerate() {
        crit_rank[fi] = criticals;
        if f.shifters.is_some() {
            criticals += 1;
        }
    }
    match kind {
        GraphKind::PhaseConflict => IdLayout {
            shifters: s,
            node_count: s + o,
            edge_count: 2 * o + criticals as usize,
            flank_base: 2 * o as u32,
            conflict_base: 0,
            crit_rank,
            overlap_edge_offset: Vec::new(),
            ss_rank: Vec::new(),
        },
        GraphKind::Feature => {
            let mut overlap_edge_offset = vec![0u32; o];
            let mut ss_rank = vec![0u32; o];
            let mut cursor = 2 * criticals;
            let mut same_side = 0u32;
            for (oi, ov) in geom.overlaps.iter().enumerate() {
                overlap_edge_offset[oi] = cursor;
                ss_rank[oi] = same_side;
                let ss = geom.shifters[ov.a].side == geom.shifters[ov.b].side;
                cursor += if ss { 2 } else { 1 };
                same_side += ss as u32;
            }
            IdLayout {
                shifters: s,
                node_count: s + criticals as usize + same_side as usize,
                edge_count: cursor as usize,
                flank_base: 0,
                conflict_base: (s + criticals as usize) as u32,
                crit_rank,
                overlap_edge_offset,
                ss_rank,
            }
        }
    }
}

/// Builds the tile's slice: its owned overlaps and critical features, with
/// locally-renumbered nodes and canonical global ids.
///
/// Charges one [`Stage::GraphBuild`] tick per owned constraint to
/// `budget`; a tripped budget aborts the build (there is no cheaper way
/// to construct the graph, so callers surface the error instead of
/// degrading).
// Invariant, not an error path: owned feature lists are filtered to
// critical features (shifters present) at ownership-assignment time.
#[allow(clippy::expect_used)]
fn build_tile(
    geom: &PhaseGeometry,
    kind: GraphKind,
    ids: &IdLayout,
    flank_weight: i64,
    owned_overlaps: &[u32],
    owned_features: &[u32],
    budget: &Budget,
) -> Result<TileGraph, BudgetExceeded> {
    aapsm_fault::hit(FaultSite::TileBuild);
    budget.charge(
        Stage::GraphBuild,
        (owned_overlaps.len() + owned_features.len()) as u64,
    )?;
    let mut tg = TileGraph::new();
    let mut interned = aapsm_geom::FxHashMap::default();
    let s = ids.shifters as u32;
    let center = |si: usize| geom.shifters[si].rect.center();
    match kind {
        GraphKind::PhaseConflict => {
            for &oi in owned_overlaps {
                let o = &geom.overlaps[oi as usize];
                let (ca, cb) = (center(o.a), center(o.b));
                let la = tg.local(o.a as u32, ca, &mut interned);
                let lb = tg.local(o.b as u32, cb, &mut interned);
                let ln = tg.local(s + oi, ca.midpoint(cb), &mut interned);
                let c = EdgeConstraint::Overlap(oi as usize);
                tg.push_edge(la, ln, o.weight, c, 2 * oi);
                tg.push_edge(ln, lb, o.weight, c, 2 * oi + 1);
            }
            for &fi in owned_features {
                let (lo, hi) = geom.features[fi as usize]
                    .shifters
                    .expect("owned features are critical");
                let la = tg.local(lo as u32, center(lo), &mut interned);
                let lb = tg.local(hi as u32, center(hi), &mut interned);
                let gid = ids.flank_base + ids.crit_rank[fi as usize];
                tg.push_edge(
                    la,
                    lb,
                    flank_weight,
                    EdgeConstraint::Flank(fi as usize),
                    gid,
                );
            }
        }
        GraphKind::Feature => {
            for &fi in owned_features {
                let f = &geom.features[fi as usize];
                let (lo, hi) = f.shifters.expect("owned features are critical");
                let rank = ids.crit_rank[fi as usize];
                let la = tg.local(lo as u32, center(lo), &mut interned);
                let lf = tg.local(s + rank, f.rect.center(), &mut interned);
                let lb = tg.local(hi as u32, center(hi), &mut interned);
                let c = EdgeConstraint::Flank(fi as usize);
                tg.push_edge(la, lf, flank_weight, c, 2 * rank);
                tg.push_edge(lf, lb, flank_weight, c, 2 * rank + 1);
            }
            for &oi in owned_overlaps {
                let o = &geom.overlaps[oi as usize];
                let (sa, sb) = (&geom.shifters[o.a], &geom.shifters[o.b]);
                let la = tg.local(o.a as u32, center(o.a), &mut interned);
                let lb = tg.local(o.b as u32, center(o.b), &mut interned);
                let c = EdgeConstraint::Overlap(oi as usize);
                let gid = ids.overlap_edge_offset[oi as usize];
                if sa.side == sb.side {
                    let ln = tg.local(
                        ids.conflict_base + ids.ss_rank[oi as usize],
                        sa.rect.overlap_region_center(&sb.rect),
                        &mut interned,
                    );
                    tg.push_edge(la, ln, o.weight, c, gid);
                    tg.push_edge(ln, lb, o.weight, c, gid + 1);
                } else {
                    tg.push_edge(la, lb, o.weight, c, gid);
                }
            }
        }
    }
    Ok(tg)
}

/// Scatters tile slices into canonical slots and emits nodes and edges in
/// exactly the serial order — the partition-agnostic half of the tiled
/// build: *any* grouping of the constraints, built per group, stitches to
/// the canonical graph.
// Invariant, not an error path: the ownership partition (module invariant
// 1) fills every canonical edge slot exactly once.
#[allow(clippy::expect_used)]
fn stitch<'a>(
    geom: &PhaseGeometry,
    kind: GraphKind,
    ids: &IdLayout,
    flank_weight: i64,
    tiles: impl Iterator<Item = &'a TileGraph>,
) -> ConflictGraph {
    let mut positions: Vec<Point> = Vec::with_capacity(ids.node_count);
    positions.extend(geom.shifters.iter().map(|s| s.rect.center()));
    positions.resize(ids.node_count, Point::new(0, 0));
    let mut edge_slots: Vec<Option<(u32, u32, i64, EdgeConstraint)>> = vec![None; ids.edge_count];
    for tg in tiles {
        for (k, &(lu, lv, w, c)) in tg.edges.iter().enumerate() {
            let gu = tg.global_of_local[lu as usize];
            let gv = tg.global_of_local[lv as usize];
            let slot = &mut edge_slots[tg.global_edge[k] as usize];
            debug_assert!(slot.is_none(), "edge owned by two tiles");
            *slot = Some((gu, gv, w, c));
        }
        for (l, &g) in tg.global_of_local.iter().enumerate() {
            positions[g as usize] = tg.pos[l];
        }
    }
    let mut graph = EmbeddedGraph::new();
    graph.reserve(ids.node_count, ids.edge_count);
    for &p in &positions {
        graph.add_node(p);
    }
    let mut edge_constraint = Vec::with_capacity(ids.edge_count);
    for slot in edge_slots {
        let (u, v, w, c) = slot.expect("every canonical edge is owned by exactly one tile");
        graph.add_edge(aapsm_graph::NodeId(u), aapsm_graph::NodeId(v), w);
        edge_constraint.push(c);
    }
    graph.nudge_duplicate_positions();
    ConflictGraph {
        graph,
        kind,
        edge_constraint,
        flank_weight,
    }
}

/// Builds a conflict graph by the tile-sharded pipeline. The result is
/// bit-identical to [`crate::build_conflict_graph`] for every
/// [`TileConfig`]; see the module docs for the invariants that make the
/// stitch exact.
pub fn build_conflict_graph_tiled(
    geom: &PhaseGeometry,
    kind: GraphKind,
    config: &TileConfig,
) -> ConflictGraph {
    build_conflict_graph_tiled_stateful(geom, kind, config).0
}

/// One owned group of the tile decomposition, with its built slice and
/// the bounding box of everything the slice references (owned constraint
/// anchors *and* their endpoint shifters / feature bodies — the tile's
/// core plus halo).
#[derive(Clone, Debug)]
struct TileGroup {
    overlaps: Vec<u32>,
    features: Vec<u32>,
    bbox: Option<(i64, i64, i64, i64)>,
    graph: TileGraph,
}

impl TileGroup {
    fn is_empty(&self) -> bool {
        self.overlaps.is_empty() && self.features.is_empty()
    }
}

/// Retained tile decomposition of the last conflict-graph build, the
/// front-end half of the incremental re-detect (see the module docs'
/// *incremental rebuild* invariants).
#[derive(Clone, Debug)]
pub struct TileBuildState {
    kind: GraphKind,
    /// The round-0 tiling; new constraints of later rounds are routed to
    /// groups by their (clamped) anchor in this frame. `None` when the
    /// geometry had no shifters.
    tiling: Option<Tiling>,
    groups: Vec<TileGroup>,
}

/// Reuse counters of one incremental rebuild.
#[derive(Clone, Copy, Debug, Default)]
pub struct TileReuse {
    /// Groups whose slice was translated and remapped without rebuilding.
    pub reused: usize,
    /// Groups rebuilt because their core+halo box touched a dirty region
    /// (or absorbed a new constraint).
    pub rebuilt: usize,
}

/// Joint bounding box of a group's owned geometry: for an overlap both
/// endpoint shifter rects, for a flank the feature body plus both
/// shifters. This covers the tile core *and* halo, so a rigid box implies
/// every input of the group's slice translated by one vector.
// Invariant: owned feature lists only ever hold critical features.
#[allow(clippy::expect_used)]
fn group_bbox(geom: &PhaseGeometry, overlaps: &[u32], features: &[u32]) -> Option<Rect> {
    let mut acc: Option<Rect> = None;
    let mut grow = |r: Rect| {
        acc = Some(match acc {
            Some(a) => a.hull(&r),
            None => r,
        });
    };
    for &oi in overlaps {
        let o = &geom.overlaps[oi as usize];
        grow(geom.shifters[o.a].rect);
        grow(geom.shifters[o.b].rect);
    }
    for &fi in features {
        let f = &geom.features[fi as usize];
        grow(f.rect);
        let (lo, hi) = f.shifters.expect("owned features are critical");
        grow(geom.shifters[lo].rect);
        grow(geom.shifters[hi].rect);
    }
    acc
}

fn rect_tuple(r: Rect) -> (i64, i64, i64, i64) {
    (r.x_lo(), r.y_lo(), r.x_hi(), r.y_hi())
}

/// [`build_conflict_graph_tiled`], additionally retaining the tile
/// decomposition for incremental rebuilds.
pub fn build_conflict_graph_tiled_stateful(
    geom: &PhaseGeometry,
    kind: GraphKind,
    config: &TileConfig,
) -> (ConflictGraph, TileBuildState) {
    match build_conflict_graph_tiled_stateful_budgeted(geom, kind, config, &Budget::unlimited()) {
        Ok(out) => out,
        Err(_) => unreachable!("unlimited budget never trips"),
    }
}

/// [`build_conflict_graph_tiled_stateful`] under a [`Budget`]: one
/// [`Stage::GraphBuild`] tick is charged per constraint.
///
/// # Errors
///
/// [`BudgetExceeded`] when the budget trips mid-build; the partial build
/// is discarded (a conflict graph has no cheaper degraded form).
pub fn build_conflict_graph_tiled_stateful_budgeted(
    geom: &PhaseGeometry,
    kind: GraphKind,
    config: &TileConfig,
    budget: &Budget,
) -> Result<(ConflictGraph, TileBuildState), BudgetExceeded> {
    let k = config.tiles_per_axis();
    let Some(tiling) = Tiling::over(geom.shifters.iter().map(|s| s.rect.center()), k) else {
        // No shifters — nothing to shard.
        let cg = crate::graphs::build_conflict_graph(geom, kind);
        return Ok((
            cg,
            TileBuildState {
                kind,
                tiling: None,
                groups: Vec::new(),
            },
        ));
    };
    let ids = id_layout(geom, kind);
    let flank_weight = flank_weight_for(geom);

    // ---- Ownership assignment (anchor point → tile). ----
    let mut tile_overlaps: Vec<Vec<u32>> = vec![Vec::new(); tiling.tile_count()];
    let mut tile_features: Vec<Vec<u32>> = vec![Vec::new(); tiling.tile_count()];
    for (oi, o) in geom.overlaps.iter().enumerate() {
        budget.charge(Stage::GraphBuild, 1)?;
        tile_overlaps[tiling.tile_of(overlap_anchor(geom, o))].push(oi as u32);
    }
    for (fi, f) in geom.features.iter().enumerate() {
        budget.charge(Stage::GraphBuild, 1)?;
        if f.shifters.is_some() {
            tile_features[tiling.tile_of(f.rect.center())].push(fi as u32);
        }
    }

    // ---- Per-tile builds (parallel). ----
    let occupied: Vec<usize> = (0..tiling.tile_count())
        .filter(|&t| !tile_overlaps[t].is_empty() || !tile_features[t].is_empty())
        .collect();
    let workers = resolve_workers(config.parallelism)
        .min(occupied.len())
        .max(1);
    let built: Vec<TileGraph> = aapsm_geom::par_map_indexed(
        occupied.len(),
        workers,
        || (),
        |(), i| {
            let t = occupied[i];
            build_tile(
                geom,
                kind,
                &ids,
                flank_weight,
                &tile_overlaps[t],
                &tile_features[t],
                budget,
            )
        },
    )
    .into_iter()
    .collect::<Result<_, _>>()?;
    let cg = stitch(geom, kind, &ids, flank_weight, built.iter());

    // ---- Retain the decomposition. ----
    let mut groups: Vec<TileGroup> = tile_overlaps
        .into_iter()
        .zip(tile_features)
        .map(|(overlaps, features)| TileGroup {
            bbox: group_bbox(geom, &overlaps, &features).map(rect_tuple),
            overlaps,
            features,
            graph: TileGraph::new(),
        })
        .collect();
    for (slot, tg) in occupied.into_iter().zip(built) {
        budget.charge(Stage::GraphBuild, 1)?;
        groups[slot].graph = tg;
    }
    Ok((
        cg,
        TileBuildState {
            kind,
            tiling: Some(tiling),
            groups,
        },
    ))
}

fn overlap_anchor(geom: &PhaseGeometry, o: &aapsm_layout::OverlapPair) -> Point {
    geom.shifters[o.a]
        .rect
        .center()
        .midpoint(geom.shifters[o.b].rect.center())
}

impl TileBuildState {
    /// Rebuilds the conflict graph for `geom` (the post-cut geometry),
    /// recomputing only groups whose core+halo box touched a dirty
    /// region or received a constraint the cuts created, and translating
    /// plus index-remapping every other group's slice. The stitched
    /// graph is bit-identical to [`crate::build_conflict_graph`] on
    /// `geom`; the state is updated in place for the next round.
    ///
    /// `overlap_map` / `overlap_preimage` are the index mappings of the
    /// incremental extraction (`aapsm_layout::ExtractDelta`). When the
    /// extraction fell back (empty maps on non-empty overlap sets) or
    /// this state has no tiling, the whole decomposition is rebuilt from
    /// scratch.
    pub(crate) fn rebuild_incremental(
        &mut self,
        geom: &PhaseGeometry,
        dirty: &DirtyRegions,
        overlap_map: &[Option<u32>],
        overlap_preimage: &[Option<u32>],
        parallelism: usize,
        budget: &Budget,
    ) -> Result<(ConflictGraph, TileReuse), BudgetExceeded> {
        // Only the phase conflict graph has the stable shifter-id prefix
        // the remap arithmetic relies on; the FG baseline (an ablation,
        // never on the flow path) rebuilds from scratch.
        if self.kind == GraphKind::Feature {
            return self.rebuild_full(geom, parallelism, budget);
        }
        let Some(tiling) = self.tiling.clone() else {
            return self.rebuild_full(geom, parallelism, budget);
        };
        let ids = id_layout(geom, self.kind);
        let flank_weight = flank_weight_for(geom);

        // ---- Route the cut-created overlaps to their anchor's group
        // and decide which groups survive as rigid translations. ----
        let mut appended: Vec<Vec<u32>> = vec![Vec::new(); self.groups.len()];
        for (new_oi, pre) in overlap_preimage.iter().enumerate() {
            if pre.is_none() {
                let t = tiling.tile_of(overlap_anchor(geom, &geom.overlaps[new_oi]));
                appended[t].push(new_oi as u32);
            }
        }
        enum Plan {
            Keep((i64, i64)),
            Rebuild,
        }
        let plans: Vec<Plan> = self
            .groups
            .iter()
            .enumerate()
            .map(|(t, g)| {
                if !appended[t].is_empty() {
                    return Plan::Rebuild;
                }
                let Some(bbox) = g.bbox else {
                    return Plan::Keep((0, 0)); // empty group
                };
                match dirty.rigid_shift_of(bbox) {
                    Some(shift)
                        if g.overlaps
                            .iter()
                            .all(|&oi| overlap_map[oi as usize].is_some()) =>
                    {
                        Plan::Keep(shift)
                    }
                    _ => Plan::Rebuild,
                }
            })
            .collect();

        // ---- Remap kept groups, rebuild the rest (parallel). ----
        let work: Vec<usize> = (0..self.groups.len())
            .filter(|&t| !(self.groups[t].is_empty() && appended[t].is_empty()))
            .collect();
        let workers = resolve_workers(parallelism).min(work.len()).max(1);
        let reuse = TileReuse {
            reused: work
                .iter()
                .filter(|&&t| matches!(plans[t], Plan::Keep(_)))
                .count(),
            rebuilt: work
                .iter()
                .filter(|&&t| matches!(plans[t], Plan::Rebuild))
                .count(),
        };
        let groups = &self.groups;
        let kind = self.kind;
        let rebuilt: Vec<TileGroup> = aapsm_geom::par_map_indexed(
            work.len(),
            workers,
            || (),
            |(), i| {
                let t = work[i];
                let g = &groups[t];
                match plans[t] {
                    Plan::Keep(shift) => Ok(remap_group(g, &ids, flank_weight, overlap_map, shift)),
                    Plan::Rebuild => {
                        let mut overlaps: Vec<u32> = g
                            .overlaps
                            .iter()
                            .filter_map(|&oi| overlap_map[oi as usize])
                            .collect();
                        overlaps.extend_from_slice(&appended[t]);
                        let features = g.features.clone();
                        let graph = build_tile(
                            geom,
                            kind,
                            &ids,
                            flank_weight,
                            &overlaps,
                            &features,
                            budget,
                        )?;
                        Ok(TileGroup {
                            bbox: group_bbox(geom, &overlaps, &features).map(rect_tuple),
                            overlaps,
                            features,
                            graph,
                        })
                    }
                }
            },
        )
        .into_iter()
        .collect::<Result<_, BudgetExceeded>>()?;
        let cg = stitch(
            geom,
            kind,
            &ids,
            flank_weight,
            rebuilt.iter().map(|g| &g.graph),
        );
        for (t, g) in work.into_iter().zip(rebuilt) {
            self.groups[t] = g;
        }
        Ok((cg, reuse))
    }

    /// Full from-scratch rebuild of both the graph and the decomposition
    /// (extraction fallback, or no prior tiling).
    pub(crate) fn rebuild_full(
        &mut self,
        geom: &PhaseGeometry,
        parallelism: usize,
        budget: &Budget,
    ) -> Result<(ConflictGraph, TileReuse), BudgetExceeded> {
        let config = TileConfig {
            tiles: self.tiling.as_ref().map_or(0, |t| t.k as usize),
            parallelism,
        };
        let (cg, state) =
            build_conflict_graph_tiled_stateful_budgeted(geom, self.kind, &config, budget)?;
        let rebuilt = state.groups.iter().filter(|g| !g.is_empty()).count();
        *self = state;
        Ok((cg, TileReuse { reused: 0, rebuilt }))
    }
}

/// Translates and index-remaps a rigid group's slice (phase conflict
/// graph only): shifter node ids are unchanged, overlap nodes and edge
/// ids follow their overlap's new rank, positions shift by the group's
/// rigid vector, and flank edges pick up the (global) flank weight.
/// Equivalent to — but cheaper than — re-running [`build_tile`] on the
/// remapped owned lists: no hashing, no interning.
// Invariant: Plan::Keep requires every owned overlap to be mapped.
#[allow(clippy::expect_used)]
fn remap_group(
    g: &TileGroup,
    ids: &IdLayout,
    flank_weight: i64,
    overlap_map: &[Option<u32>],
    (dx, dy): (i64, i64),
) -> TileGroup {
    let s = ids.shifters as u32;
    let map_o = |oi: u32| overlap_map[oi as usize].expect("rigid group overlaps are mapped");
    let overlaps: Vec<u32> = g.overlaps.iter().map(|&oi| map_o(oi)).collect();
    let features = g.features.clone();
    let mut graph = TileGraph::new();
    graph.pos = g
        .graph
        .pos
        .iter()
        .map(|p| Point::new(p.x + dx, p.y + dy))
        .collect();
    // Node ids: shifters keep theirs (criticality is stable on this
    // path, so the shifter-id prefix length is frame-free); overlap
    // nodes sit at `s + oi` and follow the overlap's new index.
    graph.global_of_local = g
        .graph
        .global_of_local
        .iter()
        .map(|&gid| if gid < s { gid } else { s + map_o(gid - s) })
        .collect();
    for (k, &(lu, lv, w, c)) in g.graph.edges.iter().enumerate() {
        let (c_new, w_new, gid_new) = match c {
            EdgeConstraint::Overlap(oi) => {
                let oi_new = map_o(oi as u32);
                // The two halves of an overlap keep their parity.
                let gid = 2 * oi_new + (g.graph.global_edge[k] & 1);
                (EdgeConstraint::Overlap(oi_new as usize), w, gid)
            }
            EdgeConstraint::Flank(fi) => (
                EdgeConstraint::Flank(fi),
                flank_weight,
                ids.flank_base + ids.crit_rank[fi],
            ),
        };
        graph.push_edge(lu, lv, w_new, c_new, gid_new);
    }
    let bbox = g
        .bbox
        .map(|(x0, y0, x1, y1)| (x0 + dx, y0 + dy, x1 + dx, y1 + dy));
    TileGroup {
        overlaps,
        features,
        bbox,
        graph,
    }
}

/// Builds the whole conflict graph as a single tile under an **explicit
/// flank weight**. `detect_hier` primes per-cell solves with the chip's
/// flank weight so a cell's interior components produce byte-identical
/// dual-T-join instance keys standalone and in-chip (invariant 9).
pub(crate) fn build_conflict_graph_with_flank(
    geom: &PhaseGeometry,
    kind: GraphKind,
    flank_weight: i64,
) -> ConflictGraph {
    let ids = id_layout(geom, kind);
    let overlaps: Vec<u32> = (0..geom.overlaps.len() as u32).collect();
    let features: Vec<u32> = geom
        .features
        .iter()
        .enumerate()
        .filter(|(_, f)| f.shifters.is_some())
        .map(|(i, _)| i as u32)
        .collect();
    let tile = match build_tile(
        geom,
        kind,
        &ids,
        flank_weight,
        &overlaps,
        &features,
        &Budget::unlimited(),
    ) {
        Ok(t) => t,
        Err(_) => unreachable!("unlimited budget never trips"),
    };
    stitch(geom, kind, &ids, flank_weight, std::iter::once(&tile))
}

/// Builds the conflict graph with constraints grouped by an arbitrary
/// feature-ownership function instead of a geometric tile grid — the
/// instance-as-tile build of invariant 9. `owner_of_feature[f]` assigns
/// feature `f` (and every constraint anchored on it: its flank edge, and
/// any overlap whose `a` shifter it owns) to a group in
/// `0..group_count`. By invariant 5 the stitched result is bit-identical
/// to [`crate::build_conflict_graph`] for **every** grouping.
pub(crate) fn build_conflict_graph_grouped(
    geom: &PhaseGeometry,
    kind: GraphKind,
    owner_of_feature: &[u32],
    group_count: usize,
    parallelism: usize,
) -> ConflictGraph {
    let ids = id_layout(geom, kind);
    let flank_weight = flank_weight_for(geom);
    let mut group_overlaps: Vec<Vec<u32>> = vec![Vec::new(); group_count.max(1)];
    let mut group_features: Vec<Vec<u32>> = vec![Vec::new(); group_count.max(1)];
    for (oi, o) in geom.overlaps.iter().enumerate() {
        let owner = owner_of_feature[geom.shifters[o.a].feature] as usize;
        group_overlaps[owner].push(oi as u32);
    }
    for (fi, f) in geom.features.iter().enumerate() {
        if f.shifters.is_some() {
            group_features[owner_of_feature[fi] as usize].push(fi as u32);
        }
    }
    let occupied: Vec<usize> = (0..group_overlaps.len())
        .filter(|&g| !group_overlaps[g].is_empty() || !group_features[g].is_empty())
        .collect();
    let workers = resolve_workers(parallelism).min(occupied.len()).max(1);
    let built: Vec<TileGraph> = aapsm_geom::par_map_indexed(
        occupied.len(),
        workers,
        || (),
        |(), i| {
            let g = occupied[i];
            match build_tile(
                geom,
                kind,
                &ids,
                flank_weight,
                &group_overlaps[g],
                &group_features[g],
                &Budget::unlimited(),
            ) {
                Ok(t) => t,
                Err(_) => unreachable!("unlimited budget never trips"),
            }
        },
    );
    stitch(geom, kind, &ids, flank_weight, built.iter())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::build_conflict_graph;
    use aapsm_layout::{extract_phase_geometry, fixtures, DesignRules};

    fn geoms() -> Vec<PhaseGeometry> {
        let r = DesignRules::default();
        let mut out = vec![
            extract_phase_geometry(&fixtures::single_wire(&r), &r),
            extract_phase_geometry(&fixtures::wire_row(6, 600), &r),
            extract_phase_geometry(&fixtures::gate_over_strap(&r), &r),
            extract_phase_geometry(&fixtures::strap_under_bus(5, &r), &r),
        ];
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 3,
                gates_per_row: 40,
                strap_frac: 0.6,
                jog_frac: 0.08,
                short_mid_frac: 0.05,
                ..Default::default()
            },
            &r,
        );
        out.push(extract_phase_geometry(&l, &r));
        out
    }

    #[test]
    fn tiled_build_is_bit_identical_to_serial() {
        for (gi, geom) in geoms().iter().enumerate() {
            for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
                let serial = build_conflict_graph(geom, kind);
                for tiles in [1usize, 2, 3, 7] {
                    for parallelism in [1usize, 0, 4] {
                        let cfg = TileConfig { tiles, parallelism };
                        let tiled = build_conflict_graph_tiled(geom, kind, &cfg);
                        assert_eq!(
                            tiled, serial,
                            "geom {gi} {kind:?} tiles {tiles} parallelism {parallelism}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn empty_geometry_falls_back() {
        let geom = PhaseGeometry::default();
        let cfg = TileConfig::for_parallelism(4);
        let cg = build_conflict_graph_tiled(&geom, GraphKind::PhaseConflict, &cfg);
        assert_eq!(cg.graph.node_count(), 0);
        assert_eq!(cg.graph.edge_count(), 0);
    }

    #[test]
    fn auto_tile_count_grows_with_workers() {
        assert_eq!(TileConfig::for_parallelism(1).tiles_per_axis(), 2);
        assert!(TileConfig::for_parallelism(4).tiles_per_axis() >= 4);
        assert_eq!(
            TileConfig {
                tiles: 5,
                parallelism: 1
            }
            .tiles_per_axis(),
            5
        );
    }
}
