//! Bright-field AAPSM conflict detection and correction.
//!
//! This crate is the primary contribution of the DATE 2005 paper by
//! Chiang, Kahng, Sinha, Xu and Zelikovsky, rebuilt end to end:
//!
//! 1. **Phase conflict graph** ([`build_phase_conflict_graph`]): one edge
//!    shifter node per shifter, an overlap node on the straight segment
//!    between merged shifters, and one direct edge per critical feature.
//!    Bipartite ⇔ phase-assignable (Theorem 1). The prior-art **feature
//!    graph** ([`build_feature_graph`]) is provided as the FG baseline.
//! 2. **Planarization** ([`planarize_graph`]): greedy removal of
//!    minimum-weight crossing edges; removed edges form the potential
//!    conflict set *P*.
//! 3. **Optimal bipartization** ([`bipartize`]): per component, trace the
//!    faces of the plane drawing, build the geometric dual, solve the
//!    minimum-weight T-join with T = odd faces through the pluggable
//!    gadget/matching machinery of [`aapsm_tjoin`].
//! 4. **Final conflict set** ([`detect_conflicts`]): the paper's Step 3 —
//!    re-check the planarization victims against the bipartization
//!    coloring; only those that would close odd cycles become conflicts.
//! 5. **Layout modification** ([`plan_correction`], [`apply_correction`]):
//!    correction intervals (Euclidean-minimal, direction-aware cut
//!    widths), legal grid lines, a weighted set cover solved per
//!    connected component ([`aapsm_cover::solve_decomposed`] — exact
//!    branch-and-bound under a per-component budget, with truthful
//!    optimality reporting), and end-to-end space insertion, with
//!    re-extraction-based verification.
//!
//! The one-call entry point is [`run_flow`] — a multi-round
//! detect→correct→**re-detect** convergence loop: re-verification after
//! each correction round runs through the incremental [`RedetectEngine`]
//! (retained extraction state, tile decomposition, crossing set, and a
//! dual-T-join [`SolveCache`]), recomputing only what the cuts touched
//! while staying bit-identical to a from-scratch [`detect_conflicts`]
//! pass (property-tested in `tests/incremental_equivalence.rs`).
//!
//! # Budgets, degradation and fault isolation
//!
//! Every long-running stage is *budgeted*: [`DetectConfig::budget`] /
//! [`CorrectionOptions::budget`] carry an [`aapsm_fault::Budget`]
//! (wall-clock deadline, per-stage work caps, cooperative cancellation)
//! that the tile build, face trace, Blossom matching and cover
//! branch-and-bound charge as they work. When a budget trips, the flow
//! walks a **degradation ladder** instead of failing outright — optimal
//! bipartization falls back to the parity-greedy heuristic, the exact
//! cover keeps its (feasible) incumbent — and records what happened in
//! [`FlowResult::provenance`] ([`StageProvenance::Exact`] /
//! [`StageProvenance::Degraded`] / [`StageProvenance::Skipped`] per round
//! and stage), so a degraded answer can never masquerade as a proven one.
//! Worker panics are isolated per item (`aapsm_geom::par_map_indexed`
//! retries a poisoned tile/component once serially); a persistent panic
//! surfaces as [`FlowError::WorkerPanic`] rather than tearing down the
//! caller. The deterministic fault-injection hooks of [`aapsm_fault`]
//! (compiled out in release) drive the property suite in
//! `tests/fault_injection.rs`: every injected fault yields either a
//! bit-identical complete result or a truthfully flagged degraded/error
//! result — never a silently wrong one.
//!
//! # Parallelism and solver reuse
//!
//! The **whole pipeline** is decompose-then-solve behind one knob,
//! [`DetectConfig::parallelism`] (reachable from [`FlowConfig`] via its
//! `detect` field): `0` = one worker per available CPU, `1` = serial
//! (default), `k` = at most `k` workers. Every degree yields
//! **bit-identical** results (property-tested in
//! `tests/parallel_equivalence.rs`).
//!
//! * **Front-end**: phase-geometry extraction and the planarization
//!   crossing sweep shard the spatial grid's occupied cells into
//!   contiguous bands (`aapsm_geom::GridIndex::par_collect_pairs`), with
//!   per-band buffers merged in band order; the conflict graph itself can
//!   be built tile-sharded ([`build_conflict_graph_tiled`]) — the layout
//!   bounding box is cut into K×K tiles whose per-tile node/edge lists
//!   (dense local renumbering) are stitched into the canonical graph.
//! * **Back-end**: faces are traced and dualized **per connected
//!   component** on worker threads (`aapsm_graph::component_embeddings`
//!   — the dual T-join decomposition falls out of the partition for
//!   free, with dense `Vec`-based renumbering), then every independent
//!   instance (per component, or per biconnected block with
//!   [`DetectConfig::blocks`]) is solved on worker threads; per-instance
//!   deleted-edge sets are merged in instance order and sorted by edge
//!   id. Tiny graphs and instance sets fall back to the calling thread
//!   adaptively (thread spawn would dominate). Lower-level callers use
//!   [`bipartize_with`] directly.
//! * **Correction**: the planner's weighted set cover decomposes into
//!   connected components of the candidate–element incidence, solved on
//!   worker threads and merged in component order
//!   ([`CorrectionOptions::parallelism`], driven by
//!   [`DetectConfig::parallelism`] inside [`run_flow`]); plans are
//!   bit-identical at every degree (`tests/correction_equivalence.rs`).
//! * **Allocation**: each worker owns one `aapsm_matching::MatchingContext`
//!   — a reusable Blossom arena. Solving through a context allocates only
//!   when an instance out-sizes everything the context has seen, so the
//!   thousands of small gadget matchings of one flow stop hammering the
//!   allocator. Sequential callers get the same benefit through a
//!   per-thread context behind the free functions
//!   (`aapsm_matching::with_thread_context` to hold it explicitly).
//!
//! # Example
//!
//! ```
//! use aapsm_core::{run_flow, FlowConfig};
//! use aapsm_layout::{fixtures, DesignRules};
//!
//! let rules = DesignRules::default();
//! let layout = fixtures::gate_over_strap(&rules);
//! let result = run_flow(&layout, &rules, &FlowConfig::default())?;
//! assert_eq!(result.detection.conflicts.len(), 1);
//! assert!(result.verified, "corrected layout must be phase-assignable");
//! # Ok::<(), aapsm_core::FlowError>(())
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod bipartize;
mod correct;
pub mod darkfield;
mod detect;
mod flow;
mod graphs;
mod hier;
mod redetect;
mod shard;

pub use bipartize::{
    bipartize, bipartize_with, bipartize_with_cache, brute_force_bipartize, tjoin_method_census,
    BipartizeMethod, BipartizeOutcome, CacheStats, MethodCensus, SharedSolveCache, SolveCache,
};
pub use correct::{
    apply_correction, plan_correction, CorrectionOptions, CorrectionPlan, CorrectionReport,
};
pub use detect::{
    detect_conflicts, detect_greedy, Conflict, ConflictSource, ConstraintKind, DetectConfig,
    DetectReport, DetectStats, GreedyKind,
};
pub use flow::{
    run_flow, FlowConfig, FlowError, FlowResult, FlowRound, RoundProvenance, StageProvenance,
};
pub use graphs::{
    build_conflict_graph, build_conflict_graph_par, build_feature_graph,
    build_phase_conflict_graph, planarize_graph, planarize_graph_par, ConflictGraph, GraphKind,
    GraphStats,
};
pub use hier::{detect_hier, HierDetectReport, HierDetectStats};
pub use redetect::{RedetectEngine, RedetectStats};
pub use shard::{
    build_conflict_graph_tiled, build_conflict_graph_tiled_stateful,
    build_conflict_graph_tiled_stateful_budgeted, TileBuildState, TileConfig, TileReuse,
};

pub use aapsm_fault::{
    Budget, BudgetExceeded, BudgetSpec, CancelToken, ExhaustReason, Stage as BudgetStage,
};
pub use aapsm_graph::PlanarizeOrder;
pub use aapsm_tjoin::{resolve_method, select_method, GadgetKind, TJoinMethod};
