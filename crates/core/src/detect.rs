//! The AAPSM conflict-detection pipeline (Sections 3 / 3.1 of the paper).

use crate::bipartize::{bipartize_optimal_budgeted, CacheActivity, CacheRef};
use crate::flow::StageProvenance;
use crate::graphs::{build_conflict_graph, EdgeConstraint, GraphKind};
use crate::{bipartize, BipartizeMethod};
use aapsm_fault::Budget;
use aapsm_graph::{EdgeId, ParityUnionFind, PlanarizeOrder};
use aapsm_layout::PhaseGeometry;
use aapsm_tjoin::TJoinMethod;
use std::time::{Duration, Instant};

/// The layout constraint selected for correction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ConstraintKind {
    /// A same-phase overlap constraint (index into
    /// [`PhaseGeometry::overlaps`]): correct by separating the pair.
    Overlap(usize),
    /// An opposite-phase flanking constraint (feature index): not
    /// correctable by spacing (feature widening / mask splitting bucket).
    Flank(usize),
    /// A degenerate same-feature contradiction (feature index).
    Direct(usize),
}

/// Which pipeline stage selected a conflict.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConflictSource {
    /// Selected by optimal bipartization (Step 2).
    Bipartization,
    /// A planarization victim confirmed by the Step-3 recheck.
    Planarization,
    /// Emitted directly during extraction (degenerate geometry).
    Degenerate,
}

/// One AAPSM conflict selected for correction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Conflict {
    /// The constraint to void.
    pub constraint: ConstraintKind,
    /// Its layout-impact weight.
    pub weight: i64,
    /// The stage that selected it.
    pub source: ConflictSource,
}

/// Pipeline configuration.
#[derive(Clone, Debug)]
pub struct DetectConfig {
    /// Which layout-to-graph reduction to use (PCG = the paper, FG = the
    /// prior-art baseline).
    pub graph: GraphKind,
    /// T-join / matching machinery for the optimal bipartization.
    pub tjoin: TJoinMethod,
    /// Planarization edge-removal policy.
    pub planarize_order: PlanarizeOrder,
    /// Decompose bipartization per biconnected block (ablation).
    pub blocks: bool,
    /// Worker threads for the whole pipeline — the tile-sharded
    /// conflict-graph build, the sharded crossing sweep feeding
    /// planarization, the per-component face trace / dual T-join
    /// extraction, and the bipartization solve: `0` = one per
    /// available CPU, `1` = serial (the default), `k` = at most `k`.
    /// Every setting produces bit-identical conflict sets; see
    /// [`crate::bipartize_with`], [`crate::build_conflict_graph_tiled`],
    /// [`aapsm_graph::crossing_pairs_par`] and
    /// [`aapsm_graph::trace_faces_par`].
    pub parallelism: usize,
    /// Work/deadline budget honored by [`crate::run_flow`] and the
    /// [`crate::RedetectEngine`] (charged by the tile build, face trace,
    /// matching and the Step-2 solve). The direct [`detect_conflicts`]
    /// entry point runs unbudgeted and ignores this field. Default:
    /// [`Budget::unlimited`].
    pub budget: Budget,
}

impl Default for DetectConfig {
    fn default() -> Self {
        DetectConfig {
            graph: GraphKind::PhaseConflict,
            tjoin: TJoinMethod::default(),
            planarize_order: PlanarizeOrder::MinWeightFirst,
            blocks: false,
            parallelism: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// Pipeline statistics (Table 1 instrumentation).
#[derive(Clone, Copy, Debug, Default)]
pub struct DetectStats {
    /// Conflict-graph nodes.
    pub graph_nodes: usize,
    /// Conflict-graph edges.
    pub graph_edges: usize,
    /// Straight-line crossings before planarization.
    pub crossings: usize,
    /// Edges removed by planarization (|P|).
    pub planarize_removed: usize,
    /// Conflicts selected by bipartization alone (the paper's NP column
    /// when run on the PCG).
    pub bipartize_conflicts: usize,
    /// Planarization victims confirmed as conflicts in Step 3.
    pub recheck_conflicts: usize,
    /// Wall time of graph construction + planarization.
    pub build_time: Duration,
    /// Wall time of the bipartization (dual + T-join + matching) — the
    /// paper's runtime comparison measures this stage.
    pub bipartize_time: Duration,
}

/// Detection outcome.
#[derive(Clone, Debug)]
pub struct DetectReport {
    /// The minimal conflict set, including degenerate direct conflicts.
    pub conflicts: Vec<Conflict>,
    /// Statistics.
    pub stats: DetectStats,
}

impl DetectReport {
    /// Number of conflicts selected (the paper's QoR metric).
    pub fn conflict_count(&self) -> usize {
        self.conflicts.len()
    }

    /// Total weight of the selected conflicts.
    pub fn total_weight(&self) -> i64 {
        self.conflicts.iter().map(|c| c.weight).sum()
    }
}

/// Runs the full detection pipeline on extracted phase geometry:
/// build graph → planarize → optimal bipartization → Step-3 recheck.
pub fn detect_conflicts(geom: &PhaseGeometry, config: &DetectConfig) -> DetectReport {
    let t0 = Instant::now();
    let mut cg = crate::graphs::build_conflict_graph_par(geom, config.graph, config.parallelism);
    // One sweep serves both the statistics and planarization.
    let crossings = aapsm_graph::crossing_pairs_par(&cg.graph, config.parallelism);
    finish_pipeline(
        geom,
        &mut cg,
        &crossings,
        config,
        t0,
        CacheRef::None,
        &Budget::unlimited(),
    )
    .0
}

/// The shared back half of the detection pipeline: planarize over a
/// precomputed crossing set, bipartize (optionally through a
/// [`crate::SolveCache`]), run the Step-3 recheck and assemble the
/// report. [`detect_conflicts`] and the incremental
/// [`crate::RedetectEngine`] both end here, so their reports cannot
/// diverge once graph and crossing set agree.
///
/// Infallible by design: a budget trip inside the optimal bipartization
/// *degrades* to the parity-greedy heuristic (still a valid conflict
/// set) and is reported through the returned [`StageProvenance`].
// Invariant, not an error path: G_p minus D is bipartite by construction.
#[allow(clippy::expect_used)]
pub(crate) fn finish_pipeline(
    geom: &PhaseGeometry,
    cg: &mut crate::ConflictGraph,
    crossings: &aapsm_graph::CrossingSet,
    config: &DetectConfig,
    t0: Instant,
    cache: CacheRef<'_>,
    budget: &Budget,
) -> (DetectReport, StageProvenance, CacheActivity) {
    let crossings_before = crossings.pairs.len();
    let graph_nodes = cg.graph.node_count();
    let graph_edges = cg.graph.alive_edge_count();
    let p_set =
        aapsm_graph::planarize_with_crossings(&mut cg.graph, config.planarize_order, crossings)
            .removed;
    let build_time = t0.elapsed();

    let t1 = Instant::now();
    let run = bipartize_optimal_budgeted(
        &cg.graph,
        config.tjoin,
        config.blocks,
        config.parallelism,
        budget,
        cache,
    );
    let outcome = run.outcome;
    let activity = run.activity;
    let provenance = match run.degraded {
        Some(e) => StageProvenance::Degraded(format!(
            "optimal bipartization fell back to parity-greedy: {e}"
        )),
        None => StageProvenance::Exact,
    };
    let bipartize_time = t1.elapsed();

    // Step 3: re-check the planarization victims against the coloring of
    // G_p - D using a parity union-find seeded with the surviving edges.
    let mut uf = ParityUnionFind::new(cg.graph.node_count());
    let deleted: std::collections::HashSet<EdgeId> = outcome.deleted.iter().copied().collect();
    for e in cg.graph.alive_edges() {
        if deleted.contains(&e) {
            continue;
        }
        let (u, v) = cg.graph.endpoints(e);
        uf.union(u.index(), v.index(), 1)
            .expect("G_p minus D is bipartite by construction");
    }
    // Heaviest first: expensive constraints are kept consistent, cheap
    // ones become the conflicts.
    let mut p_sorted = p_set.clone();
    p_sorted.sort_by_key(|&e| (std::cmp::Reverse(cg.graph.weight(e)), e.index()));
    let mut recheck_conflict_edges = Vec::new();
    for e in p_sorted {
        let (u, v) = cg.graph.endpoints(e);
        if uf.union(u.index(), v.index(), 1).is_err() {
            recheck_conflict_edges.push(e);
        }
    }

    // Map conflict edges to distinct constraints.
    let mut conflicts = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for d in &geom.direct_conflicts {
        if seen.insert(ConstraintKind::Direct(d.feature)) {
            conflicts.push(Conflict {
                constraint: ConstraintKind::Direct(d.feature),
                weight: d.weight,
                source: ConflictSource::Degenerate,
            });
        }
    }
    let push_edges = |edges: &[EdgeId],
                      source: ConflictSource,
                      conflicts: &mut Vec<Conflict>,
                      seen: &mut std::collections::HashSet<ConstraintKind>|
     -> usize {
        let mut added = 0;
        for &e in edges {
            let kind = match cg.constraint(e) {
                EdgeConstraint::Overlap(oi) => ConstraintKind::Overlap(oi),
                EdgeConstraint::Flank(fi) => ConstraintKind::Flank(fi),
            };
            if seen.insert(kind) {
                let weight = match kind {
                    ConstraintKind::Overlap(oi) => geom.overlaps[oi].weight,
                    ConstraintKind::Flank(_) => cg.flank_weight,
                    ConstraintKind::Direct(_) => unreachable!(),
                };
                conflicts.push(Conflict {
                    constraint: kind,
                    weight,
                    source,
                });
                added += 1;
            }
        }
        added
    };
    let bipartize_conflicts = push_edges(
        &outcome.deleted,
        ConflictSource::Bipartization,
        &mut conflicts,
        &mut seen,
    );
    let recheck_conflicts = push_edges(
        &recheck_conflict_edges,
        ConflictSource::Planarization,
        &mut conflicts,
        &mut seen,
    );

    (
        DetectReport {
            conflicts,
            stats: DetectStats {
                graph_nodes,
                graph_edges,
                crossings: crossings_before,
                planarize_removed: p_set.len(),
                bipartize_conflicts,
                recheck_conflicts,
                build_time,
                bipartize_time,
            },
        },
        provenance,
        activity,
    )
}

/// The greedy bipartization baselines (the paper's GB column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GreedyKind {
    /// Literal maximum-weight spanning forest (all leftover edges become
    /// conflicts).
    Spanning,
    /// Parity-aware greedy (only odd-cycle-closing edges).
    Parity,
}

/// Runs a greedy baseline directly on the (non-planarized) conflict graph
/// and reports the selected constraints.
pub fn detect_greedy(geom: &PhaseGeometry, graph: GraphKind, kind: GreedyKind) -> DetectReport {
    let t0 = Instant::now();
    let cg = build_conflict_graph(geom, graph);
    let method = match kind {
        GreedyKind::Spanning => BipartizeMethod::GreedySpanning,
        GreedyKind::Parity => BipartizeMethod::GreedyParity,
    };
    let outcome = bipartize(&cg.graph, method);
    let mut conflicts: Vec<Conflict> = geom
        .direct_conflicts
        .iter()
        .map(|d| Conflict {
            constraint: ConstraintKind::Direct(d.feature),
            weight: d.weight,
            source: ConflictSource::Degenerate,
        })
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &e in &outcome.deleted {
        let kind = match cg.constraint(e) {
            EdgeConstraint::Overlap(oi) => ConstraintKind::Overlap(oi),
            EdgeConstraint::Flank(fi) => ConstraintKind::Flank(fi),
        };
        if seen.insert(kind) {
            let weight = match kind {
                ConstraintKind::Overlap(oi) => geom.overlaps[oi].weight,
                ConstraintKind::Flank(_) => cg.flank_weight,
                ConstraintKind::Direct(_) => unreachable!(),
            };
            conflicts.push(Conflict {
                constraint: kind,
                weight,
                source: ConflictSource::Bipartization,
            });
        }
    }
    let n = conflicts.len();
    DetectReport {
        conflicts,
        stats: DetectStats {
            graph_nodes: cg.graph.node_count(),
            graph_edges: cg.graph.alive_edge_count(),
            bipartize_conflicts: n,
            build_time: t0.elapsed(),
            ..DetectStats::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_layout::{check_assignable, extract_phase_geometry, fixtures, DesignRules};

    fn detect_fixture(l: &aapsm_layout::Layout) -> (PhaseGeometry, DetectReport) {
        let r = DesignRules::default();
        let geom = extract_phase_geometry(l, &r);
        let report = detect_conflicts(&geom, &DetectConfig::default());
        (geom, report)
    }

    #[test]
    fn assignable_layouts_have_no_conflicts() {
        let r = DesignRules::default();
        for l in [
            fixtures::single_wire(&r),
            fixtures::wire_row(8, 600),
            fixtures::benign_block(&r),
        ] {
            let (_, report) = detect_fixture(&l);
            assert_eq!(report.conflict_count(), 0);
        }
    }

    #[test]
    fn gate_over_strap_selects_exactly_one_overlap() {
        let r = DesignRules::default();
        let (geom, report) = detect_fixture(&fixtures::gate_over_strap(&r));
        assert_eq!(report.conflict_count(), 1);
        let c = report.conflicts[0];
        assert!(matches!(c.constraint, ConstraintKind::Overlap(_)));
        // Voiding the selected overlap restores assignability.
        let ConstraintKind::Overlap(oi) = c.constraint else {
            unreachable!()
        };
        let mut voided = geom.clone();
        voided.overlaps.remove(oi);
        assert!(check_assignable(&voided).is_ok());
    }

    #[test]
    fn conflict_removal_always_restores_assignability() {
        // The defining guarantee of the detection flow, on every fixture
        // and a synthetic design.
        let r = DesignRules::default();
        let mut layouts = vec![
            fixtures::gate_over_strap(&r),
            fixtures::stacked_jog(&r),
            fixtures::short_middle_wire(&r),
            fixtures::strap_under_bus(6, &r),
        ];
        layouts.push(aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams::default(),
            &r,
        ));
        for (i, l) in layouts.iter().enumerate() {
            let (geom, report) = detect_fixture(l);
            assert!(report.conflict_count() > 0, "layout {i} should conflict");
            let mut voided = geom.clone();
            let mut drop_overlaps: Vec<usize> = report
                .conflicts
                .iter()
                .filter_map(|c| match c.constraint {
                    ConstraintKind::Overlap(oi) => Some(oi),
                    _ => None,
                })
                .collect();
            assert_eq!(
                drop_overlaps.len(),
                report.conflict_count(),
                "layout {i}: all conflicts should be spacing-correctable overlaps"
            );
            drop_overlaps.sort_unstable_by(|a, b| b.cmp(a));
            for oi in drop_overlaps {
                voided.overlaps.remove(oi);
            }
            assert!(
                check_assignable(&voided).is_ok(),
                "layout {i}: voiding the conflict set must make the layout assignable"
            );
        }
    }

    #[test]
    fn strap_under_bus_needs_one_conflict_per_wire() {
        let r = DesignRules::default();
        let (_, report) = detect_fixture(&fixtures::strap_under_bus(6, &r));
        assert_eq!(report.conflict_count(), 6);
    }

    #[test]
    fn all_tjoin_methods_agree_on_conflict_weight() {
        let r = DesignRules::default();
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 2,
                gates_per_row: 30,
                strap_frac: 0.8,
                ..Default::default()
            },
            &r,
        );
        let geom = extract_phase_geometry(&l, &r);
        let weights: Vec<i64> = [
            TJoinMethod::Gadget(aapsm_tjoin::GadgetKind::Complete),
            TJoinMethod::Gadget(aapsm_tjoin::GadgetKind::Optimized),
            TJoinMethod::Gadget(aapsm_tjoin::GadgetKind::default()),
            TJoinMethod::ShortestPath,
            TJoinMethod::Auto,
        ]
        .into_iter()
        .map(|tj| {
            let report = detect_conflicts(
                &geom,
                &DetectConfig {
                    tjoin: tj,
                    ..DetectConfig::default()
                },
            );
            report
                .conflicts
                .iter()
                .filter(|c| c.source == ConflictSource::Bipartization)
                .map(|c| c.weight)
                .sum()
        })
        .collect();
        assert!(weights.windows(2).all(|w| w[0] == w[1]), "{weights:?}");
    }

    #[test]
    fn pcg_selects_no_more_conflicts_than_fg() {
        // The paper's headline QoR claim (Table 1): NP <= PCG <= FG. The
        // PCG/FG comparison rides on greedy planarization, so single-seed
        // single-conflict flips are possible; the aggregate must hold.
        let r = DesignRules::default();
        let mut pcg_total = 0usize;
        let mut fg_total = 0usize;
        for seed in [1u64, 7, 42] {
            let l = aapsm_layout::synth::generate(
                &aapsm_layout::synth::SynthParams {
                    rows: 3,
                    gates_per_row: 40,
                    strap_frac: 0.6,
                    jog_frac: 0.06,
                    short_mid_frac: 0.05,
                    seed,
                    ..Default::default()
                },
                &r,
            );
            let geom = extract_phase_geometry(&l, &r);
            let pcg = detect_conflicts(&geom, &DetectConfig::default());
            let fg = detect_conflicts(
                &geom,
                &DetectConfig {
                    graph: GraphKind::Feature,
                    ..DetectConfig::default()
                },
            );
            let np = pcg.stats.bipartize_conflicts + geom.direct_conflicts.len();
            assert!(
                np <= pcg.conflict_count(),
                "seed {seed}: NP {np} vs PCG {}",
                pcg.conflict_count()
            );
            pcg_total += pcg.conflict_count();
            fg_total += fg.conflict_count();
        }
        assert!(
            pcg_total <= fg_total,
            "aggregate PCG {pcg_total} must not exceed FG {fg_total}"
        );
    }

    #[test]
    fn greedy_baselines_select_more() {
        let r = DesignRules::default();
        let l = aapsm_layout::synth::generate(&aapsm_layout::synth::SynthParams::default(), &r);
        let geom = extract_phase_geometry(&l, &r);
        let pcg = detect_conflicts(&geom, &DetectConfig::default());
        let gb = detect_greedy(&geom, GraphKind::PhaseConflict, GreedyKind::Spanning);
        let gp = detect_greedy(&geom, GraphKind::PhaseConflict, GreedyKind::Parity);
        assert!(gb.conflict_count() > pcg.conflict_count());
        assert!(gp.conflict_count() >= pcg.conflict_count());
        assert!(gb.conflict_count() >= gp.conflict_count());
    }
}
