//! Conflict-graph construction: the paper's phase conflict graph and the
//! prior-art feature graph, over one shared representation.

use aapsm_graph::{crossing_pairs, planarize, EdgeId, EmbeddedGraph, PlanarizeOrder};
use aapsm_layout::PhaseGeometry;

/// Which layout-to-graph reduction to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum GraphKind {
    /// The paper's phase conflict graph (Section 3.1.1).
    #[default]
    PhaseConflict,
    /// The feature graph of Kahng et al. \[6\] (reconstruction; see
    /// DESIGN.md #4). Colors are side-transformed phases, so flanking and
    /// same-side overlaps become 2-paths through feature/conflict nodes
    /// (the geometric detours the paper criticizes) and opposite-side
    /// overlaps become direct edges.
    Feature,
}

/// The layout constraint a conflict-graph edge encodes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EdgeConstraint {
    /// Opposite-phase constraint of a critical feature (by feature index).
    Flank(usize),
    /// Same-phase constraint of an overlapping shifter pair (by index into
    /// [`PhaseGeometry::overlaps`]).
    Overlap(usize),
}

/// A conflict graph: the embedded graph plus the constraint each edge
/// represents.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConflictGraph {
    /// The embedded multigraph (positions in layout dbu).
    pub graph: EmbeddedGraph,
    /// Which reduction built it.
    pub kind: GraphKind,
    /// Constraint per edge id.
    pub edge_constraint: Vec<EdgeConstraint>,
    /// Effectively-infinite weight used for flanking edges (larger than
    /// any possible sum of overlap weights, so optimal bipartization never
    /// deletes a flank if any alternative exists).
    pub flank_weight: i64,
}

/// Size/crossing statistics of a conflict graph (Figure 2 reproduction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Edge count.
    pub edges: usize,
    /// Straight-line crossing pairs in the natural embedding.
    pub crossings: usize,
}

impl ConflictGraph {
    /// The constraint behind an edge.
    pub fn constraint(&self, e: EdgeId) -> EdgeConstraint {
        self.edge_constraint[e.index()]
    }

    /// Whether the edge carries the effectively-infinite flank weight.
    pub fn is_flank(&self, e: EdgeId) -> bool {
        matches!(self.constraint(e), EdgeConstraint::Flank(_))
    }

    /// Node/edge/crossing statistics of the current (alive) graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats {
            nodes: self.graph.node_count(),
            edges: self.graph.alive_edge_count(),
            crossings: crossing_pairs(&self.graph).pairs.len(),
        }
    }
}

/// Floor for the flank weight: far above any realistic chip's total
/// overlap weight (rows_x64 sums to ~4×10⁷, five decades under this),
/// yet small enough that hundreds of millions of flank edges stay inside
/// `i64` totals.
pub(crate) const FLANK_WEIGHT_FLOOR: i64 = 1 << 32;

pub(crate) fn flank_weight_for(geom: &PhaseGeometry) -> i64 {
    // The dominance requirement is only `> sum of overlap weights`; any
    // dominating value yields the same optimal T-join (the solution order
    // is lexicographic in (flank count, overlap weight) once flanks
    // dominate), so the exact figure is free to choose for stability.
    // Bucketing the sum to a power of two alone was not stable enough: a
    // correction round nudging the sum across a bucket boundary flipped
    // every component's flank edge weight, which is part of the solve
    // cache key, and every component missed (the rows_x64 steady-state
    // `solve_misses: 13`). The floor pins the weight to one constant for
    // every realistic chip — and, equally, makes a cell primed in
    // isolation hash identically to its in-chip placements, which is what
    // lets `detect_hier` reuse per-cell results. The power-of-two ramp
    // only engages past the floor, where dominance must still hold.
    let sum = geom.overlaps.iter().map(|o| o.weight).sum::<i64>();
    ((sum as u64 + 1).next_power_of_two() as i64).max(FLANK_WEIGHT_FLOOR)
}

/// Builds the requested conflict graph.
pub fn build_conflict_graph(geom: &PhaseGeometry, kind: GraphKind) -> ConflictGraph {
    match kind {
        GraphKind::PhaseConflict => build_phase_conflict_graph(geom),
        GraphKind::Feature => build_feature_graph(geom),
    }
}

/// [`build_conflict_graph`] with an explicit parallelism degree: when the
/// resolved worker count is 1 (including `parallelism = 0` on a
/// single-core machine) or the constraint set is tiny, the serial
/// builders run directly — tiling buys nothing without a second worker or
/// enough work to amortize thread spawn — otherwise the build routes
/// through the tile-sharded pipeline
/// ([`crate::build_conflict_graph_tiled`]). Both paths produce
/// bit-identical graphs.
pub fn build_conflict_graph_par(
    geom: &PhaseGeometry,
    kind: GraphKind,
    parallelism: usize,
) -> ConflictGraph {
    /// Minimum constraints (overlaps + flanks) before auto parallelism
    /// routes through tiling; mirrors the bipartize stage's serial
    /// fallback. An explicit degree is honored.
    const SERIAL_FALLBACK_CONSTRAINTS: usize = 2048;
    let constraints = geom.overlaps.len() + geom.critical_count();
    if aapsm_geom::resolve_workers(parallelism) <= 1
        || (parallelism == 0 && constraints < SERIAL_FALLBACK_CONSTRAINTS)
    {
        build_conflict_graph(geom, kind)
    } else {
        crate::shard::build_conflict_graph_tiled(
            geom,
            kind,
            &crate::shard::TileConfig::for_parallelism(parallelism),
        )
    }
}

/// Builds the paper's phase conflict graph.
///
/// * one *edge shifter node* per shifter, at the shifter center;
/// * per overlap pair, an *overlap node* at the midpoint of the straight
///   segment between the two shifter nodes, plus the two half edges (each
///   carrying the full constraint weight — deleting either half removes
///   the same-phase constraint);
/// * per critical feature, a direct flank edge between its two shifter
///   nodes with effectively-infinite weight.
///
/// The graph is bipartite iff the layout is phase-assignable (colors are
/// phases; a 2-path forces equality, a direct edge inequality).
pub fn build_phase_conflict_graph(geom: &PhaseGeometry) -> ConflictGraph {
    let mut graph = EmbeddedGraph::new();
    let edges = 2 * geom.overlaps.len() + geom.critical_count();
    graph.reserve(geom.shifters.len() + geom.overlaps.len(), edges);
    let mut edge_constraint = Vec::with_capacity(edges);
    let flank_weight = flank_weight_for(geom);

    let shifter_nodes: Vec<_> = geom
        .shifters
        .iter()
        .map(|s| graph.add_node(s.rect.center()))
        .collect();
    for (oi, o) in geom.overlaps.iter().enumerate() {
        let (na, nb) = (shifter_nodes[o.a], shifter_nodes[o.b]);
        let mid = graph.pos(na).midpoint(graph.pos(nb));
        let on = graph.add_node(mid);
        graph.add_edge(na, on, o.weight);
        edge_constraint.push(EdgeConstraint::Overlap(oi));
        graph.add_edge(on, nb, o.weight);
        edge_constraint.push(EdgeConstraint::Overlap(oi));
    }
    for (fi, f) in geom.features.iter().enumerate() {
        if let Some((lo, hi)) = f.shifters {
            graph.add_edge(shifter_nodes[lo], shifter_nodes[hi], flank_weight);
            edge_constraint.push(EdgeConstraint::Flank(fi));
        }
    }
    graph.nudge_duplicate_positions();
    ConflictGraph {
        graph,
        kind: GraphKind::PhaseConflict,
        edge_constraint,
        flank_weight,
    }
}

/// Builds the reconstructed feature graph of \[6\].
///
/// Colors are *side-transformed* phases (`color = phase XOR side`), so:
///
/// * the flanking constraint becomes an **equality** ⇒ a 2-path through a
///   *feature node* at the feature center;
/// * a same-side overlap becomes an equality ⇒ a 2-path through a
///   *conflict node* at the **overlap-region center** (the geometric
///   detour);
/// * an opposite-side overlap becomes an inequality ⇒ a direct edge.
///
/// Bipartite iff phase-assignable, with more nodes, more edges and more
/// crossings than the phase conflict graph — exactly the comparison the
/// paper draws in Figure 2 / Table 1.
pub fn build_feature_graph(geom: &PhaseGeometry) -> ConflictGraph {
    let mut graph = EmbeddedGraph::new();
    graph.reserve(
        geom.shifters.len() + geom.critical_count(),
        2 * geom.critical_count() + 2 * geom.overlaps.len(),
    );
    let mut edge_constraint =
        Vec::with_capacity(2 * geom.critical_count() + 2 * geom.overlaps.len());
    let flank_weight = flank_weight_for(geom);

    let shifter_nodes: Vec<_> = geom
        .shifters
        .iter()
        .map(|s| graph.add_node(s.rect.center()))
        .collect();
    for (fi, f) in geom.features.iter().enumerate() {
        if let Some((lo, hi)) = f.shifters {
            let fnode = graph.add_node(f.rect.center());
            graph.add_edge(shifter_nodes[lo], fnode, flank_weight);
            edge_constraint.push(EdgeConstraint::Flank(fi));
            graph.add_edge(fnode, shifter_nodes[hi], flank_weight);
            edge_constraint.push(EdgeConstraint::Flank(fi));
        }
    }
    for (oi, o) in geom.overlaps.iter().enumerate() {
        let (sa, sb) = (&geom.shifters[o.a], &geom.shifters[o.b]);
        let (na, nb) = (shifter_nodes[o.a], shifter_nodes[o.b]);
        if sa.side == sb.side {
            // Same side: equality under the transform — detour through the
            // overlap-region center.
            let c = graph.add_node(sa.rect.overlap_region_center(&sb.rect));
            graph.add_edge(na, c, o.weight);
            edge_constraint.push(EdgeConstraint::Overlap(oi));
            graph.add_edge(c, nb, o.weight);
            edge_constraint.push(EdgeConstraint::Overlap(oi));
        } else {
            graph.add_edge(na, nb, o.weight);
            edge_constraint.push(EdgeConstraint::Overlap(oi));
        }
    }
    graph.nudge_duplicate_positions();
    ConflictGraph {
        graph,
        kind: GraphKind::Feature,
        edge_constraint,
        flank_weight,
    }
}

/// Planarizes a conflict graph in place (Step 1(b) of the flow), returning
/// the removed edges — the potential conflict set *P*.
pub fn planarize_graph(cg: &mut ConflictGraph, order: PlanarizeOrder) -> Vec<EdgeId> {
    planarize(&mut cg.graph, order).removed
}

/// [`planarize_graph`] with an explicit parallelism degree for the
/// initial crossing sweep; bit-identical at every degree.
pub fn planarize_graph_par(
    cg: &mut ConflictGraph,
    order: PlanarizeOrder,
    parallelism: usize,
) -> Vec<EdgeId> {
    aapsm_graph::planarize_par(&mut cg.graph, order, parallelism).removed
}

#[cfg(test)]
mod tests {
    use super::*;
    use aapsm_graph::two_color;
    use aapsm_layout::{check_assignable, extract_phase_geometry, fixtures, DesignRules};

    fn geoms() -> Vec<(&'static str, PhaseGeometry)> {
        let r = DesignRules::default();
        let mut out = vec![
            (
                "single",
                extract_phase_geometry(&fixtures::single_wire(&r), &r),
            ),
            (
                "row",
                extract_phase_geometry(&fixtures::wire_row(6, 600), &r),
            ),
            (
                "gate_over_strap",
                extract_phase_geometry(&fixtures::gate_over_strap(&r), &r),
            ),
            (
                "jog",
                extract_phase_geometry(&fixtures::stacked_jog(&r), &r),
            ),
            (
                "short_middle",
                extract_phase_geometry(&fixtures::short_middle_wire(&r), &r),
            ),
            (
                "bus",
                extract_phase_geometry(&fixtures::strap_under_bus(4, &r), &r),
            ),
        ];
        // A synthetic block for breadth.
        let l = aapsm_layout::synth::generate(
            &aapsm_layout::synth::SynthParams {
                rows: 2,
                gates_per_row: 40,
                ..Default::default()
            },
            &r,
        );
        out.push(("synth", extract_phase_geometry(&l, &r)));
        out
    }

    #[test]
    fn both_graphs_bipartite_iff_assignable() {
        for (name, geom) in geoms() {
            let assignable = check_assignable(&geom).is_ok();
            for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
                let cg = build_conflict_graph(&geom, kind);
                assert_eq!(
                    two_color(&cg.graph).is_ok(),
                    assignable,
                    "{name} {kind:?}: graph bipartiteness must match assignability"
                );
            }
        }
    }

    #[test]
    fn pcg_is_usually_smaller_and_never_crosses_more_than_fg() {
        // The paper: "In most examples, the phase conflict graph also has
        // a smaller number of nodes and edges than the feature graph" —
        // "most", not "all" (opposite-side overlaps are single FG edges).
        // The crossing advantage, the claim that actually drives QoR, must
        // hold throughout.
        let mut smaller = 0usize;
        let mut total = 0usize;
        for (name, geom) in geoms() {
            if geom.overlaps.is_empty() {
                continue;
            }
            let pcg = build_phase_conflict_graph(&geom).stats();
            let fg = build_feature_graph(&geom).stats();
            assert!(
                pcg.crossings <= fg.crossings,
                "{name}: PCG must not cross more: {pcg:?} vs {fg:?}"
            );
            total += 1;
            if pcg.nodes <= fg.nodes && pcg.edges <= fg.edges {
                smaller += 1;
            }
        }
        assert!(
            smaller * 2 > total,
            "PCG smaller in only {smaller}/{total} examples"
        );
    }

    #[test]
    fn pcg_edge_count_formula() {
        // |E| = 2 * overlaps + criticals; |V| = shifters + overlaps.
        for (_, geom) in geoms() {
            let cg = build_phase_conflict_graph(&geom);
            assert_eq!(
                cg.graph.alive_edge_count(),
                2 * geom.overlaps.len() + geom.critical_count()
            );
            assert_eq!(
                cg.graph.node_count(),
                geom.shifters.len() + geom.overlaps.len()
            );
        }
    }

    #[test]
    fn flank_edges_dominate_all_overlap_weight() {
        for (_, geom) in geoms() {
            let cg = build_phase_conflict_graph(&geom);
            let total_overlap: i64 = geom.overlaps.iter().map(|o| o.weight).sum();
            assert!(cg.flank_weight > total_overlap);
        }
    }

    #[test]
    fn planarization_leaves_plane_graph() {
        for (name, geom) in geoms() {
            for kind in [GraphKind::PhaseConflict, GraphKind::Feature] {
                let mut cg = build_conflict_graph(&geom, kind);
                let removed = planarize_graph(&mut cg, PlanarizeOrder::MinWeightFirst);
                assert!(
                    crossing_pairs(&cg.graph).is_planar(),
                    "{name} {kind:?} still has crossings"
                );
                for e in removed {
                    assert!(!cg.graph.is_alive(e));
                }
            }
        }
    }

    #[test]
    fn overlap_halves_share_constraint() {
        let r = DesignRules::default();
        let geom = extract_phase_geometry(&fixtures::wire_row(3, 600), &r);
        let cg = build_phase_conflict_graph(&geom);
        for (oi, _) in geom.overlaps.iter().enumerate() {
            let halves: Vec<_> = cg
                .graph
                .all_edges()
                .filter(|&e| cg.constraint(e) == EdgeConstraint::Overlap(oi))
                .collect();
            assert_eq!(halves.len(), 2);
        }
    }
}
