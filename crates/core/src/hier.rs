//! Hierarchical detection: detect once per unique cell, reuse per placement.
//!
//! [`detect_hier`] runs the full Step-1/Step-2 pipeline over a
//! [`HierLayout`] without giving up bit-identity with the flat pipeline:
//! the conflict set it reports is exactly
//! `detect_conflicts(&hier.flatten()?, rules, config)`, at any
//! [`DetectConfig::parallelism`] setting. What the hierarchy buys is
//! *solve reuse*, not a different answer.
//!
//! The mechanism piggybacks on two existing invariants:
//!
//! - **Stitch is partition-agnostic** (invariant 5 in [`crate::shard`]):
//!   building the conflict graph with one tile per top-level instance —
//!   invariant 9, *a placed instance is a tile* — yields the same graph
//!   as any geometric sharding, so instance-boundary interactions are
//!   resolved by the ordinary core+halo stitch.
//! - **Solve-cache keys are coordinate-free** ([`SolveCache`]): a
//!   bipartization component is keyed by its local structure (T-vector +
//!   reindexed weighted edges), so a component interior to a cell hashes
//!   identically wherever — and however often — the cell is placed.
//!
//! So the driver first *primes* an owned [`SolveCache`] by detecting each
//! unique `(cell, orientation)` class once in isolation (translations
//! share a class; the eight [`Orient`]s do not, because rotation changes
//! which feature pairs interact; classes placed only once are skipped —
//! there is nothing to reuse), then runs the flat pipeline over the
//! flattened layout with that cache attached. Components interior to an
//! instance hit the primed entries; components that straddle instance
//! boundaries miss and are solved fresh. Both paths return the same
//! solution the uncached solver would (cached results are bit-identical
//! by construction), so correctness never depends on the hit pattern —
//! only wall-clock does.
//!
//! Like [`detect_conflicts`], this entry point runs unbudgeted; route
//! hierarchical workloads through [`crate::run_flow`] for deadline
//! control (flatten first — the flow engine is flat-only today).

use std::collections::BTreeMap;
use std::time::Instant;

use aapsm_fault::Budget;
use aapsm_layout::{
    extract_phase_geometry_par, DesignRules, HierLayout, LayoutError, Orient, Placement,
};

use crate::bipartize::{CacheRef, SolveCache};
use crate::detect::{finish_pipeline, DetectConfig, DetectReport};
use crate::graphs::flank_weight_for;
use crate::shard::{build_conflict_graph_grouped, build_conflict_graph_with_flank};

/// Reuse accounting for one [`detect_hier`] run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct HierDetectStats {
    /// Unique `(cell, orientation)` classes detected in isolation to
    /// prime the solve cache. Classes placed only once and classes whose
    /// master flattens to no shifters are skipped (nothing to reuse,
    /// nothing to prime).
    pub cells_detected: usize,
    /// Placed-cell occurrences in the flattened hierarchy (all depths).
    pub instances_total: usize,
    /// Bipartization components of the full-chip pass answered from the
    /// primed cache — the work the hierarchy saved.
    pub instances_reused: usize,
    /// Components of the full-chip pass that missed the cache and were
    /// solved fresh: instance-boundary interactions, plus the top cell's
    /// own geometry. On an all-interior layout this is near zero.
    pub solve_misses: usize,
}

/// A [`DetectReport`] plus the per-cell reuse accounting.
#[derive(Clone, Debug)]
pub struct HierDetectReport {
    /// The flat-identical detection result.
    pub report: DetectReport,
    /// How much of it was answered per-cell.
    pub hier: HierDetectStats,
}

/// Detect phase conflicts in a hierarchical layout, reusing per-cell
/// results across placements.
///
/// Bit-identical to flattening first: for every valid `hier` and every
/// `config.parallelism`,
/// `detect_hier(&hier, rules, config)?.report.conflicts` equals
/// `detect_conflicts(&hier.flatten()?, rules, config).conflicts`
/// (property-tested in `tests/hier_equivalence.rs`).
///
/// Errors are the structural ones surfaced by
/// [`HierLayout::flatten_with_placements`]: unknown cells, reference
/// cycles, out-of-range placements, oversized expansions.
pub fn detect_hier(
    hier: &HierLayout,
    rules: &DesignRules,
    config: &DetectConfig,
) -> Result<HierDetectReport, LayoutError> {
    let (flat, occurrences) = hier.flatten_with_placements()?;
    let geom = extract_phase_geometry_par(&flat, rules, config.parallelism);
    // One flank weight for the whole run: the priming masters and the
    // full chip must bucket identically or no key would ever match.
    // `flank_weight_for` floors at `FLANK_WEIGHT_FLOOR`, which already
    // dominates any cell-sized overlap sum, so using the chip-wide
    // weight for the isolated masters changes nothing about their
    // optima — only their cache keys, which is the point.
    let flank_weight = flank_weight_for(&geom);

    // ---- Prime: one detection per unique (cell, orientation) class. ----
    // A class placed once gains nothing from priming — the main pass
    // would solve its components exactly once either way — so only
    // classes with at least two occurrences are worth a master run.
    let mut class_counts: BTreeMap<(usize, Orient), usize> = BTreeMap::new();
    for occ in &occurrences {
        *class_counts
            .entry((occ.cell, occ.placement.orient))
            .or_insert(0) += 1;
    }
    let classes: Vec<(usize, Orient)> = class_counts
        .into_iter()
        .filter_map(|(class, count)| (count >= 2).then_some(class))
        .collect();
    let mut cache = SolveCache::with_capacity(1 << 14);
    let mut cells_detected = 0usize;
    for &(cell, orient) in &classes {
        let master = hier.flatten_cell(
            cell,
            &Placement {
                orient,
                delta: aapsm_geom::Point::new(0, 0),
            },
        )?;
        let master_geom = extract_phase_geometry_par(&master, rules, config.parallelism);
        if master_geom.shifters.is_empty() {
            continue;
        }
        let t0 = Instant::now();
        let mut cg = build_conflict_graph_with_flank(&master_geom, config.graph, flank_weight);
        let crossings = aapsm_graph::crossing_pairs_par(&cg.graph, config.parallelism);
        // The master's report is discarded; this call exists to leave
        // every interior component's solution in `cache`.
        let _ = finish_pipeline(
            &master_geom,
            &mut cg,
            &crossings,
            config,
            t0,
            CacheRef::Owned(&mut cache),
            &Budget::unlimited(),
        );
        cells_detected += 1;
    }

    // ---- Full chip: instance-as-tile build, primed cache attached. ----
    // Group 0 is the top cell's own geometry; group j+1 is the j-th
    // depth-1 occurrence's flat-rect span (deeper occurrences are nested
    // inside their depth-1 ancestor's span). Feature index == flat rect
    // index, so the spans translate directly to feature ownership.
    let top_level: Vec<&aapsm_layout::PlacedCell> =
        occurrences.iter().filter(|occ| occ.depth == 1).collect();
    let mut owner_of_feature = vec![0u32; geom.features.len()];
    for (j, occ) in top_level.iter().enumerate() {
        let end = occ.rect_end.min(owner_of_feature.len());
        for slot in &mut owner_of_feature[occ.rect_start..end] {
            *slot = j as u32 + 1;
        }
    }
    let t0 = Instant::now();
    let mut cg = build_conflict_graph_grouped(
        &geom,
        config.graph,
        &owner_of_feature,
        top_level.len() + 1,
        config.parallelism,
    );
    let crossings = aapsm_graph::crossing_pairs_par(&cg.graph, config.parallelism);
    let (report, _provenance, activity) = finish_pipeline(
        &geom,
        &mut cg,
        &crossings,
        config,
        t0,
        CacheRef::Owned(&mut cache),
        &Budget::unlimited(),
    );

    Ok(HierDetectReport {
        report,
        hier: HierDetectStats {
            cells_detected,
            instances_total: occurrences.len(),
            instances_reused: activity.hits,
            solve_misses: activity.misses,
        },
    })
}
