//! Property-based tests of the set-cover solvers.

use aapsm_cover::{
    solve_decomposed, solve_exact, solve_greedy, CoverInstance, DecomposeOptions, ExactOptions,
};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = CoverInstance> {
    (1usize..10).prop_flat_map(|n| {
        proptest::collection::vec((1i64..50, proptest::collection::vec(0..n, 1..=n)), 1..9)
            .prop_map(move |sets| CoverInstance::new(n, sets))
    })
}

/// A wider instance shape that actually decomposes: elements are spread
/// over disjoint blocks, so the incidence splits into several components.
fn blocky_instance() -> impl Strategy<Value = CoverInstance> {
    (2usize..5, 1usize..4).prop_flat_map(|(blocks, block_elems)| {
        let n = blocks * block_elems;
        proptest::collection::vec(
            (
                1i64..50,
                0..blocks,
                proptest::collection::vec(0..block_elems, 1..=block_elems),
            ),
            1..12,
        )
        .prop_map(move |sets| {
            CoverInstance::new(
                n,
                sets.into_iter()
                    .map(|(w, b, elems)| {
                        (w, elems.into_iter().map(|e| b * block_elems + e).collect())
                    })
                    .collect(),
            )
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact never exceeds greedy; both feasible when the instance is
    /// coverable; a default-budget search on these tiny instances always
    /// completes (proven).
    #[test]
    fn exact_at_most_greedy(inst in instance()) {
        let greedy = solve_greedy(&inst);
        match solve_exact(&inst, &ExactOptions::default()) {
            Some(out) => {
                prop_assert!(inst.is_coverable());
                prop_assert!(out.proven);
                prop_assert!(out.solution.is_feasible(&inst));
                prop_assert!(greedy.is_feasible(&inst));
                prop_assert!(out.solution.weight <= greedy.weight);
            }
            None => prop_assert!(!inst.is_coverable()),
        }
    }

    /// Adding a set never worsens the exact optimum.
    #[test]
    fn monotone_in_sets(inst in instance(), w in 1i64..50) {
        let Some(base) = solve_exact(&inst, &ExactOptions::default()) else {
            return Ok(());
        };
        let mut sets: Vec<(i64, Vec<usize>)> = (0..inst.set_count())
            .map(|s| (inst.weight(s), inst.elements(s).to_vec()))
            .collect();
        sets.push((w, (0..inst.universe_size()).collect()));
        let bigger = CoverInstance::new(inst.universe_size(), sets);
        let better = solve_exact(&bigger, &ExactOptions::default()).unwrap();
        prop_assert!(better.solution.weight <= base.solution.weight.min(w));
    }

    /// Doubling every weight doubles the exact optimum.
    #[test]
    fn weight_scaling(inst in instance()) {
        let Some(base) = solve_exact(&inst, &ExactOptions::default()) else {
            return Ok(());
        };
        let sets: Vec<(i64, Vec<usize>)> = (0..inst.set_count())
            .map(|s| (inst.weight(s) * 2, inst.elements(s).to_vec()))
            .collect();
        let doubled = CoverInstance::new(inst.universe_size(), sets);
        let solved = solve_exact(&doubled, &ExactOptions::default()).unwrap();
        prop_assert_eq!(solved.solution.weight, base.solution.weight * 2);
    }

    /// The component-decomposed cover equals the monolithic exact optimum
    /// on coverable instances (the decompose-then-solve oracle), and is
    /// bit-identical across every parallelism degree.
    #[test]
    fn decomposed_matches_monolithic_and_parallelism(inst in blocky_instance()) {
        let base = solve_decomposed(&inst, &DecomposeOptions::default());
        for parallelism in [0usize, 2, 4] {
            let out = solve_decomposed(&inst, &DecomposeOptions {
                parallelism,
                ..DecomposeOptions::default()
            });
            prop_assert_eq!(&out, &base, "parallelism {} diverged", parallelism);
        }
        match solve_exact(&inst, &ExactOptions::default()) {
            Some(mono) => {
                prop_assert!(inst.is_coverable());
                prop_assert!(base.optimal);
                prop_assert_eq!(base.optimal_components, base.components);
                prop_assert!(base.solution.is_feasible(&inst));
                prop_assert_eq!(base.solution.weight, mono.solution.weight);
            }
            None => prop_assert!(!base.optimal),
        }
    }

    /// A starved per-component node budget still returns a feasible cover
    /// but never claims optimality (truncation truth-telling).
    #[test]
    fn starved_budget_is_feasible_but_unproven(inst in blocky_instance()) {
        let out = solve_decomposed(&inst, &DecomposeOptions {
            node_limit_per_component: 1,
            ..DecomposeOptions::default()
        });
        let full = solve_decomposed(&inst, &DecomposeOptions::default());
        prop_assert!(full.solution.weight <= out.solution.weight);
        if inst.is_coverable() {
            prop_assert!(out.solution.is_feasible(&inst));
            // Multi-set components truncate at one node; only single-set
            // components stay proven, so "all proven" implies the covers
            // agree anyway.
            if out.optimal {
                prop_assert_eq!(&out.solution, &full.solution);
            }
        } else {
            prop_assert!(!out.optimal);
        }
    }
}
