//! Property-based tests of the set-cover solvers.

use aapsm_cover::{solve_exact, solve_greedy, CoverInstance, ExactOptions};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = CoverInstance> {
    (1usize..10).prop_flat_map(|n| {
        proptest::collection::vec((1i64..50, proptest::collection::vec(0..n, 1..=n)), 1..9)
            .prop_map(move |sets| CoverInstance::new(n, sets))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Exact never exceeds greedy; both feasible when the instance is
    /// coverable.
    #[test]
    fn exact_at_most_greedy(inst in instance()) {
        let greedy = solve_greedy(&inst);
        match solve_exact(&inst, &ExactOptions::default()) {
            Some(exact) => {
                prop_assert!(inst.is_coverable());
                prop_assert!(exact.is_feasible(&inst));
                prop_assert!(greedy.is_feasible(&inst));
                prop_assert!(exact.weight <= greedy.weight);
            }
            None => prop_assert!(!inst.is_coverable()),
        }
    }

    /// Adding a set never worsens the exact optimum.
    #[test]
    fn monotone_in_sets(inst in instance(), w in 1i64..50) {
        let Some(base) = solve_exact(&inst, &ExactOptions::default()) else {
            return Ok(());
        };
        let mut sets: Vec<(i64, Vec<usize>)> = (0..inst.set_count())
            .map(|s| (inst.weight(s), inst.elements(s).to_vec()))
            .collect();
        sets.push((w, (0..inst.universe_size()).collect()));
        let bigger = CoverInstance::new(inst.universe_size(), sets);
        let better = solve_exact(&bigger, &ExactOptions::default()).unwrap();
        prop_assert!(better.weight <= base.weight.min(w));
    }

    /// Doubling every weight doubles the exact optimum.
    #[test]
    fn weight_scaling(inst in instance()) {
        let Some(base) = solve_exact(&inst, &ExactOptions::default()) else {
            return Ok(());
        };
        let sets: Vec<(i64, Vec<usize>)> = (0..inst.set_count())
            .map(|s| (inst.weight(s) * 2, inst.elements(s).to_vec()))
            .collect();
        let doubled = CoverInstance::new(inst.universe_size(), sets);
        let solved = solve_exact(&doubled, &ExactOptions::default()).unwrap();
        prop_assert_eq!(solved.weight, base.weight * 2);
    }
}
