//! Connected-component decomposition of weighted set cover.
//!
//! The candidate–element incidence structure of a [`CoverInstance`] is a
//! bipartite graph; a minimum-weight cover of the whole instance is the
//! union of minimum-weight covers of its connected components, because no
//! set crosses a component boundary. [`solve_decomposed`] exploits this
//! the same way the detection side of this workspace does
//! (decompose-then-solve, see `aapsm_core::bipartize` and
//! `aapsm_graph::component_embeddings`):
//!
//! 1. **Decompose** — union-find over the sets: every element unions the
//!    sets covering it, so a component is a maximal group of sets reachable
//!    through shared elements. Components are numbered in order of their
//!    *minimal global set index* and each carries its sets ascending; the
//!    per-component sub-instance uses dense renumbering of both sets and
//!    elements (ascending global order), so its bytes are a pure function
//!    of the input instance.
//! 2. **Solve** — each component independently: exact branch-and-bound
//!    ([`solve_exact`]) under a *per-component* node budget when the
//!    component has at most [`DecomposeOptions::max_exact_sets`] sets,
//!    greedy otherwise. Components are small in practice, so far more of
//!    the cover is *proven* optimal than a single global size threshold
//!    allows. Component solves run on `std::thread::scope` workers behind
//!    the workspace-standard `parallelism` knob (`0` = all cores, `1` =
//!    serial, `k` = at most `k`).
//! 3. **Merge** — local chosen sets map back through the component's dense
//!    renumbering and concatenate in component order. Every per-component
//!    solve is a pure function of its sub-instance, and the component
//!    order is fixed by the decomposition, so the merged solution is
//!    **bit-identical at every parallelism degree**.
//!
//! Truncation-truthfulness: [`DecomposedCover::optimal`] is `true` only
//! when the instance is coverable *and every* component's search ran to
//! completion ([`ExactCover::proven`]); a single truncated or greedy
//! component makes the whole cover "not proven", never silently optimal.

use crate::branch::ExactCover;
use crate::{solve_exact, solve_greedy, CoverInstance, CoverSolution, ExactOptions};
use aapsm_fault::{Budget, FaultSite};
use aapsm_geom::{par_map_indexed, resolve_workers};
use aapsm_graph::UnionFind;

/// Tuning knobs for [`solve_decomposed`].
#[derive(Clone, Debug)]
pub struct DecomposeOptions {
    /// Branch-and-bound node budget *per component* (truncated components
    /// keep their incumbent but are not counted as proven optimal).
    pub node_limit_per_component: u64,
    /// Components with more sets than this skip the exact solver and go
    /// straight to greedy.
    pub max_exact_sets: usize,
    /// Worker threads for component solves: `0` = one per available CPU,
    /// `1` = serial, `k` = at most `k`. Every degree is bit-identical.
    pub parallelism: usize,
    /// Shared work budget charged by every component's branch-and-bound
    /// ([`aapsm_fault::Stage::Cover`], one tick per search node). Tripped
    /// components keep their greedy-warm-start incumbent and are reported
    /// unproven; an unlimited budget (the default) changes nothing.
    pub budget: Budget,
}

impl Default for DecomposeOptions {
    fn default() -> Self {
        DecomposeOptions {
            node_limit_per_component: 200_000,
            max_exact_sets: 256,
            parallelism: 1,
            budget: Budget::unlimited(),
        }
    }
}

/// Result of [`solve_decomposed`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecomposedCover {
    /// The merged global solution. Mirrors [`solve_greedy`]'s contract on
    /// uncoverable instances: elements with no covering set are skipped,
    /// all others are covered.
    pub solution: CoverSolution,
    /// Number of connected components of the candidate–element incidence
    /// (empty sets, which can never be chosen, form no component).
    pub components: usize,
    /// How many components were solved to *proven* optimality.
    pub optimal_components: usize,
    /// Whether the whole cover is provably minimum-weight: the instance is
    /// coverable and every component's exact search completed.
    pub optimal: bool,
}

/// The sets of each connected component, components ordered by minimal
/// global set index, sets ascending within each component (the ascending
/// first-seen scan below yields minimal-member ordering regardless of
/// which member the union-find picks as root). Empty sets are excluded
/// (they cover nothing and can never be chosen).
fn component_sets(inst: &CoverInstance) -> Vec<Vec<usize>> {
    let k = inst.set_count();
    let mut forest = UnionFind::new(k);
    for e in 0..inst.universe_size() {
        let sets = inst.covering_sets(e);
        for w in sets.windows(2) {
            forest.union(w[0], w[1]);
        }
    }
    let mut comp_of_root = vec![usize::MAX; k];
    let mut comps: Vec<Vec<usize>> = Vec::new();
    for s in 0..k {
        if inst.elements(s).is_empty() {
            continue;
        }
        let root = forest.find(s);
        let c = if comp_of_root[root] == usize::MAX {
            comp_of_root[root] = comps.len();
            comps.push(Vec::new());
            comp_of_root[root]
        } else {
            comp_of_root[root]
        };
        comps[c].push(s);
    }
    comps
}

/// One component's solve: dense sub-instance extraction + exact-or-greedy.
/// Returns the chosen *global* set indices and whether the component was
/// solved to proven optimality.
fn solve_component(
    inst: &CoverInstance,
    sets: &[usize],
    opts: &DecomposeOptions,
) -> (Vec<usize>, bool) {
    debug_assert!(!sets.is_empty());
    aapsm_fault::hit(FaultSite::CoverComponent);
    if sets.len() == 1 {
        // A single set covering its whole component is trivially the
        // unique minimum cover (weights are positive).
        return (vec![sets[0]], true);
    }
    // Dense element renumbering, ascending global order (sets are already
    // ascending), so the sub-instance bytes are canonical.
    let mut elems: Vec<usize> = sets
        .iter()
        .flat_map(|&s| inst.elements(s))
        .copied()
        .collect();
    elems.sort_unstable();
    elems.dedup();
    // Invariant: `elems` was built from exactly these sets' elements.
    #[allow(clippy::expect_used)]
    let local_of = |e: usize| {
        elems
            .binary_search(&e)
            .expect("element is in the component")
    };
    let sub = CoverInstance::new(
        elems.len(),
        sets.iter()
            .map(|&s| {
                (
                    inst.weight(s),
                    inst.elements(s).iter().map(|&e| local_of(e)).collect(),
                )
            })
            .collect(),
    );
    let (chosen_local, proven) = if sets.len() <= opts.max_exact_sets {
        match solve_exact(
            &sub,
            &ExactOptions {
                node_limit: opts.node_limit_per_component,
                budget: opts.budget.clone(),
            },
        ) {
            Some(ExactCover { solution, proven }) => (solution.chosen, proven),
            // Unreachable for components built from incidence (every
            // element has a covering set), but stay total.
            None => (solve_greedy(&sub).chosen, false),
        }
    } else {
        (solve_greedy(&sub).chosen, false)
    };
    (chosen_local.into_iter().map(|s| sets[s]).collect(), proven)
}

/// Solves a weighted set cover by connected-component decomposition: each
/// component of the candidate–element incidence is solved independently
/// (exact branch-and-bound under a per-component budget, greedy fallback)
/// on scoped worker threads, and the per-component covers merge in
/// component order — bit-identical at every `parallelism` degree. See the
/// module docs for the invariants.
pub fn solve_decomposed(inst: &CoverInstance, opts: &DecomposeOptions) -> DecomposedCover {
    let comps = component_sets(inst);
    let workers = resolve_workers(opts.parallelism).min(comps.len()).max(1);
    let solved: Vec<(Vec<usize>, bool)> = par_map_indexed(
        comps.len(),
        workers,
        || (),
        |(), c| solve_component(inst, &comps[c], opts),
    );
    let mut chosen = Vec::new();
    let mut optimal_components = 0usize;
    for (sets, proven) in &solved {
        chosen.extend_from_slice(sets);
        optimal_components += usize::from(*proven);
    }
    let optimal = inst.is_coverable() && optimal_components == comps.len();
    DecomposedCover {
        solution: CoverSolution::from_sets(inst, chosen),
        components: comps.len(),
        optimal_components,
        optimal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decomposed(inst: &CoverInstance) -> DecomposedCover {
        solve_decomposed(inst, &DecomposeOptions::default())
    }

    #[test]
    fn two_disjoint_components_solved_independently() {
        // Component {0, 1} over elements {0, 1}; component {2, 3} over
        // {2, 3}. The optimum picks the cheap set of each.
        let inst = CoverInstance::new(
            4,
            vec![
                (5, vec![0, 1]),
                (9, vec![0, 1]),
                (7, vec![2, 3]),
                (3, vec![2, 3]),
            ],
        );
        let out = decomposed(&inst);
        assert_eq!(out.components, 2);
        assert_eq!(out.optimal_components, 2);
        assert!(out.optimal);
        assert_eq!(out.solution.chosen, vec![0, 3]);
        assert_eq!(out.solution.weight, 8);
    }

    #[test]
    fn bridging_element_joins_components() {
        // Set 2 shares elements with both 0 and 1: one component.
        let inst = CoverInstance::new(3, vec![(2, vec![0]), (2, vec![2]), (3, vec![0, 1, 2])]);
        let out = decomposed(&inst);
        assert_eq!(out.components, 1);
        assert!(out.optimal);
        assert_eq!(out.solution.weight, 3);
        assert_eq!(out.solution.chosen, vec![2]);
    }

    #[test]
    fn empty_sets_form_no_component_and_are_never_chosen() {
        let inst = CoverInstance::new(1, vec![(1, vec![]), (2, vec![0])]);
        let out = decomposed(&inst);
        assert_eq!(out.components, 1);
        assert_eq!(out.solution.chosen, vec![1]);
        assert!(out.optimal);
    }

    #[test]
    fn uncoverable_instance_is_not_optimal_but_covers_the_rest() {
        // Element 1 has no covering set: greedy semantics (skip it), but
        // the cover must not claim optimality for a partial cover.
        let inst = CoverInstance::new(2, vec![(1, vec![0])]);
        let out = decomposed(&inst);
        assert_eq!(out.components, 1);
        assert!(!out.optimal);
        assert_eq!(out.solution.chosen, vec![0]);
        assert!(!out.solution.is_feasible(&inst));
    }

    #[test]
    fn truncated_component_is_not_counted_optimal() {
        // The root lower bound does not close this instance (the big set
        // hides behind the per-element minima), so a one-node budget
        // genuinely truncates the search mid-flight.
        let inst = CoverInstance::new(
            4,
            vec![(5, vec![0, 1, 2, 3]), (2, vec![0, 1]), (2, vec![2, 3])],
        );
        let out = solve_decomposed(
            &inst,
            &DecomposeOptions {
                node_limit_per_component: 1,
                ..DecomposeOptions::default()
            },
        );
        assert_eq!(out.components, 1);
        assert_eq!(out.optimal_components, 0);
        assert!(!out.optimal);
        assert!(out.solution.is_feasible(&inst));
    }

    #[test]
    fn greedy_fallback_above_the_set_limit() {
        let inst = CoverInstance::new(2, vec![(1, vec![0]), (1, vec![1]), (5, vec![0, 1])]);
        let out = solve_decomposed(
            &inst,
            &DecomposeOptions {
                max_exact_sets: 0,
                ..DecomposeOptions::default()
            },
        );
        assert!(!out.optimal);
        assert_eq!(out.optimal_components, 0);
        assert!(out.solution.is_feasible(&inst));
    }

    #[test]
    fn parallel_degrees_are_bit_identical() {
        // Many small components; every degree must merge to the same bytes.
        let sets: Vec<(i64, Vec<usize>)> = (0..40)
            .map(|i| (1 + (i as i64 * 7) % 13, vec![i / 2]))
            .collect();
        let inst = CoverInstance::new(20, sets);
        let base = decomposed(&inst);
        assert_eq!(base.components, 20);
        for parallelism in [0, 2, 3, 4, 8] {
            let out = solve_decomposed(
                &inst,
                &DecomposeOptions {
                    parallelism,
                    ..DecomposeOptions::default()
                },
            );
            assert_eq!(out, base, "parallelism {parallelism} diverged");
        }
    }
}
