/// A weighted set cover instance.
///
/// Elements are `0..universe_size`; each set has a positive weight and a
/// list of elements it covers.
#[derive(Clone, Debug)]
pub struct CoverInstance {
    universe: usize,
    weights: Vec<i64>,
    sets: Vec<Vec<usize>>,
    /// For each element, the sets covering it.
    covered_by: Vec<Vec<usize>>,
}

impl CoverInstance {
    /// Builds an instance from `(weight, elements)` pairs.
    ///
    /// Duplicate elements within one set are deduplicated.
    ///
    /// # Panics
    ///
    /// Panics if any weight is non-positive or an element is out of range.
    pub fn new(universe_size: usize, sets: Vec<(i64, Vec<usize>)>) -> Self {
        let mut weights = Vec::with_capacity(sets.len());
        let mut lists = Vec::with_capacity(sets.len());
        let mut covered_by = vec![Vec::new(); universe_size];
        for (i, (w, mut elems)) in sets.into_iter().enumerate() {
            assert!(w > 0, "set weights must be positive (set {i} has {w})");
            elems.sort_unstable();
            elems.dedup();
            for &e in &elems {
                assert!(e < universe_size, "element {e} out of range in set {i}");
                covered_by[e].push(i);
            }
            weights.push(w);
            lists.push(elems);
        }
        CoverInstance {
            universe: universe_size,
            weights,
            sets: lists,
            covered_by,
        }
    }

    /// Number of elements in the universe.
    pub fn universe_size(&self) -> usize {
        self.universe
    }

    /// Number of candidate sets.
    pub fn set_count(&self) -> usize {
        self.sets.len()
    }

    /// Weight of a set.
    pub fn weight(&self, set: usize) -> i64 {
        self.weights[set]
    }

    /// Elements covered by a set.
    pub fn elements(&self, set: usize) -> &[usize] {
        &self.sets[set]
    }

    /// Sets covering an element.
    pub fn covering_sets(&self, element: usize) -> &[usize] {
        &self.covered_by[element]
    }

    /// Whether every element is covered by at least one set.
    pub fn is_coverable(&self) -> bool {
        self.covered_by.iter().all(|s| !s.is_empty())
    }
}

/// A (not necessarily optimal) solution to a [`CoverInstance`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoverSolution {
    /// Indices of the chosen sets, ascending.
    pub chosen: Vec<usize>,
    /// Total weight of the chosen sets.
    pub weight: i64,
}

impl CoverSolution {
    /// Creates a solution from chosen set indices, computing the weight.
    pub fn from_sets(inst: &CoverInstance, mut chosen: Vec<usize>) -> Self {
        chosen.sort_unstable();
        chosen.dedup();
        let weight = chosen.iter().map(|&s| inst.weight(s)).sum();
        CoverSolution { chosen, weight }
    }

    /// Whether the chosen sets cover the whole universe.
    pub fn is_feasible(&self, inst: &CoverInstance) -> bool {
        let mut covered = vec![false; inst.universe_size()];
        for &s in &self.chosen {
            for &e in inst.elements(s) {
                covered[e] = true;
            }
        }
        covered.into_iter().all(|c| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_lookup() {
        let inst = CoverInstance::new(3, vec![(4, vec![0, 0, 2]), (2, vec![1])]);
        assert_eq!(inst.elements(0), &[0, 2]);
        assert_eq!(inst.covering_sets(1), &[1]);
        assert!(inst.is_coverable());
    }

    #[test]
    fn uncoverable_detected() {
        let inst = CoverInstance::new(2, vec![(1, vec![0])]);
        assert!(!inst.is_coverable());
    }

    #[test]
    fn solution_feasibility() {
        let inst = CoverInstance::new(2, vec![(1, vec![0]), (1, vec![1])]);
        let sol = CoverSolution::from_sets(&inst, vec![0, 1, 1]);
        assert!(sol.is_feasible(&inst));
        assert_eq!(sol.weight, 2);
        let partial = CoverSolution::from_sets(&inst, vec![0]);
        assert!(!partial.is_feasible(&inst));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_elements() {
        CoverInstance::new(1, vec![(1, vec![3])]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_bad_weights() {
        CoverInstance::new(1, vec![(0, vec![0])]);
    }
}
