use crate::{CoverInstance, CoverSolution};

/// The classical greedy weighted set cover: repeatedly choose the set
/// minimizing weight per newly covered element until the universe is
/// covered (H_n-approximate).
///
/// Uncoverable elements are skipped (the caller should check
/// [`CoverInstance::is_coverable`] when completeness matters; the
/// layout-modification planner routes uncoverable conflicts to the
/// mask-splitting bucket instead).
///
/// Ratio comparisons are exact (`i128` cross multiplication), ties broken
/// by smaller weight then smaller index, so results are deterministic.
pub fn solve_greedy(inst: &CoverInstance) -> CoverSolution {
    let n = inst.universe_size();
    let k = inst.set_count();
    let mut covered = vec![false; n];
    let mut uncovered_left = (0..n)
        .filter(|&e| !inst.covering_sets(e).is_empty())
        .count();
    let mut new_count: Vec<usize> = (0..k).map(|s| inst.elements(s).len()).collect();
    let mut chosen = Vec::new();
    let mut in_solution = vec![false; k];

    while uncovered_left > 0 {
        // Pick argmin weight / new_count with exact rational comparison.
        let mut best: Option<usize> = None;
        for s in 0..k {
            if in_solution[s] || new_count[s] == 0 {
                continue;
            }
            best = Some(match best {
                None => s,
                Some(b) => {
                    // w_s / c_s < w_b / c_b  <=>  w_s * c_b < w_b * c_s
                    let lhs = inst.weight(s) as i128 * new_count[b] as i128;
                    let rhs = inst.weight(b) as i128 * new_count[s] as i128;
                    match lhs.cmp(&rhs) {
                        std::cmp::Ordering::Less => s,
                        std::cmp::Ordering::Greater => b,
                        std::cmp::Ordering::Equal => {
                            if inst.weight(s) < inst.weight(b) {
                                s
                            } else {
                                b
                            }
                        }
                    }
                }
            });
        }
        let Some(s) = best else { break };
        in_solution[s] = true;
        chosen.push(s);
        for &e in inst.elements(s) {
            if !covered[e] {
                covered[e] = true;
                uncovered_left -= 1;
                for &t in inst.covering_sets(e) {
                    new_count[t] -= 1;
                }
            }
        }
    }
    CoverSolution::from_sets(inst, chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn picks_best_ratio() {
        // Set 0 covers 3 elements for 6 (ratio 2); set 1 covers 1 for 1.
        let inst = CoverInstance::new(
            4,
            vec![(6, vec![0, 1, 2]), (1, vec![3]), (10, vec![0, 1, 2, 3])],
        );
        let sol = solve_greedy(&inst);
        assert_eq!(sol.chosen, vec![0, 1]);
        assert_eq!(sol.weight, 7);
    }

    #[test]
    fn skips_uncoverable_elements() {
        let inst = CoverInstance::new(3, vec![(1, vec![0]), (1, vec![1])]);
        let sol = solve_greedy(&inst);
        assert_eq!(sol.chosen.len(), 2);
        // Solution is not "feasible" for the full universe but covers all
        // coverable elements.
        assert!(!sol.is_feasible(&inst));
    }

    #[test]
    fn empty_universe_needs_nothing() {
        let inst = CoverInstance::new(0, vec![(5, vec![])]);
        let sol = solve_greedy(&inst);
        assert!(sol.chosen.is_empty());
        assert_eq!(sol.weight, 0);
    }

    #[test]
    fn classic_greedy_trap_is_within_bound() {
        // Greedy famously picks the big cheap-ratio set first even when two
        // disjoint sets would be optimal.
        let inst = CoverInstance::new(
            4,
            vec![
                (3, vec![0, 1, 2, 3]), // ratio 0.75 — greedy takes this
                (2, vec![0, 1]),
                (2, vec![2, 3]),
            ],
        );
        let sol = solve_greedy(&inst);
        assert_eq!(sol.chosen, vec![0]);
        assert_eq!(sol.weight, 3); // here greedy is actually optimal
    }
}
