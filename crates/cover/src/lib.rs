//! Weighted set cover solvers.
//!
//! The layout-modification step of the DATE 2005 bright-field AAPSM paper
//! formulates the choice of end-to-end space-insertion grid lines as a
//! weighted set cover: the universe is the set of correctable AAPSM
//! conflicts, every candidate grid line is a set (the conflicts it can
//! correct), and a line's weight is the largest space needed by any
//! conflict intersecting it. The paper uses "a covering solver from
//! Berkeley" (espresso/mincov); this crate supplies the equivalents:
//!
//! * [`solve_greedy`] — the classic ln(n)-approximate greedy (weight per
//!   newly covered element),
//! * [`solve_exact`] — a mincov-style branch-and-bound with essential-set
//!   propagation and an independent-set lower bound, reporting truthfully
//!   whether its search completed ([`ExactCover::proven`]),
//! * [`solve_decomposed`] — the production path: connected-component
//!   decomposition of the candidate–element incidence, each component
//!   solved independently (exact under a per-component node budget, greedy
//!   fallback) on scoped worker threads with a deterministic merge that is
//!   bit-identical at every parallelism degree (see [`decompose`] module
//!   docs for the invariants),
//! * [`solve_auto`] — exact when the instance is small enough, greedy
//!   otherwise: the pre-decomposition monolithic entry point, kept as the
//!   baseline [`solve_decomposed`] is cross-validated against (and as the
//!   regression surface for the truncation-reporting fix).
//!
//! # Example
//!
//! ```
//! use aapsm_cover::{CoverInstance, solve_greedy};
//!
//! let inst = CoverInstance::new(3, vec![
//!     (5, vec![0, 1]),    // set 0: weight 5 covers {0, 1}
//!     (5, vec![1, 2]),    // set 1
//!     (12, vec![0, 1, 2]) // set 2: covers everything but is expensive
//! ]);
//! let sol = solve_greedy(&inst);
//! assert!(sol.is_feasible(&inst));
//! assert_eq!(sol.chosen, vec![0, 1]);
//! assert_eq!(sol.weight, 10);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod branch;
pub mod decompose;
mod greedy;
mod instance;

pub use branch::{solve_exact, ExactCover, ExactOptions};
pub use decompose::{solve_decomposed, DecomposeOptions, DecomposedCover};
pub use greedy::solve_greedy;
pub use instance::{CoverInstance, CoverSolution};

pub use aapsm_fault::{Budget, BudgetSpec};

/// Solves exactly when the instance is small (≤ `exact_limit` sets and
/// elements), greedily otherwise.
///
/// Returns the solution and whether it is **provably** optimal: `true`
/// requires the exact search to have completed — an incumbent returned by
/// a node-limit-truncated search is feasible but unproven, so it reports
/// `false` exactly like the greedy fallback does.
pub fn solve_auto(inst: &CoverInstance, exact_limit: usize) -> (CoverSolution, bool) {
    if inst.set_count() <= exact_limit && inst.universe_size() <= 4 * exact_limit {
        if let Some(out) = solve_exact(inst, &ExactOptions::default()) {
            return (out.solution, out.proven);
        }
    }
    (solve_greedy(inst), false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    /// Exhaustive optimum for tiny instances.
    fn brute_optimum(inst: &CoverInstance) -> Option<i64> {
        let k = inst.set_count();
        assert!(k <= 20);
        let mut best: Option<i64> = None;
        'outer: for mask in 0u32..(1 << k) {
            let mut covered = vec![false; inst.universe_size()];
            let mut w = 0i64;
            for s in 0..k {
                if mask & (1 << s) != 0 {
                    w += inst.weight(s);
                    for &e in inst.elements(s) {
                        covered[e] = true;
                    }
                }
            }
            for c in covered {
                if !c {
                    continue 'outer;
                }
            }
            best = Some(best.map_or(w, |b: i64| b.min(w)));
        }
        best
    }

    fn random_instance(rng: &mut impl Rng, max_elems: usize, max_sets: usize) -> CoverInstance {
        let n = rng.gen_range(1..=max_elems);
        let k = rng.gen_range(1..=max_sets);
        let mut sets = Vec::new();
        for _ in 0..k {
            let size = rng.gen_range(1..=n);
            let mut elems: Vec<usize> = (0..n).collect();
            // Random subset of `size` elements.
            for i in 0..size {
                let j = rng.gen_range(i..n);
                elems.swap(i, j);
            }
            elems.truncate(size);
            sets.push((rng.gen_range(1..50), elems));
        }
        CoverInstance::new(n, sets)
    }

    #[test]
    fn exact_matches_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for trial in 0..150 {
            let inst = random_instance(&mut rng, 10, 8);
            let brute = brute_optimum(&inst);
            let exact = solve_exact(&inst, &ExactOptions::default());
            match (brute, exact) {
                (None, None) => {}
                (Some(b), Some(out)) => {
                    assert!(out.proven, "trial {trial}");
                    assert!(out.solution.is_feasible(&inst), "trial {trial}");
                    assert_eq!(out.solution.weight, b, "trial {trial}");
                }
                (b, e) => panic!(
                    "trial {trial}: feasibility disagrees {b:?} vs {}",
                    e.is_some()
                ),
            }
        }
    }

    #[test]
    fn greedy_is_feasible_and_bounded() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(8);
        for _ in 0..150 {
            let inst = random_instance(&mut rng, 12, 10);
            if brute_optimum(&inst).is_none() {
                continue;
            }
            let sol = solve_greedy(&inst);
            assert!(sol.is_feasible(&inst));
            let opt = brute_optimum(&inst).unwrap();
            assert!(sol.weight >= opt);
            // ln(12) < 2.5; greedy is within the classical H_n bound.
            assert!(sol.weight <= opt * 4, "greedy too far from optimum");
        }
    }

    #[test]
    fn auto_prefers_exact_on_small_instances() {
        let inst = CoverInstance::new(2, vec![(10, vec![0]), (10, vec![1]), (11, vec![0, 1])]);
        let (sol, optimal) = solve_auto(&inst, 64);
        assert!(optimal);
        assert_eq!(sol.weight, 11);
    }

    #[test]
    fn decomposed_matches_monolithic_exact_on_random_instances() {
        // The cross-validation oracle: per-component solve + merge must
        // reach the same optimum weight as the monolithic branch-and-bound
        // (and the brute-force subset enumeration) on every coverable
        // instance; both feasible.
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for trial in 0..150 {
            let inst = random_instance(&mut rng, 10, 8);
            let out = solve_decomposed(&inst, &DecomposeOptions::default());
            match brute_optimum(&inst) {
                Some(b) if inst.is_coverable() => {
                    assert!(out.optimal, "trial {trial}");
                    assert_eq!(out.optimal_components, out.components, "trial {trial}");
                    assert!(out.solution.is_feasible(&inst), "trial {trial}");
                    assert_eq!(out.solution.weight, b, "trial {trial}");
                    let mono = solve_exact(&inst, &ExactOptions::default()).expect("coverable");
                    assert_eq!(out.solution.weight, mono.solution.weight, "trial {trial}");
                }
                _ => assert!(!out.optimal, "trial {trial}"),
            }
        }
    }

    #[test]
    fn auto_reports_truncated_searches_as_unproven() {
        // Regression for the cover-optimality lie: `solve_auto` used to
        // return `true` whenever `solve_exact` produced an incumbent, even
        // when the node limit truncated the search. With the one-node
        // budget the search truncates immediately, so the incumbent (the
        // greedy warm start) must be reported as *unproven*. The instance
        // is chosen so the root lower bound cannot close the search (the
        // expensive covering set hides behind the per-element minima).
        let inst = CoverInstance::new(
            4,
            vec![(5, vec![0, 1, 2, 3]), (2, vec![0, 1]), (2, vec![2, 3])],
        );
        let out = solve_exact(
            &inst,
            &ExactOptions {
                node_limit: 1,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        assert!(!out.proven);
        assert!(out.solution.is_feasible(&inst));
        let (sol, optimal) = solve_auto(&inst, 64);
        // Same instance through solve_auto with the default (generous)
        // budget: proven; the lie is only possible when truncation occurs.
        assert!(optimal);
        assert_eq!(sol.weight, 4);
    }
}
