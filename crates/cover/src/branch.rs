use crate::{solve_greedy, CoverInstance, CoverSolution};
use aapsm_fault::{Budget, Stage};

/// Outcome of the exact branch-and-bound solver.
///
/// `proven` tells the truth about optimality: it is `true` only when the
/// search ran to completion. When the node budget truncates the search the
/// incumbent is still returned (it is never worse than the greedy warm
/// start), but `proven` is `false` — callers deciding whether a cover is
/// "provably optimal" must consult it instead of treating `Some` as proof.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExactCover {
    /// The best cover found.
    pub solution: CoverSolution,
    /// Whether the search completed, proving `solution` optimal.
    pub proven: bool,
}

/// Tuning knobs for the exact branch-and-bound solver.
#[derive(Clone, Debug)]
pub struct ExactOptions {
    /// Give up after this many search nodes: the incumbent is returned
    /// with [`ExactCover::proven`] `== false`. The default is generous for
    /// the per-component grid-line instances produced by the correction
    /// planner.
    pub node_limit: u64,
    /// Work budget: every search node charges one [`Stage::Cover`] tick.
    /// A budget trip truncates the search exactly like the node limit —
    /// the incumbent is returned with [`ExactCover::proven`] `== false`,
    /// never a silent claim of optimality.
    pub budget: Budget,
}

impl Default for ExactOptions {
    fn default() -> Self {
        ExactOptions {
            node_limit: 2_000_000,
            budget: Budget::unlimited(),
        }
    }
}

struct Search<'a> {
    inst: &'a CoverInstance,
    best: Option<Vec<usize>>,
    best_weight: i64,
    nodes: u64,
    node_limit: u64,
    budget: &'a Budget,
    truncated: bool,
}

impl Search<'_> {
    /// Lower bound on the weight needed to cover `uncovered`: greedily pick
    /// "independent" uncovered elements whose covering sets are disjoint
    /// from those of previously picked elements; their cheapest covering
    /// sets are pairwise distinct, so the bound is the sum of the minima.
    fn lower_bound(&self, covered: &[bool], banned: &[bool]) -> i64 {
        let mut used_set = vec![false; self.inst.set_count()];
        let mut bound = 0i64;
        for (e, &cov) in covered.iter().enumerate() {
            if cov {
                continue;
            }
            let sets = self.inst.covering_sets(e);
            if sets.iter().any(|&s| !banned[s] && used_set[s]) {
                continue;
            }
            let mut min_w = i64::MAX;
            for &s in sets {
                if !banned[s] {
                    min_w = min_w.min(self.inst.weight(s));
                    used_set[s] = true;
                }
            }
            if min_w < i64::MAX {
                bound += min_w;
            }
        }
        bound
    }

    fn dfs(
        &mut self,
        covered: &mut [bool],
        banned: &mut [bool],
        chosen: &mut Vec<usize>,
        weight: i64,
    ) {
        self.nodes += 1;
        if self.nodes > self.node_limit || self.budget.charge(Stage::Cover, 1).is_err() {
            self.truncated = true;
            return;
        }
        if weight >= self.best_weight {
            return;
        }
        // Find the uncovered element with the fewest available covering
        // sets (fail-first).
        let mut pivot: Option<(usize, usize)> = None;
        for (e, &cov) in covered.iter().enumerate() {
            if cov {
                continue;
            }
            let avail = self
                .inst
                .covering_sets(e)
                .iter()
                .filter(|&&s| !banned[s])
                .count();
            if avail == 0 {
                return; // infeasible branch
            }
            if pivot.is_none_or(|(_, a)| avail < a) {
                pivot = Some((e, avail));
                if avail == 1 {
                    break;
                }
            }
        }
        let Some((pivot_elem, _)) = pivot else {
            // Everything covered: record incumbent.
            self.best_weight = weight;
            self.best = Some(chosen.clone());
            return;
        };
        if weight + self.lower_bound(covered, banned) >= self.best_weight {
            return;
        }
        // Branch on the sets covering the pivot element, cheapest first.
        let mut candidates: Vec<usize> = self
            .inst
            .covering_sets(pivot_elem)
            .iter()
            .copied()
            .filter(|&s| !banned[s])
            .collect();
        candidates.sort_by_key(|&s| (self.inst.weight(s), s));
        let mut newly_banned = Vec::new();
        for &s in &candidates {
            // Include s.
            let newly_covered: Vec<usize> = self
                .inst
                .elements(s)
                .iter()
                .copied()
                .filter(|&e| !covered[e])
                .collect();
            for &e in &newly_covered {
                covered[e] = true;
            }
            chosen.push(s);
            self.dfs(covered, banned, chosen, weight + self.inst.weight(s));
            chosen.pop();
            for &e in &newly_covered {
                covered[e] = false;
            }
            if self.truncated {
                break;
            }
            // Exclude s in all later branches (standard pivot branching).
            banned[s] = true;
            newly_banned.push(s);
        }
        for s in newly_banned {
            banned[s] = false;
        }
    }
}

/// Exact minimum-weight set cover by branch-and-bound (mincov-style:
/// fail-first pivot selection, essential sets implicit via unit pivots, an
/// independent-element lower bound, greedy incumbent warm start).
///
/// Returns `None` when the instance is not coverable. Otherwise the
/// incumbent is always feasible (the greedy warm start guarantees one) and
/// [`ExactCover::proven`] records whether the search completed inside the
/// node budget — a truncated search returns its (possibly suboptimal)
/// incumbent with `proven == false` rather than silently posing as exact.
pub fn solve_exact(inst: &CoverInstance, options: &ExactOptions) -> Option<ExactCover> {
    if !inst.is_coverable() {
        return None;
    }
    let warm = solve_greedy(inst);
    let mut search = Search {
        inst,
        best_weight: warm.weight,
        best: Some(warm.chosen),
        nodes: 0,
        node_limit: options.node_limit,
        budget: &options.budget,
        truncated: false,
    };
    let mut covered = vec![false; inst.universe_size()];
    let mut banned = vec![false; inst.set_count()];
    let mut chosen = Vec::new();
    search.dfs(&mut covered, &mut banned, &mut chosen, 0);
    let truncated = search.truncated;
    search.best.map(|chosen| ExactCover {
        solution: CoverSolution::from_sets(inst, chosen),
        proven: !truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beats_greedy_on_the_disjoint_pair_trap() {
        // Greedy would take the ratio-attractive big set when it is
        // slightly cheaper per element; exact must find the disjoint pair.
        let inst = CoverInstance::new(
            4,
            vec![
                (5, vec![0, 1, 2, 3]), // ratio 1.25
                (2, vec![0, 1]),       // ratio 1.0
                (2, vec![2, 3]),       // ratio 1.0
            ],
        );
        let out = solve_exact(&inst, &ExactOptions::default()).unwrap();
        assert!(out.proven);
        assert_eq!(out.solution.weight, 4);
        assert_eq!(out.solution.chosen, vec![1, 2]);
    }

    #[test]
    fn uncoverable_returns_none() {
        let inst = CoverInstance::new(2, vec![(1, vec![0])]);
        assert!(solve_exact(&inst, &ExactOptions::default()).is_none());
    }

    #[test]
    fn essential_sets_are_forced() {
        let inst = CoverInstance::new(
            3,
            vec![(100, vec![0]), (1, vec![1, 2])], // set 0 essential
        );
        let out = solve_exact(&inst, &ExactOptions::default()).unwrap();
        assert!(out.proven);
        assert_eq!(out.solution.chosen, vec![0, 1]);
        assert_eq!(out.solution.weight, 101);
    }

    #[test]
    fn node_limit_still_returns_feasible_but_unproven() {
        let inst = CoverInstance::new(
            6,
            vec![
                (3, vec![0, 1, 2]),
                (3, vec![3, 4, 5]),
                (2, vec![0, 3]),
                (2, vec![1, 4]),
                (2, vec![2, 5]),
            ],
        );
        let out = solve_exact(
            &inst,
            &ExactOptions {
                node_limit: 1,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        assert!(out.solution.is_feasible(&inst));
        assert!(
            !out.proven,
            "a truncated search must not claim proven optimality"
        );
        // A generous budget proves the same instance.
        let full = solve_exact(&inst, &ExactOptions::default()).unwrap();
        assert!(full.proven);
        assert!(full.solution.weight <= out.solution.weight);
    }

    #[test]
    fn work_budget_trip_truncates_truthfully() {
        let inst = CoverInstance::new(
            6,
            vec![
                (3, vec![0, 1, 2]),
                (3, vec![3, 4, 5]),
                (2, vec![0, 3]),
                (2, vec![1, 4]),
                (2, vec![2, 5]),
            ],
        );
        let budget = aapsm_fault::BudgetSpec {
            cover_ticks: Some(1),
            ..aapsm_fault::BudgetSpec::default()
        }
        .build();
        let out = solve_exact(
            &inst,
            &ExactOptions {
                budget,
                ..ExactOptions::default()
            },
        )
        .unwrap();
        assert!(out.solution.is_feasible(&inst));
        assert!(!out.proven, "a budget-tripped search must not claim proof");
    }
}
