//! Placement transforms for hierarchical layouts.
//!
//! A placed instance carries an [`Orient`] — one of the eight elements of
//! the rectangle symmetry group (90°-multiple rotation, optional
//! reflection) — plus an integer translation, bundled as a [`Placement`].
//! The conventions follow GDSII `STRANS`/`ANGLE` semantics: the
//! reflection (about the X axis, `y → -y`) is applied **first**, then the
//! counter-clockwise rotation, then the translation. Magnification is not
//! modeled: the detection pipeline's design rules are absolute distances,
//! so a scaled instance would not be rule-equivalent to its master.
//!
//! All transforms are exact over `i64`; the `try_*` variants report
//! overflow instead of wrapping so [`crate::HierLayout::flatten`] can turn
//! an out-of-range placement into a structured error.

use aapsm_geom::{Point, Rect};

/// A counter-clockwise rotation by a multiple of 90°.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rot {
    /// No rotation.
    #[default]
    R0,
    /// 90° counter-clockwise.
    R90,
    /// 180°.
    R180,
    /// 270° counter-clockwise.
    R270,
}

impl Rot {
    /// The rotation angle in degrees (0, 90, 180 or 270).
    pub fn degrees(self) -> u32 {
        match self {
            Rot::R0 => 0,
            Rot::R90 => 90,
            Rot::R180 => 180,
            Rot::R270 => 270,
        }
    }

    /// The rotation for an angle that is a multiple of 90° (mod 360).
    pub fn from_degrees(deg: i64) -> Option<Rot> {
        match deg.rem_euclid(360) {
            0 => Some(Rot::R0),
            90 => Some(Rot::R90),
            180 => Some(Rot::R180),
            270 => Some(Rot::R270),
            _ => None,
        }
    }

    fn quarter_turns(self) -> u8 {
        match self {
            Rot::R0 => 0,
            Rot::R90 => 1,
            Rot::R180 => 2,
            Rot::R270 => 3,
        }
    }

    fn from_quarter_turns(q: u8) -> Rot {
        match q % 4 {
            0 => Rot::R0,
            1 => Rot::R90,
            2 => Rot::R180,
            _ => Rot::R270,
        }
    }

    /// `self` followed by `other` (rotations commute, so order is moot).
    pub fn plus(self, other: Rot) -> Rot {
        Rot::from_quarter_turns(self.quarter_turns() + other.quarter_turns())
    }

    /// The inverse rotation.
    pub fn inverse(self) -> Rot {
        Rot::from_quarter_turns(4 - self.quarter_turns())
    }
}

/// An element of the rectangle symmetry group: optional reflection about
/// the X axis followed by a counter-clockwise 90°-multiple rotation.
///
/// GDSII correspondence: `reflect` is `STRANS` bit 15, `rotation` is
/// `ANGLE` (restricted to 90° multiples).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Orient {
    /// Counter-clockwise rotation, applied after the reflection.
    pub rotation: Rot,
    /// Reflect about the X axis (`y → -y`) before rotating.
    pub reflect: bool,
}

impl Orient {
    /// The identity orientation.
    pub const IDENTITY: Orient = Orient {
        rotation: Rot::R0,
        reflect: false,
    };

    /// A pure rotation.
    pub fn rotated(rotation: Rot) -> Orient {
        Orient {
            rotation,
            reflect: false,
        }
    }

    /// True for the identity element.
    pub fn is_identity(self) -> bool {
        self == Orient::IDENTITY
    }

    /// All eight orientations, in a fixed enumeration order.
    pub fn all() -> [Orient; 8] {
        let mut out = [Orient::IDENTITY; 8];
        let rots = [Rot::R0, Rot::R90, Rot::R180, Rot::R270];
        for (i, &rotation) in rots.iter().enumerate() {
            out[i] = Orient {
                rotation,
                reflect: false,
            };
            out[i + 4] = Orient {
                rotation,
                reflect: true,
            };
        }
        out
    }

    /// Applies the orientation to a point, checking for `i64` overflow
    /// (only `i64::MIN` coordinates can overflow, via negation).
    pub fn try_apply(self, p: Point) -> Option<Point> {
        let y = if self.reflect {
            p.y.checked_neg()?
        } else {
            p.y
        };
        let x = p.x;
        Some(match self.rotation {
            Rot::R0 => Point::new(x, y),
            Rot::R90 => Point::new(y.checked_neg()?, x),
            Rot::R180 => Point::new(x.checked_neg()?, y.checked_neg()?),
            Rot::R270 => Point::new(y, x.checked_neg()?),
        })
    }

    /// Applies the orientation to a point.
    ///
    /// # Panics
    ///
    /// On `i64` overflow (a coordinate of `i64::MIN`); sanitized layouts
    /// are orders of magnitude inside the representable range.
    pub fn apply(self, p: Point) -> Point {
        match self.try_apply(p) {
            Some(q) => q,
            None => panic!("orientation transform overflowed on {p:?}"),
        }
    }

    /// Applies the orientation to a rectangle (the image of an axis-aligned
    /// rectangle under a symmetry of the axes is axis-aligned).
    pub fn try_apply_rect(self, r: &Rect) -> Option<Rect> {
        let a = self.try_apply(Point::new(r.x_lo(), r.y_lo()))?;
        let b = self.try_apply(Point::new(r.x_hi(), r.y_hi()))?;
        Rect::from_corners(a, b)
    }

    /// `self ∘ other`: the orientation that first applies `other`, then
    /// `self`.
    pub fn compose(self, other: Orient) -> Orient {
        // Normal form R·M (rotation after mirror): M·R(a) = R(-a)·M, so
        //   R(s)·M^es · R(o)·M^eo  =  R(s ± o) · M^(es ⊕ eo)
        // with the minus sign exactly when `self` reflects.
        let o_rot = if self.reflect {
            other.rotation.inverse()
        } else {
            other.rotation
        };
        Orient {
            rotation: self.rotation.plus(o_rot),
            reflect: self.reflect ^ other.reflect,
        }
    }

    /// The inverse orientation (reflecting orientations are involutions).
    pub fn inverse(self) -> Orient {
        if self.reflect {
            self
        } else {
            Orient {
                rotation: self.rotation.inverse(),
                reflect: false,
            }
        }
    }
}

/// A full instance placement: orientation followed by translation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Placement {
    /// Orientation applied about the master's origin.
    pub orient: Orient,
    /// Translation applied after the orientation.
    pub delta: Point,
}

impl Placement {
    /// The identity placement.
    pub const IDENTITY: Placement = Placement {
        orient: Orient::IDENTITY,
        delta: Point::new(0, 0),
    };

    /// A pure translation.
    pub fn at(x: i64, y: i64) -> Placement {
        Placement {
            orient: Orient::IDENTITY,
            delta: Point::new(x, y),
        }
    }

    /// An oriented placement.
    pub fn new(orient: Orient, x: i64, y: i64) -> Placement {
        Placement {
            orient,
            delta: Point::new(x, y),
        }
    }

    /// Applies the placement to a point, checking for `i64` overflow.
    pub fn try_apply(&self, p: Point) -> Option<Point> {
        let q = self.orient.try_apply(p)?;
        Some(Point::new(
            q.x.checked_add(self.delta.x)?,
            q.y.checked_add(self.delta.y)?,
        ))
    }

    /// Applies the placement to a rectangle, checking for `i64` overflow.
    pub fn try_apply_rect(&self, r: &Rect) -> Option<Rect> {
        let a = self.try_apply(Point::new(r.x_lo(), r.y_lo()))?;
        let b = self.try_apply(Point::new(r.x_hi(), r.y_hi()))?;
        Rect::from_corners(a, b)
    }

    /// `self ∘ other`: the placement that first applies `other`, then
    /// `self` (`None` on `i64` overflow).
    pub fn try_compose(&self, other: &Placement) -> Option<Placement> {
        // self(other(p)) = Os·Oo·p + Os·to + ts.
        let moved = self.try_apply(other.delta)?;
        Some(Placement {
            orient: self.orient.compose(other.orient),
            delta: moved,
        })
    }

    /// The inverse placement (`None` on `i64` overflow).
    pub fn try_inverse(&self) -> Option<Placement> {
        let inv = self.orient.inverse();
        let back = inv.try_apply(self.delta)?;
        Some(Placement {
            orient: inv,
            delta: Point::new(back.x.checked_neg()?, back.y.checked_neg()?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_points() -> Vec<Point> {
        vec![
            Point::new(0, 0),
            Point::new(7, 3),
            Point::new(-5, 11),
            Point::new(123_456, -654_321),
        ]
    }

    #[test]
    fn identity_fixes_everything() {
        for p in sample_points() {
            assert_eq!(Orient::IDENTITY.apply(p), p);
            assert_eq!(Placement::IDENTITY.try_apply(p), Some(p));
        }
    }

    #[test]
    fn rotation_quarter_turn_cycles() {
        let r90 = Orient::rotated(Rot::R90);
        for p in sample_points() {
            let mut q = p;
            for _ in 0..4 {
                q = r90.apply(q);
            }
            assert_eq!(q, p, "four quarter turns are the identity");
        }
        assert_eq!(r90.apply(Point::new(1, 0)), Point::new(0, 1));
        assert_eq!(r90.apply(Point::new(0, 1)), Point::new(-1, 0));
    }

    #[test]
    fn reflect_then_rotate_convention_matches_gdsii() {
        // STRANS reflection flips y first; ANGLE then rotates CCW.
        let o = Orient {
            rotation: Rot::R90,
            reflect: true,
        };
        // (2, 1) -reflect-> (2, -1) -R90-> (1, 2).
        assert_eq!(o.apply(Point::new(2, 1)), Point::new(1, 2));
    }

    #[test]
    fn compose_matches_pointwise_application() {
        for a in Orient::all() {
            for b in Orient::all() {
                for p in sample_points() {
                    assert_eq!(
                        a.compose(b).apply(p),
                        a.apply(b.apply(p)),
                        "compose({a:?}, {b:?}) disagrees at {p:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn inverse_round_trips_all_eight() {
        for o in Orient::all() {
            assert!(o.compose(o.inverse()).is_identity());
            assert!(o.inverse().compose(o).is_identity());
            for p in sample_points() {
                assert_eq!(o.inverse().apply(o.apply(p)), p);
            }
        }
    }

    #[test]
    fn placement_compose_and_inverse_round_trip() {
        let placements = [
            Placement::at(10, -20),
            Placement::new(Orient::rotated(Rot::R90), 5, 7),
            Placement::new(
                Orient {
                    rotation: Rot::R270,
                    reflect: true,
                },
                -1000,
                999,
            ),
        ];
        for a in &placements {
            for b in &placements {
                let ab = a.try_compose(b).expect("no overflow");
                for p in sample_points() {
                    assert_eq!(ab.try_apply(p), b.try_apply(p).and_then(|q| a.try_apply(q)));
                }
            }
            let inv = a.try_inverse().expect("no overflow");
            for p in sample_points() {
                let round = a.try_apply(p).and_then(|q| inv.try_apply(q));
                assert_eq!(round, Some(p));
            }
        }
    }

    #[test]
    fn rect_transform_is_exact_bbox() {
        let r = Rect::new(2, 1, 10, 4);
        for o in Orient::all() {
            let img = o.try_apply_rect(&r).expect("in range");
            // The image must be exactly the bbox of the four transformed
            // corners — extents swap under odd rotations.
            let (w, h) = (r.width(), r.height());
            let (iw, ih) = (img.width(), img.height());
            match o.rotation {
                Rot::R0 | Rot::R180 => assert_eq!((iw, ih), (w, h)),
                Rot::R90 | Rot::R270 => assert_eq!((iw, ih), (h, w)),
            }
        }
        // Specific case: R90 maps [2,10]×[1,4] to [-4,-1]×[2,10].
        let img = Orient::rotated(Rot::R90).try_apply_rect(&r).expect("ok");
        assert_eq!((img.x_lo(), img.y_lo()), (-4, 2));
        assert_eq!((img.x_hi(), img.y_hi()), (-1, 10));
    }

    #[test]
    fn overflow_is_reported_not_wrapped() {
        let p = Point::new(i64::MAX, 1);
        assert!(Placement::at(1, 0).try_apply(p).is_none());
        assert!(Orient::rotated(Rot::R180)
            .try_apply(Point::new(i64::MIN, 0))
            .is_none());
    }
}
