//! AAPSM layout model: design rules, features, shifters, overlaps,
//! space-insertion transforms and synthetic industrial-like generators.
//!
//! This crate is the physical-design substrate of the DATE 2005
//! bright-field AAPSM reproduction. A [`Layout`] is a set of rectangles on
//! the polysilicon layer; [`extract_phase_geometry`] classifies critical
//! features, generates their flanking phase shifters per the
//! [`DesignRules`], and finds every pair of shifters that must be merged
//! (assigned the same phase) because they violate the shifter spacing rule
//! through clear area.
//!
//! The phase-assignability of the result can be checked directly with
//! [`check_assignable`] (an independent constraint-propagation oracle used
//! to cross-validate the conflict-graph pipeline in `aapsm-core`), and
//! layouts can be modified by end-to-end space insertion ([`SpaceCut`])
//! exactly as the paper's correction scheme prescribes.
//!
//! # Example
//!
//! ```
//! use aapsm_layout::{extract_phase_geometry, fixtures, check_assignable, DesignRules};
//!
//! let rules = DesignRules::default();
//! // A gate crossing over a strap: the strap's top shifter must merge with
//! // both of the gate's shifters — an odd cycle, hence not assignable.
//! let layout = fixtures::gate_over_strap(&rules);
//! let geom = extract_phase_geometry(&layout, &rules);
//! assert!(check_assignable(&geom).is_err());
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod assign;
pub mod fixtures;
mod hier;
pub mod incremental;
mod io;
mod layout;
mod phase_geom;
mod placement;
mod rules;
pub mod synth;
mod transform;

pub use assign::{check_assignable, AssignabilityWitness, PhaseAssignment};
pub use hier::{Cell, HierLayout, Instance, PlacedCell};
pub use incremental::{dirty_regions_for, ExtractDelta, ExtractState};
pub use io::{parse_layout, write_layout, ParseLayoutError};
pub use layout::{Layout, LayoutError, LayoutStats, LayoutViolation};
pub use phase_geom::{
    extract_phase_geometry, extract_phase_geometry_par, DirectConflict, Feature,
    FeatureOrientation, OverlapPair, PhaseGeometry, Shifter, Side,
};
pub use placement::{Orient, Placement, Rot};
pub use rules::DesignRules;
pub use transform::{apply_cuts, SpaceCut};
