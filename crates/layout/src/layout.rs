use crate::DesignRules;
use aapsm_geom::{GridIndex, Rect};

/// A polysilicon-layer layout: a set of non-overlapping axis-aligned
/// rectangles ("the layout is assumed to be composed of a set of
/// non-overlapping rectangles", §3.1.1 of the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    rects: Vec<Rect>,
}

/// Aggregate statistics of a layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutStats {
    /// Number of rectangles (the paper's "polygons").
    pub polygon_count: usize,
    /// Bounding box, if non-empty.
    pub bbox: Option<Rect>,
    /// Bounding-box area in dbu² (0 for an empty layout).
    pub bbox_area: i128,
}

/// A design-rule violation found by [`Layout::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutViolation {
    /// Two feature rectangles share interior area.
    Overlap {
        /// Index of the first rectangle.
        a: usize,
        /// Index of the second rectangle.
        b: usize,
    },
    /// Two features are closer than the minimum feature spacing.
    Spacing {
        /// Index of the first rectangle.
        a: usize,
        /// Index of the second rectangle.
        b: usize,
        /// Their squared Euclidean gap.
        gap_sq: i128,
    },
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Layout::default()
    }

    /// Creates a layout from rectangles.
    pub fn from_rects(rects: Vec<Rect>) -> Self {
        Layout { rects }
    }

    /// Adds a rectangle and returns its index.
    pub fn add_rect(&mut self, rect: Rect) -> usize {
        self.rects.push(rect);
        self.rects.len() - 1
    }

    /// The rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the layout has no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Bounding box of all rectangles.
    pub fn bbox(&self) -> Option<Rect> {
        self.rects.iter().copied().reduce(|a, b| a.hull(&b))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> LayoutStats {
        let bbox = self.bbox();
        LayoutStats {
            polygon_count: self.rects.len(),
            bbox,
            bbox_area: bbox.map_or(0, |b| b.area()),
        }
    }

    /// Checks feature overlap and spacing rules, returning all violations.
    ///
    /// Uses a spatial grid; near-linear in layout size.
    pub fn validate(&self, rules: &DesignRules) -> Vec<LayoutViolation> {
        let mut grid = GridIndex::new(rules.min_feature_space.max(64) * 4);
        for (i, r) in self.rects.iter().enumerate() {
            let probe = r.inflate(rules.min_feature_space);
            grid.insert(
                i as u32,
                (probe.x_lo(), probe.y_lo(), probe.x_hi(), probe.y_hi()),
            );
        }
        let mut out = Vec::new();
        // Streaming traversal: the candidate set is never materialized.
        grid.for_each_candidate_pair(|a, b| {
            let (ra, rb) = (self.rects[a as usize], self.rects[b as usize]);
            if ra.overlaps(&rb) {
                out.push(LayoutViolation::Overlap {
                    a: a as usize,
                    b: b as usize,
                });
            } else {
                let gap_sq = ra.euclid_gap_sq(&rb);
                let s = rules.min_feature_space as i128;
                if gap_sq < s * s {
                    out.push(LayoutViolation::Spacing {
                        a: a as usize,
                        b: b as usize,
                        gap_sq,
                    });
                }
            }
        });
        out
    }
}

impl FromIterator<Rect> for Layout {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Layout {
            rects: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rect> for Layout {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        self.rects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_bbox() {
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(500, 100, 600, 500),
        ]);
        let s = l.stats();
        assert_eq!(s.polygon_count, 2);
        assert_eq!(s.bbox, Some(Rect::new(0, 0, 600, 500)));
        assert_eq!(s.bbox_area, 600 * 500);
        assert!(Layout::new().bbox().is_none());
    }

    #[test]
    fn validation_finds_overlap_and_spacing() {
        let rules = DesignRules::default();
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(50, 100, 150, 500),  // overlaps rect 0
            Rect::new(240, 0, 340, 400),   // 90 dbu from rect 1: spacing
            Rect::new(1000, 0, 1100, 400), // fine
        ]);
        let v = l.validate(&rules);
        assert!(v
            .iter()
            .any(|x| matches!(x, LayoutViolation::Overlap { a: 0, b: 1 })));
        assert!(v
            .iter()
            .any(|x| matches!(x, LayoutViolation::Spacing { a: 1, b: 2, .. })));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn clean_layout_validates() {
        let rules = DesignRules::default();
        let l = Layout::from_rects(vec![Rect::new(0, 0, 100, 400), Rect::new(400, 0, 500, 400)]);
        assert!(l.validate(&rules).is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let l: Layout = [Rect::new(0, 0, 1, 1), Rect::new(5, 5, 6, 6)]
            .into_iter()
            .collect();
        assert_eq!(l.len(), 2);
    }
}
