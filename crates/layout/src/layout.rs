use crate::DesignRules;
use aapsm_geom::{GridIndex, Rect};

/// A polysilicon-layer layout: a set of non-overlapping axis-aligned
/// rectangles ("the layout is assumed to be composed of a set of
/// non-overlapping rectangles", §3.1.1 of the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Layout {
    rects: Vec<Rect>,
}

/// Aggregate statistics of a layout.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LayoutStats {
    /// Number of rectangles (the paper's "polygons").
    pub polygon_count: usize,
    /// Bounding box, if non-empty.
    pub bbox: Option<Rect>,
    /// Bounding-box area in dbu² (0 for an empty layout).
    pub bbox_area: i128,
}

/// A structured input-sanitization error from [`Layout::sanitize`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LayoutError {
    /// A rectangle has non-positive extent on some axis (defensive:
    /// [`Rect`]'s constructors already reject these, but layouts can
    /// arrive through deserialization paths with weaker invariants).
    EmptyRect {
        /// Index of the offending rectangle.
        index: usize,
    },
    /// Two rectangles are byte-identical duplicates: the extraction
    /// pipeline assumes non-overlapping geometry, and an exact duplicate
    /// silently doubles weights downstream.
    DuplicateRect {
        /// Index of the first copy.
        first: usize,
        /// Index of the second copy.
        second: usize,
    },
    /// A coordinate sits too close to the GDSII i32 limit for the rules'
    /// shifter extents: synthesizing shifters/spacing probes around the
    /// feature would overflow the interchange range.
    CoordinateOutOfRange {
        /// Index of the offending rectangle.
        index: usize,
    },
    /// An instance references a cell index outside the hierarchy's cell
    /// table ([`crate::HierLayout`]).
    UnknownCell {
        /// Index of the referencing cell.
        cell: usize,
        /// Index of the offending instance within that cell.
        instance: usize,
    },
    /// A cell transitively instantiates itself: the hierarchy is not a
    /// DAG and cannot be flattened.
    InstanceCycle {
        /// Index of a cell on the cycle.
        cell: usize,
    },
    /// Applying an instance's placement pushed geometry outside the
    /// representable coordinate range.
    PlacementOutOfRange {
        /// Index of the referencing cell.
        cell: usize,
        /// Index of the offending instance within that cell.
        instance: usize,
    },
    /// The fully flattened hierarchy would exceed the expansion cap
    /// ([`crate::HierLayout::MAX_FLATTENED_RECTS`]) — a defense against
    /// corrupt or adversarial array references blowing up memory.
    HierarchyTooLarge {
        /// The (saturating) flattened rectangle count.
        flattened: u64,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::EmptyRect { index } => {
                write!(f, "rect {index} has zero area")
            }
            LayoutError::DuplicateRect { first, second } => {
                write!(f, "rect {second} duplicates rect {first}")
            }
            LayoutError::CoordinateOutOfRange { index } => {
                write!(f, "rect {index} coordinates too close to the GDS i32 limit")
            }
            LayoutError::UnknownCell { cell, instance } => {
                write!(
                    f,
                    "cell {cell} instance {instance} references an unknown cell"
                )
            }
            LayoutError::InstanceCycle { cell } => {
                write!(f, "cell {cell} transitively instantiates itself")
            }
            LayoutError::PlacementOutOfRange { cell, instance } => {
                write!(
                    f,
                    "cell {cell} instance {instance} places geometry outside the coordinate range"
                )
            }
            LayoutError::HierarchyTooLarge { flattened } => {
                write!(
                    f,
                    "hierarchy flattens to {flattened} rects, beyond the expansion cap"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A design-rule violation found by [`Layout::validate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LayoutViolation {
    /// Two feature rectangles share interior area.
    Overlap {
        /// Index of the first rectangle.
        a: usize,
        /// Index of the second rectangle.
        b: usize,
    },
    /// Two features are closer than the minimum feature spacing.
    Spacing {
        /// Index of the first rectangle.
        a: usize,
        /// Index of the second rectangle.
        b: usize,
        /// Their squared Euclidean gap.
        gap_sq: i128,
    },
}

impl Layout {
    /// Creates an empty layout.
    pub fn new() -> Self {
        Layout::default()
    }

    /// Creates a layout from rectangles.
    pub fn from_rects(rects: Vec<Rect>) -> Self {
        Layout { rects }
    }

    /// Adds a rectangle and returns its index.
    pub fn add_rect(&mut self, rect: Rect) -> usize {
        self.rects.push(rect);
        self.rects.len() - 1
    }

    /// The rectangles.
    pub fn rects(&self) -> &[Rect] {
        &self.rects
    }

    /// Number of rectangles.
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// Whether the layout has no rectangles.
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Bounding box of all rectangles.
    pub fn bbox(&self) -> Option<Rect> {
        self.rects.iter().copied().reduce(|a, b| a.hull(&b))
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> LayoutStats {
        let bbox = self.bbox();
        LayoutStats {
            polygon_count: self.rects.len(),
            bbox,
            bbox_area: bbox.map_or(0, |b| b.area()),
        }
    }

    /// Input sanitization: rejects layouts the pipeline cannot process
    /// soundly — degenerate rects, exact duplicate geometry, and
    /// coordinates so close to the GDSII i32 limit that the rules'
    /// shifter extents (body + overhang + spacing probe) would overflow
    /// the interchange range. Called by `aapsm_gds::read_gds` and
    /// `aapsm_core::run_flow` before any extraction.
    ///
    /// Distinct from [`Layout::validate`], which reports *design-rule*
    /// violations (overlap/spacing) on otherwise well-formed input.
    ///
    /// # Errors
    ///
    /// The first [`LayoutError`] found, in rect-index order.
    pub fn sanitize(&self, rules: &DesignRules) -> Result<(), LayoutError> {
        let margin = rules.shifter_width.max(0)
            + rules.shifter_overhang.max(0)
            + rules.shifter_spacing.max(0)
            + rules.min_feature_space.max(0);
        let limit = i64::from(i32::MAX) - margin;
        let mut seen: std::collections::HashMap<(i64, i64, i64, i64), usize> =
            std::collections::HashMap::with_capacity(self.rects.len());
        for (i, r) in self.rects.iter().enumerate() {
            if r.width() <= 0 || r.height() <= 0 {
                return Err(LayoutError::EmptyRect { index: i });
            }
            let reach = r
                .x_lo()
                .abs()
                .max(r.x_hi().abs())
                .max(r.y_lo().abs())
                .max(r.y_hi().abs());
            if reach > limit {
                return Err(LayoutError::CoordinateOutOfRange { index: i });
            }
            match seen.entry((r.x_lo(), r.y_lo(), r.x_hi(), r.y_hi())) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    return Err(LayoutError::DuplicateRect {
                        first: *e.get(),
                        second: i,
                    });
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(i);
                }
            }
        }
        Ok(())
    }

    /// Checks feature overlap and spacing rules, returning all violations.
    ///
    /// Uses a spatial grid; near-linear in layout size.
    pub fn validate(&self, rules: &DesignRules) -> Vec<LayoutViolation> {
        let mut grid = GridIndex::new(rules.min_feature_space.max(64) * 4);
        for (i, r) in self.rects.iter().enumerate() {
            let probe = r.inflate(rules.min_feature_space);
            grid.insert(
                i as u32,
                (probe.x_lo(), probe.y_lo(), probe.x_hi(), probe.y_hi()),
            );
        }
        let mut out = Vec::new();
        // Streaming traversal: the candidate set is never materialized.
        grid.for_each_candidate_pair(|a, b| {
            let (ra, rb) = (self.rects[a as usize], self.rects[b as usize]);
            if ra.overlaps(&rb) {
                out.push(LayoutViolation::Overlap {
                    a: a as usize,
                    b: b as usize,
                });
            } else {
                let gap_sq = ra.euclid_gap_sq(&rb);
                let s = rules.min_feature_space as i128;
                if gap_sq < s * s {
                    out.push(LayoutViolation::Spacing {
                        a: a as usize,
                        b: b as usize,
                        gap_sq,
                    });
                }
            }
        });
        out
    }
}

impl FromIterator<Rect> for Layout {
    fn from_iter<I: IntoIterator<Item = Rect>>(iter: I) -> Self {
        Layout {
            rects: iter.into_iter().collect(),
        }
    }
}

impl Extend<Rect> for Layout {
    fn extend<I: IntoIterator<Item = Rect>>(&mut self, iter: I) {
        self.rects.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_and_bbox() {
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(500, 100, 600, 500),
        ]);
        let s = l.stats();
        assert_eq!(s.polygon_count, 2);
        assert_eq!(s.bbox, Some(Rect::new(0, 0, 600, 500)));
        assert_eq!(s.bbox_area, 600 * 500);
        assert!(Layout::new().bbox().is_none());
    }

    #[test]
    fn validation_finds_overlap_and_spacing() {
        let rules = DesignRules::default();
        let l = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(50, 100, 150, 500),  // overlaps rect 0
            Rect::new(240, 0, 340, 400),   // 90 dbu from rect 1: spacing
            Rect::new(1000, 0, 1100, 400), // fine
        ]);
        let v = l.validate(&rules);
        assert!(v
            .iter()
            .any(|x| matches!(x, LayoutViolation::Overlap { a: 0, b: 1 })));
        assert!(v
            .iter()
            .any(|x| matches!(x, LayoutViolation::Spacing { a: 1, b: 2, .. })));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn clean_layout_validates() {
        let rules = DesignRules::default();
        let l = Layout::from_rects(vec![Rect::new(0, 0, 100, 400), Rect::new(400, 0, 500, 400)]);
        assert!(l.validate(&rules).is_empty());
    }

    #[test]
    fn sanitize_accepts_clean_and_rejects_bad_layouts() {
        let rules = DesignRules::default();
        let clean =
            Layout::from_rects(vec![Rect::new(0, 0, 100, 400), Rect::new(400, 0, 500, 400)]);
        assert_eq!(clean.sanitize(&rules), Ok(()));
        assert_eq!(Layout::new().sanitize(&rules), Ok(()));

        let dup = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(400, 0, 500, 400),
            Rect::new(0, 0, 100, 400),
        ]);
        assert_eq!(
            dup.sanitize(&rules),
            Err(LayoutError::DuplicateRect {
                first: 0,
                second: 2
            })
        );

        let far = i64::from(i32::MAX) - 10;
        let out = Layout::from_rects(vec![Rect::new(far - 100, 0, far, 400)]);
        assert_eq!(
            out.sanitize(&rules),
            Err(LayoutError::CoordinateOutOfRange { index: 0 })
        );
        let neg = Layout::from_rects(vec![Rect::new(-far, 0, -far + 100, 400)]);
        assert_eq!(
            neg.sanitize(&rules),
            Err(LayoutError::CoordinateOutOfRange { index: 0 })
        );
    }

    #[test]
    fn collect_from_iterator() {
        let l: Layout = [Rect::new(0, 0, 1, 1), Rect::new(5, 5, 6, 6)]
            .into_iter()
            .collect();
        assert_eq!(l.len(), 2);
    }
}
