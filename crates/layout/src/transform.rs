//! End-to-end space insertion — the paper's layout-modification primitive.

use crate::Layout;
use aapsm_geom::{Axis, Rect};

/// An end-to-end space insertion: at `position` along `axis`, the layout
/// is cut by a full-chip line and `width` dbu of empty space is inserted.
///
/// Geometry entirely on the high side of the cut shifts by `width`;
/// geometry straddling the cut stretches (its *length* grows — the cut
/// planner only ever places cuts where stretching does not change feature
/// widths). Geometry on the low side is untouched.
///
/// `axis` is the axis along which coordinates change: a vertical cut line
/// (separating left from right) has `axis == Axis::X`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceCut {
    /// Axis whose coordinates grow.
    pub axis: Axis,
    /// Cut position (geometry with low edge ≥ this shifts).
    pub position: i64,
    /// Amount of inserted space (> 0).
    pub width: i64,
}

impl SpaceCut {
    /// Applies the cut to a single rectangle.
    pub fn apply_rect(&self, r: &Rect) -> Rect {
        let (lo, hi) = match self.axis {
            Axis::X => (r.x_lo(), r.x_hi()),
            Axis::Y => (r.y_lo(), r.y_hi()),
        };
        let (new_lo, new_hi) = if lo >= self.position {
            (lo + self.width, hi + self.width)
        } else if hi > self.position {
            (lo, hi + self.width) // straddles: stretch
        } else {
            (lo, hi)
        };
        match self.axis {
            Axis::X => Rect::new(new_lo, r.y_lo(), new_hi, r.y_hi()),
            Axis::Y => Rect::new(r.x_lo(), new_lo, r.x_hi(), new_hi),
        }
    }
}

/// The per-axis prefix-sum form of a cut set: sorted distinct positions
/// with the *cumulative* inserted width up to and including each position,
/// so a rect edge's total shift is one `partition_point` lookup instead of
/// a scan over every cut.
///
/// Equivalent to replaying the cuts from the highest position down (each
/// cut's `position` in the original coordinate system): an edge at `v`
/// accumulates the width of every cut at `position <= v` when it is a low
/// edge, `position < v` when it is a high edge — exactly the
/// shift/stretch/keep cases of [`SpaceCut::apply_rect`], composed.
struct ShiftTable {
    /// Ascending distinct cut positions on one axis.
    positions: Vec<i64>,
    /// `prefix[i]` = total width of cuts at `positions[..=i]`.
    prefix: Vec<i64>,
}

impl ShiftTable {
    /// Builds the table from the cuts on `axis`. Duplicate positions
    /// compose additively — they merge into one entry of summed width,
    /// which is exactly what replaying them one by one produces.
    fn new(cuts: &[SpaceCut], axis: Axis) -> ShiftTable {
        let mut at: Vec<(i64, i64)> = cuts
            .iter()
            .filter(|c| c.axis == axis)
            .map(|c| (c.position, c.width))
            .collect();
        at.sort_unstable_by_key(|&(pos, _)| pos);
        let mut positions = Vec::with_capacity(at.len());
        let mut prefix = Vec::with_capacity(at.len());
        let mut total = 0i64;
        for (pos, width) in at {
            total += width;
            if positions.last() == Some(&pos) {
                // Invariant, not an error path: prefix grows in lockstep with
                // positions, so a matched last() implies a last_mut().
                #[allow(clippy::expect_used)]
                let last = prefix.last_mut().expect("same length");
                *last = total;
            } else {
                positions.push(pos);
                prefix.push(total);
            }
        }
        ShiftTable { positions, prefix }
    }

    /// Total width of cuts with `position <= v` (low edges shift by this).
    fn shift_le(&self, v: i64) -> i64 {
        let i = self.positions.partition_point(|&p| p <= v);
        if i == 0 {
            0
        } else {
            self.prefix[i - 1]
        }
    }

    /// Total width of cuts with `position < v` (high edges shift by this:
    /// a cut exactly at a rect's high edge leaves it untouched).
    fn shift_lt(&self, v: i64) -> i64 {
        let i = self.positions.partition_point(|&p| p < v);
        if i == 0 {
            0
        } else {
            self.prefix[i - 1]
        }
    }
}

/// Applies a set of cuts to a layout, returning the modified layout.
///
/// Every cut's `position` refers to the *original* coordinate system, and
/// duplicate same-axis positions compose additively (equivalent to one cut
/// of the summed width). The implementation is a single pass: per axis the
/// sorted cut positions and a prefix sum of their widths give each rect
/// edge its total shift by one binary search — O((R + C) log C) over R
/// rects and C cuts, instead of replaying every cut over every rect.
pub fn apply_cuts(layout: &Layout, cuts: &[SpaceCut]) -> Layout {
    if cuts.is_empty() {
        return layout.clone();
    }
    let x = ShiftTable::new(cuts, Axis::X);
    let y = ShiftTable::new(cuts, Axis::Y);
    let rects: Vec<Rect> = layout
        .rects()
        .iter()
        .map(|r| {
            Rect::new(
                r.x_lo() + x.shift_le(r.x_lo()),
                r.y_lo() + y.shift_le(r.y_lo()),
                r.x_hi() + x.shift_lt(r.x_hi()),
                r.y_hi() + y.shift_lt(r.y_hi()),
            )
        })
        .collect();
    Layout::from_rects(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_stretch_and_keep() {
        let cut = SpaceCut {
            axis: Axis::X,
            position: 100,
            width: 50,
        };
        // Entirely right: shifts.
        assert_eq!(
            cut.apply_rect(&Rect::new(100, 0, 200, 10)),
            Rect::new(150, 0, 250, 10)
        );
        // Straddles: stretches.
        assert_eq!(
            cut.apply_rect(&Rect::new(50, 0, 150, 10)),
            Rect::new(50, 0, 200, 10)
        );
        // Entirely left (touching the cut): unchanged.
        assert_eq!(
            cut.apply_rect(&Rect::new(0, 0, 100, 10)),
            Rect::new(0, 0, 100, 10)
        );
    }

    #[test]
    fn horizontal_cut_moves_y() {
        let cut = SpaceCut {
            axis: Axis::Y,
            position: 0,
            width: 30,
        };
        assert_eq!(
            cut.apply_rect(&Rect::new(0, 5, 10, 15)),
            Rect::new(0, 35, 10, 45)
        );
    }

    #[test]
    fn gaps_straddling_the_cut_grow_and_others_do_not_shrink() {
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 1000),
            Rect::new(300, 0, 400, 1000),
            Rect::new(700, 0, 800, 1000),
        ]);
        let cut = SpaceCut {
            axis: Axis::X,
            position: 200,
            width: 80,
        };
        let out = apply_cuts(&layout, &[cut]);
        // Gap 0-1 grows from 200 to 280.
        assert_eq!(out.rects()[1].x_lo() - out.rects()[0].x_hi(), 280);
        // Gap 1-2 preserved.
        assert_eq!(out.rects()[2].x_lo() - out.rects()[1].x_hi(), 300);
    }

    #[test]
    fn multiple_cuts_compose_in_original_coordinates() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10), Rect::new(100, 0, 110, 10)]);
        let cuts = [
            SpaceCut {
                axis: Axis::X,
                position: 50,
                width: 5,
            },
            SpaceCut {
                axis: Axis::X,
                position: 60,
                width: 7,
            },
        ];
        let out = apply_cuts(&layout, &cuts);
        assert_eq!(out.rects()[0], Rect::new(0, 0, 10, 10));
        assert_eq!(out.rects()[1], Rect::new(112, 0, 122, 10));
    }

    /// The reference semantics: replay each cut over every rect from the
    /// highest position down (the pre-prefix-sum implementation).
    fn apply_cuts_replay(layout: &Layout, cuts: &[SpaceCut]) -> Layout {
        let mut ordered: Vec<SpaceCut> = cuts.to_vec();
        ordered.sort_by_key(|c| std::cmp::Reverse(c.position));
        let mut rects: Vec<Rect> = layout.rects().to_vec();
        for cut in &ordered {
            for r in &mut rects {
                *r = cut.apply_rect(r);
            }
        }
        Layout::from_rects(rects)
    }

    #[test]
    fn prefix_sum_matches_per_cut_replay_on_random_cut_sets() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for _ in 0..100 {
            let rects: Vec<Rect> = (0..15)
                .map(|_| {
                    let x = rng.gen_range(-2000..2000);
                    let y = rng.gen_range(-2000..2000);
                    Rect::new(x, y, x + rng.gen_range(1..800), y + rng.gen_range(1..800))
                })
                .collect();
            let layout = Layout::from_rects(rects);
            let cuts: Vec<SpaceCut> = (0..rng.gen_range(0..8))
                .map(|_| SpaceCut {
                    axis: if rng.gen_range(0..2) == 0 {
                        Axis::X
                    } else {
                        Axis::Y
                    },
                    // Deliberately collision-prone positions (multiples of
                    // 100): duplicate same-axis positions and positions
                    // exactly on rect edges are both exercised.
                    position: rng.gen_range(-20..20) * 100,
                    width: rng.gen_range(1..300),
                })
                .collect();
            assert_eq!(
                apply_cuts(&layout, &cuts),
                apply_cuts_replay(&layout, &cuts),
                "cuts {cuts:?}"
            );
        }
    }

    #[test]
    fn duplicate_positions_compose_additively() {
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 100),
            Rect::new(50, 0, 300, 100),
            Rect::new(200, 0, 400, 100),
        ]);
        let twice = [
            SpaceCut {
                axis: Axis::X,
                position: 120,
                width: 30,
            },
            SpaceCut {
                axis: Axis::X,
                position: 120,
                width: 50,
            },
        ];
        let merged = [SpaceCut {
            axis: Axis::X,
            position: 120,
            width: 80,
        }];
        assert_eq!(apply_cuts(&layout, &twice), apply_cuts(&layout, &merged));
        assert_eq!(
            apply_cuts(&layout, &twice),
            apply_cuts_replay(&layout, &twice)
        );
    }

    #[test]
    fn widths_never_change_for_non_straddling_rects() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let rects: Vec<Rect> = (0..20)
                .map(|i| {
                    let x = i * 500 + rng.gen_range(0..100);
                    let y = rng.gen_range(0..1000);
                    Rect::new(x, y, x + 100, y + rng.gen_range(100..1000))
                })
                .collect();
            let layout = Layout::from_rects(rects.clone());
            // Cut in a gap between columns: never straddles.
            let cut = SpaceCut {
                axis: Axis::X,
                position: 10 * 500 + 250,
                width: rng.gen_range(1..300),
            };
            let out = apply_cuts(&layout, &[cut]);
            for (before, after) in rects.iter().zip(out.rects()) {
                assert_eq!(before.width(), after.width());
                assert_eq!(before.height(), after.height());
            }
        }
    }
}
