//! End-to-end space insertion — the paper's layout-modification primitive.

use crate::Layout;
use aapsm_geom::{Axis, Rect};

/// An end-to-end space insertion: at `position` along `axis`, the layout
/// is cut by a full-chip line and `width` dbu of empty space is inserted.
///
/// Geometry entirely on the high side of the cut shifts by `width`;
/// geometry straddling the cut stretches (its *length* grows — the cut
/// planner only ever places cuts where stretching does not change feature
/// widths). Geometry on the low side is untouched.
///
/// `axis` is the axis along which coordinates change: a vertical cut line
/// (separating left from right) has `axis == Axis::X`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpaceCut {
    /// Axis whose coordinates grow.
    pub axis: Axis,
    /// Cut position (geometry with low edge ≥ this shifts).
    pub position: i64,
    /// Amount of inserted space (> 0).
    pub width: i64,
}

impl SpaceCut {
    /// Applies the cut to a single rectangle.
    pub fn apply_rect(&self, r: &Rect) -> Rect {
        let (lo, hi) = match self.axis {
            Axis::X => (r.x_lo(), r.x_hi()),
            Axis::Y => (r.y_lo(), r.y_hi()),
        };
        let (new_lo, new_hi) = if lo >= self.position {
            (lo + self.width, hi + self.width)
        } else if hi > self.position {
            (lo, hi + self.width) // straddles: stretch
        } else {
            (lo, hi)
        };
        match self.axis {
            Axis::X => Rect::new(new_lo, r.y_lo(), new_hi, r.y_hi()),
            Axis::Y => Rect::new(r.x_lo(), new_lo, r.x_hi(), new_hi),
        }
    }
}

/// Applies a set of cuts to a layout, returning the modified layout.
///
/// Cuts are applied from the highest position down (per axis), so that
/// each cut's `position` refers to the *original* coordinate system. Cut
/// positions must be distinct per axis.
pub fn apply_cuts(layout: &Layout, cuts: &[SpaceCut]) -> Layout {
    let mut ordered: Vec<SpaceCut> = cuts.to_vec();
    ordered.sort_by_key(|c| std::cmp::Reverse(c.position));
    let mut rects: Vec<Rect> = layout.rects().to_vec();
    for cut in &ordered {
        for r in &mut rects {
            *r = cut.apply_rect(r);
        }
    }
    Layout::from_rects(rects)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shift_stretch_and_keep() {
        let cut = SpaceCut {
            axis: Axis::X,
            position: 100,
            width: 50,
        };
        // Entirely right: shifts.
        assert_eq!(
            cut.apply_rect(&Rect::new(100, 0, 200, 10)),
            Rect::new(150, 0, 250, 10)
        );
        // Straddles: stretches.
        assert_eq!(
            cut.apply_rect(&Rect::new(50, 0, 150, 10)),
            Rect::new(50, 0, 200, 10)
        );
        // Entirely left (touching the cut): unchanged.
        assert_eq!(
            cut.apply_rect(&Rect::new(0, 0, 100, 10)),
            Rect::new(0, 0, 100, 10)
        );
    }

    #[test]
    fn horizontal_cut_moves_y() {
        let cut = SpaceCut {
            axis: Axis::Y,
            position: 0,
            width: 30,
        };
        assert_eq!(
            cut.apply_rect(&Rect::new(0, 5, 10, 15)),
            Rect::new(0, 35, 10, 45)
        );
    }

    #[test]
    fn gaps_straddling_the_cut_grow_and_others_do_not_shrink() {
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 1000),
            Rect::new(300, 0, 400, 1000),
            Rect::new(700, 0, 800, 1000),
        ]);
        let cut = SpaceCut {
            axis: Axis::X,
            position: 200,
            width: 80,
        };
        let out = apply_cuts(&layout, &[cut]);
        // Gap 0-1 grows from 200 to 280.
        assert_eq!(out.rects()[1].x_lo() - out.rects()[0].x_hi(), 280);
        // Gap 1-2 preserved.
        assert_eq!(out.rects()[2].x_lo() - out.rects()[1].x_hi(), 300);
    }

    #[test]
    fn multiple_cuts_compose_in_original_coordinates() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10), Rect::new(100, 0, 110, 10)]);
        let cuts = [
            SpaceCut {
                axis: Axis::X,
                position: 50,
                width: 5,
            },
            SpaceCut {
                axis: Axis::X,
                position: 60,
                width: 7,
            },
        ];
        let out = apply_cuts(&layout, &cuts);
        assert_eq!(out.rects()[0], Rect::new(0, 0, 10, 10));
        assert_eq!(out.rects()[1], Rect::new(112, 0, 122, 10));
    }

    #[test]
    fn widths_never_change_for_non_straddling_rects() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let rects: Vec<Rect> = (0..20)
                .map(|i| {
                    let x = i * 500 + rng.gen_range(0..100);
                    let y = rng.gen_range(0..1000);
                    Rect::new(x, y, x + 100, y + rng.gen_range(100..1000))
                })
                .collect();
            let layout = Layout::from_rects(rects.clone());
            // Cut in a gap between columns: never straddles.
            let cut = SpaceCut {
                axis: Axis::X,
                position: 10 * 500 + 250,
                width: rng.gen_range(1..300),
            };
            let out = apply_cuts(&layout, &[cut]);
            for (before, after) in rects.iter().zip(out.rects()) {
                assert_eq!(before.width(), after.width());
                assert_eq!(before.height(), after.height());
            }
        }
    }
}
