/// AAPSM design rules, in database units (1 dbu = 1 nm).
///
/// Defaults model a 90 nm-node polysilicon layer, matching the paper's
/// experimental setting ("all our examples are 90 nm designs and assume
/// typical values of threshold width for critical features, shifter
/// dimensions and shifter spacing").
///
/// ```
/// use aapsm_layout::DesignRules;
/// let rules = DesignRules::default();
/// assert!(rules.shifter_spacing > rules.shifter_width);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DesignRules {
    /// Features whose smaller dimension is at most this are *critical* and
    /// must be flanked by opposite-phase shifters.
    pub critical_width: i64,
    /// Width of a generated phase shifter.
    pub shifter_width: i64,
    /// Minimum clear-area spacing between two shifters of (potentially)
    /// opposite phase; closer pairs must be merged to the same phase.
    pub shifter_spacing: i64,
    /// How far a shifter extends beyond each line end of its feature.
    pub shifter_overhang: i64,
    /// Minimum feature-to-feature spacing (used by layout validation and
    /// the synthetic generators).
    pub min_feature_space: i64,
}

impl Default for DesignRules {
    fn default() -> Self {
        DesignRules {
            critical_width: 120,
            shifter_width: 200,
            shifter_spacing: 280,
            shifter_overhang: 100,
            min_feature_space: 140,
        }
    }
}

impl DesignRules {
    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a human-readable explanation of the first violated
    /// consistency condition.
    pub fn validate(&self) -> Result<(), String> {
        if self.critical_width <= 0 {
            return Err("critical_width must be positive".into());
        }
        if self.shifter_width <= 0 {
            return Err("shifter_width must be positive".into());
        }
        if self.shifter_spacing <= 0 {
            return Err("shifter_spacing must be positive".into());
        }
        if self.shifter_overhang < 0 {
            return Err("shifter_overhang must be non-negative".into());
        }
        if self.min_feature_space <= 0 {
            return Err("min_feature_space must be positive".into());
        }
        Ok(())
    }

    /// The interaction radius within which two shifters can possibly
    /// violate the spacing rule (used to size spatial-index cells).
    pub fn interaction_radius(&self) -> i64 {
        self.shifter_spacing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_rules_are_valid() {
        assert!(DesignRules::default().validate().is_ok());
    }

    #[test]
    fn invalid_rules_are_rejected() {
        let r = DesignRules {
            shifter_width: 0,
            ..DesignRules::default()
        };
        assert!(r.validate().is_err());
        let r = DesignRules {
            shifter_overhang: -1,
            ..DesignRules::default()
        };
        assert!(r.validate().is_err());
    }
}
