//! Synthetic industrial-like layout generation.
//!
//! The paper evaluates on proprietary 90 nm industrial designs (up to
//! ~160 K polygons). Those are not available, so this module generates
//! standard-cell-like polysilicon layouts with the same structural
//! ingredients (see DESIGN.md, reconstruction #1):
//!
//! * rows of vertical gates at mixed pitches (chains of shifter merges),
//! * occasional wide (non-critical) features,
//! * routing straps between rows — some close enough to a row that the
//!   strap shifter is shared with gate shifters (odd cycles, the
//!   gate-over-strap class),
//! * stacked, laterally jogged gate pairs (line-end jog odd cycles),
//! * short middle lines in tight triples (sightline odd cycles).
//!
//! Everything is seeded and deterministic. Conflict density is controlled
//! by the motif fractions, so benchmark designs span "almost clean" to
//! "conflict rich" like the paper's Table 1 suite.

use crate::{DesignRules, Layout};
use aapsm_geom::Rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Clone, Debug)]
pub struct SynthParams {
    /// Cell rows.
    pub rows: usize,
    /// Gate sites per row.
    pub gates_per_row: usize,
    /// Probability that a row gets a close routing strap under a segment
    /// of it (each close strap yields odd cycles with the gates above).
    pub strap_frac: f64,
    /// Probability that a gate site hosts a stacked jogged pair instead of
    /// a single gate.
    pub jog_frac: f64,
    /// Probability that a gate site starts a short-middle triple.
    pub short_mid_frac: f64,
    /// Probability that a gate is wide (non-critical).
    pub wide_frac: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SynthParams {
    fn default() -> Self {
        SynthParams {
            rows: 4,
            gates_per_row: 40,
            strap_frac: 0.25,
            jog_frac: 0.03,
            short_mid_frac: 0.03,
            wide_frac: 0.08,
            seed: 1,
        }
    }
}

impl SynthParams {
    /// Approximate polygon count this configuration will produce.
    pub fn approx_polygons(&self) -> usize {
        // Gates plus ~jog extras plus straps.
        let gates = self.rows * self.gates_per_row;
        gates
            + (gates as f64 * self.jog_frac) as usize
            + (self.rows as f64 * self.strap_frac * 2.0) as usize
    }
}

const GATE_W: i64 = 100;
const WIDE_W: i64 = 320;
const GATE_H: i64 = 2000;
const ROW_PITCH: i64 = 3400;
/// Placement site pitch. Like real standard-cell rows, gates are placed on
/// a shared site grid so clear full-height columns exist in every row —
/// otherwise no legal end-to-end vertical space could ever be inserted.
/// Occupancy within a site never exceeds 460 dbu, so `[site+460, site+560]`
/// is clear across the whole chip.
const SITE: i64 = 560;

/// Generates a synthetic layout.
///
/// The result is feature-DRC-clean by construction (verified in tests):
/// pitches never drop below the minimum feature space and rows/straps
/// occupy disjoint bands.
pub fn generate(params: &SynthParams, rules: &DesignRules) -> Layout {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut rects: Vec<Rect> = Vec::new();
    for row in 0..params.rows {
        let y0 = row as i64 * ROW_PITCH;
        let mut site_idx = 0i64;
        let mut gates_placed = 0usize;
        while gates_placed < params.gates_per_row {
            let x = site_idx * SITE;
            let roll: f64 = rng.gen();
            if roll < params.jog_frac && site_idx > 0 {
                // Stacked jogged pair: lower + upper with lateral offset in
                // the conflict window. Occupancy stays within [0, 420] of
                // the site (offset <= 320 keeps next-site spacing legal).
                let lower = Rect::new(x, y0, x + GATE_W, y0 + 900);
                let offset = rng.gen_range(120..=320);
                let upper = Rect::new(x + offset, y0 + 1100, x + offset + GATE_W, y0 + GATE_H);
                rects.push(lower);
                rects.push(upper);
                gates_placed += 2;
                site_idx += 1;
            } else if roll < params.jog_frac + params.short_mid_frac {
                // Short-middle triple at tight pitch, spanning two sites.
                let a = Rect::new(x, y0, x + GATE_W, y0 + GATE_H);
                let b = Rect::new(x + 340, y0, x + 440, y0 + 800);
                let c = Rect::new(x + 680, y0, x + 780, y0 + GATE_H);
                rects.push(a);
                rects.push(b);
                rects.push(c);
                gates_placed += 3;
                site_idx += 2;
            } else if roll < params.jog_frac + params.short_mid_frac + params.wide_frac {
                let h = rng.gen_range(1200..GATE_H);
                rects.push(Rect::new(x, y0, x + WIDE_W, y0 + h));
                gates_placed += 1;
                site_idx += 1;
            } else {
                let h = rng.gen_range(1400..=GATE_H);
                rects.push(Rect::new(x, y0, x + GATE_W, y0 + h));
                gates_placed += 1;
                site_idx += 1;
            }
            // Occasional empty site for density variation.
            if rng.gen_bool(0.12) {
                site_idx += 1;
            }
        }
        let row_x_end = site_idx * SITE;
        // Routing straps in the inter-row band below this row.
        if rng.gen::<f64>() < params.strap_frac {
            // Close strap: top shifter merges with the gate shifters of a
            // random segment of this row.
            let seg_len = rng.gen_range(1500..4000.min(row_x_end.max(1600)));
            let seg_x = rng.gen_range(0..(row_x_end - seg_len).max(1));
            // Strap band 540 below the row: the strap's top shifter ends
            // 240 dbu short of the gate shifters — inside the 280 spacing
            // rule, so it merges with both shifters of every crossed gate
            // (odd cycles), while the needed correction space stays small.
            rects.push(Rect::new(seg_x, y0 - 640, seg_x + seg_len, y0 - 540));
        }
        if rng.gen::<f64>() < params.strap_frac {
            // Far strap: benign routing. The band sits 150 dbu above the
            // tallest gates of the previous row, clear of all rules.
            let seg_len = rng.gen_range(2000..6000.min(row_x_end.max(2100)));
            let seg_x = rng.gen_range(0..(row_x_end - seg_len).max(1));
            rects.push(Rect::new(seg_x, y0 - 1250, seg_x + seg_len, y0 - 1150));
        }
    }
    let _ = rules;
    Layout::from_rects(rects)
}

/// A named benchmark design.
#[derive(Clone, Debug)]
pub struct BenchDesign {
    /// Short name (Table 1 row label).
    pub name: &'static str,
    /// Generator configuration.
    pub params: SynthParams,
}

/// The Table 1 benchmark suite: nine designs from ~1 K to ~160 K polygons
/// (the paper's largest example is a full-chip layout with approximately
/// 160 K polygons).
pub fn standard_suite() -> Vec<BenchDesign> {
    let mk = |name, rows, gates, seed| BenchDesign {
        name,
        params: SynthParams {
            rows,
            gates_per_row: gates,
            seed,
            ..SynthParams::default()
        },
    };
    vec![
        mk("d1", 5, 200, 11),
        mk("d2", 8, 310, 12),
        mk("d3", 10, 500, 13),
        mk("d4", 16, 620, 14),
        mk("d5", 25, 800, 15),
        mk("d6", 40, 1000, 16),
        mk("d7", 50, 1600, 17),
        mk("d8", 80, 1400, 18),
        mk("fullchip", 128, 1250, 19),
    ]
}

/// The parallel-scaling suite: the same conflict-rich row recipe at 1×,
/// 4×, 16× and 64× row counts. Rows are independent conflict blocks, so
/// these designs scale the number of independent dual T-join instances
/// and the spatial extent the sharded front-end (crossing sweep,
/// merge-constraint scan, tile-sharded graph build) decomposes — the axes
/// `DetectConfig::parallelism` and the `bench_json` harness measure.
pub fn scaling_suite() -> Vec<BenchDesign> {
    let mk = |name, rows| BenchDesign {
        name,
        params: SynthParams {
            rows,
            gates_per_row: 120,
            strap_frac: 0.75,
            jog_frac: 0.08,
            short_mid_frac: 0.06,
            seed: 31,
            ..SynthParams::default()
        },
    };
    vec![
        mk("rows_x1", 4),
        mk("rows_x4", 16),
        mk("rows_x16", 64),
        mk("rows_x64", 256),
    ]
}

/// The Table 2 layout-modification suite: smaller designs with a healthy
/// conflict population.
pub fn modification_suite() -> Vec<BenchDesign> {
    let mk = |name, rows, gates, strap, jog, seed| BenchDesign {
        name,
        params: SynthParams {
            rows,
            gates_per_row: gates,
            strap_frac: strap,
            jog_frac: jog,
            short_mid_frac: 0.008,
            seed,
            ..SynthParams::default()
        },
    };
    vec![
        mk("m1", 4, 60, 0.30, 0.006, 21),
        mk("m2", 6, 90, 0.15, 0.004, 22),
        mk("m3", 7, 120, 0.25, 0.008, 23),
        mk("m4", 9, 150, 0.12, 0.004, 24),
        mk("m5", 11, 200, 0.22, 0.006, 25),
        mk("m6", 14, 260, 0.15, 0.004, 26),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_assignable, extract_phase_geometry};

    #[test]
    fn generation_is_deterministic() {
        let p = SynthParams::default();
        let r = DesignRules::default();
        assert_eq!(generate(&p, &r), generate(&p, &r));
        let p2 = SynthParams { seed: 2, ..p };
        assert_ne!(generate(&p2, &r), generate(&SynthParams::default(), &r));
    }

    #[test]
    fn generated_layouts_are_drc_clean() {
        let r = DesignRules::default();
        for seed in 0..5 {
            let p = SynthParams {
                seed,
                rows: 3,
                gates_per_row: 60,
                ..SynthParams::default()
            };
            let l = generate(&p, &r);
            let v = l.validate(&r);
            assert!(v.is_empty(), "seed {seed}: {v:?}");
        }
    }

    #[test]
    fn default_params_produce_conflicts() {
        let r = DesignRules::default();
        let l = generate(&SynthParams::default(), &r);
        let g = extract_phase_geometry(&l, &r);
        assert!(
            check_assignable(&g).is_err(),
            "default synth config should produce at least one phase conflict"
        );
        assert!(g.overlaps.len() > 50, "expected a rich constraint set");
    }

    #[test]
    fn zero_motif_fractions_are_assignable() {
        let r = DesignRules::default();
        let p = SynthParams {
            strap_frac: 0.0,
            jog_frac: 0.0,
            short_mid_frac: 0.0,
            rows: 3,
            gates_per_row: 50,
            ..SynthParams::default()
        };
        let l = generate(&p, &r);
        let g = extract_phase_geometry(&l, &r);
        assert!(check_assignable(&g).is_ok());
    }

    #[test]
    fn suites_scale_as_documented() {
        let suite = standard_suite();
        assert_eq!(suite.len(), 9);
        let sizes: Vec<usize> = suite
            .iter()
            .map(|d| d.params.rows * d.params.gates_per_row)
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
        assert!(sizes[0] >= 1000);
        assert!(*sizes.last().unwrap() >= 160_000);
    }
}
