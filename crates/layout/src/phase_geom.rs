use crate::{DesignRules, Layout};
use aapsm_geom::{Axis, GridIndex, Rect, RectSoA};

/// Orientation of a feature (which sides its shifters flank).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FeatureOrientation {
    /// Taller than wide (or square): shifters at left and right.
    Vertical,
    /// Wider than tall: shifters below and above.
    Horizontal,
}

/// Which side of its feature a shifter flanks, along the flanking axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// Left (vertical features) or bottom (horizontal features).
    Low,
    /// Right (vertical features) or top (horizontal features).
    High,
}

impl Side {
    /// The side's parity bit, used by the feature-graph color transform.
    pub fn bit(self) -> u8 {
        match self {
            Side::Low => 0,
            Side::High => 1,
        }
    }
}

/// A layout feature with its criticality classification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Feature {
    /// The feature's rectangle.
    pub rect: Rect,
    /// Orientation (decides shifter placement).
    pub orientation: FeatureOrientation,
    /// Whether the feature is critical (gets shifters).
    pub critical: bool,
    /// Indices of the two flanking shifters `(low, high)` when critical.
    pub shifters: Option<(usize, usize)>,
}

/// A phase shifter flanking a critical feature.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Shifter {
    /// The shifter's rectangle.
    pub rect: Rect,
    /// Index of the feature it flanks.
    pub feature: usize,
    /// Which side of the feature it flanks.
    pub side: Side,
}

/// A pair of shifters that violates the shifter spacing rule through clear
/// area and must therefore be merged (same phase).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OverlapPair {
    /// First shifter index (`a < b`).
    pub a: usize,
    /// Second shifter index.
    pub b: usize,
    /// Signed horizontal gap between the shifter rects.
    pub gap_x: i64,
    /// Signed vertical gap.
    pub gap_y: i64,
    /// Layout-impact weight: the spacing deficit (how much extra space
    /// would separate the pair), at least 1.
    pub weight: i64,
}

impl OverlapPair {
    /// Whether inserting a vertical end-to-end space (at some x between
    /// the shifters) can correct this pair. Touching pairs (gap 0) are
    /// correctable: the cut line passes exactly along the contact plane.
    pub fn correctable_by_vertical_space(&self) -> bool {
        self.gap_x >= 0
    }

    /// Whether a horizontal end-to-end space can correct this pair.
    pub fn correctable_by_horizontal_space(&self) -> bool {
        self.gap_y >= 0
    }
}

/// A same-feature contradiction: the two shifters of one critical feature
/// also violate the spacing rule around the feature's line ends, forcing
/// "same phase" and "opposite phase" simultaneously. These are emitted
/// directly as conflicts (they correspond to the degenerate odd 3-cycles
/// the paper's graph would otherwise contain as parallel constraints).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DirectConflict {
    /// The feature whose shifters contradict.
    pub feature: usize,
    /// The spacing deficit weight of the violating interaction.
    pub weight: i64,
}

/// The complete phase geometry extracted from a layout: features,
/// shifters, and merge (overlap) constraints.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseGeometry {
    /// All features, in layout rectangle order.
    pub features: Vec<Feature>,
    /// All generated shifters.
    pub shifters: Vec<Shifter>,
    /// All merge constraints between shifters of different features.
    pub overlaps: Vec<OverlapPair>,
    /// Degenerate same-feature contradictions.
    pub direct_conflicts: Vec<DirectConflict>,
}

impl PhaseGeometry {
    /// Number of critical features.
    pub fn critical_count(&self) -> usize {
        self.features.iter().filter(|f| f.critical).count()
    }
}

/// Classifies features, generates shifters and extracts merge constraints.
///
/// The shifter spacing rule is evaluated *through clear area*: a pair of
/// shifters closer than [`DesignRules::shifter_spacing`] is exempt when a
/// feature body fills (part of) the straight corridor between them — this
/// is what keeps a feature's own two shifters, and facing-shifter pairs
/// separated by an intervening line, from being spuriously merged, while
/// preserving the paper's conflict classes (shared shifters at line
/// crossings, line-end jogs, short middle lines).
pub fn extract_phase_geometry(layout: &Layout, rules: &DesignRules) -> PhaseGeometry {
    extract_phase_geometry_par(layout, rules, 1)
}

/// One hit of the merge-constraint scan, tagged by kind so the sharded
/// traversal can stream both outputs through one buffer.
pub(crate) enum ScanHit {
    Overlap(OverlapPair),
    Direct(DirectConflict),
}

/// [`extract_phase_geometry`] with an explicit parallelism degree (`0` =
/// one worker per CPU, `1` = serial, `k` = at most `k` workers).
///
/// Feature classification and shifter generation are a cheap sequential
/// pass; the shifter/feature merge-constraint scan — the extraction hot
/// path on full-chip inputs — runs over contiguous spatial-grid bands on
/// worker threads ([`aapsm_geom::GridIndex::par_collect_pairs`]), with
/// per-band buffers merged in band order. The result is **bit-identical
/// to serial** at every parallelism degree.
pub fn extract_phase_geometry_par(
    layout: &Layout,
    rules: &DesignRules,
    parallelism: usize,
) -> PhaseGeometry {
    crate::incremental::ExtractState::full(layout, rules, parallelism).into_geometry()
}

/// The cheap sequential pass: feature classification and shifter
/// generation (no merge constraints yet). Shared between the from-scratch
/// extractor and the incremental re-extractor so both produce the same
/// features and shifters byte for byte.
pub(crate) fn classify_features(layout: &Layout, rules: &DesignRules) -> PhaseGeometry {
    let mut geom = PhaseGeometry::default();
    for (i, &rect) in layout.rects().iter().enumerate() {
        let orientation = if rect.height() >= rect.width() {
            FeatureOrientation::Vertical
        } else {
            FeatureOrientation::Horizontal
        };
        let critical = rect.min_dim() <= rules.critical_width;
        let shifters = critical.then(|| {
            let (w, o) = (rules.shifter_width, rules.shifter_overhang);
            let (low, high) = match orientation {
                FeatureOrientation::Vertical => (
                    Rect::new(
                        rect.x_lo() - w,
                        rect.y_lo() - o,
                        rect.x_lo(),
                        rect.y_hi() + o,
                    ),
                    Rect::new(
                        rect.x_hi(),
                        rect.y_lo() - o,
                        rect.x_hi() + w,
                        rect.y_hi() + o,
                    ),
                ),
                FeatureOrientation::Horizontal => (
                    Rect::new(
                        rect.x_lo() - o,
                        rect.y_lo() - w,
                        rect.x_hi() + o,
                        rect.y_lo(),
                    ),
                    Rect::new(
                        rect.x_lo() - o,
                        rect.y_hi(),
                        rect.x_hi() + o,
                        rect.y_hi() + w,
                    ),
                ),
            };
            let lo_id = geom.shifters.len();
            geom.shifters.push(Shifter {
                rect: low,
                feature: i,
                side: Side::Low,
            });
            geom.shifters.push(Shifter {
                rect: high,
                feature: i,
                side: Side::High,
            });
            (lo_id, lo_id + 1)
        });
        geom.features.push(Feature {
            rect,
            orientation,
            critical,
            shifters,
        });
    }
    geom
}

/// The probe box a shifter is indexed under: its rect inflated by the
/// interaction radius, so any pair that can violate the spacing rule has
/// touching probes.
pub(crate) fn shifter_probe(s: &Shifter, radius: i64) -> (i64, i64, i64, i64) {
    let probe = s.rect.inflate(radius);
    (probe.x_lo(), probe.y_lo(), probe.x_hi(), probe.y_hi())
}

/// The box a feature is indexed under (its own rect).
pub(crate) fn feature_box(f: &Feature) -> (i64, i64, i64, i64) {
    (f.rect.x_lo(), f.rect.y_lo(), f.rect.x_hi(), f.rect.y_hi())
}

/// The merge-constraint verdict for one candidate shifter pair: `None`
/// when the pair is spaced or its corridor is blocked, otherwise the
/// overlap (or same-feature direct conflict) it induces.
///
/// This is *the* per-pair scan logic — the from-scratch sharded sweep and
/// the incremental dirty-pair rescan both call it, so their verdicts
/// cannot drift apart. It is a pure function of the pair's geometry and
/// the feature set; neither candidate enumeration order nor feature-grid
/// internal ordering can change its result (covered spans are re-sorted
/// inside `corridor_blocked`).
///
/// `boxes` packs the shifter rects (same indexing as `shifters`); the
/// spacing prefilter — which rejects the overwhelming majority of grid
/// candidates — runs entirely on those contiguous coordinate arrays, so
/// the reject path never loads a `Shifter` struct. The SoA predicates are
/// bit-identical to the `Rect` ones ([`aapsm_geom::RectSoA`]).
// Deliberately flat: this is the pair-scan hot loop's inner call and both
// callers hold every argument by name already — a bundling struct would be
// built per call site just to be destructured here.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_pair(
    shifters: &[Shifter],
    boxes: &RectSoA,
    features: &[Feature],
    feature_grid: &GridIndex,
    rules: &DesignRules,
    spacing_sq: i128,
    a: usize,
    b: usize,
) -> Option<ScanHit> {
    if boxes.gap_sq(a, b) >= spacing_sq {
        return None;
    }
    let (sa, sb) = (shifters[a], shifters[b]);
    if corridor_blocked(features, feature_grid, rules, &sa, &sb) {
        return None;
    }
    let gap_x = boxes.x_gap(a, b);
    let gap_y = boxes.y_gap(a, b);
    let weight = (rules.shifter_spacing - gap_x.max(gap_y)).max(1);
    Some(if sa.feature == sb.feature {
        ScanHit::Direct(DirectConflict {
            feature: sa.feature,
            weight,
        })
    } else {
        let (a, b) = if a < b { (a, b) } else { (b, a) };
        ScanHit::Overlap(OverlapPair {
            a,
            b,
            gap_x,
            gap_y,
            weight,
        })
    })
}

/// Sorts the scanned constraints into the canonical order every extractor
/// must emit: overlaps ascending by shifter pair, direct conflicts
/// ascending by feature. Both keys are unique (the grid traversal visits
/// each pair once), so the order is a pure function of the constraint
/// *set* — which is what lets the incremental extractor merge reused and
/// rescanned constraints and still match the from-scratch bytes.
pub(crate) fn canonicalize_constraints(geom: &mut PhaseGeometry) {
    geom.overlaps.sort_by_key(|o| (o.a, o.b));
    geom.direct_conflicts.sort_by_key(|d| d.feature);
}

/// Whether the straight corridor between two nearby shifters is blocked by
/// feature bodies (so the spacing rule does not apply to the pair).
///
/// The corridor is the gap interval along the separating axis times the
/// overlap of the shifters' spans on the perpendicular axis. The pair is
/// blocked when, after subtracting the perpendicular spans of every
/// feature intersecting the corridor, no *contiguous clear sightline*
/// longer than the line-end exemption (2 × shifter overhang) remains.
///
/// Consequences, matching the paper's conflict taxonomy:
///
/// * a feature's own two shifters are blocked by the feature itself (only
///   the overhang slivers wrap around its line ends, and those are
///   exempted — the paper excludes line-end conflicts as DRC-handled);
/// * facing shifter pairs across an intervening line are blocked;
/// * a shifter facing two others past a *short* middle line keeps a long
///   clear sightline and stays constrained;
/// * diagonal / corner interactions (no meaningful perpendicular overlap)
///   are never blocked.
fn corridor_blocked(
    features: &[Feature],
    feature_grid: &GridIndex,
    rules: &DesignRules,
    sa: &Shifter,
    sb: &Shifter,
) -> bool {
    let gap_x = sa.rect.x_gap(&sb.rect);
    let gap_y = sa.rect.y_gap(&sb.rect);
    let axis = if gap_x > 0 && gap_y <= 0 {
        Axis::X
    } else if gap_y > 0 && gap_x <= 0 {
        Axis::Y
    } else {
        // Overlapping/touching (both <= 0) or diagonal (both > 0): no
        // corridor to block.
        return false;
    };
    let exemption = 2 * rules.shifter_overhang;
    let (lo_rect, hi_rect) = if sa.rect.span(axis).lo() <= sb.rect.span(axis).lo() {
        (&sa.rect, &sb.rect)
    } else {
        (&sb.rect, &sa.rect)
    };
    let along = aapsm_geom::Interval::new(lo_rect.span(axis).hi(), hi_rect.span(axis).lo());
    let perp = match sa
        .rect
        .span(axis.perp())
        .intersect(&sb.rect.span(axis.perp()))
    {
        Some(iv) => iv,
        None => return false,
    };
    if perp.len() <= exemption {
        // Corner-scale interaction: nothing meaningful can block it.
        return false;
    }
    let corridor = match axis {
        Axis::X => Rect::from_corners(
            aapsm_geom::Point::new(along.lo(), perp.lo()),
            aapsm_geom::Point::new(along.hi(), perp.hi()),
        ),
        Axis::Y => Rect::from_corners(
            aapsm_geom::Point::new(perp.lo(), along.lo()),
            aapsm_geom::Point::new(perp.hi(), along.hi()),
        ),
    };
    let Some(corridor) = corridor else {
        // Zero-length gap: the pair effectively touches.
        return false;
    };
    // Collect the perpendicular spans covered by features in the corridor.
    let mut covered: Vec<(i64, i64)> = feature_grid
        .query((
            corridor.x_lo(),
            corridor.y_lo(),
            corridor.x_hi(),
            corridor.y_hi(),
        ))
        .into_iter()
        .filter(|&fi| features[fi as usize].rect.overlaps(&corridor))
        .map(|fi| {
            let span = features[fi as usize].rect.span(axis.perp());
            (span.lo().max(perp.lo()), span.hi().min(perp.hi()))
        })
        .collect();
    if covered.is_empty() {
        return false;
    }
    covered.sort_unstable();
    // Longest clear stretch of the perpendicular interval.
    let mut max_clear = 0i64;
    let mut cursor = perp.lo();
    for &(lo, hi) in &covered {
        if lo > cursor {
            max_clear = max_clear.max(lo - cursor);
        }
        cursor = cursor.max(hi);
    }
    max_clear = max_clear.max(perp.hi() - cursor);
    max_clear <= exemption
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules() -> DesignRules {
        DesignRules::default()
    }

    /// A single vertical critical wire.
    fn wire(x: i64, y: i64, w: i64, h: i64) -> Rect {
        Rect::new(x, y, x + w, y + h)
    }

    #[test]
    fn critical_feature_gets_two_shifters() {
        let l = Layout::from_rects(vec![wire(0, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &rules());
        assert_eq!(g.shifters.len(), 2);
        assert_eq!(g.features[0].shifters, Some((0, 1)));
        let (lo, hi) = (g.shifters[0], g.shifters[1]);
        assert_eq!(lo.side, Side::Low);
        assert_eq!(lo.rect, Rect::new(-200, -100, 0, 1100));
        assert_eq!(hi.rect, Rect::new(100, -100, 300, 1100));
        // Own shifters are separated by the feature: no direct conflict.
        assert!(g.direct_conflicts.is_empty());
        assert!(g.overlaps.is_empty());
    }

    #[test]
    fn wide_feature_is_not_critical() {
        let l = Layout::from_rects(vec![Rect::new(0, 0, 400, 900)]);
        let g = extract_phase_geometry(&l, &rules());
        assert_eq!(g.critical_count(), 0);
        assert!(g.shifters.is_empty());
    }

    #[test]
    fn horizontal_feature_shifters_above_and_below() {
        let l = Layout::from_rects(vec![Rect::new(0, 0, 1000, 100)]);
        let g = extract_phase_geometry(&l, &rules());
        let lo = g.shifters[0];
        assert_eq!(lo.rect, Rect::new(-100, -200, 1100, 0));
        assert_eq!(g.shifters[1].rect, Rect::new(-100, 100, 1100, 300));
    }

    #[test]
    fn facing_shifters_of_adjacent_wires_merge() {
        // Pitch 500 (edge to edge): facing shifters gap = 500 - 400 = 100
        // < 280 -> merge; far shifters blocked by the wire bodies.
        let l = Layout::from_rects(vec![wire(0, 0, 100, 1000), wire(600, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &rules());
        assert_eq!(g.overlaps.len(), 1);
        let o = g.overlaps[0];
        // Shifter 1 is wire 0's High (right); shifter 2 is wire 1's Low.
        assert_eq!((o.a, o.b), (1, 2));
        assert_eq!(o.gap_x, 100);
        assert_eq!(o.weight, 280 - 100);
        assert!(o.correctable_by_vertical_space());
        assert!(!o.correctable_by_horizontal_space());
    }

    #[test]
    fn far_wires_do_not_interact() {
        let l = Layout::from_rects(vec![wire(0, 0, 100, 1000), wire(2000, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &rules());
        assert!(g.overlaps.is_empty());
    }

    #[test]
    fn feature_body_blocks_cross_pair() {
        // Tight pitch 300: A_high and B_high are 200 apart along x, but
        // wire B's body fills that corridor, so only the facing pair and
        // possibly diagonal interactions merge.
        let l = Layout::from_rects(vec![wire(0, 0, 100, 1000), wire(400, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &rules());
        // Facing pair (A_high=1, B_low=2) overlaps geometrically.
        assert!(g.overlaps.iter().any(|o| (o.a, o.b) == (1, 2)));
        // A_high (1) to B_high (3): corridor crosses B's body: blocked.
        assert!(!g.overlaps.iter().any(|o| (o.a, o.b) == (1, 3)));
        // A_low (0) to B_low (2): corridor crosses A's body: blocked.
        assert!(!g.overlaps.iter().any(|o| (o.a, o.b) == (0, 2)));
    }

    #[test]
    fn gate_over_strap_shares_one_shifter_with_both_gate_shifters() {
        let r = rules();
        // Horizontal strap below a vertical gate; gate bottom 400 above
        // the strap top: strap_high spans up to strap.y+200; gate shifters
        // reach down to gate.y_lo - 100; vertical gap = 400-200-100 = 100
        // < 280 -> both gate shifters merge with the strap's top shifter.
        let strap = Rect::new(-1000, 0, 1000, 100);
        let gate = Rect::new(-50, 500, 50, 1500);
        let l = Layout::from_rects(vec![strap, gate]);
        let g = extract_phase_geometry(&l, &r);
        // strap shifters 0 (low) 1 (high); gate shifters 2 (low) 3 (high)
        let has = |a, b| g.overlaps.iter().any(|o| (o.a, o.b) == (a, b));
        assert!(has(1, 2), "strap top ~ gate left: {:?}", g.overlaps);
        assert!(has(1, 3), "strap top ~ gate right");
        // No contradiction within one feature.
        assert!(g.direct_conflicts.is_empty());
    }

    #[test]
    fn line_end_jog_interacts_diagonally() {
        // Two stacked vertical wires with a horizontal jog: the upper
        // wire's low shifter reaches down past the lower wire's high
        // shifter corner-to-corner.
        let lower = wire(0, 0, 100, 1000);
        let upper = wire(360, 1200, 100, 1000);
        let l = Layout::from_rects(vec![lower, upper]);
        let g = extract_phase_geometry(&l, &rules());
        // lower_high (1) spans x [100,300], y [-100,1100];
        // upper_low (2) spans x [160,360], y [1100,2300]: they touch in y
        // and overlap in x -> merge pair.
        assert!(g.overlaps.iter().any(|o| (o.a, o.b) == (1, 2)));
    }

    #[test]
    fn overlapping_shifters_have_weight_above_spacing() {
        // Deeply interpenetrating shifters (pitch 240 -> facing shifters
        // overlap by 160): weight = spacing - max(gap) where gap is
        // negative.
        let l = Layout::from_rects(vec![wire(0, 0, 100, 1000), wire(340, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &rules());
        let o = g
            .overlaps
            .iter()
            .find(|o| (o.a, o.b) == (1, 2))
            .expect("facing pair merges");
        assert_eq!(o.gap_x, -160);
        // gap_y is negative too (same y span): weight = 280 - max(-160, gap_y).
        assert!(o.weight > 280);
        assert!(!o.correctable_by_vertical_space());
    }

    #[test]
    fn parallel_extraction_is_bit_identical() {
        let r = rules();
        let l = crate::synth::generate(
            &crate::synth::SynthParams {
                rows: 2,
                gates_per_row: 40,
                strap_frac: 0.6,
                jog_frac: 0.08,
                short_mid_frac: 0.06,
                ..Default::default()
            },
            &r,
        );
        let serial = extract_phase_geometry(&l, &r);
        for parallelism in [0usize, 2, 4, 8] {
            assert_eq!(
                extract_phase_geometry_par(&l, &r, parallelism),
                serial,
                "parallelism {parallelism}"
            );
        }
    }

    #[test]
    fn square_feature_treated_as_vertical() {
        let l = Layout::from_rects(vec![Rect::new(0, 0, 100, 100)]);
        let g = extract_phase_geometry(&l, &rules());
        assert_eq!(g.features[0].orientation, FeatureOrientation::Vertical);
        assert_eq!(g.shifters.len(), 2);
    }
}
