//! Cell/instance hierarchy: unique masters plus placed references.
//!
//! Real chips are not flat polygon soup — they are a DAG of cells, each
//! instantiated many times under a [`Placement`] (translation plus a
//! 90°-multiple rotation and optional reflection, per GDSII
//! `SREF`/`AREF`/`STRANS`). A [`HierLayout`] holds the unique [`Cell`]
//! masters and the reference structure; [`HierLayout::flatten`] expands it
//! deterministically into a flat [`Layout`] (a cell's own rects first,
//! then each instance's subtree in declaration order, depth first), and
//! [`HierLayout::flatten_with_placements`] additionally reports every
//! placed cell occurrence with its absolute placement and the contiguous
//! flat-rect range its subtree occupies — the provenance `aapsm-core`
//! uses to reuse per-cell detection results across placements.
//!
//! [`HierLayout::sanitize`] extends the flat sanitization discipline with
//! the failure modes hierarchy introduces: dangling cell references,
//! instance-reference cycles, placements that push geometry out of the
//! representable coordinate range, and expansion blow-ups — each a
//! structured [`LayoutError`], never a panic or silent truncation.

use crate::layout::{Layout, LayoutError};
use crate::placement::Placement;
use crate::rules::DesignRules;
use aapsm_geom::Rect;

/// A placed reference to another cell.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Instance {
    /// Index of the referenced cell in [`HierLayout::cells`].
    pub cell: usize,
    /// Transform from the referenced cell's coordinates into this cell's.
    pub placement: Placement,
}

/// A unique cell master: its own geometry plus placed sub-cells.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Cell {
    /// Structure name (GDSII `STRNAME`); must be unique per hierarchy for
    /// stream round-trips.
    pub name: String,
    /// The cell's own polysilicon rectangles, in master coordinates.
    pub rects: Vec<Rect>,
    /// Placed sub-cells, expanded in order after the own rects.
    pub instances: Vec<Instance>,
}

impl Cell {
    /// Creates an empty cell with the given name.
    pub fn new(name: impl Into<String>) -> Cell {
        Cell {
            name: name.into(),
            rects: Vec::new(),
            instances: Vec::new(),
        }
    }
}

/// One placed occurrence of a cell inside a flattened hierarchy.
///
/// Produced by [`HierLayout::flatten_with_placements`] in depth-first
/// pre-order. The occurrence's whole subtree (its own rects and every
/// nested instance's) occupies the contiguous flat-rect index range
/// `rect_start..rect_end`; a parent occurrence's range contains its
/// children's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlacedCell {
    /// Index of the placed cell in [`HierLayout::cells`].
    pub cell: usize,
    /// Absolute placement (composition of every placement on the path
    /// from the top cell).
    pub placement: Placement,
    /// Nesting depth: `1` for instances placed directly in the top cell.
    pub depth: usize,
    /// First flat-rect index of the occurrence's subtree.
    pub rect_start: usize,
    /// One past the last flat-rect index of the occurrence's subtree.
    pub rect_end: usize,
}

/// A hierarchical layout: unique cells plus a designated top.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HierLayout {
    /// The cell table; instances reference cells by index into it.
    pub cells: Vec<Cell>,
    /// Index of the top (root) cell; `None` for an empty hierarchy.
    pub top: Option<usize>,
}

impl HierLayout {
    /// Hard cap on the flattened rectangle count: a corrupt or
    /// adversarial stream (e.g. a byte-flipped `COLROW`) must produce a
    /// structured error, not an out-of-memory expansion.
    pub const MAX_FLATTENED_RECTS: u64 = 1 << 24;

    /// Creates an empty hierarchy.
    pub fn new() -> HierLayout {
        HierLayout::default()
    }

    /// Adds a cell and returns its index.
    pub fn add_cell(&mut self, cell: Cell) -> usize {
        self.cells.push(cell);
        self.cells.len() - 1
    }

    /// Checks reference integrity over **all** cells (not just those
    /// reachable from the top): every instance must name a cell in the
    /// table and the reference graph must be a DAG. Returns the cells in
    /// a topological order (every cell after all cells it instantiates).
    ///
    /// # Errors
    ///
    /// [`LayoutError::UnknownCell`] on a dangling reference (including an
    /// out-of-range `top`, reported with `instance = 0`);
    /// [`LayoutError::InstanceCycle`] when a cell transitively
    /// instantiates itself.
    pub fn validate_refs(&self) -> Result<Vec<usize>, LayoutError> {
        if let Some(top) = self.top {
            if top >= self.cells.len() {
                return Err(LayoutError::UnknownCell {
                    cell: top,
                    instance: 0,
                });
            }
        }
        for (ci, cell) in self.cells.iter().enumerate() {
            for (ii, inst) in cell.instances.iter().enumerate() {
                if inst.cell >= self.cells.len() {
                    return Err(LayoutError::UnknownCell {
                        cell: ci,
                        instance: ii,
                    });
                }
            }
        }
        // Iterative three-color DFS over every cell; gray-hit = cycle.
        const WHITE: u8 = 0;
        const GRAY: u8 = 1;
        const BLACK: u8 = 2;
        let mut color = vec![WHITE; self.cells.len()];
        let mut order = Vec::with_capacity(self.cells.len());
        for root in 0..self.cells.len() {
            if color[root] != WHITE {
                continue;
            }
            // (cell, next child index to visit)
            let mut stack: Vec<(usize, usize)> = vec![(root, 0)];
            color[root] = GRAY;
            while let Some(&mut (c, ref mut next)) = stack.last_mut() {
                if let Some(inst) = self.cells[c].instances.get(*next) {
                    *next += 1;
                    match color[inst.cell] {
                        WHITE => {
                            color[inst.cell] = GRAY;
                            stack.push((inst.cell, 0));
                        }
                        GRAY => return Err(LayoutError::InstanceCycle { cell: inst.cell }),
                        _ => {}
                    }
                } else {
                    color[c] = BLACK;
                    order.push(c);
                    stack.pop();
                }
            }
        }
        Ok(order)
    }

    /// The number of rectangles [`Self::flatten`] would produce,
    /// saturating at `u64::MAX`.
    ///
    /// # Errors
    ///
    /// Propagates [`Self::validate_refs`] errors.
    pub fn flattened_len(&self) -> Result<u64, LayoutError> {
        let order = self.validate_refs()?;
        let mut counts = vec![0u64; self.cells.len()];
        for c in order {
            let mut n = self.cells[c].rects.len() as u64;
            for inst in &self.cells[c].instances {
                n = n.saturating_add(counts[inst.cell]);
            }
            counts[c] = n;
        }
        Ok(self.top.map(|t| counts[t]).unwrap_or(0))
    }

    /// Flattens the hierarchy into a flat [`Layout`].
    ///
    /// Deterministic expansion order: a cell's own rects first, then each
    /// instance's subtree in declaration order, depth first.
    ///
    /// # Errors
    ///
    /// Everything [`Self::validate_refs`] reports, plus
    /// [`LayoutError::HierarchyTooLarge`] past
    /// [`Self::MAX_FLATTENED_RECTS`] and
    /// [`LayoutError::PlacementOutOfRange`] when a composed placement
    /// overflows `i64` coordinates.
    pub fn flatten(&self) -> Result<Layout, LayoutError> {
        self.flatten_with_placements().map(|(flat, _)| flat)
    }

    /// [`Self::flatten`], additionally reporting every placed cell
    /// occurrence ([`PlacedCell`]) in depth-first pre-order. The top cell
    /// itself is not an occurrence; its own rects occupy the indices not
    /// covered by any depth-1 occurrence.
    ///
    /// # Errors
    ///
    /// As for [`Self::flatten`].
    pub fn flatten_with_placements(&self) -> Result<(Layout, Vec<PlacedCell>), LayoutError> {
        let total = self.flattened_len()?;
        if total > Self::MAX_FLATTENED_RECTS {
            return Err(LayoutError::HierarchyTooLarge { flattened: total });
        }
        let mut rects: Vec<Rect> = Vec::with_capacity(total as usize);
        let mut occs: Vec<PlacedCell> = Vec::new();
        let Some(top) = self.top else {
            return Ok((Layout::new(), occs));
        };

        enum Frame {
            // via = (parent cell, instance index) for error attribution;
            // occ = pre-created occurrence slot, None for the top cell.
            Expand {
                cell: usize,
                abs: Placement,
                via: Option<(usize, usize)>,
                depth: usize,
                occ: Option<usize>,
            },
            Close {
                occ: usize,
            },
        }

        let mut stack = vec![Frame::Expand {
            cell: top,
            abs: Placement::IDENTITY,
            via: None,
            depth: 0,
            occ: None,
        }];
        while let Some(frame) = stack.pop() {
            match frame {
                Frame::Close { occ } => occs[occ].rect_end = rects.len(),
                Frame::Expand {
                    cell,
                    abs,
                    via,
                    depth,
                    occ,
                } => {
                    if let Some(o) = occ {
                        occs[o].rect_start = rects.len();
                    }
                    let master = &self.cells[cell];
                    for r in &master.rects {
                        match abs.try_apply_rect(r) {
                            Some(img) => rects.push(img),
                            None => {
                                let (c, i) = via.unwrap_or((cell, 0));
                                return Err(LayoutError::PlacementOutOfRange {
                                    cell: c,
                                    instance: i,
                                });
                            }
                        }
                    }
                    if let Some(o) = occ {
                        stack.push(Frame::Close { occ: o });
                    }
                    for (ii, inst) in master.instances.iter().enumerate().rev() {
                        let Some(child_abs) = abs.try_compose(&inst.placement) else {
                            return Err(LayoutError::PlacementOutOfRange { cell, instance: ii });
                        };
                        let o = occs.len();
                        occs.push(PlacedCell {
                            cell: inst.cell,
                            placement: child_abs,
                            depth: depth + 1,
                            rect_start: 0,
                            rect_end: 0,
                        });
                        stack.push(Frame::Expand {
                            cell: inst.cell,
                            abs: child_abs,
                            via: Some((cell, ii)),
                            depth: depth + 1,
                            occ: Some(o),
                        });
                    }
                }
            }
        }
        // Occurrence slots were created at push time (reverse child
        // order); re-emit them in depth-first pre-order by rect_start.
        occs.sort_by_key(|o| (o.rect_start, std::cmp::Reverse(o.rect_end)));
        Ok((Layout::from_rects(rects), occs))
    }

    /// Flattens a single cell's subtree under an explicit placement —
    /// the per-cell master geometry `aapsm-core` primes its solve cache
    /// with.
    ///
    /// # Errors
    ///
    /// As for [`Self::flatten`] (reference errors cover the whole table).
    pub fn flatten_cell(&self, cell: usize, placement: &Placement) -> Result<Layout, LayoutError> {
        if cell >= self.cells.len() {
            return Err(LayoutError::UnknownCell { cell, instance: 0 });
        }
        let sub = HierLayout {
            cells: self.cells.clone(),
            top: Some(cell),
        };
        let (flat, _) = sub.flatten_with_placements()?;
        let mut rects = Vec::with_capacity(flat.rects().len());
        for (i, r) in flat.rects().iter().enumerate() {
            match placement.try_apply_rect(r) {
                Some(img) => rects.push(img),
                None => {
                    return Err(LayoutError::PlacementOutOfRange { cell, instance: i });
                }
            }
        }
        Ok(Layout::from_rects(rects))
    }

    /// The hierarchy-aware extension of [`Layout::sanitize`]: reference
    /// integrity and expansion bounds first (over **all** cells, so a
    /// dormant cycle in an unreferenced branch still surfaces), then the
    /// flat discipline on the expanded geometry.
    ///
    /// # Errors
    ///
    /// The first error found, hierarchy checks before flat ones.
    pub fn sanitize(&self, rules: &DesignRules) -> Result<(), LayoutError> {
        let flat = self.flatten()?;
        flat.sanitize(rules)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::placement::{Orient, Rot};

    fn leaf(name: &str, rects: &[Rect]) -> Cell {
        Cell {
            name: name.into(),
            rects: rects.to_vec(),
            instances: Vec::new(),
        }
    }

    #[test]
    fn flatten_order_is_rects_then_instances_depth_first() {
        let mut h = HierLayout::new();
        let a = h.add_cell(leaf("A", &[Rect::new(0, 0, 10, 10)]));
        let b = h.add_cell(Cell {
            name: "B".into(),
            rects: vec![Rect::new(0, 0, 5, 5)],
            instances: vec![Instance {
                cell: a,
                placement: Placement::at(100, 0),
            }],
        });
        let t = h.add_cell(Cell {
            name: "T".into(),
            rects: vec![Rect::new(-50, -50, -40, -40)],
            instances: vec![
                Instance {
                    cell: b,
                    placement: Placement::at(0, 1000),
                },
                Instance {
                    cell: a,
                    placement: Placement::at(0, 2000),
                },
            ],
        });
        h.top = Some(t);
        let (flat, occs) = h.flatten_with_placements().expect("flattens");
        assert_eq!(
            flat.rects(),
            vec![
                Rect::new(-50, -50, -40, -40),   // top's own rect
                Rect::new(0, 1000, 5, 1005),     // B's own rect
                Rect::new(100, 1000, 110, 1010), // A via B
                Rect::new(0, 2000, 10, 2010),    // A directly
            ]
        );
        // Three occurrences in pre-order: B@depth1, A@depth2, A@depth1.
        assert_eq!(occs.len(), 3);
        assert_eq!((occs[0].cell, occs[0].depth), (b, 1));
        assert_eq!((occs[0].rect_start, occs[0].rect_end), (1, 3));
        assert_eq!((occs[1].cell, occs[1].depth), (a, 2));
        assert_eq!((occs[1].rect_start, occs[1].rect_end), (2, 3));
        assert_eq!((occs[2].cell, occs[2].depth), (a, 1));
        assert_eq!((occs[2].rect_start, occs[2].rect_end), (3, 4));
        assert_eq!(h.flattened_len().expect("valid"), 4);
    }

    #[test]
    fn rotated_instance_flattens_through_the_placement() {
        let mut h = HierLayout::new();
        let a = h.add_cell(leaf("A", &[Rect::new(2, 1, 10, 4)]));
        let t = h.add_cell(Cell {
            name: "T".into(),
            rects: vec![],
            instances: vec![Instance {
                cell: a,
                placement: Placement::new(Orient::rotated(Rot::R90), 1000, 500),
            }],
        });
        h.top = Some(t);
        let flat = h.flatten().expect("flattens");
        assert_eq!(flat.rects(), vec![Rect::new(996, 502, 999, 510)]);
    }

    #[test]
    fn cycle_is_a_structured_error_even_when_unreachable() {
        let mut h = HierLayout::new();
        let a = h.add_cell(Cell {
            name: "A".into(),
            rects: vec![],
            instances: vec![],
        });
        let t = h.add_cell(leaf("T", &[Rect::new(0, 0, 10, 10)]));
        h.top = Some(t);
        // Self-loop on A, which the top never references.
        h.cells[a].instances.push(Instance {
            cell: a,
            placement: Placement::IDENTITY,
        });
        assert_eq!(
            h.sanitize(&DesignRules::default()),
            Err(LayoutError::InstanceCycle { cell: a })
        );
    }

    #[test]
    fn dangling_reference_is_reported() {
        let mut h = HierLayout::new();
        let t = h.add_cell(Cell {
            name: "T".into(),
            rects: vec![],
            instances: vec![Instance {
                cell: 7,
                placement: Placement::IDENTITY,
            }],
        });
        h.top = Some(t);
        assert_eq!(
            h.flatten().map(|_| ()),
            Err(LayoutError::UnknownCell {
                cell: t,
                instance: 0
            })
        );
    }

    #[test]
    fn out_of_range_placement_is_reported() {
        let mut h = HierLayout::new();
        let a = h.add_cell(leaf("A", &[Rect::new(0, 0, 10, 10)]));
        let t = h.add_cell(Cell {
            name: "T".into(),
            rects: vec![],
            instances: vec![Instance {
                cell: a,
                placement: Placement::at(i64::MAX - 2, 0),
            }],
        });
        h.top = Some(t);
        assert_eq!(
            h.flatten().map(|_| ()),
            Err(LayoutError::PlacementOutOfRange {
                cell: t,
                instance: 0
            })
        );
    }

    #[test]
    fn expansion_cap_is_enforced() {
        // Doubling chain: 40 levels × 2 instances ≈ 2^40 rects.
        let mut h = HierLayout::new();
        let mut prev = h.add_cell(leaf("L0", &[Rect::new(0, 0, 1, 1)]));
        for i in 1..=40 {
            let c = h.add_cell(Cell {
                name: format!("L{i}"),
                rects: vec![],
                instances: vec![
                    Instance {
                        cell: prev,
                        placement: Placement::at(0, 0),
                    },
                    Instance {
                        cell: prev,
                        placement: Placement::at(1 << i, 0),
                    },
                ],
            });
            prev = c;
        }
        h.top = Some(prev);
        match h.flatten() {
            Err(LayoutError::HierarchyTooLarge { flattened }) => {
                assert!(flattened > HierLayout::MAX_FLATTENED_RECTS);
            }
            other => panic!("expected HierarchyTooLarge, got {other:?}"),
        }
    }

    #[test]
    fn flatten_cell_matches_manual_transform() {
        let mut h = HierLayout::new();
        let a = h.add_cell(leaf("A", &[Rect::new(0, 0, 4, 2)]));
        let b = h.add_cell(Cell {
            name: "B".into(),
            rects: vec![Rect::new(10, 10, 12, 20)],
            instances: vec![Instance {
                cell: a,
                placement: Placement::at(0, 30),
            }],
        });
        h.top = Some(b);
        let p = Placement::new(
            Orient {
                rotation: Rot::R180,
                reflect: false,
            },
            100,
            100,
        );
        let sub = h.flatten_cell(b, &p).expect("flattens");
        let direct: Vec<Rect> = h
            .flatten()
            .expect("flattens")
            .rects()
            .iter()
            .map(|r| p.try_apply_rect(r).expect("in range"))
            .collect();
        assert_eq!(sub.rects(), direct);
    }
}
