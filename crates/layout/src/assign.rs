//! Independent phase-assignability oracle.
//!
//! This checker propagates the raw phase constraints (opposite phase
//! across each critical feature, same phase for each merged shifter pair)
//! through a small parity union-find of its own. It deliberately shares no
//! code with the conflict-graph pipeline in `aapsm-core`, so the two can
//! cross-validate each other: a layout is phase-assignable here **iff**
//! the phase conflict graph (and the feature graph) is bipartite.

use crate::PhaseGeometry;

/// A satisfying phase assignment (0 or 180 degrees per shifter).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PhaseAssignment {
    /// Phase bit per shifter index (0 = 0°, 1 = 180°).
    pub phase: Vec<u8>,
}

impl PhaseAssignment {
    /// Whether the assignment satisfies all constraints of `geom`.
    pub fn satisfies(&self, geom: &PhaseGeometry) -> bool {
        for f in &geom.features {
            if let Some((lo, hi)) = f.shifters {
                if self.phase[lo] == self.phase[hi] {
                    return false;
                }
            }
        }
        geom.overlaps
            .iter()
            .all(|o| self.phase[o.a] == self.phase[o.b])
    }
}

/// Why a layout is not phase-assignable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignabilityWitness {
    /// A feature's two shifters are also forced to the same phase.
    DirectConflict {
        /// The contradicted feature.
        feature: usize,
    },
    /// Adding this merge constraint closed an odd constraint cycle.
    OddCycle {
        /// Index into [`PhaseGeometry::overlaps`] of the violating pair.
        overlap_index: usize,
    },
}

/// Checks phase-assignability by constraint propagation.
///
/// # Errors
///
/// Returns the first contradiction encountered (deterministically:
/// flanking constraints first, then overlap constraints in order).
pub fn check_assignable(geom: &PhaseGeometry) -> Result<PhaseAssignment, AssignabilityWitness> {
    if let Some(d) = geom.direct_conflicts.first() {
        return Err(AssignabilityWitness::DirectConflict { feature: d.feature });
    }
    let n = geom.shifters.len();
    let mut uf = Puf::new(n);
    for (fi, f) in geom.features.iter().enumerate() {
        if let Some((lo, hi)) = f.shifters {
            if uf.union(lo, hi, 1).is_err() {
                // Cannot happen without a prior merge constraint, but keep
                // the arm for safety.
                return Err(AssignabilityWitness::DirectConflict { feature: fi });
            }
        }
    }
    for (oi, o) in geom.overlaps.iter().enumerate() {
        if uf.union(o.a, o.b, 0).is_err() {
            return Err(AssignabilityWitness::OddCycle { overlap_index: oi });
        }
    }
    // Extract one concrete assignment: parity relative to each root.
    let mut phase = vec![0u8; n];
    for (s, ph) in phase.iter_mut().enumerate() {
        let (_, p) = uf.find(s);
        *ph = p;
    }
    Ok(PhaseAssignment { phase })
}

/// Minimal parity union-find, local to this oracle on purpose.
struct Puf {
    parent: Vec<usize>,
    parity: Vec<u8>,
}

impl Puf {
    fn new(n: usize) -> Self {
        Puf {
            parent: (0..n).collect(),
            parity: vec![0; n],
        }
    }

    fn find(&mut self, x: usize) -> (usize, u8) {
        if self.parent[x] == x {
            return (x, 0);
        }
        let (root, pp) = self.find(self.parent[x]);
        self.parent[x] = root;
        self.parity[x] ^= pp;
        (root, self.parity[x])
    }

    fn union(&mut self, a: usize, b: usize, rel: u8) -> Result<(), ()> {
        let (ra, pa) = self.find(a);
        let (rb, pb) = self.find(b);
        if ra == rb {
            return if pa ^ pb == rel { Ok(()) } else { Err(()) };
        }
        self.parent[rb] = ra;
        self.parity[rb] = pa ^ pb ^ rel;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{extract_phase_geometry, DesignRules, Layout};
    use aapsm_geom::Rect;

    #[test]
    fn single_wire_is_assignable() {
        let l = Layout::from_rects(vec![Rect::new(0, 0, 100, 1000)]);
        let g = extract_phase_geometry(&l, &DesignRules::default());
        let a = check_assignable(&g).unwrap();
        assert!(a.satisfies(&g));
        assert_ne!(a.phase[0], a.phase[1]);
    }

    #[test]
    fn row_of_wires_alternates() {
        // Wires at pitch 600: chain of facing-shifter merges. Assignable.
        let rects: Vec<Rect> = (0..6)
            .map(|i| Rect::new(i * 600, 0, i * 600 + 100, 2000))
            .collect();
        let g = extract_phase_geometry(&Layout::from_rects(rects), &DesignRules::default());
        assert!(!g.overlaps.is_empty());
        let a = check_assignable(&g).unwrap();
        assert!(a.satisfies(&g));
    }

    #[test]
    fn gate_over_strap_is_not_assignable() {
        let strap = Rect::new(-1000, 0, 1000, 100);
        let gate = Rect::new(-50, 500, 50, 1500);
        let g = extract_phase_geometry(
            &Layout::from_rects(vec![strap, gate]),
            &DesignRules::default(),
        );
        let err = check_assignable(&g).unwrap_err();
        assert!(matches!(err, AssignabilityWitness::OddCycle { .. }));
    }

    #[test]
    fn witness_overlap_really_closes_odd_cycle() {
        let strap = Rect::new(-1000, 0, 1000, 100);
        let gate = Rect::new(-50, 500, 50, 1500);
        let mut g = extract_phase_geometry(
            &Layout::from_rects(vec![strap, gate]),
            &DesignRules::default(),
        );
        let AssignabilityWitness::OddCycle { overlap_index } = check_assignable(&g).unwrap_err()
        else {
            panic!("expected odd cycle");
        };
        // Removing the witness constraint restores assignability (for this
        // two-feature example).
        g.overlaps.remove(overlap_index);
        assert!(check_assignable(&g).is_ok());
    }
}
