//! A simple line-oriented text format for layouts.
//!
//! ```text
//! # comment
//! RECT x_lo y_lo x_hi y_hi
//! ```

use crate::Layout;
use aapsm_geom::Rect;
use std::fmt;

/// Error parsing the text layout format.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseLayoutError {
    /// 1-based line number.
    pub line: usize,
    /// Explanation.
    pub message: String,
}

impl fmt::Display for ParseLayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseLayoutError {}

/// Parses the text layout format.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_layout(text: &str) -> Result<Layout, ParseLayoutError> {
    let mut layout = Layout::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        match parts.next() {
            Some("RECT") => {
                let mut coord = |name: &str| -> Result<i64, ParseLayoutError> {
                    parts
                        .next()
                        .ok_or_else(|| ParseLayoutError {
                            line: i + 1,
                            message: format!("missing {name}"),
                        })?
                        .parse()
                        .map_err(|e| ParseLayoutError {
                            line: i + 1,
                            message: format!("bad {name}: {e}"),
                        })
                };
                let (x_lo, y_lo, x_hi, y_hi) = (
                    coord("x_lo")?,
                    coord("y_lo")?,
                    coord("x_hi")?,
                    coord("y_hi")?,
                );
                if x_lo >= x_hi || y_lo >= y_hi {
                    return Err(ParseLayoutError {
                        line: i + 1,
                        message: "degenerate rectangle".into(),
                    });
                }
                layout.add_rect(Rect::new(x_lo, y_lo, x_hi, y_hi));
            }
            Some(other) => {
                return Err(ParseLayoutError {
                    line: i + 1,
                    message: format!("unknown directive {other:?}"),
                })
            }
            None => unreachable!("empty lines are skipped"),
        }
    }
    Ok(layout)
}

/// Writes the text layout format.
pub fn write_layout(layout: &Layout) -> String {
    let mut out = String::with_capacity(layout.len() * 32 + 64);
    out.push_str("# aapsm layout, 1 dbu = 1 nm\n");
    for r in layout.rects() {
        out.push_str(&format!(
            "RECT {} {} {} {}\n",
            r.x_lo(),
            r.y_lo(),
            r.x_hi(),
            r.y_hi()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let l = Layout::from_rects(vec![Rect::new(0, 0, 100, 400), Rect::new(-50, -60, 70, 80)]);
        let text = write_layout(&l);
        let back = parse_layout(&text).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let l = parse_layout("# hi\n\nRECT 0 0 1 1\n").unwrap();
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_layout("RECT 0 0 1 1\nRECT 5 5 5 9\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("degenerate"));
        let err = parse_layout("POLY 1 2 3").unwrap_err();
        assert!(err.message.contains("unknown directive"));
        let err = parse_layout("RECT 1 2 3").unwrap_err();
        assert!(err.message.contains("missing"));
        let err = parse_layout("RECT a 2 3 4").unwrap_err();
        assert!(err.message.contains("bad x_lo"));
    }
}
