//! Incremental phase-geometry re-extraction for the detect→correct→verify
//! loop.
//!
//! After a [`crate::SpaceCut`] batch, almost all geometry rides the cuts
//! as rigid per-region translations; only rects the cuts stretch, shift
//! apart, or touch change their relations. [`ExtractState`] retains the
//! last extraction's geometry and spatial indices and re-extracts the
//! modified layout by reusing every *clean* merge constraint and
//! rescanning only the pairs near the inserted slabs.
//!
//! # Invariants (mirroring `aapsm_core::shard`'s style)
//!
//! 1. **Bit-identical output.** [`ExtractState::incremental`] leaves
//!    `self.geometry()` byte-identical to
//!    [`crate::extract_phase_geometry`] on the modified layout — same
//!    features, shifters, overlap list (values *and* order) and direct
//!    conflicts. Property-tested in
//!    `aapsm-core/tests/incremental_equivalence.rs`.
//! 2. **Clean-pair reuse is exact.** An old overlap is reused iff the
//!    hull of its two shifter rects is rigid under the cuts
//!    ([`DirtyRegions::rigid_shift_of`]). A rigid hull translates both
//!    rects, their corridor, and every feature body intersecting that
//!    corridor by one vector (the corridor of a low-region pair is
//!    covered identically by a stretched feature's untouched low part),
//!    so gaps, weights and the corridor-blocking verdict are invariant.
//! 3. **Dirty pairs are exactly the slab-touching pairs.** By the
//!    complementarity invariant of [`DirtyRegions`], a pair is *not*
//!    reused iff the post-cut hull of its rects touches an inserted
//!    slab; and any candidate pair whose hull touches a slab has at
//!    least one *probe* touching it (probes cover the whole gap between
//!    candidate rects), so slab queries against the shifter grid
//!    enumerate every dirty candidate. Reused and rescanned constraints
//!    therefore partition the constraint set.
//! 4. **Index stability.** Feature order equals rect order and cuts
//!    preserve rect count/order, so when the criticality pattern is
//!    unchanged, shifter indices are identical and old overlap endpoints
//!    transfer verbatim. Criticality flips (a cut widening a feature —
//!    only possible for cuts the correction planner would never emit)
//!    and any rect that fails to match its predicted post-cut image
//!    trigger a full re-extraction fallback instead of wrong reuse.
//! 5. **Grid maintenance is translate-and-reinsert.** Only boxes a cut
//!    moves or stretches are re-bucketed ([`GridIndex::update`]); boxes
//!    below every cut keep their cells. The per-cell order therefore
//!    differs from a fresh build, which queries and verdicts tolerate by
//!    contract.

use crate::phase_geom::{
    canonicalize_constraints, classify_features, feature_box, scan_pair, shifter_probe, ScanHit,
};
use crate::{DesignRules, Layout, PhaseGeometry, SpaceCut};
use aapsm_geom::{Axis, CutSpec, DirtyRegions, GridIndex, RectSoA};

/// Retained extraction state: the geometry of the last extracted layout
/// plus the spatial indices that produced it.
#[derive(Clone, Debug)]
pub struct ExtractState {
    geom: PhaseGeometry,
    shifter_grid: GridIndex,
    feature_grid: GridIndex,
    radius: i64,
}

/// What one [`ExtractState::incremental`] call did, including the overlap
/// index mappings downstream incremental stages need.
#[derive(Clone, Debug, Default)]
pub struct ExtractDelta {
    /// Old overlap index → new overlap index, for every reused overlap.
    pub overlap_map: Vec<Option<u32>>,
    /// New overlap index → old overlap index (inverse of `overlap_map`).
    pub overlap_preimage: Vec<Option<u32>>,
    /// The whole state was rebuilt from scratch (structural change or
    /// unpredicted geometry); no constraint was reused.
    pub fallback: bool,
    /// Overlaps carried over without rescanning.
    pub reused_overlaps: usize,
    /// Candidate pairs re-run through the scan verdict.
    pub rescanned_pairs: usize,
}

/// Converts layout-level cuts into the geom-level dirty-region summary.
pub fn dirty_regions_for(cuts: &[SpaceCut]) -> DirtyRegions {
    DirtyRegions::from_cuts(cuts.iter().map(|c| CutSpec {
        axis: c.axis,
        position: c.position,
        width: c.width,
    }))
}

impl ExtractState {
    /// From-scratch extraction, retaining the spatial indices.
    ///
    /// This *is* the canonical extractor —
    /// [`crate::extract_phase_geometry_par`] delegates here — so the
    /// incremental path reuses state produced by the exact same code.
    pub fn full(layout: &Layout, rules: &DesignRules, parallelism: usize) -> ExtractState {
        let mut geom = classify_features(layout, rules);
        let radius = rules.interaction_radius();
        let cell = (radius * 2).max(64);
        let mut shifter_grid = GridIndex::new(cell);
        for (i, s) in geom.shifters.iter().enumerate() {
            shifter_grid.insert(i as u32, shifter_probe(s, radius));
        }
        let mut feature_grid = GridIndex::new(cell);
        for (i, f) in geom.features.iter().enumerate() {
            feature_grid.insert(i as u32, feature_box(f));
        }

        let spacing_sq = (rules.shifter_spacing as i128) * (rules.shifter_spacing as i128);
        let shifters = &geom.shifters;
        let boxes = RectSoA::from_rects(shifters.iter().map(|s| &s.rect));
        let features = &geom.features;
        let hits = shifter_grid.par_collect_pairs(parallelism, |ia, ib| {
            scan_pair(
                shifters,
                &boxes,
                features,
                &feature_grid,
                rules,
                spacing_sq,
                ia as usize,
                ib as usize,
            )
        });
        for hit in hits {
            match hit {
                ScanHit::Overlap(o) => geom.overlaps.push(o),
                ScanHit::Direct(d) => geom.direct_conflicts.push(d),
            }
        }
        canonicalize_constraints(&mut geom);
        ExtractState {
            geom,
            shifter_grid,
            feature_grid,
            radius,
        }
    }

    /// The extracted geometry.
    pub fn geometry(&self) -> &PhaseGeometry {
        &self.geom
    }

    /// Replaces this state with a from-scratch extraction of `modified`
    /// and reports the fallback (no constraint reused).
    fn rebuild_full(
        &mut self,
        modified: &Layout,
        rules: &DesignRules,
        parallelism: usize,
    ) -> ExtractDelta {
        let old_overlaps = self.geom.overlaps.len();
        *self = ExtractState::full(modified, rules, parallelism);
        ExtractDelta {
            overlap_map: vec![None; old_overlaps],
            overlap_preimage: vec![None; self.geom.overlaps.len()],
            fallback: true,
            ..ExtractDelta::default()
        }
    }

    /// Consumes the state, keeping only the geometry.
    pub fn into_geometry(self) -> PhaseGeometry {
        self.geom
    }

    /// Re-extracts after `cuts` produced `modified` from the layout this
    /// state was last extracted from. Updates the state in place and
    /// returns the overlap index mappings.
    ///
    /// The result is bit-identical to a from-scratch extraction of
    /// `modified`; when reuse preconditions fail (criticality flip, rect
    /// count change, unpredicted rect movement) the state falls back to
    /// [`ExtractState::full`] and reports it.
    pub fn incremental(
        &mut self,
        modified: &Layout,
        cuts: &[SpaceCut],
        rules: &DesignRules,
        parallelism: usize,
    ) -> ExtractDelta {
        let dirty = dirty_regions_for(cuts);

        // ---- Early adaptive bail-out, before any per-item work: when
        // the cuts dirty most of the chip (a whole-chip correction
        // round, not a localized fix), the pair-by-pair rescan costs
        // more than the streaming from-scratch sweep. One
        // rigid-classification pass over the *old* geometry estimates
        // the dirty fraction in O(shifters · log cuts). Purely a
        // scheduling decision — the full path is bit-identical by
        // definition. Tiny inputs always take the reuse path: they are
        // sub-millisecond either way and the threshold would be noise.
        //
        // The threshold is a quarter, not half: the reuse path's cost is
        // super-linear in the dirty fraction (every dirty shifter
        // re-probes its whole neighborhood), so at 30-50% dirty it
        // already loses to the streaming sweep — measured as the
        // rows_x16 `full_speedup: 0.708` regression against the
        // documented ≥0.7× floor when the bound was a half.
        const ADAPTIVE_FALLBACK_MIN_SHIFTERS: usize = 512;
        if self.geom.shifters.len() >= ADAPTIVE_FALLBACK_MIN_SHIFTERS {
            let dirty_estimate = self
                .geom
                .shifters
                .iter()
                .filter(|s| {
                    dirty
                        .rigid_shift_of_rect(&s.rect.inflate(self.radius))
                        .is_none()
                })
                .count();
            if dirty_estimate * 4 > self.geom.shifters.len() {
                return self.rebuild_full(modified, rules, parallelism);
            }
        }

        let fresh = classify_features(modified, rules);

        // ---- Reuse preconditions: rect count, predicted movement,
        // criticality/orientation-independent shifter layout. ----
        let mut ordered_cuts: Vec<SpaceCut> = cuts.to_vec();
        ordered_cuts.sort_by_key(|c| std::cmp::Reverse(c.position));
        let structurally_ok = fresh.features.len() == self.geom.features.len()
            && fresh.shifters.len() == self.geom.shifters.len()
            && fresh
                .features
                .iter()
                .zip(&self.geom.features)
                .all(|(n, o)| {
                    n.critical == o.critical
                        && n.shifters == o.shifters
                        && n.rect == predicted_rect(o.rect, &ordered_cuts)
                });
        if !structurally_ok {
            return self.rebuild_full(modified, rules, parallelism);
        }

        // ---- Grid maintenance: re-bucket only moved/stretched boxes. ----
        for (i, s) in fresh.shifters.iter().enumerate() {
            self.shifter_grid
                .update(i as u32, shifter_probe(s, self.radius));
        }
        for (i, f) in fresh.features.iter().enumerate() {
            self.feature_grid.update(i as u32, feature_box(f));
        }

        // ---- Reused constraints: rigid pairs carry over verbatim. ----
        let old_overlap_count = self.geom.overlaps.len();
        let mut kept: Vec<(u32, crate::OverlapPair)> = Vec::new();
        for (oi, o) in self.geom.overlaps.iter().enumerate() {
            let hull = self.geom.shifters[o.a]
                .rect
                .hull(&self.geom.shifters[o.b].rect);
            if dirty.rigid_shift_of_rect(&hull).is_some() {
                kept.push((oi as u32, *o));
            }
        }
        let mut kept_directs: Vec<crate::DirectConflict> = Vec::new();
        for d in &self.geom.direct_conflicts {
            // Invariant, not an error path: direct conflicts are only ever
            // recorded against critical features, which carry shifters.
            #[allow(clippy::expect_used)]
            let (lo, hi) = self.geom.features[d.feature]
                .shifters
                .expect("direct conflicts come from critical features");
            let hull = self.geom.shifters[lo]
                .rect
                .hull(&self.geom.shifters[hi].rect);
            if dirty.rigid_shift_of_rect(&hull).is_some() {
                kept_directs.push(*d);
            }
        }

        // ---- Dirty candidates: pairs with a probe touching a slab. ----
        let spacing_sq = (rules.shifter_spacing as i128) * (rules.shifter_spacing as i128);
        let fresh_boxes = RectSoA::from_rects(fresh.shifters.iter().map(|s| &s.rect));
        let mut scratch = aapsm_geom::QueryScratch::default();
        let mut found = Vec::new();
        let mut near_slab = vec![false; fresh.shifters.len()];
        if let Some((bx_lo, by_lo, bx_hi, by_hi)) = self.shifter_grid.bounds() {
            for region in dirty
                .slabs(Axis::X)
                .map(|(lo, hi)| (lo, by_lo, hi, by_hi))
                .chain(dirty.slabs(Axis::Y).map(|(lo, hi)| (bx_lo, lo, bx_hi, hi)))
                .collect::<Vec<_>>()
            {
                self.shifter_grid
                    .query_into(region, &mut scratch, &mut found);
                for &id in &found {
                    near_slab[id as usize] = true;
                }
            }
        }
        let mut rescanned = 0usize;
        let mut hits: Vec<ScanHit> = Vec::new();
        for s in 0..fresh.shifters.len() {
            if !near_slab[s] {
                continue;
            }
            self.shifter_grid.query_into(
                self.shifter_grid.bbox(s as u32),
                &mut scratch,
                &mut found,
            );
            for &p in &found {
                let p = p as usize;
                if p == s || (near_slab[p] && p < s) {
                    continue;
                }
                let hull = fresh.shifters[s].rect.hull(&fresh.shifters[p].rect);
                if !dirty.post_bbox_touches_slab((
                    hull.x_lo(),
                    hull.y_lo(),
                    hull.x_hi(),
                    hull.y_hi(),
                )) {
                    continue; // rigid pair: covered by reuse
                }
                rescanned += 1;
                hits.extend(scan_pair(
                    &fresh.shifters,
                    &fresh_boxes,
                    &fresh.features,
                    &self.feature_grid,
                    rules,
                    spacing_sq,
                    s,
                    p,
                ));
            }
        }

        // ---- Merge into canonical order and build the index maps. ----
        let reused_overlaps = kept.len();
        let mut merged: Vec<(Option<u32>, crate::OverlapPair)> =
            kept.into_iter().map(|(oi, o)| (Some(oi), o)).collect();
        let mut directs = kept_directs;
        for hit in hits {
            match hit {
                ScanHit::Overlap(o) => merged.push((None, o)),
                ScanHit::Direct(d) => directs.push(d),
            }
        }
        merged.sort_by_key(|(_, o)| (o.a, o.b));
        let mut overlap_map = vec![None; old_overlap_count];
        let mut overlap_preimage = vec![None; merged.len()];
        let mut overlaps = Vec::with_capacity(merged.len());
        for (new_oi, (old_oi, o)) in merged.into_iter().enumerate() {
            if let Some(old_oi) = old_oi {
                overlap_map[old_oi as usize] = Some(new_oi as u32);
                overlap_preimage[new_oi] = Some(old_oi);
            }
            overlaps.push(o);
        }
        directs.sort_by_key(|d| d.feature);

        self.geom = PhaseGeometry {
            features: fresh.features,
            shifters: fresh.shifters,
            overlaps,
            direct_conflicts: directs,
        };
        ExtractDelta {
            overlap_map,
            overlap_preimage,
            fallback: false,
            reused_overlaps,
            rescanned_pairs: rescanned,
        }
    }
}

/// The post-cut image of one rect under a cut batch (the same math as
/// [`crate::apply_cuts`]; `ordered_cuts` must already be sorted by
/// descending position — sorted once by the caller, not per rect).
fn predicted_rect(r: aapsm_geom::Rect, ordered_cuts: &[SpaceCut]) -> aapsm_geom::Rect {
    let mut out = r;
    for cut in ordered_cuts {
        out = cut.apply_rect(&out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{apply_cuts, extract_phase_geometry, fixtures};

    fn assert_incremental_matches(layout: &Layout, cuts: &[SpaceCut], expect_fallback: bool) {
        let rules = DesignRules::default();
        let mut state = ExtractState::full(layout, &rules, 1);
        let modified = apply_cuts(layout, cuts);
        let delta = state.incremental(&modified, cuts, &rules, 1);
        assert_eq!(delta.fallback, expect_fallback);
        let scratch = extract_phase_geometry(&modified, &rules);
        assert_eq!(state.geometry(), &scratch);
        // The maps relate identical overlap values on both sides.
        for (old_oi, new_oi) in delta.overlap_map.iter().enumerate() {
            if let Some(new_oi) = new_oi {
                assert_eq!(
                    delta.overlap_preimage[*new_oi as usize],
                    Some(old_oi as u32)
                );
            }
        }
    }

    #[test]
    fn zero_cuts_reuse_everything() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(4, &rules);
        let mut state = ExtractState::full(&layout, &rules, 1);
        let before = state.geometry().clone();
        let delta = state.incremental(&layout.clone(), &[], &rules, 1);
        assert!(!delta.fallback);
        assert_eq!(delta.rescanned_pairs, 0);
        assert_eq!(delta.reused_overlaps, before.overlaps.len());
        assert_eq!(state.geometry(), &before);
    }

    #[test]
    fn single_cut_matches_scratch() {
        let rules = DesignRules::default();
        for (layout, cut) in [
            (
                fixtures::strap_under_bus(5, &rules),
                SpaceCut {
                    axis: Axis::Y,
                    position: 300,
                    width: 180,
                },
            ),
            (
                fixtures::short_middle_wire(&rules),
                SpaceCut {
                    axis: Axis::X,
                    position: 150,
                    width: 200,
                },
            ),
        ] {
            assert_incremental_matches(&layout, &[cut], false);
        }
    }

    #[test]
    fn both_axis_cuts_match_scratch() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(6, &rules);
        let cuts = [
            SpaceCut {
                axis: Axis::Y,
                position: 300,
                width: 100,
            },
            SpaceCut {
                axis: Axis::X,
                position: 350,
                width: 90,
            },
            SpaceCut {
                axis: Axis::X,
                position: 1750,
                width: 40,
            },
        ];
        assert_incremental_matches(&layout, &cuts, false);
    }

    #[test]
    fn boundary_touching_cut_matches_scratch() {
        // Cut exactly on a feature edge: rects touch the cut line, the
        // touching pairs go dirty, and the result still matches scratch.
        let layout = fixtures::wire_row(5, 600);
        let cuts = [SpaceCut {
            axis: Axis::X,
            position: 700, // == wire 1's x_hi
            width: 120,
        }];
        assert_incremental_matches(&layout, &cuts, false);
    }

    #[test]
    fn criticality_flip_falls_back() {
        // A vertical cut through a vertical wire's interior widens it past
        // the critical threshold — the planner never emits this, but the
        // state must survive it via the full fallback.
        let layout = fixtures::wire_row(3, 600);
        let cuts = [SpaceCut {
            axis: Axis::X,
            position: 650, // interior of wire 1 (x 600..700)
            width: 300,
        }];
        assert_incremental_matches(&layout, &cuts, true);
    }

    #[test]
    fn second_round_composes() {
        let rules = DesignRules::default();
        let layout = fixtures::strap_under_bus(5, &rules);
        let mut state = ExtractState::full(&layout, &rules, 1);
        let cuts1 = [SpaceCut {
            axis: Axis::Y,
            position: 300,
            width: 150,
        }];
        let step1 = apply_cuts(&layout, &cuts1);
        state.incremental(&step1, &cuts1, &rules, 1);
        let cuts2 = [SpaceCut {
            axis: Axis::X,
            position: 350,
            width: 80,
        }];
        let step2 = apply_cuts(&step1, &cuts2);
        let delta = state.incremental(&step2, &cuts2, &rules, 1);
        assert!(!delta.fallback);
        assert_eq!(state.geometry(), &extract_phase_geometry(&step2, &rules));
    }

    /// Regression for the whole-chip round falling below the documented
    /// ≥0.7× adaptive-fallback floor: with the bail-out bound at one
    /// half, a round dirtying 30-50% of the chip took the (super-linear)
    /// reuse path and lost to the streaming sweep. The bound is now a
    /// quarter; this pins the *decision*, which is deterministic, rather
    /// than wall-clock.
    #[test]
    fn whole_chip_rounds_bail_out_above_a_quarter_dirty() {
        let rules = DesignRules::default();
        let params = crate::synth::SynthParams {
            rows: 2,
            gates_per_row: 150,
            ..Default::default()
        };
        let layout = crate::synth::generate(&params, &rules);
        let state = ExtractState::full(&layout, &rules, 1);
        let geom = state.geometry().clone();
        let n = geom.shifters.len();
        assert!(n >= 512, "fixture too small to cross the adaptive gate");
        let radius = rules.interaction_radius();
        let span = layout.stats().bbox.expect("non-empty").width();
        let dirty_fraction = |cuts: &[SpaceCut]| {
            let dirty = dirty_regions_for(cuts);
            geom.shifters
                .iter()
                .filter(|s| dirty.rigid_shift_of_rect(&s.rect.inflate(radius)).is_none())
                .count() as f64
                / n as f64
        };
        let spread_cuts = |count: i64| -> Vec<SpaceCut> {
            (1..=count)
                .map(|i| SpaceCut {
                    axis: Axis::X,
                    position: span * i / (count + 1),
                    width: 180,
                })
                .collect()
        };
        // Calibrate a cut set landing in the regression window (between
        // a quarter and a half dirty): the old bound kept reusing there.
        let cuts = (2..200)
            .map(spread_cuts)
            .find(|cuts| {
                let f = dirty_fraction(cuts);
                f > 0.27 && f <= 0.5
            })
            .expect("some spread cut count dirties 27-50% of the chip");
        assert_incremental_matches(&layout, &cuts, true);
        // A localized fix (far below a quarter dirty) must still reuse.
        let local = spread_cuts(1);
        assert!(dirty_fraction(&local) < 0.25);
        assert_incremental_matches(&layout, &local, false);
    }
}
