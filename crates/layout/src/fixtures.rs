//! Deterministic layout fixtures used across tests, examples and figure
//! reproductions.

use crate::{DesignRules, Layout};
use aapsm_geom::Rect;

/// A single vertical critical wire — trivially phase-assignable.
pub fn single_wire(_rules: &DesignRules) -> Layout {
    Layout::from_rects(vec![Rect::new(0, 0, 100, 1000)])
}

/// A row of parallel critical wires at a safe pitch: a chain of merge
/// constraints, assignable by alternating phases.
pub fn wire_row(count: usize, pitch: i64) -> Layout {
    Layout::from_rects(
        (0..count as i64)
            .map(|i| Rect::new(i * pitch, 0, i * pitch + 100, 2000))
            .collect(),
    )
}

/// The paper's Figure 1 motif: a critical gate crossing over a strap, so
/// the strap's top shifter must merge with *both* of the gate's shifters —
/// an odd cycle of phase dependencies. Not phase-assignable.
pub fn gate_over_strap(_rules: &DesignRules) -> Layout {
    let strap = Rect::new(-1000, 0, 1000, 100);
    let gate = Rect::new(-50, 500, 50, 1500);
    Layout::from_rects(vec![strap, gate])
}

/// A line-end jog: two stacked vertical wires with a lateral offset in the
/// conflict window; the upper wire's low shifter reaches both shifters of
/// the lower wire corner-to-corner. Not phase-assignable; correctable by a
/// horizontal end-to-end space.
pub fn stacked_jog(_rules: &DesignRules) -> Layout {
    let lower = Rect::new(0, 0, 100, 1000);
    let upper = Rect::new(150, 1200, 250, 2200);
    Layout::from_rects(vec![lower, upper])
}

/// The short-middle-line motif: three parallel wires where the middle one
/// is short, so the outer shifters see each other past its line end. Not
/// phase-assignable; correctable by a vertical end-to-end space.
pub fn short_middle_wire(_rules: &DesignRules) -> Layout {
    let a = Rect::new(0, 0, 100, 2000);
    let b = Rect::new(340, 0, 440, 800); // short middle
    let c = Rect::new(680, 0, 780, 2000);
    Layout::from_rects(vec![a, b, c])
}

/// A bus of parallel wires crossed by one long strap below them: one odd
/// cycle per crossed wire, all sharing the strap's top shifter. The
/// Figure 5 motif — a single vertical... rather horizontal space corrects
/// many conflicts at once.
pub fn strap_under_bus(count: usize, _rules: &DesignRules) -> Layout {
    let mut rects = Vec::new();
    let pitch = 700i64;
    for i in 0..count as i64 {
        rects.push(Rect::new(i * pitch, 500, i * pitch + 100, 2500));
    }
    // Strap top at y=100; gate shifters reach down to y=400: gap 200+100
    // via shifter extents -> merges with every gate shifter above.
    rects.push(Rect::new(-500, 0, count as i64 * pitch + 500, 100));
    Layout::from_rects(rects)
}

/// A layout whose correction needs **two** rounds: the round-1 cut
/// *creates* a new conflict.
///
/// Two stacked critical straps `H1`/`H2` would merge top-to-bottom, but a
/// blocker strap `M` fills their corridor except for a 150 dbu sliver on
/// the right — under the 2·overhang line-end exemption, so the pair is
/// blocked and round 1 sees only the short-middle-wire conflict of the
/// lower-left wire trio. That conflict's one legal correction line sits
/// at x ≈ 950 (a non-critical wall at x 951..1531 outlaws every other
/// candidate), and the inserted ~100 dbu space stretches `H1`/`H2`
/// (which straddle it) while leaving `M` (ending at x = 950) alone — the
/// sliver grows past the exemption, the corridor unblocks, `H1`/`H2`
/// merge, and the odd cycle through `M`'s flank becomes a fresh round-2
/// conflict that one horizontal space then corrects.
pub fn corridor_unblock_two_round(_rules: &DesignRules) -> Layout {
    Layout::from_rects(vec![
        // The latent right part: H1, H2 and the blocker M.
        Rect::new(0, 0, 1000, 100),     // H1
        Rect::new(0, 600, 1000, 700),   // H2
        Rect::new(-150, 310, 950, 390), // M
        // The round-1 conflict: a short-middle trio far below, positioned
        // so its correction interval starts at x = 950.
        Rect::new(850, -4000, 950, -2000),   // A
        Rect::new(1190, -4000, 1290, -3200), // B (short middle)
        Rect::new(1530, -4000, 1630, -2000), // C
        // A wide (non-critical) wall whose x-span makes every correction
        // candidate except x ∈ {950, 951} illegal.
        Rect::new(951, -6000, 1531, -5000),
    ])
}

/// Two stacked vertical wires offset so far diagonally that the *cheap*
/// conflicts are corner-to-corner: the upper wire's shifters see the lower
/// wire's same-side shifters across a positive gap on **both** axes
/// (`gap_x = 200`, `gap_y = 100` with default rules), while the crossing
/// pair (upper-left over lower-right) overlaps in x. The minimum odd-cycle
/// cover deletes the two diagonal edges (2 × weight 80 beats the single
/// crossing edge at 180), so the correction planner must size a cut for
/// genuinely diagonal pairs — where the per-axis deficit
/// `spacing − gap_axis` over-corrects and the Euclidean minimum
/// `ceil(√(spacing² − gap_perp²)) − gap_axis` is strictly narrower.
pub fn diagonal_jog(_rules: &DesignRules) -> Layout {
    Layout::from_rects(vec![
        Rect::new(0, 0, 100, 1000),      // lower wire
        Rect::new(400, 1300, 500, 2300), // upper wire, +400 x / +300 y away
    ])
}

/// A benign mix: rows of wires plus a far-away strap. Phase-assignable.
pub fn benign_block(_rules: &DesignRules) -> Layout {
    let mut rects = Vec::new();
    for i in 0..5i64 {
        rects.push(Rect::new(i * 600, 0, i * 600 + 100, 2000));
    }
    rects.push(Rect::new(-500, -1500, 3500, -1400));
    Layout::from_rects(rects)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{check_assignable, extract_phase_geometry};

    fn rules() -> DesignRules {
        DesignRules::default()
    }

    #[test]
    fn assignability_of_fixtures() {
        let r = rules();
        let assignable = |l: &Layout| check_assignable(&extract_phase_geometry(l, &r)).is_ok();
        assert!(assignable(&single_wire(&r)));
        assert!(assignable(&wire_row(6, 600)));
        assert!(assignable(&benign_block(&r)));
        assert!(!assignable(&gate_over_strap(&r)));
        assert!(!assignable(&stacked_jog(&r)));
        assert!(!assignable(&short_middle_wire(&r)));
        assert!(!assignable(&strap_under_bus(4, &r)));
    }

    #[test]
    fn fixtures_are_drc_clean() {
        let r = rules();
        for (name, l) in [
            ("single", single_wire(&r)),
            ("row", wire_row(6, 600)),
            ("gate_over_strap", gate_over_strap(&r)),
            ("jog", stacked_jog(&r)),
            ("short_middle", short_middle_wire(&r)),
            ("bus", strap_under_bus(4, &r)),
            ("benign", benign_block(&r)),
        ] {
            assert!(l.validate(&r).is_empty(), "{name} violates feature DRC");
        }
    }

    #[test]
    fn jog_conflict_is_horizontally_correctable() {
        let r = rules();
        let g = extract_phase_geometry(&stacked_jog(&r), &r);
        // At least one overlap in the odd cycle is correctable by a
        // horizontal space.
        assert!(g
            .overlaps
            .iter()
            .any(|o| o.correctable_by_horizontal_space()));
    }

    #[test]
    fn strap_under_bus_has_one_cycle_per_wire() {
        let r = rules();
        let g = extract_phase_geometry(&strap_under_bus(5, &r), &r);
        // The strap's high shifter merges with both shifters of each wire.
        let strap_high = g.features[5].shifters.expect("strap is critical").1;
        let deg = g
            .overlaps
            .iter()
            .filter(|o| o.a == strap_high || o.b == strap_high)
            .count();
        assert_eq!(deg, 10, "two merges per crossed wire");
    }
}
