//! Property-based tests of layout extraction and space insertion.

use aapsm_geom::{Axis, Rect};
use aapsm_layout::{
    apply_cuts, check_assignable, extract_phase_geometry, parse_layout, write_layout, DesignRules,
    Layout, SpaceCut,
};
use proptest::prelude::*;

/// Random non-overlapping rect layouts: rects snapped to disjoint slots.
fn layout() -> impl Strategy<Value = Layout> {
    proptest::collection::vec((0i64..8, 0i64..4, 80i64..320, 400i64..2000), 1..12).prop_map(
        |slots| {
            let mut seen = std::collections::HashSet::new();
            let mut rects = Vec::new();
            for (cx, cy, w, h) in slots {
                if seen.insert((cx, cy)) {
                    let x = cx * 1200;
                    let y = cy * 2600;
                    rects.push(Rect::new(x, y, x + w, y + h));
                }
            }
            Layout::from_rects(rects)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Extraction is deterministic and produces two shifters per critical
    /// feature, flanking it symmetrically.
    #[test]
    fn extraction_shape(l in layout()) {
        let rules = DesignRules::default();
        let g1 = extract_phase_geometry(&l, &rules);
        let g2 = extract_phase_geometry(&l, &rules);
        prop_assert_eq!(g1.shifters.len(), g2.shifters.len());
        prop_assert_eq!(g1.overlaps.len(), g2.overlaps.len());
        prop_assert_eq!(g1.shifters.len(), 2 * g1.critical_count());
        for f in &g1.features {
            if let Some((lo, hi)) = f.shifters {
                prop_assert!(!g1.shifters[lo].rect.overlaps(&f.rect));
                prop_assert!(!g1.shifters[hi].rect.overlaps(&f.rect));
            }
        }
    }

    /// Overlap pairs are exactly the sub-spacing pairs the rule describes:
    /// every reported pair is closer than the spacing rule.
    #[test]
    fn overlaps_violate_spacing(l in layout()) {
        let rules = DesignRules::default();
        let g = extract_phase_geometry(&l, &rules);
        let s = rules.shifter_spacing as i128;
        for o in &g.overlaps {
            let gap = g.shifters[o.a].rect.euclid_gap_sq(&g.shifters[o.b].rect);
            prop_assert!(gap < s * s);
            prop_assert!(o.weight >= 1);
        }
    }

    /// Space insertion preserves every feature's width and height (cuts in
    /// clear columns) and never shrinks any pairwise gap.
    #[test]
    fn insertion_monotonicity(l in layout(), width in 1i64..400) {
        // Cut in the guaranteed-clear column between slot columns.
        let cut = SpaceCut { axis: Axis::X, position: 1200 - 100, width };
        let out = apply_cuts(&l, &[cut]);
        for (a, b) in l.rects().iter().zip(out.rects()) {
            prop_assert_eq!(a.width(), b.width());
            prop_assert_eq!(a.height(), b.height());
        }
        for i in 0..l.rects().len() {
            for j in (i + 1)..l.rects().len() {
                let before = l.rects()[i].euclid_gap_sq(&l.rects()[j]);
                let after = out.rects()[i].euclid_gap_sq(&out.rects()[j]);
                prop_assert!(after >= before, "gap shrank: {} -> {}", before, after);
            }
        }
    }

    /// Inserting space never makes an assignable layout unassignable.
    #[test]
    fn insertion_preserves_assignability(l in layout(), width in 1i64..400) {
        let rules = DesignRules::default();
        if check_assignable(&extract_phase_geometry(&l, &rules)).is_ok() {
            let cut = SpaceCut { axis: Axis::X, position: 1100, width };
            let out = apply_cuts(&l, &[cut]);
            prop_assert!(check_assignable(&extract_phase_geometry(&out, &rules)).is_ok());
        }
    }

    /// The text format round-trips every layout exactly.
    #[test]
    fn text_roundtrip(l in layout()) {
        prop_assert_eq!(parse_layout(&write_layout(&l)).unwrap(), l);
    }
}
