//! GDSII stream-format reader/writer for rectangle layouts —
//! hierarchical cell/instance streams included.
//!
//! The paper's benchmarks are industrial GDSII layouts; this crate gives
//! the workspace a real interchange path. A flat [`Layout`] can be
//! written as a stream with a single structure (one `BOUNDARY` per
//! rectangle) and read back; a hierarchical [`HierLayout`] round-trips
//! through `BGNSTR`/`SREF` structures so cell/instance designs ingest
//! **without flattening** ([`read_gds_hier`]).
//!
//! Interpreted records: `HEADER`, `BGNLIB`, `LIBNAME`, `UNITS`, `BGNSTR`,
//! `STRNAME`, `BOUNDARY`, `LAYER`, `DATATYPE`, `XY`, `ENDEL`, `ENDSTR`,
//! `ENDLIB`, and the reference records `SREF`, `AREF`, `SNAME`, `STRANS`,
//! `MAG`, `ANGLE`, `COLROW` (90°-multiple rotations, X-axis reflection,
//! unit magnification). Anything else — `TEXT`, `PATH`, `NODE`, `BOX`
//! elements, properties — is skipped, and every skip is **counted and
//! surfaced** in [`GdsRead::skipped_records`]: a stream that loses data
//! on ingest says so, it never decodes silently to a partial layout.
//! Unresolvable structure references (unknown name, duplicate name,
//! reference cycle) are structured [`GdsError`]s.
//!
//! # Example
//!
//! ```
//! use aapsm_gds::{read_gds, write_gds};
//! use aapsm_layout::Layout;
//! use aapsm_geom::Rect;
//!
//! let layout = Layout::from_rects(vec![Rect::new(0, 0, 100, 400)]);
//! let bytes = write_gds(&layout, "POLY");
//! let back = read_gds(&bytes)?;
//! assert_eq!(back, layout);
//! # Ok::<(), aapsm_gds::GdsError>(())
//! ```
//!
//! Hierarchical round-trip:
//!
//! ```
//! use aapsm_gds::{read_gds_hier, write_gds_hier};
//! use aapsm_layout::{Cell, HierLayout, Instance, Placement};
//! use aapsm_geom::Rect;
//!
//! let mut h = HierLayout::new();
//! let mut gate = Cell::new("GATE");
//! gate.rects.push(Rect::new(0, 0, 100, 2000));
//! let gate = h.add_cell(gate);
//! let mut top = Cell::new("TOP");
//! top.instances.push(Instance { cell: gate, placement: Placement::at(0, 0) });
//! top.instances.push(Instance { cell: gate, placement: Placement::at(560, 0) });
//! let top = h.add_cell(top);
//! h.top = Some(top);
//! let read = read_gds_hier(&write_gds_hier(&h, "AAPSM"))?;
//! assert_eq!(read.hier, h);
//! assert!(read.skipped_records.is_empty());
//! # Ok::<(), aapsm_gds::GdsError>(())
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use aapsm_geom::{Point, Rect};
use aapsm_layout::{Cell, HierLayout, Instance, Layout, Orient, Placement, Rot};
use std::collections::BTreeMap;
use std::fmt;

/// Record type bytes (record type, data type).
mod rt {
    pub const HEADER: (u8, u8) = (0x00, 0x02);
    pub const BGNLIB: (u8, u8) = (0x01, 0x02);
    pub const LIBNAME: (u8, u8) = (0x02, 0x06);
    pub const UNITS: (u8, u8) = (0x03, 0x05);
    pub const ENDLIB: (u8, u8) = (0x04, 0x00);
    pub const BGNSTR: (u8, u8) = (0x05, 0x02);
    pub const STRNAME: (u8, u8) = (0x06, 0x06);
    pub const ENDSTR: (u8, u8) = (0x07, 0x00);
    pub const BOUNDARY: (u8, u8) = (0x08, 0x00);
    pub const PATH: (u8, u8) = (0x09, 0x00);
    pub const SREF: (u8, u8) = (0x0a, 0x00);
    pub const AREF: (u8, u8) = (0x0b, 0x00);
    pub const TEXT: (u8, u8) = (0x0c, 0x00);
    pub const LAYER: (u8, u8) = (0x0d, 0x02);
    pub const DATATYPE: (u8, u8) = (0x0e, 0x02);
    pub const XY: (u8, u8) = (0x10, 0x03);
    pub const ENDEL: (u8, u8) = (0x11, 0x00);
    pub const SNAME: (u8, u8) = (0x12, 0x06);
    pub const COLROW: (u8, u8) = (0x13, 0x02);
    pub const NODE: (u8, u8) = (0x15, 0x00);
    pub const STRANS: (u8, u8) = (0x1a, 0x01);
    pub const MAG: (u8, u8) = (0x1b, 0x05);
    pub const ANGLE: (u8, u8) = (0x1c, 0x05);
    pub const BOX: (u8, u8) = (0x2d, 0x00);
}

/// Error reading or writing a GDSII stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GdsError {
    /// The byte stream ended inside a record.
    Truncated,
    /// A record length field was invalid.
    BadRecordLength {
        /// Stream offset of the record.
        offset: usize,
    },
    /// A `BOUNDARY` element was not an axis-aligned rectangle.
    NotARectangle {
        /// Index of the offending boundary.
        boundary: usize,
    },
    /// A coordinate overflowed the GDSII 32-bit range on write.
    CoordinateOverflow,
    /// A record appeared where the stream grammar forbids it (element
    /// outside a structure, nested `BGNSTR`, `ENDSTR` with an element
    /// still open, missing `STRNAME`, ...).
    MisplacedRecord {
        /// Stream offset of the record.
        offset: usize,
    },
    /// An `SREF`/`AREF` element was malformed: missing `SNAME` or `XY`,
    /// wrong point count, bad or oversized `COLROW`, non-lattice array
    /// reference points.
    BadReference {
        /// Stream offset of the element's closing record.
        offset: usize,
    },
    /// A reference carries a transform outside the supported group:
    /// non-90° rotation, non-unit magnification, or absolute-transform
    /// flags.
    UnsupportedTransform {
        /// Stream offset of the offending record.
        offset: usize,
    },
    /// A reference names a structure the stream never defines.
    UnknownStructure {
        /// The unresolvable structure name.
        name: String,
    },
    /// Two structures share a name, making references ambiguous.
    DuplicateStructure {
        /// The duplicated structure name.
        name: String,
    },
    /// A cell's name cannot be written as a `STRNAME` (empty, embedded
    /// NUL, or longer than the record format allows).
    BadStructureName {
        /// Index of the offending cell.
        cell: usize,
    },
    /// The decoded layout failed input sanitization
    /// ([`aapsm_layout::Layout::sanitize`] /
    /// [`aapsm_layout::HierLayout::sanitize`] under default rules):
    /// degenerate or duplicate rectangles, coordinates unusably close to
    /// the i32 limit, reference cycles, or expansion blow-ups.
    InvalidLayout(aapsm_layout::LayoutError),
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated => write!(f, "gds stream truncated"),
            GdsError::BadRecordLength { offset } => {
                write!(f, "bad record length at offset {offset}")
            }
            GdsError::NotARectangle { boundary } => {
                write!(f, "boundary {boundary} is not an axis-aligned rectangle")
            }
            GdsError::CoordinateOverflow => write!(f, "coordinate exceeds the gds 32-bit range"),
            GdsError::MisplacedRecord { offset } => {
                write!(f, "record at offset {offset} violates the stream grammar")
            }
            GdsError::BadReference { offset } => {
                write!(f, "malformed structure reference at offset {offset}")
            }
            GdsError::UnsupportedTransform { offset } => {
                write!(
                    f,
                    "unsupported reference transform at offset {offset} \
                     (only 90-degree rotations, X reflection, unit magnification)"
                )
            }
            GdsError::UnknownStructure { name } => {
                write!(f, "reference to undefined structure {name:?}")
            }
            GdsError::DuplicateStructure { name } => {
                write!(f, "structure {name:?} defined more than once")
            }
            GdsError::BadStructureName { cell } => {
                write!(f, "cell {cell} has a name unrepresentable as STRNAME")
            }
            GdsError::InvalidLayout(e) => write!(f, "decoded layout failed sanitization: {e}"),
        }
    }
}

impl std::error::Error for GdsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdsError::InvalidLayout(e) => Some(e),
            _ => None,
        }
    }
}

fn push_record(out: &mut Vec<u8>, kind: (u8, u8), data: &[u8]) {
    let len = 4 + data.len();
    assert!(
        len <= u16::MAX as usize && len.is_multiple_of(2),
        "record too long or odd"
    );
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.push(kind.0);
    out.push(kind.1);
    out.extend_from_slice(data);
}

fn push_ascii(out: &mut Vec<u8>, kind: (u8, u8), s: &str) {
    let mut data: Vec<u8> = s.bytes().collect();
    if data.len() % 2 == 1 {
        data.push(0);
    }
    push_record(out, kind, &data);
}

fn push_library_header(out: &mut Vec<u8>, lib_name: &str) {
    push_record(out, rt::HEADER, &600i16.to_be_bytes());
    // Twelve i16 timestamp words (modification + access), all zero.
    push_record(out, rt::BGNLIB, &[0u8; 24]);
    push_ascii(out, rt::LIBNAME, lib_name);
    // UNITS: 1 dbu = 1e-3 user units (um), 1e-9 meters. Stored as two
    // 8-byte GDSII reals.
    let mut units = Vec::with_capacity(16);
    units.extend_from_slice(&gds_real(1e-3));
    units.extend_from_slice(&gds_real(1e-9));
    push_record(out, rt::UNITS, &units);
}

fn push_boundary(out: &mut Vec<u8>, r: &Rect) -> Result<(), GdsError> {
    push_record(out, rt::BOUNDARY, &[]);
    push_record(out, rt::LAYER, &1i16.to_be_bytes());
    push_record(out, rt::DATATYPE, &0i16.to_be_bytes());
    let pts = [
        (r.x_lo(), r.y_lo()),
        (r.x_hi(), r.y_lo()),
        (r.x_hi(), r.y_hi()),
        (r.x_lo(), r.y_hi()),
        (r.x_lo(), r.y_lo()),
    ];
    let mut xy = Vec::with_capacity(40);
    for (x, y) in pts {
        let x = i32::try_from(x).map_err(|_| GdsError::CoordinateOverflow)?;
        let y = i32::try_from(y).map_err(|_| GdsError::CoordinateOverflow)?;
        xy.extend_from_slice(&x.to_be_bytes());
        xy.extend_from_slice(&y.to_be_bytes());
    }
    push_record(out, rt::XY, &xy);
    push_record(out, rt::ENDEL, &[]);
    Ok(())
}

/// Writes a layout as a GDSII stream with a single structure named
/// `cell_name`, layer 1, datatype 0, 1 nm database units.
///
/// Rectangles become 5-point closed `BOUNDARY` paths in counter-clockwise
/// order.
///
/// # Panics
///
/// Panics if any coordinate exceeds the GDSII 32-bit range (use
/// [`try_write_gds`] for a fallible version).
// Invariant, not an error path: panicking here is this wrapper's documented contract.
#[allow(clippy::expect_used)]
pub fn write_gds(layout: &Layout, cell_name: &str) -> Vec<u8> {
    try_write_gds(layout, cell_name).expect("layout coordinates fit the gds range")
}

/// Fallible version of [`write_gds`].
///
/// # Errors
///
/// Returns [`GdsError::CoordinateOverflow`] if a coordinate does not fit
/// in `i32`.
pub fn try_write_gds(layout: &Layout, cell_name: &str) -> Result<Vec<u8>, GdsError> {
    let mut out = Vec::with_capacity(layout.len() * 60 + 128);
    push_library_header(&mut out, "AAPSM");
    push_record(&mut out, rt::BGNSTR, &[0u8; 24]);
    push_ascii(&mut out, rt::STRNAME, cell_name);
    for r in layout.rects() {
        push_boundary(&mut out, r)?;
    }
    push_record(&mut out, rt::ENDSTR, &[]);
    push_record(&mut out, rt::ENDLIB, &[]);
    Ok(out)
}

/// Writes a hierarchical layout: one `BGNSTR` per cell (in table order),
/// one `SREF` per instance with `STRANS`/`ANGLE` carrying the placement
/// orientation.
///
/// # Panics
///
/// Panics where [`try_write_gds_hier`] errors.
// Invariant, not an error path: panicking here is this wrapper's documented contract.
#[allow(clippy::expect_used)]
pub fn write_gds_hier(hier: &HierLayout, lib_name: &str) -> Vec<u8> {
    try_write_gds_hier(hier, lib_name).expect("hierarchy is stream-representable")
}

/// Fallible version of [`write_gds_hier`].
///
/// Arrays are emitted as individual `SREF`s (the in-memory model places
/// instances one by one); `AREF` is read-side only.
///
/// # Errors
///
/// [`GdsError::CoordinateOverflow`] when a coordinate or placement
/// translation does not fit `i32`; [`GdsError::BadStructureName`] /
/// [`GdsError::DuplicateStructure`] for names that cannot serve as
/// `STRNAME` reference keys; [`GdsError::InvalidLayout`] for dangling
/// instance references.
pub fn try_write_gds_hier(hier: &HierLayout, lib_name: &str) -> Result<Vec<u8>, GdsError> {
    let mut seen = BTreeMap::new();
    for (ci, cell) in hier.cells.iter().enumerate() {
        if cell.name.is_empty() || cell.name.contains('\0') || cell.name.len() > 512 {
            return Err(GdsError::BadStructureName { cell: ci });
        }
        if seen.insert(cell.name.as_str(), ci).is_some() {
            return Err(GdsError::DuplicateStructure {
                name: cell.name.clone(),
            });
        }
    }
    let mut out = Vec::new();
    push_library_header(&mut out, lib_name);
    for (ci, cell) in hier.cells.iter().enumerate() {
        push_record(&mut out, rt::BGNSTR, &[0u8; 24]);
        push_ascii(&mut out, rt::STRNAME, &cell.name);
        for r in &cell.rects {
            push_boundary(&mut out, r)?;
        }
        for (ii, inst) in cell.instances.iter().enumerate() {
            let target = hier.cells.get(inst.cell).ok_or(GdsError::InvalidLayout(
                aapsm_layout::LayoutError::UnknownCell {
                    cell: ci,
                    instance: ii,
                },
            ))?;
            push_record(&mut out, rt::SREF, &[]);
            push_ascii(&mut out, rt::SNAME, &target.name);
            let orient = inst.placement.orient;
            if !orient.is_identity() {
                let flags: u16 = if orient.reflect { 0x8000 } else { 0 };
                push_record(&mut out, rt::STRANS, &flags.to_be_bytes());
                if orient.rotation != Rot::R0 {
                    push_record(
                        &mut out,
                        rt::ANGLE,
                        &gds_real(f64::from(orient.rotation.degrees())),
                    );
                }
            }
            let x =
                i32::try_from(inst.placement.delta.x).map_err(|_| GdsError::CoordinateOverflow)?;
            let y =
                i32::try_from(inst.placement.delta.y).map_err(|_| GdsError::CoordinateOverflow)?;
            let mut xy = Vec::with_capacity(8);
            xy.extend_from_slice(&x.to_be_bytes());
            xy.extend_from_slice(&y.to_be_bytes());
            push_record(&mut out, rt::XY, &xy);
            push_record(&mut out, rt::ENDEL, &[]);
        }
        push_record(&mut out, rt::ENDSTR, &[]);
    }
    push_record(&mut out, rt::ENDLIB, &[]);
    Ok(out)
}

/// Encodes an 8-byte GDSII excess-64 base-16 real.
fn gds_real(value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let sign = if value < 0.0 { 0x80u8 } else { 0 };
    let mut v = value.abs();
    let mut exp = 64i32;
    while v >= 1.0 {
        v /= 16.0;
        exp += 1;
    }
    while v < 1.0 / 16.0 {
        v *= 16.0;
        exp -= 1;
    }
    let mantissa = (v * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (exp as u8);
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    out
}

/// Decodes an 8-byte GDSII excess-64 base-16 real (always finite for
/// 7-byte mantissas; callers validate the value range).
fn parse_gds_real(b: &[u8]) -> f64 {
    let sign = if b[0] & 0x80 != 0 { -1.0 } else { 1.0 };
    let exp = i32::from(b[0] & 0x7f) - 64;
    let mut mant = 0u64;
    for &x in &b[1..8] {
        mant = (mant << 8) | u64::from(x);
    }
    sign * (mant as f64 / 2f64.powi(56)) * 16f64.powi(exp)
}

/// The result of a hierarchical read: the structure DAG plus an honest
/// account of everything the reader dropped.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GdsRead {
    /// The decoded hierarchy. When the stream has several unreferenced
    /// structures, a synthetic top cell instantiates each once at the
    /// identity placement.
    pub hier: HierLayout,
    /// `(record type, data type) → count` for every record the reader
    /// skipped (e.g. `TEXT`/`PATH` elements, properties). Empty means
    /// lossless ingest. Sub-records of a skipped element are folded into
    /// the element's own count.
    pub skipped_records: BTreeMap<(u8, u8), usize>,
}

impl GdsRead {
    /// Total skipped record count across all types.
    pub fn total_skipped(&self) -> usize {
        self.skipped_records.values().sum()
    }
}

/// Cap on `COLROW` expansion per `AREF`: far above real designs, far
/// below memory exhaustion (the flattened-size cap guards the product
/// over the whole hierarchy).
const MAX_AREF_ELEMENTS: i64 = 1 << 20;

/// In-flight element state of the stream grammar.
enum Element {
    None,
    Boundary,
    Reference {
        aref: bool,
        sname: Option<String>,
        reflect: bool,
        rotation: Rot,
        colrow: Option<(i64, i64)>,
        xy: Option<Vec<Point>>,
    },
    /// An element type we do not interpret (`TEXT`, `PATH`, ...); its
    /// sub-records are ignored until `ENDEL`.
    Skipped,
}

struct RawRef {
    sname: String,
    placement: Placement,
}

struct RawCell {
    name: String,
    rects: Vec<Rect>,
    refs: Vec<RawRef>,
}

/// Reads the full structure hierarchy of a GDSII stream.
///
/// Every structure becomes a [`Cell`]; `SREF`/`AREF` become placed
/// [`Instance`]s (arrays are expanded to individual placements on the
/// lattice the reference points define). The top cell is the unique
/// unreferenced structure; with several candidates a synthetic top is
/// added. Reference integrity (unknown names, duplicate names, cycles)
/// and the expansion cap are validated here; flat-geometry sanitization
/// belongs to the caller (see [`read_gds`]).
///
/// # Errors
///
/// See [`GdsError`].
pub fn read_gds_hier(bytes: &[u8]) -> Result<GdsRead, GdsError> {
    let mut cells: Vec<RawCell> = Vec::new();
    let mut current: Option<RawCell> = None;
    let mut element = Element::None;
    let mut skipped: BTreeMap<(u8, u8), usize> = BTreeMap::new();
    let mut boundary_index = 0usize;
    let mut saw_endlib = false;
    let mut offset = 0usize;
    while offset + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[offset], bytes[offset + 1]]) as usize;
        if len < 4 || !len.is_multiple_of(2) {
            return Err(GdsError::BadRecordLength { offset });
        }
        if offset + len > bytes.len() {
            return Err(GdsError::Truncated);
        }
        let kind = (bytes[offset + 2], bytes[offset + 3]);
        let data = &bytes[offset + 4..offset + len];
        let misplaced = GdsError::MisplacedRecord { offset };
        match kind {
            k if k == rt::BGNSTR => {
                if current.is_some() {
                    return Err(misplaced);
                }
                current = Some(RawCell {
                    name: String::new(),
                    rects: Vec::new(),
                    refs: Vec::new(),
                });
            }
            k if k == rt::STRNAME => {
                let Some(cell) = current.as_mut() else {
                    return Err(misplaced);
                };
                if !cell.name.is_empty() {
                    return Err(misplaced);
                }
                let name = String::from_utf8_lossy(data)
                    .trim_end_matches('\0')
                    .to_string();
                if name.is_empty() {
                    return Err(misplaced);
                }
                cell.name = name;
            }
            k if k == rt::ENDSTR => {
                if !matches!(element, Element::None) {
                    return Err(misplaced);
                }
                let Some(cell) = current.take() else {
                    return Err(misplaced);
                };
                if cell.name.is_empty() {
                    return Err(misplaced);
                }
                if cells.iter().any(|c| c.name == cell.name) {
                    return Err(GdsError::DuplicateStructure { name: cell.name });
                }
                cells.push(cell);
            }
            k if k == rt::BOUNDARY => {
                if current.is_none() || !matches!(element, Element::None) {
                    return Err(misplaced);
                }
                element = Element::Boundary;
            }
            k if k == rt::SREF || k == rt::AREF => {
                if current.is_none() || !matches!(element, Element::None) {
                    return Err(misplaced);
                }
                element = Element::Reference {
                    aref: k == rt::AREF,
                    sname: None,
                    reflect: false,
                    rotation: Rot::R0,
                    colrow: None,
                    xy: None,
                };
            }
            k if k == rt::PATH || k == rt::TEXT || k == rt::NODE || k == rt::BOX => {
                if current.is_none() || !matches!(element, Element::None) {
                    return Err(misplaced);
                }
                *skipped.entry(kind).or_insert(0) += 1;
                element = Element::Skipped;
            }
            k if k == rt::SNAME => {
                let Element::Reference { sname, .. } = &mut element else {
                    return Err(misplaced);
                };
                if sname.is_some() {
                    return Err(misplaced);
                }
                let name = String::from_utf8_lossy(data)
                    .trim_end_matches('\0')
                    .to_string();
                if name.is_empty() {
                    return Err(GdsError::BadReference { offset });
                }
                *sname = Some(name);
            }
            k if k == rt::STRANS => {
                let Element::Reference { reflect, .. } = &mut element else {
                    return Err(misplaced);
                };
                if data.len() != 2 {
                    return Err(GdsError::BadReference { offset });
                }
                let flags = u16::from_be_bytes([data[0], data[1]]);
                // Absolute-magnification/-angle flags break hierarchical
                // composition; everything else (unused bits) is ignored.
                if flags & 0x0006 != 0 {
                    return Err(GdsError::UnsupportedTransform { offset });
                }
                *reflect = flags & 0x8000 != 0;
            }
            k if k == rt::MAG => {
                if !matches!(element, Element::Reference { .. }) {
                    return Err(misplaced);
                }
                if data.len() != 8 {
                    return Err(GdsError::BadReference { offset });
                }
                let mag = parse_gds_real(data);
                if !(mag.is_finite() && (mag - 1.0).abs() < 1e-9) {
                    return Err(GdsError::UnsupportedTransform { offset });
                }
            }
            k if k == rt::ANGLE => {
                let Element::Reference { rotation, .. } = &mut element else {
                    return Err(misplaced);
                };
                if data.len() != 8 {
                    return Err(GdsError::BadReference { offset });
                }
                let deg = parse_gds_real(data);
                if !deg.is_finite() {
                    return Err(GdsError::UnsupportedTransform { offset });
                }
                let wrapped = deg.rem_euclid(360.0);
                let quarters = (wrapped / 90.0).round();
                if (wrapped - quarters * 90.0).abs() > 1e-6 {
                    return Err(GdsError::UnsupportedTransform { offset });
                }
                *rotation = match Rot::from_degrees((quarters as i64 % 4) * 90) {
                    Some(r) => r,
                    None => return Err(GdsError::UnsupportedTransform { offset }),
                };
            }
            k if k == rt::COLROW => {
                let Element::Reference { aref, colrow, .. } = &mut element else {
                    return Err(misplaced);
                };
                if !*aref || colrow.is_some() || data.len() != 4 {
                    return Err(GdsError::BadReference { offset });
                }
                let cols = i64::from(i16::from_be_bytes([data[0], data[1]]));
                let rows = i64::from(i16::from_be_bytes([data[2], data[3]]));
                if cols < 1 || rows < 1 || cols.saturating_mul(rows) > MAX_AREF_ELEMENTS {
                    return Err(GdsError::BadReference { offset });
                }
                *colrow = Some((cols, rows));
            }
            k if k == rt::XY => match &mut element {
                Element::Boundary => {
                    // Emit the rectangle directly (one rect per XY record,
                    // matching permissive real-world writers).
                    let mut pts = Vec::with_capacity(data.len() / 8);
                    for chunk in data.chunks_exact(8) {
                        let x = i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                        let y = i32::from_be_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                        pts.push((i64::from(x), i64::from(y)));
                    }
                    let rect = rect_from_boundary(&pts, boundary_index)?;
                    boundary_index += 1;
                    match current.as_mut() {
                        Some(cell) => cell.rects.push(rect),
                        None => return Err(misplaced),
                    }
                }
                Element::Reference { xy, .. } => {
                    if xy.is_some() {
                        return Err(GdsError::BadReference { offset });
                    }
                    let mut pts = Vec::with_capacity(data.len() / 8);
                    for chunk in data.chunks_exact(8) {
                        let x = i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                        let y = i32::from_be_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                        pts.push(Point::new(i64::from(x), i64::from(y)));
                    }
                    *xy = Some(pts);
                }
                Element::Skipped => {}
                Element::None => {
                    *skipped.entry(kind).or_insert(0) += 1;
                }
            },
            k if k == rt::ENDEL => match std::mem::replace(&mut element, Element::None) {
                Element::None | Element::Boundary | Element::Skipped => {}
                Element::Reference {
                    aref,
                    sname,
                    reflect,
                    rotation,
                    colrow,
                    xy,
                } => {
                    let bad = GdsError::BadReference { offset };
                    let sname = sname.ok_or_else(|| bad.clone())?;
                    let xy = xy.ok_or_else(|| bad.clone())?;
                    let orient = Orient { rotation, reflect };
                    let cell = current.as_mut().ok_or_else(|| bad.clone())?;
                    if aref {
                        let (cols, rows) = colrow.ok_or_else(|| bad.clone())?;
                        let [p1, p2, p3]: [Point; 3] = xy.try_into().map_err(|_| bad.clone())?;
                        let lattice = |from: Point, to: Point, n: i64| {
                            let (dx, dy) = (to.x - from.x, to.y - from.y);
                            if dx % n != 0 || dy % n != 0 {
                                return Err(bad.clone());
                            }
                            Ok(Point::new(dx / n, dy / n))
                        };
                        let col_step = lattice(p1, p2, cols)?;
                        let row_step = lattice(p1, p3, rows)?;
                        for r in 0..rows {
                            for c in 0..cols {
                                let delta = Point::new(
                                    p1.x + c * col_step.x + r * row_step.x,
                                    p1.y + c * col_step.y + r * row_step.y,
                                );
                                cell.refs.push(RawRef {
                                    sname: sname.clone(),
                                    placement: Placement { orient, delta },
                                });
                            }
                        }
                    } else {
                        if colrow.is_some() || xy.len() != 1 {
                            return Err(bad);
                        }
                        cell.refs.push(RawRef {
                            sname,
                            placement: Placement {
                                orient,
                                delta: xy[0],
                            },
                        });
                    }
                }
            },
            k if k == rt::ENDLIB => {
                if current.is_some() || !matches!(element, Element::None) {
                    return Err(misplaced);
                }
                saw_endlib = true;
                break;
            }
            k if k == rt::HEADER
                || k == rt::BGNLIB
                || k == rt::LIBNAME
                || k == rt::UNITS
                || k == rt::LAYER
                || k == rt::DATATYPE =>
            {
                // Understood metadata the rectangle model does not need
                // (all geometry is folded onto one layer).
            }
            _ => {
                if !matches!(element, Element::Skipped) {
                    *skipped.entry(kind).or_insert(0) += 1;
                }
            }
        }
        offset += len;
    }
    if !saw_endlib {
        return Err(GdsError::Truncated);
    }

    // ---- Name resolution (forward references are legal in GDSII). ----
    let index_of: BTreeMap<&str, usize> = cells
        .iter()
        .enumerate()
        .map(|(i, c)| (c.name.as_str(), i))
        .collect();
    let mut referenced = vec![false; cells.len()];
    let mut hier = HierLayout::new();
    for raw in &cells {
        let mut cell = Cell::new(raw.name.clone());
        cell.rects = raw.rects.clone();
        for r in &raw.refs {
            let Some(&target) = index_of.get(r.sname.as_str()) else {
                return Err(GdsError::UnknownStructure {
                    name: r.sname.clone(),
                });
            };
            referenced[target] = true;
            cell.instances.push(Instance {
                cell: target,
                placement: r.placement,
            });
        }
        hier.add_cell(cell);
    }

    // ---- Top selection. ----
    let tops: Vec<usize> = (0..hier.cells.len()).filter(|&i| !referenced[i]).collect();
    hier.top = match tops.len() {
        0 if hier.cells.is_empty() => None,
        // All structures referenced: necessarily cyclic; pick any root so
        // validate_refs below reports the cycle as a structured error.
        0 => Some(0),
        1 => Some(tops[0]),
        _ => {
            // Several roots: bind them under a synthetic top so the whole
            // stream flattens as one layout.
            let mut name = "__TOP__".to_string();
            while index_of.contains_key(name.as_str()) {
                name.push('_');
            }
            let mut synthetic = Cell::new(name);
            synthetic.instances = tops
                .iter()
                .map(|&cell| Instance {
                    cell,
                    placement: Placement::IDENTITY,
                })
                .collect();
            Some(hier.add_cell(synthetic))
        }
    };

    // ---- Reference integrity + expansion bound, before anyone flattens.
    hier.validate_refs().map_err(GdsError::InvalidLayout)?;
    let flattened = hier.flattened_len().map_err(GdsError::InvalidLayout)?;
    if flattened > HierLayout::MAX_FLATTENED_RECTS {
        return Err(GdsError::InvalidLayout(
            aapsm_layout::LayoutError::HierarchyTooLarge { flattened },
        ));
    }
    Ok(GdsRead {
        hier,
        skipped_records: skipped,
    })
}

/// Reads a GDSII stream as a flat [`Layout`]: the hierarchy is parsed
/// ([`read_gds_hier`] — structure references are **resolved**, not
/// dropped), flattened, and passed through
/// [`aapsm_layout::Layout::sanitize`] (default rules), so corrupt or
/// adversarial streams yield a structured [`GdsError`] — never a panic
/// and never a layout the pipeline cannot process soundly. Skipped
/// non-geometry records are tolerated here; use [`read_gds_hier`] when
/// the skip account matters.
///
/// # Errors
///
/// See [`GdsError`].
pub fn read_gds(bytes: &[u8]) -> Result<Layout, GdsError> {
    // Deterministic fault injection (debug builds only — the hook is
    // compiled out in release): when a plan targets GDS, one byte of a
    // private copy is flipped. The corruption property suite asserts the
    // reader then returns a structured error or a sanitized layout,
    // never panics.
    let corrupted: Vec<u8>;
    let bytes = match aapsm_fault::gds_corrupt_offset(bytes.len()) {
        Some(off) => {
            let mut copy = bytes.to_vec();
            copy[off] ^= 0xff;
            corrupted = copy;
            &corrupted[..]
        }
        None => bytes,
    };
    let read = read_gds_hier(bytes)?;
    let layout = read.hier.flatten().map_err(GdsError::InvalidLayout)?;
    layout
        .sanitize(&aapsm_layout::DesignRules::default())
        .map_err(GdsError::InvalidLayout)?;
    Ok(layout)
}

fn rect_from_boundary(pts: &[(i64, i64)], index: usize) -> Result<Rect, GdsError> {
    // A rectangle boundary has 5 points (closed) or 4 (unclosed writers
    // exist); all edges must be axis-parallel and the extents must form
    // exactly the bounding box.
    let err = || GdsError::NotARectangle { boundary: index };
    let core: &[(i64, i64)] = if pts.len() == 5 && pts[0] == pts[4] {
        &pts[..4]
    } else if pts.len() == 4 {
        pts
    } else {
        return Err(err());
    };
    let xs: Vec<i64> = core.iter().map(|p| p.0).collect();
    let ys: Vec<i64> = core.iter().map(|p| p.1).collect();
    // Invariant, not an error path: `core` holds exactly four corner points here.
    #[allow(clippy::unwrap_used)]
    let (x_lo, x_hi) = (*xs.iter().min().unwrap(), *xs.iter().max().unwrap());
    #[allow(clippy::unwrap_used)] // Invariant: same four-point `core` as above.
    let (y_lo, y_hi) = (*ys.iter().min().unwrap(), *ys.iter().max().unwrap());
    if x_lo == x_hi || y_lo == y_hi {
        return Err(err());
    }
    // Each corner must be one of the four bbox corners, all distinct.
    let mut corners: Vec<(i64, i64)> = core.to_vec();
    corners.sort_unstable();
    corners.dedup();
    let mut expected = vec![(x_lo, y_lo), (x_lo, y_hi), (x_hi, y_lo), (x_hi, y_hi)];
    expected.sort_unstable();
    if corners != expected {
        return Err(err());
    }
    Ok(Rect::new(x_lo, y_lo, x_hi, y_hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(-500, -600, -300, -100),
        ]);
        let bytes = write_gds(&layout, "TOP");
        assert_eq!(read_gds(&bytes).unwrap(), layout);
    }

    #[test]
    fn roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let rects: Vec<Rect> = (0..rng.gen_range(1..200))
                .map(|_| {
                    let x = rng.gen_range(-1_000_000..1_000_000);
                    let y = rng.gen_range(-1_000_000..1_000_000);
                    Rect::new(x, y, x + rng.gen_range(1..5000), y + rng.gen_range(1..5000))
                })
                .collect();
            let layout = Layout::from_rects(rects);
            assert_eq!(read_gds(&write_gds(&layout, "T")).unwrap(), layout);
        }
    }

    #[test]
    fn rejects_non_rectangles() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10)]);
        let mut bytes = write_gds(&layout, "T");
        // Corrupt one XY coordinate so the boundary is an L-shape.
        // Find the XY record (0x10, 0x03).
        let pos = (0..bytes.len() - 4)
            .find(|&i| bytes[i + 2] == 0x10 && bytes[i + 3] == 0x03)
            .unwrap();
        // Second point's x (offset 4 header + 8 first point).
        bytes[pos + 4 + 8 + 3] = 5;
        assert!(matches!(
            read_gds(&bytes),
            Err(GdsError::NotARectangle { boundary: 0 })
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10)]);
        let bytes = write_gds(&layout, "T");
        assert_eq!(
            read_gds(&bytes[..bytes.len() - 2]),
            Err(GdsError::Truncated)
        );
    }

    #[test]
    fn coordinate_overflow_reported() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, i64::MAX / 2, 10)]);
        assert_eq!(
            try_write_gds(&layout, "T"),
            Err(GdsError::CoordinateOverflow)
        );
    }

    #[test]
    fn empty_layout_roundtrips() {
        let bytes = write_gds(&Layout::new(), "EMPTY");
        assert!(read_gds(&bytes).unwrap().is_empty());
    }

    #[test]
    fn duplicate_rect_stream_fails_sanitization() {
        // Two byte-identical boundaries: the reader decodes them fine but
        // sanitization rejects the result with a structured error.
        let r = Rect::new(0, 0, 100, 400);
        let layout = Layout::from_rects(vec![r, r]);
        assert!(matches!(
            read_gds(&write_gds(&layout, "T")),
            Err(GdsError::InvalidLayout(
                aapsm_layout::LayoutError::DuplicateRect {
                    first: 0,
                    second: 1
                }
            ))
        ));
    }

    fn reference_stream(seed: u64) -> Vec<u8> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..rng.gen_range(1..40))
            .map(|i| {
                let x = i64::from(i) * 20_000 + rng.gen_range(0..5_000);
                let y = rng.gen_range(-500_000..500_000);
                Rect::new(x, y, x + rng.gen_range(1..5000), y + rng.gen_range(1..5000))
            })
            .collect();
        write_gds(&Layout::from_rects(rects), "T")
    }

    /// A two-level hierarchy exercising every supported reference record:
    /// `SREF` with all eight orientations plus an `AREF` lattice.
    fn hier_fixture(seed: u64) -> HierLayout {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut h = HierLayout::new();
        let mut leaf = Cell::new("LEAF");
        for i in 0..rng.gen_range(1..6) {
            let x = i * 700;
            leaf.rects
                .push(Rect::new(x, 0, x + rng.gen_range(1..300), 2000));
        }
        let leaf = h.add_cell(leaf);
        let mut mid = Cell::new("MID");
        mid.rects.push(Rect::new(-4000, -4000, -3600, -2000));
        for (i, orient) in Orient::all().into_iter().enumerate() {
            mid.instances.push(Instance {
                cell: leaf,
                placement: Placement {
                    orient,
                    delta: Point::new(i as i64 * 20_000, 40_000),
                },
            });
        }
        let mid = h.add_cell(mid);
        let mut top = Cell::new("TOP");
        for i in 0..3i64 {
            top.instances.push(Instance {
                cell: mid,
                placement: Placement::at(i * 300_000, 0),
            });
        }
        top.instances.push(Instance {
            cell: leaf,
            placement: Placement::new(Orient::rotated(Rot::R90), -50_000, -50_000),
        });
        let top = h.add_cell(top);
        h.top = Some(top);
        h
    }

    #[test]
    fn hier_roundtrip_preserves_structure() {
        for seed in 0..6 {
            let h = hier_fixture(seed);
            let bytes = write_gds_hier(&h, "LIB");
            let read = read_gds_hier(&bytes).unwrap();
            assert_eq!(read.hier, h, "seed {seed}");
            assert!(read.skipped_records.is_empty());
            // Flat equivalence: reading the stream flat equals flattening
            // the in-memory hierarchy.
            assert_eq!(read_gds(&bytes).unwrap(), h.flatten().unwrap());
        }
    }

    #[test]
    fn aref_expands_to_the_lattice() {
        // Hand-built stream: LEAF plus a TOP with a 3×2 AREF of LEAF.
        let mut bytes = Vec::new();
        push_library_header(&mut bytes, "LIB");
        push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
        push_ascii(&mut bytes, rt::STRNAME, "LEAF");
        push_boundary(&mut bytes, &Rect::new(0, 0, 100, 2000)).unwrap();
        push_record(&mut bytes, rt::ENDSTR, &[]);
        push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
        push_ascii(&mut bytes, rt::STRNAME, "TOP");
        push_record(&mut bytes, rt::AREF, &[]);
        push_ascii(&mut bytes, rt::SNAME, "LEAF");
        push_record(&mut bytes, rt::COLROW, &[0, 3, 0, 2]);
        let mut xy = Vec::new();
        // Origin (10, 20); 3 columns spanning 3000 in x; 2 rows spanning
        // 9000 in y.
        for (x, y) in [(10i32, 20i32), (3010, 20), (10, 9020)] {
            xy.extend_from_slice(&x.to_be_bytes());
            xy.extend_from_slice(&y.to_be_bytes());
        }
        push_record(&mut bytes, rt::XY, &xy);
        push_record(&mut bytes, rt::ENDEL, &[]);
        push_record(&mut bytes, rt::ENDSTR, &[]);
        push_record(&mut bytes, rt::ENDLIB, &[]);

        let read = read_gds_hier(&bytes).unwrap();
        let top = &read.hier.cells[read.hier.top.unwrap()];
        let deltas: Vec<(i64, i64)> = top
            .instances
            .iter()
            .map(|i| (i.placement.delta.x, i.placement.delta.y))
            .collect();
        assert_eq!(
            deltas,
            vec![
                (10, 20),
                (1010, 20),
                (2010, 20),
                (10, 4520),
                (1010, 4520),
                (2010, 4520),
            ]
        );
    }

    #[test]
    fn skipped_records_are_counted() {
        // Splice a TEXT element (with sub-records) into a valid stream:
        // the layout still loads, and the reader reports exactly one
        // skipped element.
        let mut bytes = Vec::new();
        push_library_header(&mut bytes, "LIB");
        push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
        push_ascii(&mut bytes, rt::STRNAME, "T");
        push_record(&mut bytes, rt::TEXT, &[]);
        push_record(&mut bytes, rt::LAYER, &1i16.to_be_bytes());
        let mut xy = Vec::new();
        xy.extend_from_slice(&5i32.to_be_bytes());
        xy.extend_from_slice(&7i32.to_be_bytes());
        push_record(&mut bytes, rt::XY, &xy);
        push_record(&mut bytes, rt::ENDEL, &[]);
        push_boundary(&mut bytes, &Rect::new(0, 0, 10, 10)).unwrap();
        push_record(&mut bytes, rt::ENDSTR, &[]);
        push_record(&mut bytes, rt::ENDLIB, &[]);

        let read = read_gds_hier(&bytes).unwrap();
        assert_eq!(read.total_skipped(), 1);
        assert_eq!(read.skipped_records.get(&rt::TEXT), Some(&1));
        assert_eq!(read.hier.flatten().unwrap().len(), 1);
    }

    #[test]
    fn unknown_structure_is_an_error() {
        let mut bytes = Vec::new();
        push_library_header(&mut bytes, "LIB");
        push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
        push_ascii(&mut bytes, rt::STRNAME, "TOP");
        push_record(&mut bytes, rt::SREF, &[]);
        push_ascii(&mut bytes, rt::SNAME, "GHOST");
        let mut xy = Vec::new();
        xy.extend_from_slice(&0i32.to_be_bytes());
        xy.extend_from_slice(&0i32.to_be_bytes());
        push_record(&mut bytes, rt::XY, &xy);
        push_record(&mut bytes, rt::ENDEL, &[]);
        push_record(&mut bytes, rt::ENDSTR, &[]);
        push_record(&mut bytes, rt::ENDLIB, &[]);
        assert_eq!(
            read_gds_hier(&bytes).map(|_| ()),
            Err(GdsError::UnknownStructure {
                name: "GHOST".into()
            })
        );
    }

    #[test]
    fn reference_cycle_is_an_error() {
        // A ↔ B: every structure referenced, so the stream has no root
        // and the cycle must surface as a structured error.
        let mut bytes = Vec::new();
        push_library_header(&mut bytes, "LIB");
        for (name, target) in [("A", "B"), ("B", "A")] {
            push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
            push_ascii(&mut bytes, rt::STRNAME, name);
            push_record(&mut bytes, rt::SREF, &[]);
            push_ascii(&mut bytes, rt::SNAME, target);
            let mut xy = Vec::new();
            xy.extend_from_slice(&0i32.to_be_bytes());
            xy.extend_from_slice(&0i32.to_be_bytes());
            push_record(&mut bytes, rt::XY, &xy);
            push_record(&mut bytes, rt::ENDEL, &[]);
            push_record(&mut bytes, rt::ENDSTR, &[]);
        }
        push_record(&mut bytes, rt::ENDLIB, &[]);
        assert!(matches!(
            read_gds_hier(&bytes),
            Err(GdsError::InvalidLayout(
                aapsm_layout::LayoutError::InstanceCycle { .. }
            ))
        ));
    }

    #[test]
    fn unsupported_transforms_are_errors() {
        let build = |mangle: fn(&mut Vec<u8>)| {
            let mut bytes = Vec::new();
            push_library_header(&mut bytes, "LIB");
            push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
            push_ascii(&mut bytes, rt::STRNAME, "LEAF");
            push_boundary(&mut bytes, &Rect::new(0, 0, 10, 10)).unwrap();
            push_record(&mut bytes, rt::ENDSTR, &[]);
            push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
            push_ascii(&mut bytes, rt::STRNAME, "TOP");
            push_record(&mut bytes, rt::SREF, &[]);
            push_ascii(&mut bytes, rt::SNAME, "LEAF");
            mangle(&mut bytes);
            let mut xy = Vec::new();
            xy.extend_from_slice(&0i32.to_be_bytes());
            xy.extend_from_slice(&0i32.to_be_bytes());
            push_record(&mut bytes, rt::XY, &xy);
            push_record(&mut bytes, rt::ENDEL, &[]);
            push_record(&mut bytes, rt::ENDSTR, &[]);
            push_record(&mut bytes, rt::ENDLIB, &[]);
            bytes
        };
        // 45° rotation.
        let rotated = build(|b| push_record(b, rt::ANGLE, &gds_real(45.0)));
        assert!(matches!(
            read_gds_hier(&rotated),
            Err(GdsError::UnsupportedTransform { .. })
        ));
        // 2× magnification.
        let magnified = build(|b| push_record(b, rt::MAG, &gds_real(2.0)));
        assert!(matches!(
            read_gds_hier(&magnified),
            Err(GdsError::UnsupportedTransform { .. })
        ));
        // Absolute-angle flag.
        let absolute = build(|b| push_record(b, rt::STRANS, &2u16.to_be_bytes()));
        assert!(matches!(
            read_gds_hier(&absolute),
            Err(GdsError::UnsupportedTransform { .. })
        ));
        // A full 360° (≡ 0°) still parses.
        let wrapped = build(|b| push_record(b, rt::ANGLE, &gds_real(360.0)));
        let read = read_gds_hier(&wrapped).unwrap();
        let top = &read.hier.cells[read.hier.top.unwrap()];
        assert!(top.instances[0].placement.orient.is_identity());
    }

    #[test]
    fn multiple_roots_get_a_synthetic_top() {
        // Two root structures, neither referencing the other.
        let mut bytes = Vec::new();
        push_library_header(&mut bytes, "LIB");
        for (name, x) in [("A", 0i64), ("B", 50)] {
            push_record(&mut bytes, rt::BGNSTR, &[0u8; 24]);
            push_ascii(&mut bytes, rt::STRNAME, name);
            push_boundary(&mut bytes, &Rect::new(x, 0, x + 10, 10)).unwrap();
            push_record(&mut bytes, rt::ENDSTR, &[]);
        }
        push_record(&mut bytes, rt::ENDLIB, &[]);
        let read = read_gds_hier(&bytes).unwrap();
        assert_eq!(read.hier.cells.len(), 3);
        let top = &read.hier.cells[read.hier.top.unwrap()];
        assert_eq!(top.name, "__TOP__");
        assert_eq!(top.instances.len(), 2);
        assert_eq!(read.hier.flatten().unwrap().len(), 2);
    }

    #[test]
    fn truncation_never_panics() {
        // Property: every prefix of a valid stream either parses or
        // returns a structured error — the reader never panics on
        // truncated input.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for seed in 0..8 {
            let bytes = reference_stream(seed);
            for _ in 0..200 {
                let cut = rng.gen_range(0..bytes.len());
                let _ = read_gds(&bytes[..cut]);
            }
            // Exhaustive short prefixes (header/record-boundary edges).
            for cut in 0..bytes.len().min(64) {
                let _ = read_gds(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn hier_truncation_never_panics() {
        // The same prefix property over hierarchical reference streams.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(17);
        for seed in 0..4 {
            let bytes = write_gds_hier(&hier_fixture(seed), "LIB");
            for _ in 0..300 {
                let cut = rng.gen_range(0..bytes.len());
                let _ = read_gds_hier(&bytes[..cut]);
                let _ = read_gds(&bytes[..cut]);
            }
            for cut in 0..bytes.len().min(64) {
                let _ = read_gds_hier(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn byte_flips_never_panic() {
        // Property: flipping any byte (to any value) yields Ok or a
        // structured GdsError — never a panic, never an unsanitized
        // layout (read_gds sanitizes whatever it decodes).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for seed in 0..8 {
            let bytes = reference_stream(seed);
            for _ in 0..400 {
                let mut corrupt = bytes.clone();
                let at = rng.gen_range(0..corrupt.len());
                corrupt[at] = rng.gen_range(0..256) as u8;
                if let Ok(layout) = read_gds(&corrupt) {
                    assert!(layout
                        .sanitize(&aapsm_layout::DesignRules::default())
                        .is_ok());
                }
            }
        }
    }

    #[test]
    fn hier_byte_flips_never_panic() {
        // The flip property over streams with SREF/AREF/STRANS records:
        // whatever survives parsing must still sanitize cleanly as a
        // hierarchy (reference integrity + expansion bounds included).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(29);
        for seed in 0..4 {
            let bytes = write_gds_hier(&hier_fixture(seed), "LIB");
            for _ in 0..500 {
                let mut corrupt = bytes.clone();
                let at = rng.gen_range(0..corrupt.len());
                corrupt[at] = rng.gen_range(0..256) as u8;
                if let Ok(read) = read_gds_hier(&corrupt) {
                    assert!(read.hier.validate_refs().is_ok());
                    let _ = read.hier.flatten();
                }
                let _ = read_gds(&corrupt);
            }
        }
    }

    #[test]
    fn gds_real_encodes_unit_values() {
        // 1e-9 in excess-64 base-16: known first bytes from the GDS spec
        // examples: exponent 0x39 mantissa 0x44b82fa09b5a54...
        let r = gds_real(1e-9);
        assert_eq!(r[0], 0x39);
        assert_eq!(r[1], 0x44);
    }

    #[test]
    fn gds_real_round_trips_through_the_parser() {
        for v in [1e-9, 1e-3, 1.0, 90.0, 180.0, 270.0, 360.0, 0.0, -2.5] {
            let parsed = parse_gds_real(&gds_real(v));
            assert!(
                (parsed - v).abs() <= v.abs() * 1e-12,
                "{v} decoded as {parsed}"
            );
        }
    }
}
