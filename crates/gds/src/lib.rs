//! Minimal GDSII stream-format reader/writer for rectangle layouts.
//!
//! The paper's benchmarks are industrial GDSII layouts; this crate gives
//! the workspace a real interchange path: a [`Layout`] can be written as a
//! GDSII stream (one `BOUNDARY` per rectangle) and read back, including
//! from files produced by standard EDA tools as long as the boundaries are
//! axis-aligned rectangles.
//!
//! Only the records needed for rectangle data are implemented: `HEADER`,
//! `BGNLIB`, `LIBNAME`, `UNITS`, `BGNSTR`, `STRNAME`, `BOUNDARY`, `LAYER`,
//! `DATATYPE`, `XY`, `ENDEL`, `ENDSTR`, `ENDLIB`. Unknown records are
//! skipped on read (so real-world files with `TEXT`/`SREF` elements still
//! load their rectangles).
//!
//! # Example
//!
//! ```
//! use aapsm_gds::{read_gds, write_gds};
//! use aapsm_layout::Layout;
//! use aapsm_geom::Rect;
//!
//! let layout = Layout::from_rects(vec![Rect::new(0, 0, 100, 400)]);
//! let bytes = write_gds(&layout, "POLY");
//! let back = read_gds(&bytes)?;
//! assert_eq!(back, layout);
//! # Ok::<(), aapsm_gds::GdsError>(())
//! ```

use aapsm_geom::Rect;
use aapsm_layout::Layout;
use std::fmt;

/// Record type bytes (record type, data type).
mod rt {
    pub const HEADER: (u8, u8) = (0x00, 0x02);
    pub const BGNLIB: (u8, u8) = (0x01, 0x02);
    pub const LIBNAME: (u8, u8) = (0x02, 0x06);
    pub const UNITS: (u8, u8) = (0x03, 0x05);
    pub const ENDLIB: (u8, u8) = (0x04, 0x00);
    pub const BGNSTR: (u8, u8) = (0x05, 0x02);
    pub const STRNAME: (u8, u8) = (0x06, 0x06);
    pub const ENDSTR: (u8, u8) = (0x07, 0x00);
    pub const BOUNDARY: (u8, u8) = (0x08, 0x00);
    pub const LAYER: (u8, u8) = (0x0d, 0x02);
    pub const DATATYPE: (u8, u8) = (0x0e, 0x02);
    pub const XY: (u8, u8) = (0x10, 0x03);
    pub const ENDEL: (u8, u8) = (0x11, 0x00);
}

/// Error reading a GDSII stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GdsError {
    /// The byte stream ended inside a record.
    Truncated,
    /// A record length field was invalid.
    BadRecordLength {
        /// Stream offset of the record.
        offset: usize,
    },
    /// A `BOUNDARY` element was not an axis-aligned rectangle.
    NotARectangle {
        /// Index of the offending boundary.
        boundary: usize,
    },
    /// A coordinate overflowed the GDSII 32-bit range on write.
    CoordinateOverflow,
    /// The decoded layout failed input sanitization
    /// ([`aapsm_layout::Layout::sanitize`] under default rules):
    /// degenerate or duplicate rectangles, or coordinates unusably close
    /// to the i32 limit.
    InvalidLayout(aapsm_layout::LayoutError),
}

impl fmt::Display for GdsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GdsError::Truncated => write!(f, "gds stream truncated"),
            GdsError::BadRecordLength { offset } => {
                write!(f, "bad record length at offset {offset}")
            }
            GdsError::NotARectangle { boundary } => {
                write!(f, "boundary {boundary} is not an axis-aligned rectangle")
            }
            GdsError::CoordinateOverflow => write!(f, "coordinate exceeds the gds 32-bit range"),
            GdsError::InvalidLayout(e) => write!(f, "decoded layout failed sanitization: {e}"),
        }
    }
}

impl std::error::Error for GdsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GdsError::InvalidLayout(e) => Some(e),
            _ => None,
        }
    }
}

fn push_record(out: &mut Vec<u8>, kind: (u8, u8), data: &[u8]) {
    let len = 4 + data.len();
    assert!(
        len <= u16::MAX as usize && len.is_multiple_of(2),
        "record too long or odd"
    );
    out.extend_from_slice(&(len as u16).to_be_bytes());
    out.push(kind.0);
    out.push(kind.1);
    out.extend_from_slice(data);
}

fn push_ascii(out: &mut Vec<u8>, kind: (u8, u8), s: &str) {
    let mut data: Vec<u8> = s.bytes().collect();
    if data.len() % 2 == 1 {
        data.push(0);
    }
    push_record(out, kind, &data);
}

/// Writes a layout as a GDSII stream with a single structure named
/// `cell_name`, layer 1, datatype 0, 1 nm database units.
///
/// Rectangles become 5-point closed `BOUNDARY` paths in counter-clockwise
/// order.
///
/// # Panics
///
/// Panics if any coordinate exceeds the GDSII 32-bit range (use
/// [`try_write_gds`] for a fallible version).
pub fn write_gds(layout: &Layout, cell_name: &str) -> Vec<u8> {
    try_write_gds(layout, cell_name).expect("layout coordinates fit the gds range")
}

/// Fallible version of [`write_gds`].
///
/// # Errors
///
/// Returns [`GdsError::CoordinateOverflow`] if a coordinate does not fit
/// in `i32`.
pub fn try_write_gds(layout: &Layout, cell_name: &str) -> Result<Vec<u8>, GdsError> {
    let mut out = Vec::with_capacity(layout.len() * 60 + 128);
    push_record(&mut out, rt::HEADER, &600i16.to_be_bytes());
    // Twelve i16 timestamp words (modification + access), all zero.
    push_record(&mut out, rt::BGNLIB, &[0u8; 24]);
    push_ascii(&mut out, rt::LIBNAME, "AAPSM");
    // UNITS: 1 dbu = 1e-3 user units (um), 1e-9 meters. Stored as two
    // 8-byte GDSII reals.
    let mut units = Vec::with_capacity(16);
    units.extend_from_slice(&gds_real(1e-3));
    units.extend_from_slice(&gds_real(1e-9));
    push_record(&mut out, rt::UNITS, &units);
    push_record(&mut out, rt::BGNSTR, &[0u8; 24]);
    push_ascii(&mut out, rt::STRNAME, cell_name);
    for r in layout.rects() {
        push_record(&mut out, rt::BOUNDARY, &[]);
        push_record(&mut out, rt::LAYER, &1i16.to_be_bytes());
        push_record(&mut out, rt::DATATYPE, &0i16.to_be_bytes());
        let pts = [
            (r.x_lo(), r.y_lo()),
            (r.x_hi(), r.y_lo()),
            (r.x_hi(), r.y_hi()),
            (r.x_lo(), r.y_hi()),
            (r.x_lo(), r.y_lo()),
        ];
        let mut xy = Vec::with_capacity(40);
        for (x, y) in pts {
            let x = i32::try_from(x).map_err(|_| GdsError::CoordinateOverflow)?;
            let y = i32::try_from(y).map_err(|_| GdsError::CoordinateOverflow)?;
            xy.extend_from_slice(&x.to_be_bytes());
            xy.extend_from_slice(&y.to_be_bytes());
        }
        push_record(&mut out, rt::XY, &xy);
        push_record(&mut out, rt::ENDEL, &[]);
    }
    push_record(&mut out, rt::ENDSTR, &[]);
    push_record(&mut out, rt::ENDLIB, &[]);
    Ok(out)
}

/// Encodes an 8-byte GDSII excess-64 base-16 real.
fn gds_real(value: f64) -> [u8; 8] {
    if value == 0.0 {
        return [0; 8];
    }
    let sign = if value < 0.0 { 0x80u8 } else { 0 };
    let mut v = value.abs();
    let mut exp = 64i32;
    while v >= 1.0 {
        v /= 16.0;
        exp += 1;
    }
    while v < 1.0 / 16.0 {
        v *= 16.0;
        exp -= 1;
    }
    let mantissa = (v * 2f64.powi(56)) as u64;
    let mut out = [0u8; 8];
    out[0] = sign | (exp as u8);
    out[1..8].copy_from_slice(&mantissa.to_be_bytes()[1..8]);
    out
}

/// Reads the rectangles of the first structure of a GDSII stream.
///
/// Non-rectangular boundaries are an error; unknown records (texts,
/// references, properties) are skipped. The decoded layout is passed
/// through [`aapsm_layout::Layout::sanitize`] (default rules) before it
/// is returned, so corrupt or adversarial streams yield a structured
/// [`GdsError`] — never a panic and never a layout the pipeline cannot
/// process soundly.
///
/// # Errors
///
/// See [`GdsError`].
pub fn read_gds(bytes: &[u8]) -> Result<Layout, GdsError> {
    // Deterministic fault injection (debug builds only — the hook is
    // compiled out in release): when a plan targets GDS, one byte of a
    // private copy is flipped. The corruption property suite asserts the
    // reader then returns a structured error or a sanitized layout,
    // never panics.
    let corrupted: Vec<u8>;
    let bytes = match aapsm_fault::gds_corrupt_offset(bytes.len()) {
        Some(off) => {
            let mut copy = bytes.to_vec();
            copy[off] ^= 0xff;
            corrupted = copy;
            &corrupted[..]
        }
        None => bytes,
    };
    let mut rects = Vec::new();
    let mut offset = 0usize;
    let mut boundary_index = 0usize;
    let mut in_boundary = false;
    let mut saw_endlib = false;
    while offset + 4 <= bytes.len() {
        let len = u16::from_be_bytes([bytes[offset], bytes[offset + 1]]) as usize;
        if len < 4 || !len.is_multiple_of(2) {
            return Err(GdsError::BadRecordLength { offset });
        }
        if offset + len > bytes.len() {
            return Err(GdsError::Truncated);
        }
        let kind = (bytes[offset + 2], bytes[offset + 3]);
        let data = &bytes[offset + 4..offset + len];
        match kind {
            k if k == rt::BOUNDARY => in_boundary = true,
            k if k == rt::ENDEL => in_boundary = false,
            k if k == rt::XY && in_boundary => {
                let mut pts = Vec::with_capacity(data.len() / 8);
                for chunk in data.chunks_exact(8) {
                    let x = i32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
                    let y = i32::from_be_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
                    pts.push((x as i64, y as i64));
                }
                rects.push(rect_from_boundary(&pts, boundary_index)?);
                boundary_index += 1;
            }
            k if k == rt::ENDLIB => {
                saw_endlib = true;
                break;
            }
            _ => {}
        }
        offset += len;
    }
    if !saw_endlib {
        return Err(GdsError::Truncated);
    }
    let layout = Layout::from_rects(rects);
    layout
        .sanitize(&aapsm_layout::DesignRules::default())
        .map_err(GdsError::InvalidLayout)?;
    Ok(layout)
}

fn rect_from_boundary(pts: &[(i64, i64)], index: usize) -> Result<Rect, GdsError> {
    // A rectangle boundary has 5 points (closed) or 4 (unclosed writers
    // exist); all edges must be axis-parallel and the extents must form
    // exactly the bounding box.
    let err = || GdsError::NotARectangle { boundary: index };
    let core: &[(i64, i64)] = if pts.len() == 5 && pts[0] == pts[4] {
        &pts[..4]
    } else if pts.len() == 4 {
        pts
    } else {
        return Err(err());
    };
    let xs: Vec<i64> = core.iter().map(|p| p.0).collect();
    let ys: Vec<i64> = core.iter().map(|p| p.1).collect();
    let (x_lo, x_hi) = (*xs.iter().min().unwrap(), *xs.iter().max().unwrap());
    let (y_lo, y_hi) = (*ys.iter().min().unwrap(), *ys.iter().max().unwrap());
    if x_lo == x_hi || y_lo == y_hi {
        return Err(err());
    }
    // Each corner must be one of the four bbox corners, all distinct.
    let mut corners: Vec<(i64, i64)> = core.to_vec();
    corners.sort_unstable();
    corners.dedup();
    let mut expected = vec![(x_lo, y_lo), (x_lo, y_hi), (x_hi, y_lo), (x_hi, y_hi)];
    expected.sort_unstable();
    if corners != expected {
        return Err(err());
    }
    Ok(Rect::new(x_lo, y_lo, x_hi, y_hi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_simple() {
        let layout = Layout::from_rects(vec![
            Rect::new(0, 0, 100, 400),
            Rect::new(-500, -600, -300, -100),
        ]);
        let bytes = write_gds(&layout, "TOP");
        assert_eq!(read_gds(&bytes).unwrap(), layout);
    }

    #[test]
    fn roundtrip_random() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let rects: Vec<Rect> = (0..rng.gen_range(1..200))
                .map(|_| {
                    let x = rng.gen_range(-1_000_000..1_000_000);
                    let y = rng.gen_range(-1_000_000..1_000_000);
                    Rect::new(x, y, x + rng.gen_range(1..5000), y + rng.gen_range(1..5000))
                })
                .collect();
            let layout = Layout::from_rects(rects);
            assert_eq!(read_gds(&write_gds(&layout, "T")).unwrap(), layout);
        }
    }

    #[test]
    fn rejects_non_rectangles() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10)]);
        let mut bytes = write_gds(&layout, "T");
        // Corrupt one XY coordinate so the boundary is an L-shape.
        // Find the XY record (0x10, 0x03).
        let pos = (0..bytes.len() - 4)
            .find(|&i| bytes[i + 2] == 0x10 && bytes[i + 3] == 0x03)
            .unwrap();
        // Second point's x (offset 4 header + 8 first point).
        bytes[pos + 4 + 8 + 3] = 5;
        assert!(matches!(
            read_gds(&bytes),
            Err(GdsError::NotARectangle { boundary: 0 })
        ));
    }

    #[test]
    fn truncated_stream_detected() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, 10, 10)]);
        let bytes = write_gds(&layout, "T");
        assert_eq!(
            read_gds(&bytes[..bytes.len() - 2]),
            Err(GdsError::Truncated)
        );
    }

    #[test]
    fn coordinate_overflow_reported() {
        let layout = Layout::from_rects(vec![Rect::new(0, 0, i64::MAX / 2, 10)]);
        assert_eq!(
            try_write_gds(&layout, "T"),
            Err(GdsError::CoordinateOverflow)
        );
    }

    #[test]
    fn empty_layout_roundtrips() {
        let bytes = write_gds(&Layout::new(), "EMPTY");
        assert!(read_gds(&bytes).unwrap().is_empty());
    }

    #[test]
    fn duplicate_rect_stream_fails_sanitization() {
        // Two byte-identical boundaries: the reader decodes them fine but
        // sanitization rejects the result with a structured error.
        let r = Rect::new(0, 0, 100, 400);
        let layout = Layout::from_rects(vec![r, r]);
        assert!(matches!(
            read_gds(&write_gds(&layout, "T")),
            Err(GdsError::InvalidLayout(
                aapsm_layout::LayoutError::DuplicateRect {
                    first: 0,
                    second: 1
                }
            ))
        ));
    }

    fn reference_stream(seed: u64) -> Vec<u8> {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rects: Vec<Rect> = (0..rng.gen_range(1..40))
            .map(|i| {
                let x = i64::from(i) * 20_000 + rng.gen_range(0..5_000);
                let y = rng.gen_range(-500_000..500_000);
                Rect::new(x, y, x + rng.gen_range(1..5000), y + rng.gen_range(1..5000))
            })
            .collect();
        write_gds(&Layout::from_rects(rects), "T")
    }

    #[test]
    fn truncation_never_panics() {
        // Property: every prefix of a valid stream either parses or
        // returns a structured error — the reader never panics on
        // truncated input.
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        for seed in 0..8 {
            let bytes = reference_stream(seed);
            for _ in 0..200 {
                let cut = rng.gen_range(0..bytes.len());
                let _ = read_gds(&bytes[..cut]);
            }
            // Exhaustive short prefixes (header/record-boundary edges).
            for cut in 0..bytes.len().min(64) {
                let _ = read_gds(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn byte_flips_never_panic() {
        // Property: flipping any byte (to any value) yields Ok or a
        // structured GdsError — never a panic, never an unsanitized
        // layout (read_gds sanitizes whatever it decodes).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        for seed in 0..8 {
            let bytes = reference_stream(seed);
            for _ in 0..400 {
                let mut corrupt = bytes.clone();
                let at = rng.gen_range(0..corrupt.len());
                corrupt[at] = rng.gen_range(0..256) as u8;
                if let Ok(layout) = read_gds(&corrupt) {
                    assert!(layout
                        .sanitize(&aapsm_layout::DesignRules::default())
                        .is_ok());
                }
            }
        }
    }

    #[test]
    fn gds_real_encodes_unit_values() {
        // 1e-9 in excess-64 base-16: known first bytes from the GDS spec
        // examples: exponent 0x39 mantissa 0x44b82fa09b5a54...
        let r = gds_real(1e-9);
        assert_eq!(r[0], 0x39);
        assert_eq!(r[1], 0x44);
    }
}
