//! Property-based cross-validation of the Blossom solver against the
//! exhaustive reference.

use aapsm_matching::{exhaustive, max_weight_matching, min_weight_perfect_matching};
use proptest::prelude::*;

fn edges(max_n: usize) -> impl Strategy<Value = (usize, Vec<(usize, usize, i64)>)> {
    (2..=max_n).prop_flat_map(|n| {
        let edge = (0..n, 0..n, 1i64..1000);
        (Just(n), proptest::collection::vec(edge, 0..20)).prop_map(|(n, raw)| {
            let clean: Vec<_> = raw.into_iter().filter(|&(u, v, _)| u != v).collect();
            (n, clean)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Blossom minimum-weight perfect matching matches brute force in both
    /// existence and weight.
    #[test]
    fn min_perfect_matches_brute((n, es) in edges(10)) {
        let fast = min_weight_perfect_matching(n, &es);
        let brute = exhaustive::min_weight_perfect_matching(n, &es);
        prop_assert_eq!(fast.as_ref().map(|m| m.weight), brute.as_ref().map(|m| m.weight));
        if let Some(m) = fast {
            prop_assert!(m.is_perfect());
            // Mate array is involutive.
            for (u, mate) in m.mate.iter().enumerate() {
                let v = mate.unwrap();
                prop_assert_eq!(m.mate[v], Some(u));
            }
        }
    }

    /// Blossom maximum-weight matching weight matches brute force.
    #[test]
    fn max_weight_matches_brute((n, es) in edges(9)) {
        let fast = max_weight_matching(n, &es);
        let brute = exhaustive::max_weight_matching(n, &es);
        prop_assert_eq!(fast.weight, brute);
        // Every matched pair is a real edge.
        for (u, v) in fast.pairs() {
            prop_assert!(es.iter().any(|&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u)));
        }
    }

    /// Scaling all weights by a positive constant scales the optimum.
    #[test]
    fn weight_scaling((n, es) in edges(8), k in 1i64..5) {
        let scaled: Vec<_> = es.iter().map(|&(u, v, w)| (u, v, w * k)).collect();
        let a = min_weight_perfect_matching(n, &es);
        let b = min_weight_perfect_matching(n, &scaled);
        prop_assert_eq!(a.map(|m| m.weight * k), b.map(|m| m.weight));
    }
}
