//! Maximum/minimum weight matching on general graphs (Blossom algorithm).
//!
//! The bright-field AAPSM flow needs *minimum-weight perfect matching*: the
//! optimal bipartization of the planarized phase conflict graph reduces to a
//! T-join on the geometric dual, which in turn reduces — via the paper's
//! generalized gadgets — to a perfect matching on the gadget graph.
//!
//! This crate implements the primal–dual Blossom algorithm in O(V³),
//! following the classic dense-matrix formulation (Gabow-style with lazy
//! blossom bookkeeping). Weights are exact `i64` throughout; dual variables
//! use doubled weights so all slack arithmetic stays integral.
//!
//! Two entry points:
//!
//! * [`max_weight_matching`] — maximum weight (not necessarily perfect)
//!   matching, weights must be positive;
//! * [`min_weight_perfect_matching`] — minimum weight perfect matching via
//!   the standard cardinality-dominant weight transform.
//!
//! The [`exhaustive`] module provides a brute-force reference used by the
//! property-test suite (and usable at runtime for tiny instances).
//!
//! # Solver reuse
//!
//! The Blossom solver works on a dense `(2n+1)²` matrix plus O(n²)
//! scratch. A [`MatchingContext`] owns those buffers as a reusable arena:
//! solving through one context allocates only when an instance is larger
//! than everything the context has seen before, which matters when one
//! AAPSM flow solves thousands of small gadget matchings. The free
//! functions transparently use a per-thread context; performance-sensitive
//! callers (the parallel bipartization workers) hold their own.
//!
//! # Example
//!
//! ```
//! use aapsm_matching::min_weight_perfect_matching;
//!
//! // A 4-cycle with one cheap and one expensive chord-free pairing.
//! let edges = [(0, 1, 10), (1, 2, 1), (2, 3, 10), (3, 0, 1)];
//! let m = min_weight_perfect_matching(4, &edges).expect("perfect matching exists");
//! assert_eq!(m.weight, 2); // pairs (1,2) and (3,0)
//! assert_eq!(m.mate[1], Some(2));
//! ```
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

mod blossom;
pub mod exhaustive;

pub use blossom::max_weight_matching;

pub use aapsm_fault::{Budget, BudgetExceeded, Stage};

/// A reusable Blossom solver arena.
///
/// Buffer capacities persist across calls: a context that has solved an
/// `n`-node instance solves any instance of at most `n` nodes without
/// touching the allocator (see [`MatchingContext::grow_events`]).
pub struct MatchingContext {
    solver: blossom::Solver,
}

impl Default for MatchingContext {
    fn default() -> Self {
        MatchingContext::new()
    }
}

impl MatchingContext {
    /// An empty context; buffers are allocated on first use.
    pub fn new() -> Self {
        MatchingContext {
            solver: blossom::Solver::new(),
        }
    }

    /// Largest instance node count solvable without allocating.
    pub fn node_capacity(&self) -> usize {
        self.solver.node_capacity()
    }

    /// Number of solves that had to grow a buffer (a reuse-efficiency
    /// probe: stays flat while instances fit the arena).
    pub fn grow_events(&self) -> u64 {
        self.solver.grow_events()
    }

    /// [`max_weight_matching`] on this context's arena.
    pub fn max_weight_matching(&mut self, n: usize, edges: &[(usize, usize, i64)]) -> Matching {
        match self.solver.solve_max_weight(n, edges, &Budget::unlimited()) {
            Ok(m) => m,
            // An unlimited budget never refuses work.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// [`MatchingContext::max_weight_matching`], charging Blossom
    /// dual-adjustment work to `budget`.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the [`Stage::Matching`] budget trips; the
    /// solve is abandoned whole (no partial matching is returned).
    pub fn try_max_weight_matching(
        &mut self,
        n: usize,
        edges: &[(usize, usize, i64)],
        budget: &Budget,
    ) -> Result<Matching, BudgetExceeded> {
        self.solver.solve_max_weight(n, edges, budget)
    }

    /// [`min_weight_perfect_matching`] on this context's arena.
    pub fn min_weight_perfect_matching(
        &mut self,
        n: usize,
        edges: &[(usize, usize, i64)],
    ) -> Option<Matching> {
        match min_weight_perfect_matching_impl(self, n, edges, &Budget::unlimited()) {
            Ok(m) => m,
            // An unlimited budget never refuses work.
            Err(_) => unreachable!("unlimited budget tripped"),
        }
    }

    /// [`MatchingContext::min_weight_perfect_matching`], charging Blossom
    /// dual-adjustment work to `budget`. `Ok(None)` means the graph has
    /// no perfect matching — a budget trip is a distinct outcome
    /// (`Err`), so callers can tell "infeasible" from "out of budget".
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the [`Stage::Matching`] budget trips.
    pub fn try_min_weight_perfect_matching(
        &mut self,
        n: usize,
        edges: &[(usize, usize, i64)],
        budget: &Budget,
    ) -> Result<Option<Matching>, BudgetExceeded> {
        min_weight_perfect_matching_impl(self, n, edges, budget)
    }

    /// Releases every arena buffer, returning the context to its freshly
    /// constructed state (statistics included). The next solve
    /// reallocates from scratch — use after an unusually large one-off
    /// instance whose O(n²) buffers should not stay resident.
    pub fn clear(&mut self) {
        self.solver = blossom::Solver::new();
    }
}

/// Retention cap for the **per-thread** context: after a shared-context
/// solve, arenas sized beyond this many nodes are released rather than
/// kept for the life of the thread (one 512-node arena ≈ 17 MB; typical
/// AAPSM gadget matchings are tens to a few hundred nodes, so steady-state
/// reuse is unaffected). Caller-owned contexts are never trimmed — their
/// lifetime is the caller's to manage.
const THREAD_ARENA_NODE_CAP: usize = 512;

fn trim_oversized(ctx: &mut MatchingContext, node_cap: usize) {
    if ctx.node_capacity() > node_cap {
        ctx.clear();
    }
}

std::thread_local! {
    static THREAD_CONTEXT: std::cell::RefCell<MatchingContext> =
        std::cell::RefCell::new(MatchingContext::new());
}

/// Runs `f` with the calling thread's shared [`MatchingContext`].
///
/// The free matching functions route through this, so sequential callers
/// get arena reuse for free and each worker thread of a parallel solve has
/// its own arena. To bound per-thread memory residency, an arena left
/// larger than a few hundred nodes by `f` is released on the way out (a
/// one-off huge instance would otherwise pin its O(n²) buffers for the
/// life of the thread); hold your own [`MatchingContext`] to keep large
/// capacities across calls.
///
/// # Panics
///
/// Panics if `f` re-enters `with_thread_context` on the same thread (the
/// context is exclusively borrowed while `f` runs).
pub fn with_thread_context<R>(f: impl FnOnce(&mut MatchingContext) -> R) -> R {
    THREAD_CONTEXT.with(|ctx| {
        let ctx = &mut ctx.borrow_mut();
        let r = f(ctx);
        trim_oversized(ctx, THREAD_ARENA_NODE_CAP);
        r
    })
}

/// A matching: `mate[v]` is `v`'s partner, `None` if unmatched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matching {
    /// Partner of each node.
    pub mate: Vec<Option<usize>>,
    /// Total weight of the matched edges (in the caller's original
    /// weights).
    pub weight: i64,
}

impl Matching {
    /// Number of matched pairs.
    pub fn pair_count(&self) -> usize {
        self.mate.iter().flatten().count() / 2
    }

    /// Whether every node is matched.
    pub fn is_perfect(&self) -> bool {
        self.mate.iter().all(Option::is_some)
    }

    /// The matched pairs `(u, v)` with `u < v`.
    pub fn pairs(&self) -> Vec<(usize, usize)> {
        self.mate
            .iter()
            .enumerate()
            .filter_map(|(u, m)| m.and_then(|v| (u < v).then_some((u, v))))
            .collect()
    }
}

/// Finds a minimum-weight perfect matching, or `None` when the graph has no
/// perfect matching (including when `n` is odd).
///
/// Duplicate edges are allowed; the cheapest parallel edge wins. Weights
/// may be any `i64` within ±2⁴⁰ (they are shifted internally; the limit
/// leaves ample headroom for chip-scale spacing weights).
///
/// Uses the calling thread's shared [`MatchingContext`]; hold your own
/// context to control arena reuse explicitly.
///
/// # Panics
///
/// Panics if an edge references a node `>= n`, is a self-loop, or exceeds
/// the weight headroom above.
pub fn min_weight_perfect_matching(n: usize, edges: &[(usize, usize, i64)]) -> Option<Matching> {
    with_thread_context(|ctx| ctx.min_weight_perfect_matching(n, edges))
}

fn min_weight_perfect_matching_impl(
    ctx: &mut MatchingContext,
    n: usize,
    edges: &[(usize, usize, i64)],
    budget: &Budget,
) -> Result<Option<Matching>, BudgetExceeded> {
    if n == 0 {
        return Ok(Some(Matching {
            mate: Vec::new(),
            weight: 0,
        }));
    }
    if n % 2 == 1 {
        return Ok(None);
    }
    const W_LIMIT: i64 = 1 << 40;
    let mut w_max = 0i64;
    for &(u, v, w) in edges {
        assert!(u < n && v < n, "edge endpoint out of range");
        assert_ne!(u, v, "self-loops are not allowed");
        assert!(w.abs() < W_LIMIT, "weight exceeds headroom");
        w_max = w_max.max(w.abs());
    }
    // Cardinality-dominant transform: w' = base + (w_max - w) with
    // base > n * (2 * w_max), so larger matchings always outweigh smaller
    // ones and, among maximum matchings, minimum original weight wins.
    let base = 2 * w_max * (n as i64) + 1;
    let transformed: Vec<(usize, usize, i64)> = edges
        .iter()
        .map(|&(u, v, w)| (u, v, base + (w_max - w)))
        .collect();
    let m = ctx.try_max_weight_matching(n, &transformed, budget)?;
    if !m.is_perfect() {
        return Ok(None);
    }
    // Invariant, not an error path: the solver only matches pairs that came
    // from the input edge list, so the min() below always sees a candidate.
    #[allow(clippy::expect_used)]
    let weight = m
        .pairs()
        .iter()
        .map(|&(u, v)| {
            edges
                .iter()
                .filter(|&&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u))
                .map(|&(_, _, w)| w)
                .min()
                .expect("matched pair corresponds to an input edge")
        })
        .sum();
    Ok(Some(Matching {
        mate: m.mate,
        weight,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn empty_and_odd() {
        assert!(min_weight_perfect_matching(0, &[]).is_some());
        assert!(min_weight_perfect_matching(3, &[(0, 1, 1), (1, 2, 1)]).is_none());
    }

    #[test]
    fn single_edge() {
        let m = min_weight_perfect_matching(2, &[(0, 1, 7)]).unwrap();
        assert_eq!(m.weight, 7);
        assert_eq!(m.mate, vec![Some(1), Some(0)]);
    }

    #[test]
    fn no_perfect_matching() {
        // Star K_{1,3}: 4 nodes but no perfect matching.
        assert!(min_weight_perfect_matching(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]).is_none());
    }

    #[test]
    fn prefers_cheap_pairs_even_if_locally_tempting() {
        // Path 0-1-2-3 with cheap middle: taking (1,2) leaves 0 and 3
        // unmatchable; the perfect matching must use the two outer edges.
        let m = min_weight_perfect_matching(4, &[(0, 1, 5), (1, 2, 1), (2, 3, 5)]).unwrap();
        assert_eq!(m.weight, 10);
    }

    #[test]
    fn parallel_edges_take_the_cheapest() {
        let m = min_weight_perfect_matching(2, &[(0, 1, 9), (0, 1, 4), (1, 0, 6)]).unwrap();
        assert_eq!(m.weight, 4);
    }

    #[test]
    fn zero_and_negative_weights() {
        let m = min_weight_perfect_matching(4, &[(0, 1, 0), (2, 3, -5), (0, 2, 100), (1, 3, 100)])
            .unwrap();
        assert_eq!(m.weight, -5);
    }

    #[test]
    fn blossom_shrinking_is_exercised() {
        // Two triangles joined by a middle edge: odd components force
        // blossom handling.
        let edges = [
            (0, 1, 2),
            (1, 2, 2),
            (2, 0, 2),
            (3, 4, 2),
            (4, 5, 2),
            (5, 3, 2),
            (2, 3, 1),
        ];
        let m = min_weight_perfect_matching(6, &edges).unwrap();
        assert_eq!(m.weight, 5); // (0,1) + (2,3) + (4,5)
    }

    #[test]
    fn context_reuse_does_not_allocate_within_capacity() {
        // One large solve sizes the arena; every smaller solve after it
        // must run without growing any buffer, and must agree with a
        // fresh context.
        let mut rng = rand::rngs::StdRng::seed_from_u64(4242);
        let mut ctx = MatchingContext::new();
        let big_n = 40;
        let mut big_edges = Vec::new();
        for u in 0..big_n {
            for v in u + 1..big_n {
                if rng.gen_bool(0.4) {
                    big_edges.push((u, v, rng.gen_range(1..1000)));
                }
            }
        }
        ctx.min_weight_perfect_matching(big_n, &big_edges);
        assert!(ctx.node_capacity() >= big_n);
        let grows_after_big = ctx.grow_events();
        assert!(grows_after_big >= 1);

        for _ in 0..50 {
            let n = 2 * rng.gen_range(1..=15); // all within capacity
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v, rng.gen_range(0..100)));
                    }
                }
            }
            let reused = ctx.min_weight_perfect_matching(n, &edges);
            let fresh = MatchingContext::new().min_weight_perfect_matching(n, &edges);
            assert_eq!(
                reused.as_ref().map(|m| m.weight),
                fresh.as_ref().map(|m| m.weight),
                "arena reuse changed the optimum (n={n})"
            );
            assert_eq!(reused.map(|m| m.mate), fresh.map(|m| m.mate));
        }
        assert_eq!(
            ctx.grow_events(),
            grows_after_big,
            "within-capacity solves must not grow the arena"
        );
        assert_eq!(ctx.node_capacity(), big_n);
    }

    #[test]
    fn oversized_shared_arenas_are_trimmed_small_ones_kept() {
        // The per-thread context must not pin a one-off large arena, but
        // must keep within-cap arenas for reuse. Exercised via the
        // trimming helper with a small cap (the production path uses the
        // same helper with THREAD_ARENA_NODE_CAP).
        let mut ctx = MatchingContext::new();
        ctx.min_weight_perfect_matching(30, &[(0, 1, 1)]); // sizes arena to 30
        trim_oversized(&mut ctx, 16);
        assert_eq!(ctx.node_capacity(), 0, "oversized arena must be released");
        ctx.min_weight_perfect_matching(10, &[(0, 1, 1)]);
        trim_oversized(&mut ctx, 16);
        assert_eq!(ctx.node_capacity(), 10, "within-cap arena must be kept");
        // clear() is the caller-facing release.
        ctx.clear();
        assert_eq!(ctx.node_capacity(), 0);
        assert_eq!(ctx.grow_events(), 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for trial in 0..200 {
            let n = 2 * rng.gen_range(1..6); // up to 10 nodes
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.7) {
                        edges.push((u, v, rng.gen_range(0..100)));
                    }
                }
            }
            let fast = min_weight_perfect_matching(n, &edges);
            let brute = exhaustive::min_weight_perfect_matching(n, &edges);
            match (fast, brute) {
                (None, None) => {}
                (Some(f), Some(b)) => {
                    assert_eq!(f.weight, b.weight, "trial {trial} n={n} edges={edges:?}");
                    assert!(f.is_perfect());
                }
                (f, b) => panic!(
                    "trial {trial}: existence disagrees: fast={} brute={}",
                    f.is_some(),
                    b.is_some()
                ),
            }
        }
    }

    #[test]
    fn matches_brute_force_with_big_weights() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(43);
        for _ in 0..50 {
            let n = 8;
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v, rng.gen_range(0..1_000_000_000)));
                    }
                }
            }
            let fast = min_weight_perfect_matching(n, &edges);
            let brute = exhaustive::min_weight_perfect_matching(n, &edges);
            assert_eq!(fast.map(|m| m.weight), brute.map(|m| m.weight));
        }
    }

    #[test]
    fn larger_dense_instance_is_consistent() {
        // Sanity: mate array is involutive and every matched pair is an edge.
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let n = 60;
        let mut edges = Vec::new();
        for u in 0..n {
            for v in u + 1..n {
                if rng.gen_bool(0.3) {
                    edges.push((u, v, rng.gen_range(1..10_000)));
                }
            }
        }
        if let Some(m) = min_weight_perfect_matching(n, &edges) {
            for (u, v) in m.pairs() {
                assert_eq!(m.mate[v], Some(u));
                assert!(edges
                    .iter()
                    .any(|&(a, b, _)| (a, b) == (u, v) || (a, b) == (v, u)));
            }
            assert_eq!(m.pair_count(), n / 2);
        }
    }
}
