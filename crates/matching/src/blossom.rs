//! Primal–dual Blossom algorithm for maximum weight matching, O(V³).
//!
//! This is a careful port of the classic dense-matrix contest formulation
//! (1-indexed node ids, `0` as a null sentinel, blossom ids above `n`,
//! doubled weights for integral slacks). Nodes `1..=n` are real; ids
//! `n+1..=2n` are (re)used for shrunken blossoms. The adjacency matrix
//! stores, for every pair of *surface* nodes, the best concrete real-node
//! edge connecting them, which makes blossom expansion bookkeeping local.
//!
//! The solver is an **arena**: [`Solver::reset`] rewinds it for a new
//! instance while keeping every buffer's capacity, so a solver reused
//! across the thousands of small gadget matchings of one AAPSM flow
//! allocates only when an instance exceeds all previous sizes. On reset,
//! only the `(n+1)²` real-node block of the matrix is sentinel-initialized;
//! the blossom rows and columns (`n+1..2n+1`) are left stale and are fully
//! (re)written by `add_blossom` before anything reads them, which is what
//! makes skipping the classic O(cap²) whole-matrix initialization sound.

use crate::Matching;
use aapsm_fault::{Budget, BudgetExceeded, Stage};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

const INF: i64 = i64::MAX / 4;

#[derive(Clone, Copy, Default)]
struct EdgeCell {
    u: u32,
    v: u32,
    w: i64,
}

pub(crate) struct Solver {
    n: usize,
    n_x: usize,
    cap: usize,
    g: Vec<EdgeCell>,
    lab: Vec<i64>,
    mate: Vec<usize>,
    slack: Vec<usize>,
    st: Vec<usize>,
    pa: Vec<usize>,
    flower: Vec<Vec<usize>>,
    flower_from: Vec<usize>, // cap x (n + 1)
    s: Vec<i8>,              // -1 unvisited, 0 even (S), 1 odd (T)
    vis: Vec<u32>,
    vis_t: u32,
    q: std::collections::VecDeque<usize>,
    w_max: i64,
    grow_events: u64,
    /// Lazy priority queue over the surface slack edges, keyed on
    /// *price* = effective delta + [`Solver::acc`]. The effective delta
    /// of a surface node's best slack edge (the full `e_delta` for an
    /// unvisited node, half of it for an S-node) decreases by exactly `d`
    /// under every dual adjustment by `d`, while `acc` increases by `d` —
    /// so a pushed price stays correct until the node's slack edge or
    /// class changes, and an entry is current iff its price equals the
    /// node's recomputed effective delta plus `acc` (stale entries are
    /// discarded on pop). This replaces the O(V) min-slack and
    /// tight-edge rescans per dual adjustment.
    heap: BinaryHeap<Reverse<(i64, usize)>>,
    /// Cumulative dual adjustment of the current phase (see
    /// [`Solver::heap`]).
    acc: i64,
}

impl Solver {
    pub(crate) fn new() -> Self {
        Solver {
            n: 0,
            n_x: 0,
            cap: 0,
            g: Vec::new(),
            lab: Vec::new(),
            mate: Vec::new(),
            slack: Vec::new(),
            st: Vec::new(),
            pa: Vec::new(),
            flower: Vec::new(),
            flower_from: Vec::new(),
            s: Vec::new(),
            vis: Vec::new(),
            vis_t: 0,
            q: std::collections::VecDeque::new(),
            w_max: 0,
            grow_events: 0,
            heap: BinaryHeap::new(),
            acc: 0,
        }
    }

    /// Largest node count an instance can have without forcing this solver
    /// to allocate.
    pub(crate) fn node_capacity(&self) -> usize {
        self.lab.len().saturating_sub(1) / 2
    }

    /// How many times `reset` had to grow a buffer (for reuse tests).
    pub(crate) fn grow_events(&self) -> u64 {
        self.grow_events
    }

    /// Rewinds the arena for an `n`-node instance, growing buffers only
    /// when `n` exceeds every previously seen size.
    fn reset(&mut self, n: usize) {
        self.n = n;
        self.n_x = n;
        let cap = 2 * n + 1;
        self.cap = cap;
        let mut grew = false;
        if self.g.len() < cap * cap {
            self.g.resize(cap * cap, EdgeCell::default());
            grew = true;
        }
        if self.lab.len() < cap {
            self.lab.resize(cap, 0);
            self.mate.resize(cap, 0);
            self.slack.resize(cap, 0);
            self.st.resize(cap, 0);
            self.pa.resize(cap, 0);
            self.s.resize(cap, -1);
            self.vis.resize(cap, 0);
            self.flower.resize_with(cap, Vec::new);
            grew = true;
        }
        if self.flower_from.len() < cap * (n + 1) {
            self.flower_from.resize(cap * (n + 1), 0);
            grew = true;
        }
        if grew {
            self.grow_events += 1;
        }
        // Sentinel cells only for the real block (rows/cols 0..=n): an
        // absent pair must still expose its endpoints so slack arithmetic
        // (`e_delta`) sees lab[u] + lab[v]. Blossom rows/cols stay stale —
        // `add_blossom` rewrites row/col `b` in full (w-clear pass, then
        // the unconditional first-child copy) before any read.
        for u in 0..=n {
            let row = u * cap;
            for (v, cell) in self.g[row..row + n + 1].iter_mut().enumerate() {
                *cell = EdgeCell {
                    u: u as u32,
                    v: v as u32,
                    w: 0,
                };
            }
        }
        for x in 0..cap {
            self.lab[x] = 0;
            self.mate[x] = 0;
            self.slack[x] = 0;
            self.st[x] = x;
            self.pa[x] = 0;
            self.s[x] = -1;
            self.vis[x] = 0;
            self.flower[x].clear();
        }
        self.vis_t = 0;
        self.q.clear();
        self.w_max = 0;
        self.heap.clear();
        self.acc = 0;
    }

    #[inline]
    fn g_at(&self, u: usize, v: usize) -> EdgeCell {
        self.g[u * self.cap + v]
    }

    #[inline]
    fn g_set(&mut self, u: usize, v: usize, e: EdgeCell) {
        self.g[u * self.cap + v] = e;
    }

    #[inline]
    fn ff(&self, b: usize, x: usize) -> usize {
        self.flower_from[b * (self.n + 1) + x]
    }

    #[inline]
    fn ff_set(&mut self, b: usize, x: usize, val: usize) {
        self.flower_from[b * (self.n + 1) + x] = val;
    }

    #[inline]
    fn e_delta(&self, e: EdgeCell) -> i64 {
        self.lab[e.u as usize] + self.lab[e.v as usize] - e.w * 2
    }

    /// Price of surface node `x`'s current slack edge for the lazy heap,
    /// `None` when `x` has no heap-tracked slack (dead surface, no slack
    /// edge, or T-class — T-nodes never bound a dual adjustment and their
    /// slack edges never tighten under one).
    fn slack_price(&self, x: usize) -> Option<i64> {
        if self.st[x] != x || self.slack[x] == 0 {
            return None;
        }
        let delta = self.e_delta(self.g_at(self.slack[x], x));
        let eff = match self.s[x] {
            -1 => delta,
            0 => delta / 2,
            _ => return None,
        };
        Some(eff + self.acc)
    }

    fn heap_push(&mut self, x: usize) {
        if let Some(price) = self.slack_price(x) {
            self.heap.push(Reverse((price, x)));
        }
    }

    fn update_slack(&mut self, u: usize, x: usize) {
        if self.slack[x] == 0
            || self.e_delta(self.g_at(u, x)) < self.e_delta(self.g_at(self.slack[x], x))
        {
            self.slack[x] = u;
            self.heap_push(x);
        }
    }

    fn set_slack(&mut self, x: usize) {
        self.slack[x] = 0;
        for u in 1..=self.n {
            if self.g_at(u, x).w > 0 && self.st[u] != x && self.s[self.st[u]] == 0 {
                self.update_slack(u, x);
            }
        }
    }

    fn q_push(&mut self, x: usize) {
        if x <= self.n {
            self.q.push_back(x);
        } else {
            let children = self.flower[x].clone();
            for c in children {
                self.q_push(c);
            }
        }
    }

    fn set_st(&mut self, x: usize, b: usize) {
        self.st[x] = b;
        if x > self.n {
            let children = self.flower[x].clone();
            for c in children {
                self.set_st(c, b);
            }
        }
    }

    fn get_pr(&mut self, b: usize, xr: usize) -> usize {
        // Invariant, not an error path: callers pass xr straight out of
        // blossom b's flower list.
        #[allow(clippy::expect_used)]
        let pr = self.flower[b]
            .iter()
            .position(|&x| x == xr)
            .expect("xr is a child of blossom b");
        if pr % 2 == 1 {
            self.flower[b][1..].reverse();
            self.flower[b].len() - pr
        } else {
            pr
        }
    }

    fn set_match(&mut self, u: usize, v: usize) {
        let e = self.g_at(u, v);
        self.mate[u] = e.v as usize;
        if u > self.n {
            let xr = self.ff(u, e.u as usize);
            let pr = self.get_pr(u, xr);
            for i in 0..pr {
                let a = self.flower[u][i];
                let b = self.flower[u][i ^ 1];
                self.set_match(a, b);
            }
            self.set_match(xr, v);
            self.flower[u].rotate_left(pr);
        }
    }

    fn augment(&mut self, mut u: usize, mut v: usize) {
        loop {
            let xnv = self.st[self.mate[u]];
            self.set_match(u, v);
            if xnv == 0 {
                return;
            }
            let pa_xnv = self.st[self.pa[xnv]];
            self.set_match(xnv, pa_xnv);
            u = pa_xnv;
            v = xnv;
        }
    }

    fn get_lca(&mut self, mut u: usize, mut v: usize) -> usize {
        self.vis_t += 1;
        let t = self.vis_t;
        while u != 0 || v != 0 {
            if u != 0 {
                if self.vis[u] == t {
                    return u;
                }
                self.vis[u] = t;
                u = self.st[self.mate[u]];
                if u != 0 {
                    u = self.st[self.pa[u]];
                }
            }
            std::mem::swap(&mut u, &mut v);
        }
        0
    }

    fn add_blossom(&mut self, u: usize, lca: usize, v: usize) {
        let mut b = self.n + 1;
        while b <= self.n_x && self.st[b] != 0 {
            b += 1;
        }
        if b > self.n_x {
            self.n_x += 1;
        }
        self.lab[b] = 0;
        self.s[b] = 0;
        self.mate[b] = self.mate[lca];
        self.flower[b].clear();
        self.flower[b].push(lca);
        let mut x = u;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.flower[b][1..].reverse();
        let mut x = v;
        while x != lca {
            self.flower[b].push(x);
            let y = self.st[self.mate[x]];
            self.flower[b].push(y);
            self.q_push(y);
            x = self.st[self.pa[y]];
        }
        self.set_st(b, b);
        for x in 1..=self.n_x {
            let mut cell = self.g_at(b, x);
            cell.w = 0;
            self.g_set(b, x, cell);
            let mut cell = self.g_at(x, b);
            cell.w = 0;
            self.g_set(x, b, cell);
        }
        for x in 1..=self.n {
            self.ff_set(b, x, 0);
        }
        let children = self.flower[b].clone();
        for &xs in &children {
            for x in 1..=self.n_x {
                if self.g_at(b, x).w == 0
                    || self.e_delta(self.g_at(xs, x)) < self.e_delta(self.g_at(b, x))
                {
                    let e1 = self.g_at(xs, x);
                    let e2 = self.g_at(x, xs);
                    self.g_set(b, x, e1);
                    self.g_set(x, b, e2);
                }
            }
            for x in 1..=self.n {
                if xs <= self.n {
                    if xs == x {
                        self.ff_set(b, x, xs);
                    }
                } else if self.ff(xs, x) != 0 {
                    self.ff_set(b, x, xs);
                }
            }
        }
        self.set_slack(b);
    }

    fn expand_blossom(&mut self, b: usize) {
        let children = self.flower[b].clone();
        for &c in &children {
            self.set_st(c, c);
        }
        let xr = self.ff(b, self.g_at(b, self.pa[b]).u as usize);
        let pr = self.get_pr(b, xr);
        let mut i = 0;
        while i < pr {
            let xs = self.flower[b][i];
            let xns = self.flower[b][i + 1];
            self.pa[xs] = self.g_at(xns, xs).u as usize;
            self.s[xs] = 1;
            self.s[xns] = 0;
            self.slack[xs] = 0;
            self.set_slack(xns);
            self.q_push(xns);
            i += 2;
        }
        self.s[xr] = 1;
        self.pa[xr] = self.pa[b];
        for i in (pr + 1)..self.flower[b].len() {
            let xs = self.flower[b][i];
            self.s[xs] = -1;
            self.set_slack(xs);
        }
        self.st[b] = 0;
    }

    /// Processes a tight edge found during the search; returns `true` if an
    /// augmenting path was applied.
    fn on_found_edge(&mut self, e: EdgeCell) -> bool {
        let u = self.st[e.u as usize];
        let v = self.st[e.v as usize];
        if self.s[v] == -1 {
            self.pa[v] = e.u as usize;
            self.s[v] = 1;
            let nu = self.st[self.mate[v]];
            self.slack[v] = 0;
            self.slack[nu] = 0;
            self.s[nu] = 0;
            self.q_push(nu);
        } else if self.s[v] == 0 {
            let lca = self.get_lca(u, v);
            if lca == 0 {
                self.augment(u, v);
                self.augment(v, u);
                return true;
            }
            self.add_blossom(u, lca, v);
        }
        false
    }

    /// One phase: grows alternating trees from all unmatched surface nodes,
    /// adjusting duals, until an augmentation happens (true) or no further
    /// progress is possible (false). Each dual-adjustment iteration
    /// charges one [`Stage::Matching`] tick to `budget`, so a budgeted
    /// solve trips mid-search instead of running to completion.
    fn matching_phase(&mut self, budget: &Budget) -> Result<bool, BudgetExceeded> {
        for x in 0..=self.n_x {
            self.s[x] = -1;
            self.slack[x] = 0;
        }
        self.heap.clear();
        self.acc = 0;
        self.q.clear();
        for x in 1..=self.n_x {
            if self.st[x] == x && self.mate[x] == 0 {
                self.pa[x] = 0;
                self.s[x] = 0;
                self.q_push(x);
            }
        }
        if self.q.is_empty() {
            return Ok(false);
        }
        loop {
            budget.charge(Stage::Matching, 1)?;
            while let Some(u) = self.q.pop_front() {
                if self.s[self.st[u]] == 1 {
                    continue;
                }
                for v in 1..=self.n {
                    if self.g_at(u, v).w > 0 && self.st[u] != self.st[v] {
                        if self.e_delta(self.g_at(u, v)) == 0 {
                            if self.on_found_edge(self.g_at(u, v)) {
                                return Ok(true);
                            }
                        } else {
                            let stv = self.st[v];
                            self.update_slack(u, stv);
                        }
                    }
                }
            }
            let mut d = INF;
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 {
                    d = d.min(self.lab[b] / 2);
                }
            }
            // Lazy minimum over the surface slack edges: discard stale
            // tops (price no longer matches the node's current slack
            // state), then read the first current one. Every live slack
            // keeps an exact-price entry in the heap, so the surviving
            // top is the true minimum; it stays in the heap because any
            // adjustment by at most its effective delta keeps it current.
            while let Some(&Reverse((price, x))) = self.heap.peek() {
                if self.slack_price(x) == Some(price) {
                    d = d.min(price - self.acc);
                    break;
                }
                self.heap.pop();
            }
            #[cfg(test)]
            {
                let mut d_old = INF;
                for b in (self.n + 1)..=self.n_x {
                    if self.st[b] == b && self.s[b] == 1 {
                        d_old = d_old.min(self.lab[b] / 2);
                    }
                }
                for x in 1..=self.n_x {
                    if self.st[x] == x && self.slack[x] != 0 {
                        let delta = self.e_delta(self.g_at(self.slack[x], x));
                        if self.s[x] == -1 {
                            d_old = d_old.min(delta);
                        } else if self.s[x] == 0 {
                            d_old = d_old.min(delta / 2);
                        }
                    }
                }
                assert_eq!(d, d_old, "lazy heap min diverged from rescan min");
            }
            for u in 1..=self.n {
                match self.s[self.st[u]] {
                    0 => {
                        if self.lab[u] <= d {
                            return Ok(false);
                        }
                        self.lab[u] -= d;
                    }
                    1 => self.lab[u] += d,
                    _ => {}
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b {
                    match self.s[b] {
                        0 => self.lab[b] += d * 2,
                        1 => self.lab[b] -= d * 2,
                        _ => {}
                    }
                }
            }
            self.acc += d;
            self.q.clear();
            // Newly tight slack edges are exactly the current entries
            // whose price has drifted down to `acc` (effective delta 0).
            // Processing one can push further tight entries (a new
            // blossom's fresh slack can already be tight); the loop keeps
            // draining until only strictly positive slack remains.
            while let Some(&Reverse((price, x))) = self.heap.peek() {
                if price > self.acc {
                    if self.slack_price(x) == Some(price) {
                        break; // current ⇒ true minimum ⇒ nothing tight left
                    }
                    self.heap.pop();
                    continue;
                }
                self.heap.pop();
                if self.slack_price(x) != Some(price) {
                    continue;
                }
                let e = self.g_at(self.slack[x], x);
                // Same guards as the historical rescan: the edge must be
                // *exactly* tight (an S-node's floored half-delta can hit
                // zero one adjustment before its delta does) and must
                // leave the surface node.
                if self.st[self.slack[x]] != x && self.e_delta(e) == 0 && self.on_found_edge(e) {
                    return Ok(true);
                }
            }
            for b in (self.n + 1)..=self.n_x {
                if self.st[b] == b && self.s[b] == 1 && self.lab[b] == 0 {
                    self.expand_blossom(b);
                }
            }
        }
    }

    fn run(&mut self, budget: &Budget) -> Result<(), BudgetExceeded> {
        // `flower_from` needs no eager setup: its real-node rows are never
        // read (every `ff` read is on a blossom id), and `add_blossom`
        // zeroes a blossom's row before filling it.
        for u in 1..=self.n {
            self.lab[u] = self.w_max;
        }
        while self.matching_phase(budget)? {}
        Ok(())
    }

    /// Computes a maximum weight matching on this arena (see
    /// [`crate::MatchingContext::max_weight_matching`] for the contract),
    /// charging dual-adjustment work to `budget`. A budget trip abandons
    /// the solve — partial matchings are never returned.
    pub(crate) fn solve_max_weight(
        &mut self,
        n: usize,
        edges: &[(usize, usize, i64)],
        budget: &Budget,
    ) -> Result<Matching, BudgetExceeded> {
        if n == 0 {
            return Ok(Matching {
                mate: Vec::new(),
                weight: 0,
            });
        }
        self.reset(n);
        for &(u, v, w) in edges {
            assert!(u < n && v < n, "edge endpoint out of range");
            assert_ne!(u, v, "self-loops are not allowed");
            if w <= 0 {
                continue;
            }
            let (iu, iv) = (u + 1, v + 1);
            if w > self.g_at(iu, iv).w {
                self.w_max = self.w_max.max(w);
                self.g_set(
                    iu,
                    iv,
                    EdgeCell {
                        u: iu as u32,
                        v: iv as u32,
                        w,
                    },
                );
                self.g_set(
                    iv,
                    iu,
                    EdgeCell {
                        u: iv as u32,
                        v: iu as u32,
                        w,
                    },
                );
            }
        }
        self.run(budget)?;
        let mut weight = 0i64;
        let mut mate = vec![None; n];
        for u in 1..=n {
            let m = self.mate[u];
            if m != 0 {
                mate[u - 1] = Some(m - 1);
                if m < u {
                    weight += self.g_at(u, m).w;
                }
            }
        }
        Ok(Matching { mate, weight })
    }
}

/// Computes a maximum weight matching (not necessarily perfect) among
/// edges with **positive** weight; zero- and negative-weight edges are
/// treated as absent.
///
/// Node ids are `0..n`. Duplicate edges keep the heaviest copy. Runs in
/// O(n³) with an O(n²) dense matrix — intended for the per-component
/// instances of the AAPSM flow (tens to a few hundred nodes each).
///
/// Uses the calling thread's shared [`crate::MatchingContext`], so repeated
/// calls reuse the solver arena; hold your own context (or use
/// [`crate::with_thread_context`]) to make the reuse explicit.
///
/// # Panics
///
/// Panics if an edge endpoint is out of range or a self-loop.
pub fn max_weight_matching(n: usize, edges: &[(usize, usize, i64)]) -> Matching {
    crate::with_thread_context(|ctx| ctx.max_weight_matching(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exhaustive;
    use rand::{Rng, SeedableRng};

    #[test]
    fn picks_heavier_disjoint_pairs() {
        // Triangle + pendant: max weight matching takes the two heavy
        // disjoint edges.
        let m = max_weight_matching(4, &[(0, 1, 10), (1, 2, 11), (2, 0, 1), (2, 3, 10)]);
        assert_eq!(m.weight, 20); // (0,1) + (2,3)
    }

    #[test]
    fn ignores_nonpositive_edges() {
        let m = max_weight_matching(2, &[(0, 1, 0)]);
        assert_eq!(m.weight, 0);
        assert_eq!(m.mate, vec![None, None]);
    }

    #[test]
    fn matches_brute_force_max_weight() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        for trial in 0..200 {
            let n = rng.gen_range(1..9);
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(0.6) {
                        edges.push((u, v, rng.gen_range(1..50)));
                    }
                }
            }
            let fast = max_weight_matching(n, &edges);
            let brute = exhaustive::max_weight_matching(n, &edges);
            assert_eq!(fast.weight, brute, "trial {trial} n={n} edges={edges:?}");
        }
    }

    #[test]
    fn nested_blossoms() {
        // A 9-cycle with chords that force nested blossom shrinking.
        let mut edges = Vec::new();
        for i in 0..9usize {
            edges.push((i, (i + 1) % 9, 10));
        }
        edges.push((0, 2, 9));
        edges.push((3, 5, 9));
        let fast = max_weight_matching(9, &edges);
        let brute = exhaustive::max_weight_matching(9, &edges);
        assert_eq!(fast.weight, brute);
    }
}

#[cfg(test)]
mod stress_review {
    use super::*;
    use crate::exhaustive;
    use rand::{Rng, SeedableRng};

    #[test]
    fn heavy_randomized_vs_brute_force() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12345);
        for trial in 0..6000 {
            let n = rng.gen_range(2..12);
            let p = rng.gen_range(20u32..95) as f64 / 100.0;
            let wmax = *[3, 7, 15, 50, 999].get(trial % 5).unwrap();
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    if rng.gen_bool(p) {
                        edges.push((u, v, rng.gen_range(1..=wmax)));
                    }
                }
            }
            let fast = max_weight_matching(n, &edges);
            let brute = exhaustive::max_weight_matching(n, &edges);
            assert_eq!(fast.weight, brute, "trial {trial} n={n} edges={edges:?}");
        }
    }
}
