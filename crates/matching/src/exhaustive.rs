//! Brute-force matching references for testing and tiny instances.
//!
//! Both solvers enumerate with a bitmask DP over node subsets in
//! O(2ⁿ · n²); practical up to n ≈ 20.

use crate::Matching;

const NEG_INF: i64 = i64::MIN / 4;

fn weight_matrix(n: usize, edges: &[(usize, usize, i64)], keep_min: bool) -> Vec<Vec<Option<i64>>> {
    let mut w = vec![vec![None; n]; n];
    for &(u, v, x) in edges {
        assert!(u < n && v < n && u != v, "bad edge ({u},{v})");
        let cur = w[u][v];
        let better = match cur {
            None => true,
            Some(c) => {
                if keep_min {
                    x < c
                } else {
                    x > c
                }
            }
        };
        if better {
            w[u][v] = Some(x);
            w[v][u] = Some(x);
        }
    }
    w
}

/// Minimum-weight perfect matching by exhaustive subset DP.
///
/// Returns `None` when no perfect matching exists.
///
/// # Panics
///
/// Panics if `n > 22` (the DP table would be too large) or edges are
/// malformed.
pub fn min_weight_perfect_matching(n: usize, edges: &[(usize, usize, i64)]) -> Option<Matching> {
    assert!(n <= 22, "exhaustive matching limited to n <= 22");
    if n == 0 {
        return Some(Matching {
            mate: Vec::new(),
            weight: 0,
        });
    }
    if n % 2 == 1 {
        return None;
    }
    let w = weight_matrix(n, edges, true);
    let full = 1usize << n;
    const UNSET: i64 = i64::MAX / 2;
    let mut dp = vec![UNSET; full];
    let mut choice = vec![usize::MAX; full];
    dp[0] = 0;
    for mask in 1..full {
        let u = mask.trailing_zeros() as usize;
        let mut best = UNSET;
        let mut best_v = usize::MAX;
        for v in (u + 1)..n {
            if mask & (1 << v) != 0 {
                if let Some(wv) = w[u][v] {
                    let rest = dp[mask & !(1 << u) & !(1 << v)];
                    if rest < UNSET && rest + wv < best {
                        best = rest + wv;
                        best_v = v;
                    }
                }
            }
        }
        dp[mask] = best;
        choice[mask] = best_v;
    }
    if dp[full - 1] >= UNSET {
        return None;
    }
    let mut mate = vec![None; n];
    let mut mask = full - 1;
    while mask != 0 {
        let u = mask.trailing_zeros() as usize;
        let v = choice[mask];
        mate[u] = Some(v);
        mate[v] = Some(u);
        mask &= !(1 << u) & !(1 << v);
    }
    Some(Matching {
        mate,
        weight: dp[full - 1],
    })
}

/// Maximum-weight (not necessarily perfect) matching weight by exhaustive
/// subset DP. Only positive-weight edges are considered, mirroring
/// [`crate::max_weight_matching`].
///
/// # Panics
///
/// Panics if `n > 22`.
pub fn max_weight_matching(n: usize, edges: &[(usize, usize, i64)]) -> i64 {
    assert!(n <= 22, "exhaustive matching limited to n <= 22");
    if n == 0 {
        return 0;
    }
    let positive: Vec<_> = edges.iter().copied().filter(|&(_, _, w)| w > 0).collect();
    let w = weight_matrix(n, &positive, false);
    let full = 1usize << n;
    let mut dp = vec![NEG_INF; full];
    dp[0] = 0;
    for mask in 0..full {
        if dp[mask] == NEG_INF {
            continue;
        }
        // First node not yet decided.
        let mut u = 0;
        while u < n && mask & (1 << u) != 0 {
            u += 1;
        }
        if u == n {
            continue;
        }
        // Leave u unmatched.
        let skip = mask | (1 << u);
        dp[skip] = dp[skip].max(dp[mask]);
        for (v, &wuv) in w[u].iter().enumerate().skip(u + 1) {
            if mask & (1 << v) == 0 {
                if let Some(wv) = wuv {
                    let nm = mask | (1 << u) | (1 << v);
                    dp[nm] = dp[nm].max(dp[mask] + wv);
                }
            }
        }
    }
    dp[full - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn min_perfect_on_square() {
        let edges = [(0, 1, 1), (1, 2, 2), (2, 3, 1), (3, 0, 2)];
        let m = min_weight_perfect_matching(4, &edges).unwrap();
        assert_eq!(m.weight, 2);
        assert_eq!(m.mate[0], Some(1));
        assert_eq!(m.mate[2], Some(3));
    }

    #[test]
    fn min_perfect_none_for_star() {
        assert!(min_weight_perfect_matching(4, &[(0, 1, 1), (0, 2, 1), (0, 3, 1)]).is_none());
    }

    #[test]
    fn max_matching_leaves_nodes_unmatched_when_profitable() {
        // Only one positive edge: match it, leave the rest.
        assert_eq!(max_weight_matching(4, &[(0, 1, 5), (2, 3, -1)]), 5);
    }

    #[test]
    fn negative_weights_allowed_in_min_perfect() {
        let m = min_weight_perfect_matching(2, &[(0, 1, -3)]).unwrap();
        assert_eq!(m.weight, -3);
    }
}
