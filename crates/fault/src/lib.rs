//! Work budgets, deadlines, cooperative cancellation and deterministic
//! fault injection for the AAPSM detect→correct→verify flow.
//!
//! # Budgets
//!
//! A [`Budget`] bounds how much work the pipeline may spend before it has
//! to degrade gracefully instead of running to completion: a wall-clock
//! deadline, per-[`Stage`] work caps (in abstract *ticks* — tiles built,
//! components traced, matching phases, branch-and-bound nodes), and a
//! cooperative [`CancelToken`]. Long loops call [`Budget::charge`]; stage
//! boundaries call [`Budget::check`]. Both return [`BudgetExceeded`] when
//! the budget is spent, and the caller is expected to fall back down the
//! degradation ladder (exact cover → greedy, optimal bipartization →
//! parity heuristic, …) while *truthfully recording the degradation* in
//! the flow's provenance — a budgeted answer must never masquerade as a
//! proven one.
//!
//! The default budget is [`Budget::unlimited`]: a `None` arc, so the hot
//! paths pay one pointer test and nothing else. Work caps are charged
//! into shared atomic counters, so whether a cap trips depends only on
//! the total work of the item set, not on worker scheduling — the
//! *decision* to degrade is deterministic even under parallelism (the
//! wall-clock deadline is inherently not, which is fine: either way the
//! result is truthfully flagged).
//!
//! # Fault injection
//!
//! The [`FaultPlan`] hooks exist **only in debug builds** (release
//! compiles them to nothing — [`enabled`] is a `const fn` on
//! `cfg!(debug_assertions)`, asserted zero-cost by the benchmark
//! harness). A test installs a plan with [`with_plan`] — globally
//! serialized, so concurrent tests cannot contaminate each other's
//! counters — and the instrumented sites ([`hit`] at tile builds, face
//! traces, cover components; forced exhaustion inside
//! [`Budget::charge`]/[`Budget::check`]; a byte flip in the GDS reader)
//! fire deterministically at the planned occurrence. The property the
//! whole workspace tests against these hooks: *every injected fault
//! yields either a bit-identical complete result or a truthfully flagged
//! degraded/error result — never a silently wrong one.*
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Pipeline stages that carry independent work budgets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Conflict-graph construction (tile builds).
    GraphBuild,
    /// Face tracing / dual construction per component.
    Embed,
    /// Blossom matching (dual adjustment phases).
    Matching,
    /// Set-cover branch-and-bound (search nodes).
    Cover,
}

impl Stage {
    /// Number of stages (array sizing).
    pub const COUNT: usize = 4;

    fn index(self) -> usize {
        match self {
            Stage::GraphBuild => 0,
            Stage::Embed => 1,
            Stage::Matching => 2,
            Stage::Cover => 3,
        }
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Stage::GraphBuild => "graph-build",
            Stage::Embed => "embed",
            Stage::Matching => "matching",
            Stage::Cover => "cover",
        };
        write!(f, "{name}")
    }
}

/// Why a budget refused further work.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExhaustReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The stage's work cap was spent.
    WorkCap,
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// A fault-injection plan forced the exhaustion (debug builds only).
    Injected,
}

impl fmt::Display for ExhaustReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ExhaustReason::Deadline => "deadline expired",
            ExhaustReason::WorkCap => "work cap spent",
            ExhaustReason::Cancelled => "cancelled",
            ExhaustReason::Injected => "injected exhaustion",
        };
        write!(f, "{name}")
    }
}

/// A budget refused further work; callers degrade (truthfully) or abort.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The stage that was charging when the budget tripped.
    pub stage: Stage,
    /// What was exhausted.
    pub reason: ExhaustReason,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget exceeded in {} stage: {}",
            self.stage, self.reason
        )
    }
}

impl std::error::Error for BudgetExceeded {}

struct BudgetInner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    caps: [u64; Stage::COUNT],
    used: [AtomicU64; Stage::COUNT],
    /// Charge counter driving the periodic deadline poll.
    polls: AtomicU64,
}

/// `charge` polls the wall clock once per this many charges (power of
/// two); `check` polls unconditionally.
const DEADLINE_POLL_MASK: u64 = 0x3ff;

/// Work/deadline/cancellation bounds shared by every worker of one flow.
///
/// Cloning is cheap (an `Arc`); all clones observe the same counters and
/// the same cancellation flag. See the crate docs for semantics.
#[derive(Clone, Default)]
pub struct Budget {
    inner: Option<Arc<BudgetInner>>,
}

/// Declarative description of a [`Budget`]; `None` fields are unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BudgetSpec {
    /// Wall-clock deadline, measured from [`BudgetSpec::build`].
    pub deadline: Option<Duration>,
    /// Tick cap for [`Stage::GraphBuild`].
    pub graph_build_ticks: Option<u64>,
    /// Tick cap for [`Stage::Embed`].
    pub embed_ticks: Option<u64>,
    /// Tick cap for [`Stage::Matching`].
    pub matching_ticks: Option<u64>,
    /// Tick cap for [`Stage::Cover`].
    pub cover_ticks: Option<u64>,
}

impl BudgetSpec {
    /// Materializes the spec into a live budget (the deadline clock
    /// starts now). An all-`None` spec still yields a *limited* budget —
    /// one that never trips on its own but supports cancellation.
    pub fn build(&self) -> Budget {
        let cap = |c: Option<u64>| c.unwrap_or(u64::MAX);
        Budget {
            inner: Some(Arc::new(BudgetInner {
                deadline: self.deadline.map(|d| Instant::now() + d),
                cancelled: AtomicBool::new(false),
                caps: [
                    cap(self.graph_build_ticks),
                    cap(self.embed_ticks),
                    cap(self.matching_ticks),
                    cap(self.cover_ticks),
                ],
                used: Default::default(),
                polls: AtomicU64::new(0),
            })),
        }
    }
}

impl Budget {
    /// The default: no deadline, no caps, not cancellable, near-zero
    /// overhead on every `charge`/`check`.
    pub fn unlimited() -> Budget {
        Budget { inner: None }
    }

    /// Whether this budget can ever refuse work (it was built from a
    /// [`BudgetSpec`] rather than [`Budget::unlimited`]).
    pub fn is_limited(&self) -> bool {
        self.inner.is_some()
    }

    /// A token that cancels this budget cooperatively from another
    /// thread. `None` for unlimited budgets (build one from an empty
    /// [`BudgetSpec`] to get cancellation without other limits).
    pub fn cancel_token(&self) -> Option<CancelToken> {
        self.inner.as_ref().map(|inner| CancelToken {
            inner: Arc::clone(inner),
        })
    }

    /// Ticks charged to `stage` so far (0 for unlimited budgets).
    pub fn used(&self, stage: Stage) -> u64 {
        self.inner
            .as_ref()
            .map_or(0, |i| i.used[stage.index()].load(Ordering::Relaxed))
    }

    /// Stage-boundary check: cancellation, injected exhaustion, and an
    /// unconditional deadline poll. Charges no work.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the budget refuses further work.
    pub fn check(&self, stage: Stage) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        #[cfg(debug_assertions)]
        injected_exhaust(stage)?;
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                stage,
                reason: ExhaustReason::Cancelled,
            });
        }
        if inner.deadline.is_some_and(|d| Instant::now() >= d) {
            return Err(BudgetExceeded {
                stage,
                reason: ExhaustReason::Deadline,
            });
        }
        Ok(())
    }

    /// Charges `ticks` of work to `stage` and fails once the stage cap is
    /// spent (shared across all clones, so the trip decision depends only
    /// on total work, not scheduling). Polls the deadline every
    /// [`DEADLINE_POLL_MASK`]` + 1` charges.
    ///
    /// # Errors
    ///
    /// [`BudgetExceeded`] when the budget refuses further work.
    pub fn charge(&self, stage: Stage, ticks: u64) -> Result<(), BudgetExceeded> {
        let Some(inner) = &self.inner else {
            return Ok(());
        };
        #[cfg(debug_assertions)]
        injected_exhaust(stage)?;
        let i = stage.index();
        let used = inner.used[i].fetch_add(ticks, Ordering::Relaxed) + ticks;
        if used > inner.caps[i] {
            return Err(BudgetExceeded {
                stage,
                reason: ExhaustReason::WorkCap,
            });
        }
        if inner.cancelled.load(Ordering::Relaxed) {
            return Err(BudgetExceeded {
                stage,
                reason: ExhaustReason::Cancelled,
            });
        }
        if inner.deadline.is_some() {
            let p = inner.polls.fetch_add(1, Ordering::Relaxed);
            if p & DEADLINE_POLL_MASK == 0 && inner.deadline.is_some_and(|d| Instant::now() >= d) {
                return Err(BudgetExceeded {
                    stage,
                    reason: ExhaustReason::Deadline,
                });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for Budget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Budget::unlimited"),
            Some(inner) => f
                .debug_struct("Budget")
                .field("deadline", &inner.deadline)
                .field("cancelled", &inner.cancelled.load(Ordering::Relaxed))
                .field("caps", &inner.caps)
                .finish(),
        }
    }
}

/// Cancels the [`Budget`] it was taken from; every subsequent
/// `charge`/`check` on any clone fails with
/// [`ExhaustReason::Cancelled`].
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<BudgetInner>,
}

impl CancelToken {
    /// Triggers cancellation (idempotent).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }
}

impl fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CancelToken")
            .field("cancelled", &self.inner.cancelled.load(Ordering::Relaxed))
            .finish()
    }
}

// ---------------------------------------------------------------------
// Deterministic fault injection (debug builds only).
// ---------------------------------------------------------------------

/// Instrumented sites a [`FaultPlan`] can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// One tile build of the sharded conflict-graph construction.
    TileBuild,
    /// One component face trace of the embedding back-end.
    EmbedComponent,
    /// One per-component set-cover solve of the correction planner.
    CoverComponent,
    /// One record of a GDS stream being read.
    GdsRecord,
}

impl FaultSite {
    #[cfg(debug_assertions)]
    const COUNT: usize = 4;

    #[cfg(debug_assertions)]
    fn index(self) -> usize {
        match self {
            FaultSite::TileBuild => 0,
            FaultSite::EmbedComponent => 1,
            FaultSite::CoverComponent => 2,
            FaultSite::GdsRecord => 3,
        }
    }
}

/// A deterministic fault schedule, installed with [`with_plan`].
///
/// All occurrence counts are 0-based and shared across worker threads
/// (which occurrence a given *item* is may depend on scheduling; the
/// tested invariant — bit-identical or truthfully flagged — does not).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic on the n-th [`hit`] of the site.
    pub panic_at: Option<(FaultSite, u64)>,
    /// Panic on **every** [`hit`] of the site (defeats the retry-once
    /// healing, driving the flow's structured panic error path).
    pub panic_always: Option<FaultSite>,
    /// Force [`BudgetExceeded`] from the n-th charge/check of the stage
    /// onward. Applies only to budgets built from a [`BudgetSpec`];
    /// [`Budget::unlimited`] stays genuinely infallible even under an
    /// armed plan (the unbudgeted entry points rely on that).
    pub exhaust_at: Option<(Stage, u64)>,
    /// Flip one byte of the GDS stream being read, at this seed offset
    /// (reduced modulo the stream length).
    pub corrupt_gds: Option<u64>,
}

/// Whether the fault hooks are compiled in. `false` in release builds —
/// every hook is a no-op there, which the benchmark harness asserts.
pub const fn enabled() -> bool {
    cfg!(debug_assertions)
}

#[cfg(debug_assertions)]
mod active {
    use super::*;
    use std::sync::Mutex;

    pub(super) struct ActivePlan {
        pub(super) plan: FaultPlan,
        pub(super) site_hits: [AtomicU64; FaultSite::COUNT],
        pub(super) charges: AtomicU64,
    }

    /// The installed plan; hooks read it, [`with_plan`] swaps it.
    pub(super) static PLAN: Mutex<Option<Arc<ActivePlan>>> = Mutex::new(None);
    /// Serializes whole [`with_plan`] scopes against each other.
    pub(super) static SCOPE: Mutex<()> = Mutex::new(());

    pub(super) fn current() -> Option<Arc<ActivePlan>> {
        PLAN.lock()
            .unwrap_or_else(|e| e.into_inner())
            .as_ref()
            .map(Arc::clone)
    }
}

/// Runs `f` with `plan` armed, then disarms it (even if `f` panics).
///
/// Scopes are globally serialized: concurrent tests queue here instead of
/// contaminating each other's occurrence counters. In release builds the
/// plan is ignored and `f` runs directly.
pub fn with_plan<R>(plan: FaultPlan, f: impl FnOnce() -> R) -> R {
    #[cfg(debug_assertions)]
    {
        let _scope = active::SCOPE.lock().unwrap_or_else(|e| e.into_inner());
        struct Disarm;
        impl Drop for Disarm {
            fn drop(&mut self) {
                *active::PLAN.lock().unwrap_or_else(|e| e.into_inner()) = None;
            }
        }
        let _disarm = Disarm;
        *active::PLAN.lock().unwrap_or_else(|e| e.into_inner()) =
            Some(Arc::new(active::ActivePlan {
                plan,
                site_hits: Default::default(),
                charges: AtomicU64::new(0),
            }));
        f()
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = plan;
        f()
    }
}

/// Fault-injection probe: call at every instrumented site occurrence.
/// Panics when the armed plan targets this occurrence; otherwise (and
/// always in release builds) a no-op.
#[inline]
pub fn hit(site: FaultSite) {
    #[cfg(debug_assertions)]
    {
        if let Some(active) = active::current() {
            let n = active.site_hits[site.index()].fetch_add(1, Ordering::Relaxed);
            if active.plan.panic_always == Some(site) {
                panic!("injected fault: {site:?} (every hit)");
            }
            if active.plan.panic_at == Some((site, n)) {
                panic!("injected fault: {site:?} hit {n}");
            }
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = site;
    }
}

#[cfg(debug_assertions)]
fn injected_exhaust(stage: Stage) -> Result<(), BudgetExceeded> {
    if let Some(active) = active::current() {
        if let Some((target, n)) = active.plan.exhaust_at {
            if target == stage {
                let c = active.charges.fetch_add(1, Ordering::Relaxed);
                if c >= n {
                    return Err(BudgetExceeded {
                        stage,
                        reason: ExhaustReason::Injected,
                    });
                }
            }
        }
    }
    Ok(())
}

/// The byte offset an armed plan wants corrupted in a GDS stream of
/// `len` bytes (`None` when no plan targets GDS, always in release).
pub fn gds_corrupt_offset(len: usize) -> Option<usize> {
    #[cfg(debug_assertions)]
    {
        if len == 0 {
            return None;
        }
        if let Some(active) = active::current() {
            return active
                .plan
                .corrupt_gds
                .map(|seed| (seed % len as u64) as usize);
        }
        None
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = len;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_trips() {
        let b = Budget::unlimited();
        for stage in [
            Stage::GraphBuild,
            Stage::Embed,
            Stage::Matching,
            Stage::Cover,
        ] {
            assert!(b.check(stage).is_ok());
            assert!(b.charge(stage, u64::MAX / 2).is_ok());
        }
        assert!(!b.is_limited());
        assert!(b.cancel_token().is_none());
    }

    #[test]
    fn work_cap_trips_at_cap_regardless_of_batching() {
        for batch in [1u64, 3, 10] {
            let b = BudgetSpec {
                matching_ticks: Some(100),
                ..Default::default()
            }
            .build();
            let mut charged = 0u64;
            let mut tripped = false;
            while charged < 300 {
                match b.charge(Stage::Matching, batch) {
                    Ok(()) => charged += batch,
                    Err(e) => {
                        assert_eq!(e.stage, Stage::Matching);
                        assert_eq!(e.reason, ExhaustReason::WorkCap);
                        tripped = true;
                        break;
                    }
                }
            }
            assert!(tripped, "batch {batch}");
            // The trip happens as soon as the running total exceeds the cap.
            assert!(charged <= 100, "batch {batch}: charged {charged}");
            // Other stages are unaffected.
            assert!(b.charge(Stage::Cover, 1_000_000).is_ok());
        }
    }

    #[test]
    fn expired_deadline_fails_check_immediately() {
        let b = BudgetSpec {
            deadline: Some(Duration::ZERO),
            ..Default::default()
        }
        .build();
        let err = b.check(Stage::GraphBuild).unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Deadline);
        // The first charge polls the clock (poll counter starts at 0).
        assert!(b.charge(Stage::GraphBuild, 1).is_err());
    }

    #[test]
    fn cancellation_is_shared_across_clones() {
        let b = BudgetSpec::default().build();
        let clone = b.clone();
        assert!(clone.charge(Stage::Embed, 5).is_ok());
        b.cancel_token().expect("limited budget").cancel();
        let err = clone.check(Stage::Embed).unwrap_err();
        assert_eq!(err.reason, ExhaustReason::Cancelled);
        assert_eq!(
            clone.charge(Stage::Embed, 1).unwrap_err().reason,
            ExhaustReason::Cancelled
        );
    }

    #[test]
    fn used_counts_are_shared() {
        let b = BudgetSpec::default().build();
        let c = b.clone();
        b.charge(Stage::Cover, 7).unwrap();
        c.charge(Stage::Cover, 5).unwrap();
        assert_eq!(b.used(Stage::Cover), 12);
    }

    #[test]
    fn injected_exhaustion_fires_from_nth_charge() {
        assert!(enabled(), "tests run with debug assertions");
        let plan = FaultPlan {
            exhaust_at: Some((Stage::Cover, 2)),
            ..Default::default()
        };
        with_plan(plan, || {
            // Unlimited budgets are immune to injection (the unbudgeted
            // entry points rely on being genuinely infallible).
            let unlimited = Budget::unlimited();
            for _ in 0..5 {
                assert!(unlimited.charge(Stage::Cover, 1).is_ok());
            }
            let b = BudgetSpec::default().build();
            assert!(b.charge(Stage::Cover, 1).is_ok());
            assert!(b.charge(Stage::Cover, 1).is_ok());
            let err = b.charge(Stage::Cover, 1).unwrap_err();
            assert_eq!(err.reason, ExhaustReason::Injected);
            // ...and every charge after it fails too.
            assert!(b.check(Stage::Cover).is_err());
            // Other stages are untouched.
            assert!(b.charge(Stage::Matching, 1).is_ok());
        });
        // Disarmed outside the scope.
        assert!(BudgetSpec::default()
            .build()
            .charge(Stage::Cover, 1)
            .is_ok());
    }

    #[test]
    fn injected_panic_fires_at_nth_hit() {
        let plan = FaultPlan {
            panic_at: Some((FaultSite::TileBuild, 1)),
            ..Default::default()
        };
        with_plan(plan, || {
            hit(FaultSite::TileBuild); // occurrence 0: survives
            hit(FaultSite::EmbedComponent); // other site: survives
            let caught = std::panic::catch_unwind(|| hit(FaultSite::TileBuild));
            assert!(caught.is_err(), "occurrence 1 must panic");
        });
        hit(FaultSite::TileBuild); // disarmed: no-op
    }

    #[test]
    fn gds_offset_reduced_modulo_length() {
        let plan = FaultPlan {
            corrupt_gds: Some(1005),
            ..Default::default()
        };
        with_plan(plan, || {
            assert_eq!(gds_corrupt_offset(100), Some(5));
            assert_eq!(gds_corrupt_offset(0), None);
        });
        assert_eq!(gds_corrupt_offset(100), None);
    }
}
