//! Resident AAPSM conflict-detection service with overload-robust
//! supervision.
//!
//! The batch entry points ([`aapsm_core::run_flow`],
//! [`aapsm_core::RedetectEngine`]) answer one layout per call and forget
//! everything between calls. This crate turns them into a long-lived,
//! multi-session **service**: open a layout once, keep its incremental
//! engine warm, and stream edits/detections/corrections at it — the shape
//! an interactive layout editor or a batch verification farm needs.
//!
//! Residency makes overload and partial failure the common case rather
//! than the exception, so the supervision model is explicit:
//!
//! * **Bounded admission** — requests queue up to a high-watermark and
//!   are then shed with [`ServiceError::Overloaded`]. Queue memory is
//!   bounded by construction; the service never accepts work it cannot
//!   remember.
//! * **Deadlines → budgets** — a per-request deadline becomes a pipeline
//!   [`aapsm_fault::Budget`], so "late" degenerates into the PR-6
//!   degradation ladder (degraded-but-truthful answers with verbatim
//!   provenance), not into a hung caller.
//! * **Load-adaptive degradation** — queue depth crossing ladder rungs
//!   tightens the stage caps of newly admitted requests
//!   ([`LoadLadder`]): under pressure the service answers faster and
//!   says so, instead of queueing toward the deadline.
//! * **Crash-only sessions** — a worker panic tears the session's engine
//!   down and rebuilds it from the retained sanitized layout; the retry
//!   policy ([`RetryPolicy`]) re-runs the request against the rebuilt
//!   engine with deterministic capped backoff. No panic unwinds through
//!   the API, no lock stays poisoned.
//! * **Circuit breaking** — a session failing repeatedly (panic-class
//!   only) is quarantined by a deterministic count-based breaker
//!   ([`BreakerConfig`]): shed, cool down, half-open probe, recover.
//! * **Graceful shutdown** — [`DetectionService::shutdown`] stops
//!   admission, drains in-flight work, and past the drain deadline
//!   broadcasts cancellation through every in-flight budget's
//!   [`aapsm_fault::CancelToken`]. Every admitted request is answered.
//!
//! Sessions share one capacity-bounded [`aapsm_core::SolveCache`] keyed
//! by canonical dual-T-join instance bytes, so identical subproblems hit
//! across sessions.
//!
//! ```
//! use aapsm_layout::{fixtures, DesignRules};
//! use aapsm_service::{DetectionService, Request, ServiceConfig};
//! use std::time::Duration;
//!
//! let rules = DesignRules::default();
//! let service = DetectionService::start(ServiceConfig::new(rules.clone())).unwrap();
//! let session = service
//!     .open_session(fixtures::strap_under_bus(3, &rules))
//!     .unwrap();
//! let response = service.request(session, Request::Detect).unwrap();
//! assert_eq!(response.attempts, 1);
//! let report = service.shutdown(Duration::from_secs(5));
//! assert!(report.within_deadline);
//! ```

#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]
#![deny(missing_docs)]

mod breaker;
mod config;
mod error;
mod metrics;
mod service;

pub use config::{BreakerConfig, LadderRung, LoadLadder, RetryPolicy, ServiceConfig};
pub use error::ServiceError;
pub use metrics::MetricsSnapshot;
pub use service::{
    ConflictDelta, DetectionService, Request, RequestOptions, Response, ResponseKind, SessionId,
    ShutdownReport, Ticket,
};
