//! Structured service errors. Every failure mode of the service surfaces
//! here with a rendering meant for operators (`Display`, with `source()`
//! chaining) — no `Debug` formatting required anywhere on the error path.

use crate::SessionId;
use aapsm_core::FlowError;
use aapsm_gds::GdsError;
use aapsm_layout::LayoutError;
use std::fmt;

/// Why the service could not produce a response.
#[derive(Clone, Debug)]
pub enum ServiceError {
    /// The admission queue is at its high-watermark; the request was
    /// shed without queueing — back off and resubmit.
    Overloaded {
        /// Queue depth observed at rejection.
        queue_depth: usize,
        /// The configured admission bound.
        capacity: usize,
    },
    /// The service is draining or stopped; no new work is admitted.
    ShuttingDown,
    /// No session with this id (never opened, or already closed).
    UnknownSession(SessionId),
    /// The session's circuit breaker is open after repeated panic-class
    /// failures; the session is quarantined until a half-open probe
    /// succeeds.
    CircuitOpen {
        /// The quarantined session.
        session: SessionId,
        /// Consecutive panic-class failures that opened the circuit.
        consecutive_failures: u32,
    },
    /// The session's layout failed sanitization at open.
    Layout(LayoutError),
    /// The GDS bytes could not be parsed into a valid layout.
    Gds(GdsError),
    /// The request's pipeline failed (budget exhaustion, uncorrectable
    /// conflicts, a panic that survived the retry policy, …).
    Flow(FlowError),
    /// Service configuration rejected at startup.
    InvalidConfig(String),
    /// The worker disappeared without replying — only possible after an
    /// abort-style teardown tore the reply channel down.
    Disconnected,
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded {
                queue_depth,
                capacity,
            } => write!(
                f,
                "service overloaded: admission queue at {queue_depth}/{capacity}"
            ),
            ServiceError::ShuttingDown => write!(f, "service is shutting down"),
            ServiceError::UnknownSession(id) => write!(f, "unknown {id}"),
            ServiceError::CircuitOpen {
                session,
                consecutive_failures,
            } => write!(
                f,
                "circuit open for {session} after {consecutive_failures} consecutive failures"
            ),
            ServiceError::Layout(e) => write!(f, "invalid layout: {e}"),
            ServiceError::Gds(e) => write!(f, "invalid GDS stream: {e}"),
            ServiceError::Flow(e) => write!(f, "request failed: {e}"),
            ServiceError::InvalidConfig(msg) => write!(f, "invalid service config: {msg}"),
            ServiceError::Disconnected => write!(f, "worker disconnected without a reply"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Layout(e) => Some(e),
            ServiceError::Gds(e) => Some(e),
            ServiceError::Flow(e) => Some(e),
            ServiceError::Overloaded { .. }
            | ServiceError::ShuttingDown
            | ServiceError::UnknownSession(_)
            | ServiceError::CircuitOpen { .. }
            | ServiceError::InvalidConfig(_)
            | ServiceError::Disconnected => None,
        }
    }
}

impl ServiceError {
    /// Whether resubmitting the identical request later can succeed
    /// (load/lifecycle conditions), as opposed to failures that are
    /// permanent for this input.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ServiceError::Overloaded { .. }
                | ServiceError::CircuitOpen { .. }
                | ServiceError::Flow(FlowError::Budget(_))
                | ServiceError::Flow(FlowError::WorkerPanic(_))
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_renders_without_debug() {
        let e = ServiceError::Overloaded {
            queue_depth: 64,
            capacity: 64,
        };
        assert_eq!(
            e.to_string(),
            "service overloaded: admission queue at 64/64"
        );
        let e = ServiceError::CircuitOpen {
            session: SessionId::from_raw(7),
            consecutive_failures: 3,
        };
        assert_eq!(
            e.to_string(),
            "circuit open for session-7 after 3 consecutive failures"
        );
        assert!(e.source().is_none());
        let e = ServiceError::Flow(FlowError::BadRules("bad".into()));
        assert!(e.source().is_some());
        assert!(!e.is_retryable());
        assert!(ServiceError::ShuttingDown.source().is_none());
    }
}
