//! The resident detection service: session registry, bounded admission
//! queue, worker pool, deadline mapping, retry/backoff, circuit breaking
//! and graceful shutdown. See the crate docs for the supervision model.

use crate::breaker::CircuitBreaker;
use crate::config::ServiceConfig;
use crate::error::ServiceError;
use crate::metrics::{inc, Metrics, MetricsSnapshot};
use aapsm_core::{
    run_flow, CacheStats, Conflict, DetectConfig, FlowConfig, FlowError, FlowResult,
    RedetectEngine, RedetectStats, SharedSolveCache, StageProvenance,
};
use aapsm_fault::{Budget, BudgetSpec, CancelToken};
use aapsm_gds::read_gds;
use aapsm_layout::{apply_cuts, Layout, SpaceCut};
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Opaque handle of one open layout session.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(u64);

impl SessionId {
    #[cfg(test)]
    pub(crate) fn from_raw(raw: u64) -> SessionId {
        SessionId(raw)
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "session-{}", self.0)
    }
}

/// One operation on a session.
#[derive(Clone, Debug)]
pub enum Request {
    /// Liveness probe; exercises the whole supervision path (admission,
    /// breaker, queue, worker) without touching the pipeline.
    Ping,
    /// Current conflicts of the session layout, plus the delta against
    /// the session's previous detection. Warm sessions answer through
    /// the incremental engine.
    Detect,
    /// Apply space-insertion edits, re-detect incrementally, and commit
    /// the edited layout — the session's layout changes only when the
    /// whole operation succeeds (failed edits roll back wholesale).
    ApplyCuts(Vec<SpaceCut>),
    /// Run the full detect→correct→verify flow on the session layout and
    /// commit the corrected layout.
    RunFlow,
}

/// Per-request options.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestOptions {
    /// Deadline measured from admission; `None` inherits
    /// [`ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
}

/// Conflicts that appeared/disappeared relative to the session's
/// previous detection (first detection: everything is `added`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ConflictDelta {
    /// Present now, absent before.
    pub added: Vec<Conflict>,
    /// Present before, absent now.
    pub removed: Vec<Conflict>,
}

/// Result payload of a successful request.
#[derive(Clone, Debug)]
pub enum ResponseKind {
    /// Reply to [`Request::Ping`].
    Pong,
    /// Reply to [`Request::Detect`] / [`Request::ApplyCuts`].
    Detection {
        /// The session layout's current conflicts.
        conflicts: Vec<Conflict>,
        /// Change against the previous detection on this session.
        delta: ConflictDelta,
        /// Bipartization provenance, verbatim from the pipeline: a
        /// degraded answer says so here — it never masquerades as exact.
        provenance: StageProvenance,
        /// Engine statistics of the round (incremental reuse, cache
        /// hits, …).
        stats: RedetectStats,
    },
    /// Reply to [`Request::RunFlow`], provenance included verbatim.
    Flow(Box<FlowResult>),
}

/// A successful response plus its supervision context.
#[derive(Clone, Debug)]
pub struct Response {
    /// The payload.
    pub kind: ResponseKind,
    /// Attempts spent (1 = no retry).
    pub attempts: u32,
    /// Degradation-ladder level at admission (0 = untightened).
    pub ladder_level: usize,
    /// Queue depth at admission, including this request.
    pub queue_depth_at_admission: usize,
}

impl Response {
    /// Whether the answer walked the degradation ladder anywhere
    /// (truthfully flagged, per-stage detail in the provenance).
    pub fn degraded(&self) -> bool {
        match &self.kind {
            ResponseKind::Pong => false,
            ResponseKind::Detection { provenance, .. } => !provenance.is_exact(),
            ResponseKind::Flow(result) => !result.all_exact(),
        }
    }
}

/// Receipt for an admitted request; redeem with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: mpsc::Receiver<Result<Response, ServiceError>>,
}

impl Ticket {
    /// Blocks until the service answers. Every admitted request is
    /// answered — completion, structured error, or shutdown rejection —
    /// so this never hangs past service teardown.
    pub fn wait(self) -> Result<Response, ServiceError> {
        self.rx.recv().unwrap_or(Err(ServiceError::Disconnected))
    }
}

/// What [`DetectionService::shutdown`] observed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShutdownReport {
    /// The queue and all in-flight work drained inside the deadline.
    pub within_deadline: bool,
    /// Requests answered (completed or failed) during the drain.
    pub drained: u64,
    /// In-flight budgets cancelled when the deadline forced an abort.
    pub cancelled: u64,
    /// Queued requests answered [`ServiceError::ShuttingDown`] by the
    /// abort.
    pub shed: u64,
}

const RUNNING: u8 = 0;
const DRAINING: u8 = 1;
const ABORTING: u8 = 2;

struct Job {
    id: u64,
    session: SessionId,
    request: Request,
    deadline: Option<Instant>,
    ladder_caps: Option<BudgetSpec>,
    ladder_level: usize,
    depth: usize,
    reply: mpsc::Sender<Result<Response, ServiceError>>,
}

/// Mutable per-session state; guarded by [`SessionSlot::state`].
struct Session {
    /// Last committed sanitized layout — the crash-only recovery point.
    layout: Layout,
    /// Warm incremental engine (`None` = rebuild on next use).
    engine: Option<RedetectEngine>,
    /// Conflicts of the previous detection, for deltas.
    last_conflicts: Option<Vec<Conflict>>,
    /// Crash-only teardowns this session survived.
    rebuilds: u64,
}

/// The breaker lives in its own mutex so admission checks never block on
/// a request that is mid-pipeline under [`SessionSlot::state`].
struct SessionSlot {
    state: Mutex<Session>,
    breaker: Mutex<CircuitBreaker>,
}

struct Shared {
    config: ServiceConfig,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    state: AtomicU8,
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    next_session: AtomicU64,
    next_job: AtomicU64,
    in_flight: AtomicUsize,
    /// Cancel tokens of in-flight budgets, by job id — the shutdown
    /// broadcast surface.
    live: Mutex<HashMap<u64, CancelToken>>,
    cache: SharedSolveCache,
    metrics: Metrics,
}

fn lock<'a, T>(mutex: &'a Mutex<T>) -> MutexGuard<'a, T> {
    // A panicking holder poisons the mutex but our holders never unwind
    // (worker bodies are wrapped in catch_unwind before touching state),
    // and the guarded structures are kept consistent at every await
    // point; recover rather than propagate.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl Shared {
    fn state(&self) -> u8 {
        self.state.load(Ordering::Acquire)
    }

    fn set_state(&self, s: u8) {
        self.state.store(s, Ordering::Release);
    }
}

/// A resident, multi-session AAPSM conflict-detection service.
///
/// Open layouts become sessions with warm incremental state; requests go
/// through a bounded admission queue to a fixed worker pool. Overload is
/// shed explicitly, deadlines become pipeline budgets, panic-class
/// failures are retried against a crash-only rebuilt engine, repeatedly
/// failing sessions are quarantined by a circuit breaker, and shutdown
/// drains then cancels. See the crate docs.
pub struct DetectionService {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl DetectionService {
    /// Validates `config` and starts the worker pool.
    ///
    /// # Errors
    ///
    /// [`ServiceError::InvalidConfig`] for inconsistent design rules, a
    /// zero queue capacity, or worker-spawn failure.
    pub fn start(config: ServiceConfig) -> Result<DetectionService, ServiceError> {
        config
            .rules
            .validate()
            .map_err(ServiceError::InvalidConfig)?;
        if config.queue_capacity == 0 {
            return Err(ServiceError::InvalidConfig(
                "queue_capacity must be at least 1".to_string(),
            ));
        }
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map_or(1, |n| n.get())
        } else {
            config.workers
        };
        let cache = SharedSolveCache::new(config.cache_capacity);
        let shared = Arc::new(Shared {
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            state: AtomicU8::new(RUNNING),
            sessions: Mutex::new(HashMap::new()),
            next_session: AtomicU64::new(0),
            next_job: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            live: Mutex::new(HashMap::new()),
            cache,
            metrics: Metrics::default(),
        });
        let mut handles = Vec::with_capacity(workers);
        for i in 0..workers {
            let shared_i = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name(format!("aapsm-worker-{i}"))
                .spawn(move || worker_loop(&shared_i))
                .map_err(|e| ServiceError::InvalidConfig(format!("worker spawn failed: {e}")))?;
            handles.push(handle);
        }
        Ok(DetectionService {
            shared,
            workers: handles,
        })
    }

    /// Opens a session for a layout, sanitized up front; the sanitized
    /// layout is retained as the crash-only recovery point.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Layout`] when sanitization fails;
    /// [`ServiceError::ShuttingDown`] after shutdown began.
    pub fn open_session(&self, layout: Layout) -> Result<SessionId, ServiceError> {
        if self.shared.state() != RUNNING {
            return Err(ServiceError::ShuttingDown);
        }
        layout
            .sanitize(&self.shared.config.rules)
            .map_err(ServiceError::Layout)?;
        let raw = self.shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = Arc::new(SessionSlot {
            state: Mutex::new(Session {
                layout,
                engine: None,
                last_conflicts: None,
                rebuilds: 0,
            }),
            breaker: Mutex::new(CircuitBreaker::new(self.shared.config.breaker)),
        });
        lock(&self.shared.sessions).insert(raw, slot);
        Ok(SessionId(raw))
    }

    /// [`DetectionService::open_session`] from a GDSII stream.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Gds`] for corrupt streams, plus everything
    /// [`DetectionService::open_session`] returns.
    pub fn open_session_gds(&self, bytes: &[u8]) -> Result<SessionId, ServiceError> {
        let layout = read_gds(bytes).map_err(ServiceError::Gds)?;
        self.open_session(layout)
    }

    /// Closes a session, dropping its state. In-flight requests for it
    /// still answer (the worker holds its own handle to the slot).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not open.
    pub fn close_session(&self, id: SessionId) -> Result<(), ServiceError> {
        match lock(&self.shared.sessions).remove(&id.0) {
            Some(_) => Ok(()),
            None => Err(ServiceError::UnknownSession(id)),
        }
    }

    /// Submits a request with default options; returns a [`Ticket`]
    /// redeemable for the response.
    ///
    /// # Errors
    ///
    /// Admission-time rejections: [`ServiceError::ShuttingDown`],
    /// [`ServiceError::UnknownSession`], [`ServiceError::CircuitOpen`]
    /// and [`ServiceError::Overloaded`]. Execution failures arrive
    /// through the ticket instead.
    pub fn submit(&self, session: SessionId, request: Request) -> Result<Ticket, ServiceError> {
        self.submit_with(session, request, RequestOptions::default())
    }

    /// [`DetectionService::submit`] with explicit per-request options.
    ///
    /// # Errors
    ///
    /// See [`DetectionService::submit`].
    pub fn submit_with(
        &self,
        session: SessionId,
        request: Request,
        options: RequestOptions,
    ) -> Result<Ticket, ServiceError> {
        let shared = &self.shared;
        inc(&shared.metrics.submitted);
        if shared.state() != RUNNING {
            inc(&shared.metrics.rejected_shutdown);
            return Err(ServiceError::ShuttingDown);
        }
        let slot = lock(&shared.sessions).get(&session.0).cloned();
        let Some(slot) = slot else {
            return Err(ServiceError::UnknownSession(session));
        };
        if let Err(consecutive_failures) = lock(&slot.breaker).admit() {
            inc(&shared.metrics.rejected_breaker);
            return Err(ServiceError::CircuitOpen {
                session,
                consecutive_failures,
            });
        }
        let deadline = options
            .deadline
            .or(shared.config.default_deadline)
            .map(|d| Instant::now() + d);
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = lock(&shared.queue);
            if queue.len() >= shared.config.queue_capacity {
                inc(&shared.metrics.rejected_overload);
                return Err(ServiceError::Overloaded {
                    queue_depth: queue.len(),
                    capacity: shared.config.queue_capacity,
                });
            }
            let depth = queue.len() + 1;
            let ladder_level = shared.config.ladder.level_for(depth);
            let ladder_caps = shared.config.ladder.caps_for(depth);
            if ladder_level > 0 {
                inc(&shared.metrics.ladder_tightened);
            }
            shared.metrics.observe_depth(depth);
            queue.push_back(Job {
                id: shared.next_job.fetch_add(1, Ordering::Relaxed),
                session,
                request,
                deadline,
                ladder_caps,
                ladder_level,
                depth,
                reply: tx,
            });
        }
        shared.queue_cv.notify_one();
        inc(&shared.metrics.admitted);
        Ok(Ticket { rx })
    }

    /// Submit-and-wait convenience.
    ///
    /// # Errors
    ///
    /// Admission rejections and execution failures alike.
    pub fn request(&self, session: SessionId, request: Request) -> Result<Response, ServiceError> {
        self.submit(session, request)?.wait()
    }

    /// [`DetectionService::request`] with explicit options.
    ///
    /// # Errors
    ///
    /// Admission rejections and execution failures alike.
    pub fn request_with(
        &self,
        session: SessionId,
        request: Request,
        options: RequestOptions,
    ) -> Result<Response, ServiceError> {
        self.submit_with(session, request, options)?.wait()
    }

    /// Current admission-queue depth.
    pub fn queue_depth(&self) -> usize {
        lock(&self.shared.queue).len()
    }

    /// Open sessions.
    pub fn session_count(&self) -> usize {
        lock(&self.shared.sessions).len()
    }

    /// A clone of the session's current committed layout (blocks while a
    /// request for the session is in flight).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not open.
    pub fn session_layout(&self, id: SessionId) -> Result<Layout, ServiceError> {
        let slot = lock(&self.shared.sessions).get(&id.0).cloned();
        match slot {
            Some(slot) => Ok(lock(&slot.state).layout.clone()),
            None => Err(ServiceError::UnknownSession(id)),
        }
    }

    /// Crash-only rebuilds the session survived.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not open.
    pub fn session_rebuilds(&self, id: SessionId) -> Result<u64, ServiceError> {
        let slot = lock(&self.shared.sessions).get(&id.0).cloned();
        match slot {
            Some(slot) => Ok(lock(&slot.state).rebuilds),
            None => Err(ServiceError::UnknownSession(id)),
        }
    }

    /// Whether the session's circuit breaker is currently open (shedding
    /// or awaiting its half-open probe).
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the id is not open.
    pub fn session_quarantined(&self, id: SessionId) -> Result<bool, ServiceError> {
        let slot = lock(&self.shared.sessions).get(&id.0).cloned();
        match slot {
            Some(slot) => Ok(lock(&slot.breaker).is_open()),
            None => Err(ServiceError::UnknownSession(id)),
        }
    }

    /// Counter snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.shared.metrics.snapshot()
    }

    /// Statistics of the cross-session solve cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Graceful shutdown: stop admitting, drain the queue and all
    /// in-flight work, and join the pool. If the drain exceeds
    /// `drain_deadline`, escalate — broadcast cancellation to every
    /// in-flight budget (requests answer with a structured budget error)
    /// and answer queued requests [`ServiceError::ShuttingDown`].
    pub fn shutdown(mut self, drain_deadline: Duration) -> ShutdownReport {
        let shared = Arc::clone(&self.shared);
        let before = shared.metrics.snapshot();
        shared.set_state(DRAINING);
        shared.queue_cv.notify_all();
        let deadline = Instant::now() + drain_deadline;
        let mut within_deadline = true;
        let mut cancelled = 0u64;
        loop {
            let queue_empty = lock(&shared.queue).is_empty();
            if queue_empty && shared.in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            if Instant::now() >= deadline {
                within_deadline = false;
                shared.set_state(ABORTING);
                let live = lock(&shared.live);
                for token in live.values() {
                    token.cancel();
                    cancelled += 1;
                }
                drop(live);
                shared.queue_cv.notify_all();
                break;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        shared.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        let after = shared.metrics.snapshot();
        ShutdownReport {
            within_deadline,
            drained: (after.completed + after.failed) - (before.completed + before.failed),
            cancelled,
            shed: after.rejected_shutdown - before.rejected_shutdown,
        }
    }
}

impl Drop for DetectionService {
    /// Dropping without [`DetectionService::shutdown`] is an abort-style
    /// teardown: cancel everything, shed the queue, join the pool.
    fn drop(&mut self) {
        if self.workers.is_empty() {
            return; // shutdown() already ran
        }
        self.shared.set_state(ABORTING);
        for token in lock(&self.shared.live).values() {
            token.cancel();
        }
        self.shared.queue_cv.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

// ---------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------

fn worker_loop(shared: &Arc<Shared>) {
    while let Some(job) = next_job(shared) {
        if shared.state() == ABORTING {
            inc(&shared.metrics.rejected_shutdown);
            let _ = job.reply.send(Err(ServiceError::ShuttingDown));
        } else {
            process_job(shared, job);
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Pops the next job, blocking on the condvar while the queue is empty
/// and the service is running. `in_flight` is incremented under the
/// queue lock so `queue empty ∧ in_flight == 0` is an accurate drain
/// test. `None` = queue empty and shutting down: exit the worker.
fn next_job(shared: &Arc<Shared>) -> Option<Job> {
    let mut queue = lock(&shared.queue);
    loop {
        if let Some(job) = queue.pop_front() {
            shared.in_flight.fetch_add(1, Ordering::AcqRel);
            return Some(job);
        }
        if shared.state() != RUNNING {
            return None;
        }
        queue = shared
            .queue_cv
            .wait(queue)
            .unwrap_or_else(PoisonError::into_inner);
    }
}

fn process_job(shared: &Arc<Shared>, job: Job) {
    let slot = lock(&shared.sessions).get(&job.session.0).cloned();
    let Some(slot) = slot else {
        inc(&shared.metrics.failed);
        let _ = job
            .reply
            .send(Err(ServiceError::UnknownSession(job.session)));
        return;
    };
    let result = run_with_retries(shared, &slot, &job);
    match &result {
        Ok(response) => {
            lock(&slot.breaker).record_success();
            inc(&shared.metrics.completed);
            if response.degraded() {
                inc(&shared.metrics.degraded);
            }
        }
        Err(error) => {
            // Only panic-class failures are evidence of a poisoned
            // session; budget trips and bad inputs are not, and clear
            // nothing either way (a real success resets the breaker).
            if matches!(error, ServiceError::Flow(FlowError::WorkerPanic(_)))
                && lock(&slot.breaker).record_failure()
            {
                inc(&shared.metrics.breaker_trips);
            }
            inc(&shared.metrics.failed);
        }
    }
    let _ = job.reply.send(result);
}

/// Runs the job with the retry policy: panic-class failures tear the
/// engine down (crash-only) and retry after a deterministic backoff;
/// everything else is final. The session lock is held across attempts,
/// serializing requests per session.
fn run_with_retries(
    shared: &Arc<Shared>,
    slot: &SessionSlot,
    job: &Job,
) -> Result<Response, ServiceError> {
    let mut session = lock(&slot.state);
    let mut attempt: u32 = 0;
    loop {
        if shared.state() == ABORTING {
            return Err(ServiceError::ShuttingDown);
        }
        let budget = build_budget(job);
        register_token(shared, job.id, &budget);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            execute(shared, &mut session, &job.request, &budget)
        }));
        lock(&shared.live).remove(&job.id);
        let result = match outcome {
            Ok(result) => result,
            Err(payload) => Err(ServiceError::Flow(FlowError::WorkerPanic(panic_message(
                payload.as_ref(),
            )))),
        };
        match result {
            Ok(kind) => {
                return Ok(Response {
                    kind,
                    attempts: attempt + 1,
                    ladder_level: job.ladder_level,
                    queue_depth_at_admission: job.depth,
                })
            }
            Err(error) => {
                let transient = matches!(&error, ServiceError::Flow(FlowError::WorkerPanic(_)));
                if transient {
                    // Crash-only recovery: drop the (possibly torn)
                    // engine; the retained sanitized layout rebuilds it.
                    inc(&shared.metrics.panics);
                    session.engine = None;
                    session.last_conflicts = None;
                    session.rebuilds += 1;
                    inc(&shared.metrics.engine_rebuilds);
                }
                let expired = job.deadline.is_some_and(|d| Instant::now() >= d);
                if transient
                    && !expired
                    && attempt < shared.config.retry.max_retries
                    && shared.state() != ABORTING
                {
                    inc(&shared.metrics.retries);
                    std::thread::sleep(shared.config.retry.backoff(attempt));
                    attempt += 1;
                    continue;
                }
                return Err(error);
            }
        }
    }
}

/// Maps the request's remaining deadline and ladder caps onto a pipeline
/// budget. Always spec-built (even with no caps at all) so every
/// in-flight request owns a [`CancelToken`] the shutdown broadcast can
/// reach.
fn build_budget(job: &Job) -> Budget {
    let mut spec = job.ladder_caps.unwrap_or_default();
    let remaining = job
        .deadline
        .map(|d| d.saturating_duration_since(Instant::now()));
    spec.deadline = match (spec.deadline, remaining) {
        (Some(rung), Some(request)) => Some(rung.min(request)),
        (rung, request) => request.or(rung),
    };
    spec.build()
}

fn register_token(shared: &Shared, job_id: u64, budget: &Budget) {
    if let Some(token) = budget.cancel_token() {
        if shared.state() == ABORTING {
            token.cancel();
        }
        lock(&shared.live).insert(job_id, token);
    }
}

fn new_engine(shared: &Shared) -> RedetectEngine {
    let config = DetectConfig {
        parallelism: shared.config.request_parallelism,
        ..shared.config.detect.clone()
    };
    let mut engine = RedetectEngine::new(shared.config.rules, config);
    engine.set_shared_cache(shared.cache.clone());
    engine
}

fn execute(
    shared: &Shared,
    session: &mut Session,
    request: &Request,
    budget: &Budget,
) -> Result<ResponseKind, ServiceError> {
    match request {
        Request::Ping => Ok(ResponseKind::Pong),
        Request::Detect => {
            let warm = session.engine.is_some();
            let engine = session.engine.get_or_insert_with(|| new_engine(shared));
            engine.set_budget(budget.clone());
            let (report, provenance) = if warm {
                // The warm state matches the committed layout, so an
                // empty edit set re-detects through the incremental
                // engine (bit-identical to from-scratch by the PR-4
                // equivalence contract).
                engine.try_redetect_after_correction(&session.layout, &[])
            } else {
                engine.try_detect_full(&session.layout)
            }
            .map_err(|e| ServiceError::Flow(FlowError::Budget(e)))?;
            let stats = *engine.last_stats();
            let delta = conflict_delta(session.last_conflicts.as_deref(), &report.conflicts);
            session.last_conflicts = Some(report.conflicts.clone());
            Ok(ResponseKind::Detection {
                conflicts: report.conflicts,
                delta,
                provenance,
                stats,
            })
        }
        Request::ApplyCuts(cuts) => {
            let modified = apply_cuts(&session.layout, cuts);
            modified
                .sanitize(&shared.config.rules)
                .map_err(|e| ServiceError::Flow(FlowError::BadLayout(e)))?;
            let engine = session.engine.get_or_insert_with(|| new_engine(shared));
            engine.set_budget(budget.clone());
            let (report, provenance) = engine
                .try_redetect_after_correction(&modified, cuts)
                .map_err(|e| ServiceError::Flow(FlowError::Budget(e)))?;
            // Commit point: the edit becomes the session layout only
            // after detection succeeded; any failure above rolled back
            // wholesale (`modified` was local).
            session.layout = modified;
            let stats = *engine.last_stats();
            let delta = conflict_delta(session.last_conflicts.as_deref(), &report.conflicts);
            session.last_conflicts = Some(report.conflicts.clone());
            Ok(ResponseKind::Detection {
                conflicts: report.conflicts,
                delta,
                provenance,
                stats,
            })
        }
        Request::RunFlow => {
            let config = FlowConfig {
                detect: DetectConfig {
                    parallelism: shared.config.request_parallelism,
                    budget: budget.clone(),
                    ..shared.config.detect.clone()
                },
                max_rounds: shared.config.max_rounds,
                solve_cache: Some(shared.cache.clone()),
                ..FlowConfig::default()
            };
            let result = run_flow(&session.layout, &shared.config.rules, &config)
                .map_err(ServiceError::Flow)?;
            // Commit the corrected layout; the warm engine tracked the
            // pre-flow layout, so drop it (next Detect re-establishes).
            // The flow's own detection becomes the delta base: the next
            // Detect reports exactly what the correction removed.
            session.layout = result.correction.modified.clone();
            session.engine = None;
            session.last_conflicts = Some(result.detection.conflicts.clone());
            Ok(ResponseKind::Flow(Box::new(result)))
        }
    }
}

fn conflict_delta(previous: Option<&[Conflict]>, current: &[Conflict]) -> ConflictDelta {
    let previous = previous.unwrap_or(&[]);
    let old: HashSet<&Conflict> = previous.iter().collect();
    let new: HashSet<&Conflict> = current.iter().collect();
    ConflictDelta {
        added: current
            .iter()
            .filter(|c| !old.contains(*c))
            .copied()
            .collect(),
        removed: previous
            .iter()
            .filter(|c| !new.contains(*c))
            .copied()
            .collect(),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}
