//! Per-session circuit breaker: deterministic, count-based, clock-free.
//!
//! Classic breakers re-probe after a *time* cooldown; under test that
//! makes trip/recovery schedules racy. This one counts: after
//! `trip_threshold` consecutive panic-class failures the circuit opens,
//! the next `cooldown_rejects` submissions are shed with
//! [`crate::ServiceError::CircuitOpen`], then exactly one half-open probe
//! is admitted. A successful probe closes the circuit; a failed probe
//! re-opens it (restarting the cooldown). Every transition is a pure
//! function of the observed outcome sequence.
//!
//! Only panic-class failures count: a budget trip is evidence of *load*,
//! not of a poisoned session, so it neither advances nor resets the
//! failure count by itself — an actual success does the resetting.

use crate::config::BreakerConfig;

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    /// Healthy; counts consecutive panic-class failures.
    Closed { failures: u32 },
    /// Quarantined; sheds until `rejected` reaches the cooldown.
    Open { failures: u32, rejected: u32 },
    /// One probe is in flight; its outcome decides.
    HalfOpen { failures: u32 },
}

/// See the module docs.
#[derive(Clone, Debug)]
pub(crate) struct CircuitBreaker {
    config: BreakerConfig,
    state: State,
}

impl CircuitBreaker {
    pub(crate) fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config,
            state: State::Closed { failures: 0 },
        }
    }

    /// Admission check. `Err(failures)` sheds the request (circuit open,
    /// still cooling down); `Ok(())` admits it — possibly as the
    /// half-open probe.
    pub(crate) fn admit(&mut self) -> Result<(), u32> {
        match self.state {
            State::Closed { .. } | State::HalfOpen { .. } => Ok(()),
            State::Open { failures, rejected } => {
                if rejected >= self.config.cooldown_rejects {
                    self.state = State::HalfOpen { failures };
                    Ok(())
                } else {
                    self.state = State::Open {
                        failures,
                        rejected: rejected + 1,
                    };
                    Err(failures)
                }
            }
        }
    }

    /// Records a non-poisonous outcome (success, or a permanent
    /// input/load error): closes the circuit and resets the count.
    pub(crate) fn record_success(&mut self) {
        self.state = State::Closed { failures: 0 };
    }

    /// Records a panic-class failure; returns `true` when this failure
    /// trips the circuit open (for metrics).
    pub(crate) fn record_failure(&mut self) -> bool {
        if self.config.trip_threshold == 0 {
            return false; // breaker disabled
        }
        let failures = match self.state {
            State::Closed { failures } => failures + 1,
            // A failed half-open probe re-opens immediately.
            State::HalfOpen { failures } => failures + 1,
            State::Open { failures, rejected } => {
                // Shouldn't happen (open sessions shed at admission), but
                // stay open if it does.
                self.state = State::Open { failures, rejected };
                return false;
            }
        };
        let was_closed = matches!(self.state, State::Closed { .. });
        if !was_closed || failures >= self.config.trip_threshold {
            self.state = State::Open {
                failures,
                rejected: 0,
            };
            true
        } else {
            self.state = State::Closed { failures };
            false
        }
    }

    /// Whether the circuit is currently open (shedding or about to
    /// probe).
    pub(crate) fn is_open(&self) -> bool {
        !matches!(self.state, State::Closed { .. })
    }

    /// Consecutive panic-class failures recorded so far.
    #[cfg(test)]
    fn failures(&self) -> u32 {
        match self.state {
            State::Closed { failures }
            | State::Open { failures, .. }
            | State::HalfOpen { failures } => failures,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown: u32) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            trip_threshold: threshold,
            cooldown_rejects: cooldown,
        })
    }

    #[test]
    fn trips_after_threshold_consecutive_failures() {
        let mut b = breaker(3, 2);
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(b.admit().is_ok(), "still closed below threshold");
        assert!(b.record_failure(), "third consecutive failure trips");
        assert!(b.is_open());
        assert_eq!(b.admit(), Err(3));
        assert_eq!(b.admit(), Err(3));
        assert!(b.admit().is_ok(), "half-open probe after cooldown");
    }

    #[test]
    fn success_resets_the_count() {
        let mut b = breaker(3, 1);
        b.record_failure();
        b.record_failure();
        b.record_success();
        assert!(!b.record_failure());
        assert!(!b.record_failure());
        assert!(!b.is_open(), "count restarted after success");
        assert!(b.record_failure());
    }

    #[test]
    fn half_open_probe_outcome_decides() {
        let mut b = breaker(1, 1);
        assert!(b.record_failure(), "threshold 1 trips immediately");
        assert!(b.admit().is_err(), "one cooldown rejection");
        assert!(b.admit().is_ok(), "probe admitted");
        assert!(b.record_failure(), "failed probe re-opens");
        assert!(b.admit().is_err(), "cooldown restarts");
        assert!(b.admit().is_ok());
        b.record_success();
        assert!(!b.is_open());
        assert_eq!(b.failures(), 0);
        assert!(b.admit().is_ok());
    }

    #[test]
    fn zero_threshold_disables_the_breaker() {
        let mut b = breaker(0, 5);
        for _ in 0..100 {
            assert!(!b.record_failure());
        }
        assert!(b.admit().is_ok());
        assert!(!b.is_open());
    }
}
