//! Lock-free service counters. Workers bump relaxed atomics; a snapshot
//! is a plain struct of the values at one instant (individually atomic,
//! not mutually consistent — fine for observability).

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug, Default)]
pub(crate) struct Metrics {
    pub submitted: AtomicU64,
    pub admitted: AtomicU64,
    pub completed: AtomicU64,
    pub failed: AtomicU64,
    pub rejected_overload: AtomicU64,
    pub rejected_breaker: AtomicU64,
    pub rejected_shutdown: AtomicU64,
    pub retries: AtomicU64,
    pub panics: AtomicU64,
    pub engine_rebuilds: AtomicU64,
    pub breaker_trips: AtomicU64,
    pub degraded: AtomicU64,
    pub ladder_tightened: AtomicU64,
    pub max_queue_depth: AtomicU64,
}

impl Metrics {
    pub(crate) fn observe_depth(&self, depth: usize) {
        self.max_queue_depth
            .fetch_max(depth as u64, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        let get = |a: &AtomicU64| a.load(Ordering::Relaxed);
        MetricsSnapshot {
            submitted: get(&self.submitted),
            admitted: get(&self.admitted),
            completed: get(&self.completed),
            failed: get(&self.failed),
            rejected_overload: get(&self.rejected_overload),
            rejected_breaker: get(&self.rejected_breaker),
            rejected_shutdown: get(&self.rejected_shutdown),
            retries: get(&self.retries),
            panics: get(&self.panics),
            engine_rebuilds: get(&self.engine_rebuilds),
            breaker_trips: get(&self.breaker_trips),
            degraded: get(&self.degraded),
            ladder_tightened: get(&self.ladder_tightened),
            max_queue_depth: get(&self.max_queue_depth),
        }
    }
}

pub(crate) fn inc(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

/// Point-in-time view of the service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Submissions attempted (admitted or not).
    pub submitted: u64,
    /// Submissions that entered the queue.
    pub admitted: u64,
    /// Requests answered `Ok` (possibly degraded — see `degraded`).
    pub completed: u64,
    /// Requests answered with a structured error.
    pub failed: u64,
    /// Submissions shed at the admission high-watermark.
    pub rejected_overload: u64,
    /// Submissions shed by an open per-session circuit breaker.
    pub rejected_breaker: u64,
    /// Submissions or queued jobs refused because the service was
    /// draining or stopped.
    pub rejected_shutdown: u64,
    /// Transparent retries after panic-class failures.
    pub retries: u64,
    /// Panic-class failures observed (before retry classification).
    pub panics: u64,
    /// Crash-only engine teardowns (session rebuilt from its retained
    /// sanitized layout).
    pub engine_rebuilds: u64,
    /// Circuit-breaker trip events.
    pub breaker_trips: u64,
    /// `Ok` responses whose provenance reports degradation.
    pub degraded: u64,
    /// Admissions that received tightened ladder caps.
    pub ladder_tightened: u64,
    /// Deepest admission queue observed.
    pub max_queue_depth: u64,
}
