//! Service configuration: worker pool, admission bounds, deadlines,
//! retry/backoff, circuit breaking, and the load-adaptive budget ladder.

use aapsm_core::DetectConfig;
use aapsm_fault::BudgetSpec;
use aapsm_layout::DesignRules;
use std::time::Duration;

/// Request-level retry policy for *transient* failures (worker panics):
/// capped exponential backoff with **no jitter**, so every schedule is
/// deterministic and testable. Non-transient failures (budget trips, bad
/// input) are never retried — retrying them cannot succeed and only burns
/// the pool.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail on first panic).
    pub max_retries: u32,
    /// Backoff before retry 1; doubles per retry.
    pub base_backoff: Duration,
    /// Backoff cap.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The deterministic backoff before retrying after failed attempt
    /// `attempt` (0-based): `min(base · 2^attempt, max)`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }
}

/// Per-session circuit-breaker tuning. The breaker is **count-based**
/// (no clocks): it trips after `trip_threshold` consecutive panic-class
/// failures, sheds the next `cooldown_rejects` requests with a structured
/// error, then admits exactly one half-open probe whose outcome closes or
/// re-opens the circuit. Deterministic by construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive panic-class failures that open the circuit
    /// (0 disables the breaker).
    pub trip_threshold: u32,
    /// Requests rejected while open before a half-open probe is admitted.
    pub cooldown_rejects: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_threshold: 3,
            cooldown_rejects: 2,
        }
    }
}

/// One rung of the load-adaptive degradation ladder: at admission depth
/// ≥ `min_depth`, new requests get `caps`' stage tick caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LadderRung {
    /// Queue depth (including the incoming request) at which this rung
    /// engages.
    pub min_depth: usize,
    /// The stage caps applied to requests admitted at this rung. A
    /// `deadline` in the spec is honored only when tighter than the
    /// request's own deadline.
    pub caps: BudgetSpec,
}

/// The load-adaptive ladder: as queue depth crosses rung thresholds, new
/// requests are admitted with tighter stage caps, so under pressure
/// answers arrive **degraded but truthful** (the tightened budget walks
/// the PR-6 degradation ladder, and the provenance reaches the client
/// verbatim) instead of queueing toward the deadline.
///
/// Rungs must be sorted by ascending `min_depth`; the deepest engaged
/// rung wins. An empty ladder never tightens anything.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct LoadLadder {
    /// The rungs, ascending by `min_depth`.
    pub rungs: Vec<LadderRung>,
}

impl LoadLadder {
    /// A two-rung default for a queue bounded at `capacity`: moderate
    /// caps from half-full, tight caps from three-quarters full. The
    /// absolute tick numbers are generous for the bench designs and
    /// exist to bound tail latency, not to degrade light traffic.
    pub fn default_for(capacity: usize) -> LoadLadder {
        LoadLadder {
            rungs: vec![
                LadderRung {
                    min_depth: (capacity / 2).max(2),
                    caps: BudgetSpec {
                        matching_ticks: Some(5_000_000),
                        cover_ticks: Some(500_000),
                        ..BudgetSpec::default()
                    },
                },
                LadderRung {
                    min_depth: (capacity * 3 / 4).max(3),
                    caps: BudgetSpec {
                        embed_ticks: Some(1_000_000),
                        matching_ticks: Some(500_000),
                        cover_ticks: Some(50_000),
                        ..BudgetSpec::default()
                    },
                },
            ],
        }
    }

    /// The ladder level engaged at admission depth `depth` (0 = no
    /// tightening, `k` = rung `k` counted from 1).
    pub fn level_for(&self, depth: usize) -> usize {
        self.rungs
            .iter()
            .take_while(|r| depth >= r.min_depth)
            .count()
    }

    /// The caps of the deepest rung engaged at `depth`, if any.
    pub fn caps_for(&self, depth: usize) -> Option<BudgetSpec> {
        match self.level_for(depth) {
            0 => None,
            level => self.rungs.get(level - 1).map(|r| r.caps),
        }
    }
}

/// Configuration of a [`crate::DetectionService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Design rules shared by every session.
    pub rules: DesignRules,
    /// Worker-pool size — the workspace `parallelism` knob at the
    /// service layer: `0` = one worker per available CPU, `k` = `k`
    /// workers. Each worker processes one request at a time.
    pub workers: usize,
    /// Parallelism degree *inside* one request's pipeline. The default
    /// (1, serial) is right for a loaded service: cross-request
    /// parallelism comes from the pool.
    pub request_parallelism: usize,
    /// Admission high-watermark: submissions beyond this many queued
    /// requests are rejected with
    /// [`crate::ServiceError::Overloaded`] — queue memory is bounded by
    /// construction, never by luck.
    pub queue_capacity: usize,
    /// Deadline applied to requests that don't carry their own, measured
    /// from admission. `None` = unlimited.
    pub default_deadline: Option<Duration>,
    /// Detection pipeline template for every session engine. Its
    /// `budget` and `parallelism` fields are overridden per request; the
    /// `tjoin`/`blocks` configuration is shared by all sessions (a
    /// requirement of the shared solve cache).
    pub detect: DetectConfig,
    /// Round cap for [`crate::Request::RunFlow`].
    pub max_rounds: usize,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
    /// Per-session circuit breaker tuning.
    pub breaker: BreakerConfig,
    /// The load-adaptive budget ladder.
    pub ladder: LoadLadder,
    /// Entry bound of the cross-session dual-T-join solve cache.
    pub cache_capacity: usize,
}

impl ServiceConfig {
    /// A deployable default: 64-deep admission queue, the matching
    /// two-rung ladder, one worker per CPU.
    pub fn new(rules: DesignRules) -> ServiceConfig {
        let queue_capacity = 64;
        ServiceConfig {
            rules,
            workers: 0,
            request_parallelism: 1,
            queue_capacity,
            default_deadline: None,
            detect: DetectConfig::default(),
            max_rounds: 8,
            retry: RetryPolicy::default(),
            breaker: BreakerConfig::default(),
            ladder: LoadLadder::default_for(queue_capacity),
            cache_capacity: aapsm_core::SolveCache::DEFAULT_CAPACITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_capped_doubling() {
        let p = RetryPolicy {
            max_retries: 10,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(9),
        };
        assert_eq!(p.backoff(0), Duration::from_millis(2));
        assert_eq!(p.backoff(1), Duration::from_millis(4));
        assert_eq!(p.backoff(2), Duration::from_millis(8));
        assert_eq!(p.backoff(3), Duration::from_millis(9));
        assert_eq!(
            p.backoff(200),
            Duration::from_millis(9),
            "shift overflow capped"
        );
    }

    #[test]
    fn ladder_levels_engage_by_depth() {
        let ladder = LoadLadder::default_for(8);
        assert_eq!(ladder.level_for(0), 0);
        assert_eq!(ladder.level_for(3), 0);
        assert_eq!(ladder.level_for(4), 1);
        assert_eq!(ladder.level_for(5), 1);
        assert_eq!(ladder.level_for(6), 2);
        assert_eq!(ladder.level_for(100), 2);
        assert!(ladder.caps_for(2).is_none());
        assert_eq!(ladder.caps_for(6).and_then(|c| c.cover_ticks), Some(50_000));
        assert_eq!(LoadLadder::default().level_for(usize::MAX), 0);
    }
}
