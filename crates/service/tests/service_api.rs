//! Functional contract of the resident detection service: session
//! lifecycle, conflict deltas, warm incremental reuse, cross-session
//! cache hits, bounded admission, load-adaptive degradation, deadlines,
//! and graceful shutdown. Runs fault-free (debug and release alike); the
//! injected-fault behavior lives in `fault_injection_service.rs`.

use aapsm_core::{run_flow, FlowConfig};
use aapsm_layout::{fixtures, DesignRules};
use aapsm_service::{BreakerConfig, RetryPolicy};
use aapsm_service::{
    DetectionService, LadderRung, LoadLadder, Request, RequestOptions, ResponseKind, ServiceConfig,
    ServiceError, Ticket,
};
use std::time::Duration;

fn rules() -> DesignRules {
    DesignRules::default()
}

fn config() -> ServiceConfig {
    let mut c = ServiceConfig::new(rules());
    c.workers = 2;
    c
}

fn detection(kind: &ResponseKind) -> (&Vec<aapsm_core::Conflict>, &aapsm_service::ConflictDelta) {
    match kind {
        ResponseKind::Detection {
            conflicts, delta, ..
        } => (conflicts, delta),
        other => panic!("expected a detection, got {other:?}"),
    }
}

#[test]
fn ping_detect_flow_detect_delta_roundtrip() {
    let service = DetectionService::start(config()).unwrap();
    let session = service
        .open_session(fixtures::strap_under_bus(5, &rules()))
        .unwrap();

    let ping = service.request(session, Request::Ping).unwrap();
    assert!(matches!(ping.kind, ResponseKind::Pong));
    assert_eq!(ping.attempts, 1);

    // First detection: everything is new.
    let first = service.request(session, Request::Detect).unwrap();
    let (conflicts, delta) = detection(&first.kind);
    assert!(!conflicts.is_empty(), "fixture should conflict");
    assert_eq!(&delta.added, conflicts);
    assert!(delta.removed.is_empty());
    assert!(!first.degraded());
    let baseline = conflicts.clone();

    // Repeat detection: warm incremental engine, empty delta.
    let second = service.request(session, Request::Detect).unwrap();
    let (conflicts2, delta2) = detection(&second.kind);
    assert_eq!(conflicts2, &baseline, "warm re-detection must be identical");
    assert!(delta2.added.is_empty() && delta2.removed.is_empty());
    if let ResponseKind::Detection { stats, .. } = &second.kind {
        assert!(
            stats.incremental,
            "warm session should re-detect incrementally"
        );
    }

    // Full flow corrects the layout and commits it.
    let flow = service.request(session, Request::RunFlow).unwrap();
    let ResponseKind::Flow(result) = &flow.kind else {
        panic!("expected a flow result");
    };
    assert!(result.verified, "fixture should be correctable");
    assert_eq!(
        service.session_layout(session).unwrap(),
        result.correction.modified,
        "corrected layout must be committed to the session"
    );

    // Post-flow detection: conflicts gone, delta says which disappeared.
    let after = service.request(session, Request::Detect).unwrap();
    let (conflicts3, delta3) = detection(&after.kind);
    assert!(conflicts3.is_empty(), "corrected layout must be clean");
    assert!(delta3.added.is_empty());
    assert_eq!(
        delta3.removed, baseline,
        "delta must report exactly the conflicts the flow removed"
    );

    let m = service.metrics();
    assert_eq!(m.submitted, 5);
    assert_eq!(m.admitted, 5);
    assert_eq!(m.completed, 5);
    assert_eq!(m.failed, 0);

    let report = service.shutdown(Duration::from_secs(10));
    assert!(report.within_deadline);
}

#[test]
fn apply_cuts_matches_the_flow_and_commits() {
    let rules = rules();
    let layout = fixtures::strap_under_bus(5, &rules);
    let flow = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
    assert!(flow.verified);

    let service = DetectionService::start(config()).unwrap();
    let session = service.open_session(layout).unwrap();
    let before = service.request(session, Request::Detect).unwrap();
    let (c0, _) = detection(&before.kind);
    assert_eq!(c0, &flow.detection.conflicts);

    let applied = service
        .request(session, Request::ApplyCuts(flow.plan.cuts.clone()))
        .unwrap();
    let (c1, delta) = detection(&applied.kind);
    assert_eq!(
        delta.removed.len() as i64 - delta.added.len() as i64,
        c0.len() as i64 - c1.len() as i64
    );
    if flow.round_count() == 2 && flow.final_conflicts() == 0 {
        // One correction round sufficed: the service edit must land on
        // exactly the flow's corrected layout with zero conflicts.
        assert!(c1.is_empty());
        assert_eq!(
            service.session_layout(session).unwrap(),
            flow.correction.modified
        );
    }
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn overload_is_shed_and_queue_stays_bounded() {
    let mut c = config();
    c.workers = 1;
    c.queue_capacity = 3;
    c.ladder = LoadLadder::default(); // no tightening: isolate shedding
    let service = DetectionService::start(c).unwrap();
    let rules = rules();

    // Cold detections are orders of magnitude slower than submissions,
    // so a burst of 40 against a 3-deep queue must shed.
    let sessions: Vec<_> = (0..40)
        .map(|_| {
            service
                .open_session(fixtures::strap_under_bus(6, &rules))
                .unwrap()
        })
        .collect();
    let mut tickets: Vec<Ticket> = Vec::new();
    let mut shed = 0u64;
    for &s in &sessions {
        match service.submit(s, Request::Detect) {
            Ok(t) => tickets.push(t),
            Err(ServiceError::Overloaded {
                queue_depth,
                capacity,
            }) => {
                assert_eq!(capacity, 3);
                assert!(queue_depth >= capacity, "shed below the watermark");
                shed += 1;
            }
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(shed > 0, "burst must overflow the 3-deep queue");

    // Every admitted request is answered.
    for t in tickets {
        t.wait().unwrap();
    }
    let m = service.metrics();
    assert_eq!(m.submitted, 40);
    assert_eq!(m.admitted + m.rejected_overload, 40);
    assert_eq!(m.rejected_overload, shed);
    assert!(
        m.max_queue_depth <= 3,
        "queue grew past its bound: {}",
        m.max_queue_depth
    );
    let report = service.shutdown(Duration::from_secs(10));
    assert!(report.within_deadline);
}

#[test]
fn load_ladder_tightens_admissions_under_pressure() {
    let mut c = config();
    c.workers = 1;
    c.queue_capacity = 32;
    // One rung: from depth 2, cap the matching stage hard enough that
    // detection degrades to the greedy fallback.
    c.ladder = LoadLadder {
        rungs: vec![LadderRung {
            min_depth: 2,
            caps: aapsm_core::BudgetSpec {
                matching_ticks: Some(1),
                ..aapsm_core::BudgetSpec::default()
            },
        }],
    };
    let service = DetectionService::start(c).unwrap();
    let rules = rules();
    let baseline = {
        let flow = run_flow(
            &fixtures::strap_under_bus(6, &rules),
            &rules,
            &FlowConfig::default(),
        )
        .unwrap();
        flow.detection.conflicts
    };

    let sessions: Vec<_> = (0..12)
        .map(|_| {
            service
                .open_session(fixtures::strap_under_bus(6, &rules))
                .unwrap()
        })
        .collect();
    let tickets: Vec<_> = sessions
        .iter()
        .map(|&s| service.submit(s, Request::Detect).unwrap())
        .collect();

    let mut tightened = 0;
    for t in tickets {
        let response = t.wait().unwrap();
        if response.ladder_level > 0 {
            tightened += 1;
        }
        // The truthfulness contract end-to-end: an answer that does not
        // flag degradation must be the exact answer.
        let (conflicts, _) = detection(&response.kind);
        if !response.degraded() {
            assert_eq!(conflicts, &baseline);
        }
    }
    assert!(tightened > 0, "burst should cross the depth-2 rung");
    assert_eq!(service.metrics().ladder_tightened, tightened);
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn expired_deadline_fails_fast_and_structured() {
    let service = DetectionService::start(config()).unwrap();
    let session = service
        .open_session(fixtures::strap_under_bus(4, &rules()))
        .unwrap();
    let err = service
        .request_with(
            session,
            Request::Detect,
            RequestOptions {
                deadline: Some(Duration::ZERO),
            },
        )
        .unwrap_err();
    match &err {
        ServiceError::Flow(aapsm_core::FlowError::Budget(_)) => {}
        other => panic!("expected a budget error, got {other}"),
    }
    // Renders for operators without Debug formatting.
    assert!(err.to_string().contains("exhausted"), "got: {err}");
    // A deadline miss is not poison: the session stays usable.
    let ok = service.request(session, Request::Detect).unwrap();
    assert!(matches!(ok.kind, ResponseKind::Detection { .. }));
    assert_eq!(
        service.metrics().retries,
        0,
        "budget errors are never retried"
    );
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn solve_cache_is_shared_across_sessions() {
    let service = DetectionService::start(config()).unwrap();
    let rules = rules();
    let a = service
        .open_session(fixtures::strap_under_bus(5, &rules))
        .unwrap();
    let b = service
        .open_session(fixtures::strap_under_bus(5, &rules))
        .unwrap();

    let first = service.request(a, Request::Detect).unwrap();
    let second = service.request(b, Request::Detect).unwrap();
    let (ca, _) = detection(&first.kind);
    let (cb, _) = detection(&second.kind);
    assert_eq!(ca, cb, "cache hits must be bit-identical to fresh solves");
    if let ResponseKind::Detection { stats, .. } = &second.kind {
        assert!(
            stats.solve_hits > 0,
            "second session should hit the shared cache"
        );
        assert_eq!(stats.solve_misses, 0);
    }
    let cache = service.cache_stats();
    assert!(cache.hits > 0);
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn session_lifecycle_errors_are_structured() {
    let service = DetectionService::start(config()).unwrap();
    let session = service
        .open_session(fixtures::strap_under_bus(4, &rules()))
        .unwrap();
    assert_eq!(service.session_count(), 1);
    service.close_session(session).unwrap();
    assert_eq!(service.session_count(), 0);
    match service.submit(session, Request::Ping) {
        Err(ServiceError::UnknownSession(id)) => assert_eq!(id, session),
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    match service.close_session(session) {
        Err(ServiceError::UnknownSession(_)) => {}
        other => panic!("expected UnknownSession, got {other:?}"),
    }
    service.shutdown(Duration::from_secs(10));
}

#[test]
fn graceful_shutdown_drains_and_answers_everything() {
    let mut c = config();
    c.workers = 1;
    let service = DetectionService::start(c).unwrap();
    let rules = rules();
    let sessions: Vec<_> = (0..6)
        .map(|_| {
            service
                .open_session(fixtures::strap_under_bus(5, &rules))
                .unwrap()
        })
        .collect();
    let tickets: Vec<_> = sessions
        .iter()
        .map(|&s| service.submit(s, Request::Detect).unwrap())
        .collect();
    let report = service.shutdown(Duration::from_secs(30));
    assert!(report.within_deadline, "drain should finish well in time");
    assert_eq!(report.shed, 0);
    for t in tickets {
        t.wait().unwrap();
    }
}

#[test]
fn abort_shutdown_cancels_but_still_answers_everything() {
    let mut c = config();
    c.workers = 1;
    c.retry = RetryPolicy {
        max_retries: 0,
        ..RetryPolicy::default()
    };
    c.breaker = BreakerConfig {
        trip_threshold: 0,
        ..BreakerConfig::default()
    };
    let service = DetectionService::start(c).unwrap();
    let rules = rules();
    let sessions: Vec<_> = (0..6)
        .map(|_| {
            service
                .open_session(fixtures::strap_under_bus(12, &rules))
                .unwrap()
        })
        .collect();
    let tickets: Vec<_> = sessions
        .iter()
        .map(|&s| service.submit(s, Request::RunFlow).unwrap())
        .collect();
    // Zero drain budget: escalate immediately — cancel in-flight work,
    // shed the queue. Nothing may hang and every ticket must answer.
    let report = service.shutdown(Duration::ZERO);
    assert!(!report.within_deadline);
    for t in tickets {
        match t.wait() {
            Ok(_) => {}
            Err(ServiceError::ShuttingDown) => {}
            Err(ServiceError::Flow(aapsm_core::FlowError::Budget(e))) => {
                assert_eq!(e.reason, aapsm_core::ExhaustReason::Cancelled);
            }
            Err(other) => panic!("unexpected abort-path error: {other}"),
        }
    }
}

#[test]
fn invalid_config_is_rejected_at_startup() {
    let mut c = config();
    c.queue_capacity = 0;
    match DetectionService::start(c) {
        Err(ServiceError::InvalidConfig(msg)) => assert!(msg.contains("queue_capacity")),
        other => panic!("expected InvalidConfig, got {:?}", other.map(|_| ())),
    }
}
