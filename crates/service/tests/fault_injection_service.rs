//! The never-silently-wrong property, end to end through the service
//! API. Every injected fault — a worker panic mid-request (transient or
//! persistent), a forced budget exhaustion, a corrupted GDS open — must
//! yield a structured error or a truthfully-flagged degraded result:
//! never a hang, never an unwind through the API, never a degraded
//! answer claiming exactness. Swept across request parallelism 1/2/4.
//!
//! Also covers the supervision behaviors only faults can drive: the
//! retry ladder burning its attempts against a persistent panic, the
//! crash-only engine rebuild healing the session afterwards, and the
//! circuit breaker tripping, cooling down, half-open probing and
//! recovering.
//!
//! The injection hooks are compiled out in release builds, so this whole
//! suite is debug-only (mirroring `crates/core/tests/fault_injection.rs`).
#![cfg(debug_assertions)]

use aapsm_core::{run_flow, Conflict, FlowConfig, FlowError};
use aapsm_fault::{with_plan, FaultPlan, FaultSite, Stage};
use aapsm_gds::write_gds;
use aapsm_layout::{fixtures, DesignRules};
use aapsm_service::{
    BreakerConfig, DetectionService, LoadLadder, Request, ResponseKind, RetryPolicy, ServiceConfig,
    ServiceError, SessionId,
};
use std::time::Duration;

const PARALLELISM: [usize; 3] = [1, 2, 4];
const SITES: [FaultSite; 3] = [
    FaultSite::TileBuild,
    FaultSite::EmbedComponent,
    FaultSite::CoverComponent,
];

fn seed() -> u64 {
    std::env::var("AAPSM_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

fn rules() -> DesignRules {
    DesignRules::default()
}

fn config(parallelism: usize) -> ServiceConfig {
    let mut c = ServiceConfig::new(rules());
    c.workers = 1; // deterministic request ordering
    c.request_parallelism = parallelism;
    c.ladder = LoadLadder::default(); // faults, not load, under test
    c
}

fn baseline_conflicts() -> Vec<Conflict> {
    run_flow(
        &fixtures::strap_under_bus(5, &rules()),
        &rules(),
        &FlowConfig::default(),
    )
    .unwrap()
    .detection
    .conflicts
}

fn open(service: &DetectionService) -> SessionId {
    service
        .open_session(fixtures::strap_under_bus(5, &rules()))
        .unwrap()
}

/// The central invariant, service-shaped: an `Ok` that does not flag
/// degradation must be bit-identical to the fault-free baseline; an
/// `Err` must be a structured budget/panic error. (Admission-time
/// rejections are asserted separately where the scenario expects them.)
fn assert_truthful(
    outcome: &Result<aapsm_service::Response, ServiceError>,
    baseline: &[Conflict],
    context: &str,
) {
    match outcome {
        Ok(response) => {
            if let ResponseKind::Detection { conflicts, .. } = &response.kind {
                if !response.degraded() {
                    assert_eq!(conflicts, baseline, "{context}: undegraded but different");
                }
            }
        }
        Err(ServiceError::Flow(FlowError::Budget(_) | FlowError::WorkerPanic(_))) => {}
        Err(other) => panic!("{context}: unexpected error class: {other}"),
    }
}

#[test]
fn transient_panics_mid_request_stay_truthful() {
    let baseline = baseline_conflicts();
    for parallelism in PARALLELISM {
        let service = DetectionService::start(config(parallelism)).unwrap();
        for site in SITES {
            for occurrence in [0, seed() % 7, 1 + seed() % 3] {
                let session = open(&service);
                let plan = FaultPlan {
                    panic_at: Some((site, occurrence)),
                    ..FaultPlan::default()
                };
                let outcome = with_plan(plan, || service.request(session, Request::Detect));
                assert_truthful(
                    &outcome,
                    &baseline,
                    &format!("p{parallelism} {site:?}@{occurrence}"),
                );
                // Whatever happened, the session must answer exactly
                // afterwards — crash-only recovery is transparent.
                let healed = service.request(session, Request::Detect).unwrap();
                if let ResponseKind::Detection { conflicts, .. } = &healed.kind {
                    assert!(!healed.degraded());
                    assert_eq!(conflicts, &baseline, "session did not heal");
                }
                service.close_session(session).unwrap();
            }
        }
        let report = service.shutdown(Duration::from_secs(30));
        assert!(report.within_deadline);
    }
}

#[test]
fn persistent_panic_burns_retries_then_errors_structured() {
    let mut c = config(2);
    c.retry = RetryPolicy {
        max_retries: 2,
        base_backoff: Duration::from_micros(100),
        max_backoff: Duration::from_micros(400),
    };
    c.breaker = BreakerConfig {
        trip_threshold: 0, // breaker off: isolate the retry ladder
        ..BreakerConfig::default()
    };
    let service = DetectionService::start(c).unwrap();
    let session = open(&service);
    let plan = FaultPlan {
        panic_always: Some(FaultSite::TileBuild),
        ..FaultPlan::default()
    };
    let err = with_plan(plan, || service.request(session, Request::Detect)).unwrap_err();
    match &err {
        ServiceError::Flow(FlowError::WorkerPanic(msg)) => {
            assert!(msg.contains("injected fault"), "got: {msg}")
        }
        other => panic!("expected WorkerPanic, got {other}"),
    }
    let m = service.metrics();
    assert_eq!(m.retries, 2, "both retries must be spent");
    assert_eq!(m.panics, 3, "initial attempt + 2 retries");
    assert_eq!(m.engine_rebuilds, 3);
    assert!(service.session_rebuilds(session).unwrap() >= 3);

    // Plan disarmed: the rebuilt session answers exactly.
    let healed = service.request(session, Request::Detect).unwrap();
    assert!(!healed.degraded());
    if let ResponseKind::Detection { conflicts, .. } = &healed.kind {
        assert_eq!(conflicts, &baseline_conflicts());
    }
    service.shutdown(Duration::from_secs(30));
}

#[test]
fn budget_exhaustion_degrades_truthfully_or_errors() {
    let baseline = baseline_conflicts();
    for parallelism in PARALLELISM {
        let service = DetectionService::start(config(parallelism)).unwrap();
        for stage in [
            Stage::GraphBuild,
            Stage::Embed,
            Stage::Matching,
            Stage::Cover,
        ] {
            for from_charge in [0, seed() % 50] {
                let session = open(&service);
                let plan = FaultPlan {
                    exhaust_at: Some((stage, from_charge)),
                    ..FaultPlan::default()
                };
                let outcome = with_plan(plan, || service.request(session, Request::Detect));
                assert_truthful(
                    &outcome,
                    &baseline,
                    &format!("p{parallelism} exhaust {stage:?}@{from_charge}"),
                );
                service.close_session(session).unwrap();
            }
        }
        let m = service.metrics();
        assert_eq!(m.retries, 0, "budget exhaustion must never be retried");
        assert_eq!(
            m.rejected_breaker, 0,
            "budget trips must not feed the breaker"
        );
        let report = service.shutdown(Duration::from_secs(30));
        assert!(report.within_deadline);
    }
}

#[test]
fn corrupt_gds_session_open_is_structured() {
    let service = DetectionService::start(config(1)).unwrap();
    let bytes = write_gds(&fixtures::strap_under_bus(5, &rules()), "TOP");
    let mut opened = 0u32;
    let mut rejected = 0u32;
    for offset in 0..40 {
        let plan = FaultPlan {
            corrupt_gds: Some(seed().wrapping_add(offset * 131)),
            ..FaultPlan::default()
        };
        // A single flipped byte either still parses into a sane layout
        // (benign flip — the session opens and must then work) or is
        // rejected with a structured parse/sanitize error. Nothing else.
        match with_plan(plan, || service.open_session_gds(&bytes)) {
            Ok(session) => {
                opened += 1;
                let response = service.request(session, Request::Detect).unwrap();
                assert!(matches!(response.kind, ResponseKind::Detection { .. }));
                service.close_session(session).unwrap();
            }
            Err(e @ (ServiceError::Gds(_) | ServiceError::Layout(_))) => {
                rejected += 1;
                assert!(!e.to_string().is_empty());
            }
            Err(other) => panic!("unexpected corrupt-open error: {other}"),
        }
    }
    assert_eq!(opened + rejected, 40);
    assert!(rejected > 0, "40 byte flips should corrupt at least once");
    service.shutdown(Duration::from_secs(30));
}

#[test]
fn breaker_trips_cools_down_probes_and_recovers() {
    for parallelism in PARALLELISM {
        let mut c = config(parallelism);
        c.retry = RetryPolicy {
            max_retries: 0, // one attempt per request: failures count 1:1
            ..RetryPolicy::default()
        };
        c.breaker = BreakerConfig {
            trip_threshold: 2,
            cooldown_rejects: 2,
        };
        let service = DetectionService::start(c).unwrap();
        let session = open(&service);
        let plan = FaultPlan {
            panic_always: Some(FaultSite::TileBuild),
            ..FaultPlan::default()
        };

        // Two consecutive panic-class failures trip the breaker.
        for i in 0..2 {
            let err = with_plan(plan, || service.request(session, Request::Detect)).unwrap_err();
            assert!(
                matches!(err, ServiceError::Flow(FlowError::WorkerPanic(_))),
                "failure {i}: {err}"
            );
        }
        assert!(service.session_quarantined(session).unwrap());
        assert_eq!(service.metrics().breaker_trips, 1);

        // Cooldown: the next two submissions are shed at admission with
        // the structured quarantine error — no pipeline work runs.
        for _ in 0..2 {
            match service.submit(session, Request::Detect) {
                Err(ServiceError::CircuitOpen {
                    session: s,
                    consecutive_failures,
                }) => {
                    assert_eq!(s, session);
                    assert_eq!(consecutive_failures, 2);
                }
                other => panic!("expected CircuitOpen, got {:?}", other.map(|_| ())),
            }
        }
        assert_eq!(service.metrics().rejected_breaker, 2);

        // Half-open probe, injected to fail: the circuit re-opens.
        let err = with_plan(plan, || service.request(session, Request::Detect)).unwrap_err();
        assert!(matches!(err, ServiceError::Flow(FlowError::WorkerPanic(_))));
        assert!(service.session_quarantined(session).unwrap());
        assert!(matches!(
            service.submit(session, Request::Detect),
            Err(ServiceError::CircuitOpen { .. })
        ));
        let _ = service.submit(session, Request::Detect).map(|t| t.wait());

        // Next admission is the probe again — fault-free this time: it
        // succeeds against the rebuilt engine and closes the circuit.
        let probe = service.request(session, Request::Detect).unwrap();
        assert!(!probe.degraded());
        if let ResponseKind::Detection { conflicts, .. } = &probe.kind {
            assert_eq!(conflicts, &baseline_conflicts());
        }
        assert!(!service.session_quarantined(session).unwrap());

        // Closed again: normal traffic flows.
        service.request(session, Request::Ping).unwrap();
        let report = service.shutdown(Duration::from_secs(30));
        assert!(report.within_deadline);
    }
}

#[test]
fn faults_during_apply_cuts_roll_back_the_session_layout() {
    let rules = rules();
    let layout = fixtures::strap_under_bus(5, &rules);
    let flow = run_flow(&layout, &rules, &FlowConfig::default()).unwrap();
    for parallelism in PARALLELISM {
        let mut c = config(parallelism);
        c.retry = RetryPolicy {
            max_retries: 0,
            ..RetryPolicy::default()
        };
        c.breaker = BreakerConfig {
            trip_threshold: 0,
            ..BreakerConfig::default()
        };
        let service = DetectionService::start(c).unwrap();
        let session = service.open_session(layout.clone()).unwrap();
        let committed = service.session_layout(session).unwrap();

        let plan = FaultPlan {
            panic_always: Some(FaultSite::TileBuild),
            ..FaultPlan::default()
        };
        let outcome = with_plan(plan, || {
            service.request(session, Request::ApplyCuts(flow.plan.cuts.clone()))
        });
        assert!(
            matches!(outcome, Err(ServiceError::Flow(FlowError::WorkerPanic(_)))),
            "p{parallelism}: persistent panic must surface"
        );
        assert_eq!(
            service.session_layout(session).unwrap(),
            committed,
            "p{parallelism}: failed edit must roll back wholesale"
        );

        // The same edit, fault-free, commits.
        let applied = service
            .request(session, Request::ApplyCuts(flow.plan.cuts.clone()))
            .unwrap();
        assert!(matches!(applied.kind, ResponseKind::Detection { .. }));
        assert_ne!(service.session_layout(session).unwrap(), committed);
        service.shutdown(Duration::from_secs(30));
    }
}
