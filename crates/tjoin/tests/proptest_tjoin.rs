//! Property-based cross-validation of every T-join engine.

use aapsm_tjoin::{brute, solve, GadgetKind, TJoinInstance, TJoinMethod};
use proptest::prelude::*;

fn instance() -> impl Strategy<Value = TJoinInstance> {
    (2usize..8).prop_flat_map(|n| {
        (
            proptest::collection::vec((0..n, 0..n, 0i64..40), 1..12),
            proptest::collection::vec(any::<bool>(), n),
        )
            .prop_filter_map("needs >= 1 clean edge", move |(raw, t)| {
                let edges: Vec<_> = raw.into_iter().filter(|&(u, v, _)| u != v).collect();
                if edges.is_empty() {
                    return None;
                }
                TJoinInstance::new(n, edges, t).ok()
            })
    })
}

fn methods() -> Vec<TJoinMethod> {
    vec![
        TJoinMethod::Gadget(GadgetKind::Complete),
        TJoinMethod::Gadget(GadgetKind::Optimized),
        TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 1 }),
        TJoinMethod::Gadget(GadgetKind::Generalized { max_group: 4 }),
        TJoinMethod::ShortestPath,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All engines agree with brute force on feasibility, weight and join
    /// validity.
    #[test]
    fn engines_match_brute_force(inst in instance()) {
        let reference = brute::solve_brute(&inst);
        for m in methods() {
            match (&reference, solve(&inst, m)) {
                (None, Err(_)) => {}
                (Some(b), Ok(j)) => {
                    prop_assert!(inst.is_valid_join(&j), "{m:?}");
                    prop_assert_eq!(j.weight, b.weight, "{:?}", m);
                }
                (b, g) => {
                    return Err(TestCaseError::fail(format!(
                        "{m:?}: feasibility disagrees: brute={} got={}",
                        b.is_some(),
                        g.is_ok()
                    )))
                }
            }
        }
    }

    /// Adding a disconnected component with an even T-set never changes
    /// feasibility of the original part.
    #[test]
    fn feasibility_is_componentwise(inst in instance()) {
        let n = inst.node_count();
        let mut edges = inst.edges().to_vec();
        edges.push((n, n + 1, 7));
        let mut t = inst.t_set().to_vec();
        t.extend([true, true]);
        let bigger = TJoinInstance::new(n + 2, edges, t).unwrap();
        prop_assert_eq!(
            inst.check_feasible().is_ok(),
            bigger.check_feasible().is_ok()
        );
    }

    /// The empty T-set always has the empty optimal join.
    #[test]
    fn empty_t_is_trivial(inst in instance()) {
        let empty_t = TJoinInstance::new(
            inst.node_count(),
            inst.edges().to_vec(),
            vec![false; inst.node_count()],
        )
        .unwrap();
        for m in methods() {
            let j = solve(&empty_t, m).unwrap();
            prop_assert_eq!(j.weight, 0);
            prop_assert!(j.edges.is_empty());
        }
    }
}
